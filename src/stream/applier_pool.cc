#include "stream/applier_pool.h"

#include <utility>

namespace gpmv {

namespace {

/// 64-bit finalizer (splitmix64): decorrelates the packed (u, v) key from
/// node-id locality so slices load-balance on real graphs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t ApplierPool::SliceOf(NodeId u, NodeId v, size_t k) {
  if (k <= 1) return 0;
  const uint64_t key =
      (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
  return static_cast<size_t>(Mix64(key) % k);
}

ApplierPool::ApplierPool(QueryEngine* engine, ApplierPoolOptions opts)
    : engine_(engine), opts_(opts) {
  if (opts_.num_appliers == 0) opts_.num_appliers = 1;
  const size_t k = opts_.num_appliers;
  engine_->ConfigureStreamSlices(k);
  last_routed_.assign(k, 0);
  routed_count_.assign(k, 0);
  streams_.reserve(k);
  appliers_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    streams_.push_back(std::make_unique<UpdateStream>(opts_.stream));
  }
  for (size_t i = 0; i < k; ++i) {
    StreamApplierOptions ao = opts_.applier;
    ao.slice = i;
    ao.use_slice_commit = true;
    ao.on_batch_handled = [this] { RefreshWatermark(); };
    appliers_.push_back(
        std::make_unique<StreamApplier>(engine_, streams_[i].get(), ao));
  }
}

ApplierPool::~ApplierPool() { (void)Stop(); }

uint64_t ApplierPool::Push(EdgeUpdate op) {
  const size_t k = streams_.size();
  const size_t slice = SliceOf(op.u, op.v, k);
  // Ticket assignment and enqueue are atomic under the pool mutex: each
  // slice stream must see a strictly increasing ts subsequence, so two
  // producers racing ops onto one slice cannot enqueue out of ticket
  // order. The slice queue's backpressure therefore blocks *all*
  // producers (the pool-wide cost of global ticket density).
  std::lock_guard<std::mutex> lk(mu_);
  if (stopped_) return 0;
  const uint64_t ts = streams_[slice]->PushWithTs(op, next_ts_);
  if (ts == 0) return 0;  // closed underneath (Stop raced)
  next_ts_ = ts + 1;
  last_routed_[slice] = ts;
  ++routed_count_[slice];
  return ts;
}

void ApplierPool::RefreshWatermark() {
  // Under the pool mutex no routing is concurrent, so "applier i consumed
  // through everything ever routed to slice i" proves slice i quiet
  // through the global last-assigned ts: no op <= that ts can still be
  // headed its way. Quiet slices heartbeat forward; a slice with a
  // pending op keeps its clock (and the min-derived watermark) put.
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t global = next_ts_ - 1;
  if (global == 0) return;
  for (size_t i = 0; i < appliers_.size(); ++i) {
    if (last_routed_[i] == global) continue;  // its own commit advances it
    if (appliers_[i]->consumed_through_ts() >= last_routed_[i]) {
      engine_->AdvanceStreamSlice(i, global);
    }
  }
}

Status ApplierPool::FlushAndWait() {
  Status out;
  for (auto& a : appliers_) {
    Status st = a->FlushAndWait();
    if (out.ok() && !st.ok()) out = st;
  }
  // All per-slice queues drained: every slice is quiet through the global
  // ts, so the published watermark catches up to it here.
  RefreshWatermark();
  return out;
}

Status ApplierPool::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return Status::OK();
    stopped_ = true;
  }
  Status out;
  for (auto& s : streams_) s->Close();
  for (auto& a : appliers_) {
    Status st = a->Stop();
    if (out.ok() && !st.ok()) out = st;
  }
  return out;
}

uint64_t ApplierPool::last_assigned_ts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_ts_ - 1;
}

uint64_t ApplierPool::ops_routed(size_t i) const {
  std::lock_guard<std::mutex> lk(mu_);
  return routed_count_[i];
}

}  // namespace gpmv
