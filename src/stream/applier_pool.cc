#include "stream/applier_pool.h"

#include <utility>

namespace gpmv {

namespace {

/// 64-bit finalizer (splitmix64): decorrelates the packed (u, v) key from
/// node-id locality so slices load-balance on real graphs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t ApplierPool::SliceOf(NodeId u, NodeId v, size_t k) {
  if (k <= 1) return 0;
  const uint64_t key =
      (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
  return static_cast<size_t>(Mix64(key) % k);
}

ApplierPool::ApplierPool(QueryEngine* engine, ApplierPoolOptions opts)
    : engine_(engine), opts_(opts) {
  if (opts_.num_appliers == 0) opts_.num_appliers = 1;
  const size_t k = opts_.num_appliers;
  engine_->ConfigureStreamSlices(k);
  // Continue the engine's ticket sequence rather than restarting at 1: on
  // an engine with prior streamed history the published watermark never
  // regresses, so fresh tickets below it would make min_applied_ts waits
  // trivially (and wrongly) satisfied before the new ops are applied.
  // ConfigureStreamSlices seeded every slice clock to this same value.
  next_ts_ = engine_->applied_through_ts() + 1;
  route_mu_ = std::make_unique<std::mutex[]>(k);
  last_routed_.assign(k, 0);
  routed_count_.assign(k, 0);
  streams_.reserve(k);
  appliers_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    streams_.push_back(std::make_unique<UpdateStream>(opts_.stream));
  }
  for (size_t i = 0; i < k; ++i) {
    StreamApplierOptions ao = opts_.applier;
    ao.slice = i;
    ao.use_slice_commit = true;
    ao.on_batch_handled = [this] { RefreshWatermark(); };
    appliers_.push_back(
        std::make_unique<StreamApplier>(engine_, streams_[i].get(), ao));
  }
}

ApplierPool::~ApplierPool() { (void)Stop(); }

uint64_t ApplierPool::Push(EdgeUpdate op) {
  const size_t k = streams_.size();
  const size_t slice = SliceOf(op.u, op.v, k);
  // The slice's routing mutex covers ticket assignment *through* enqueue,
  // so two producers racing ops onto one slice cannot enqueue out of
  // ticket order (each slice stream must see a strictly increasing ts
  // subsequence). The pool mutex itself is only held for the non-blocking
  // ticket grab — never across the enqueue — so the applier threads'
  // RefreshWatermark can always acquire it: backpressure on a full slice
  // queue must never wedge the consumer whose drain relieves it.
  std::lock_guard<std::mutex> slk(route_mu_[slice]);
  uint64_t ts, prev_tail;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return 0;
    ts = next_ts_++;
    prev_tail = last_routed_[slice];
    last_routed_[slice] = ts;
    ++routed_count_[slice];
  }
  if (streams_[slice]->PushWithTs(op, ts) == 0) {
    // Closed underneath (Stop raced): the op was never accepted, so
    // un-route it — we still hold the slice mutex, so nobody else has
    // touched this slice's tail. The global ticket is burned (next_ts_
    // may have moved on), which is fine post-Stop: a gap can only make
    // the watermark conservative, never let it cover a dropped op.
    std::lock_guard<std::mutex> lk(mu_);
    last_routed_[slice] = prev_tail;
    --routed_count_[slice];
    return 0;
  }
  return ts;
}

Status ApplierPool::PushWithDeadline(EdgeUpdate op, double timeout_ms,
                                     uint64_t* ts_out) {
  const size_t k = streams_.size();
  const size_t slice = SliceOf(op.u, op.v, k);
  // Quarantine fast path, checked before any ticket is assigned: the
  // slice's consumer is parked, so a full queue can only time out — tell
  // the producer *why* (retryable after ReviveSlice) instead of burning
  // its deadline. Checked again implicitly by the timeout below for the
  // quarantined-after-we-looked race.
  if (appliers_[slice]->quarantined()) {
    return Status::ResourceExhausted("stream slice " + std::to_string(slice) +
                                     " quarantined");
  }
  std::lock_guard<std::mutex> slk(route_mu_[slice]);
  uint64_t ts, prev_tail;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) {
      return Status::Internal("applier pool stopped");
    }
    ts = next_ts_++;
    prev_tail = last_routed_[slice];
    last_routed_[slice] = ts;
    ++routed_count_[slice];
  }
  bool timed_out = false;
  PushError err = PushError::kNone;
  if (streams_[slice]->PushWithTs(op, ts, timeout_ms, &timed_out, &err) == 0) {
    // Not accepted: un-route exactly like the blocking path — the burned
    // ticket keeps the watermark conservative.
    std::lock_guard<std::mutex> lk(mu_);
    last_routed_[slice] = prev_tail;
    --routed_count_[slice];
    switch (err) {
      case PushError::kTimeout:
        return Status::DeadlineExceeded("stream slice " +
                                        std::to_string(slice) +
                                        " push timed out (backpressure)");
      case PushError::kStaleTicket:
        // Unreachable while route_mu_ serializes this slice's producers;
        // report it honestly if that invariant ever breaks.
        return Status::Internal("stream slice " + std::to_string(slice) +
                                " rejected a stale ticket");
      default:
        return Status::Internal("applier pool stopped");
    }
  }
  if (ts_out != nullptr) *ts_out = ts;
  return Status::OK();
}

ApplierPool::TryPushResult ApplierPool::TryPush(EdgeUpdate op,
                                                uint64_t* ts_out) {
  const size_t k = streams_.size();
  const size_t slice = SliceOf(op.u, op.v, k);
  // Quarantine fast path, like PushWithDeadline: the consumer is parked,
  // so admitting into (or even probing) its queue is pointless.
  if (appliers_[slice]->quarantined()) return TryPushResult::kQuarantined;
  std::lock_guard<std::mutex> slk(route_mu_[slice]);
  // Depth probe before the ticket grab. route_mu_ serializes this slice's
  // producers and the consumer only shrinks the queue, so "space now"
  // still holds at the enqueue below — TryPushWithTs cannot would-block.
  if (streams_[slice]->depth() >= streams_[slice]->capacity()) {
    return TryPushResult::kWouldBlock;
  }
  uint64_t ts, prev_tail;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return TryPushResult::kStopped;
    ts = next_ts_++;
    prev_tail = last_routed_[slice];
    last_routed_[slice] = ts;
    ++routed_count_[slice];
  }
  if (streams_[slice]->TryPushWithTs(op, ts) == 0) {
    // Closed underneath (Stop raced): un-route like Push.
    std::lock_guard<std::mutex> lk(mu_);
    last_routed_[slice] = prev_tail;
    --routed_count_[slice];
    return TryPushResult::kStopped;
  }
  if (ts_out != nullptr) *ts_out = ts;
  return TryPushResult::kOk;
}

void ApplierPool::RefreshWatermark() {
  // Ticket assignment bumps last_routed_ under the pool mutex *before*
  // the op is enqueued (the enqueue runs outside mu_, serialized per
  // slice by route_mu_), so "applier i consumed through everything ever
  // routed to slice i" still proves slice i quiet through the global
  // last-assigned ts: a mid-flight op would have bumped last_routed_[i]
  // past anything its applier can have consumed. Quiet slices heartbeat
  // forward; a slice with a pending (or mid-flight) op keeps its clock
  // (and the min-derived watermark) put.
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t global = next_ts_ - 1;
  if (global == 0) return;
  for (size_t i = 0; i < appliers_.size(); ++i) {
    // A quarantined applier retains (rather than applies) its failed
    // batch: its slice clock must stay at the last successful apply,
    // pinning the published watermark there — never heartbeat it. After
    // a successful ReviveSlice the status is OK again and the next
    // refresh lets the slice catch back up.
    if (!appliers_[i]->status().ok()) continue;
    if (last_routed_[i] == global) continue;  // its own commit advances it
    if (appliers_[i]->consumed_through_ts() >= last_routed_[i]) {
      engine_->AdvanceStreamSlice(i, global);
    }
  }
}

Status ApplierPool::FlushAndWait() {
  Status out;
  for (auto& a : appliers_) {
    Status st = a->FlushAndWait();
    if (out.ok() && !st.ok()) out = st;
  }
  // All per-slice queues drained: every *healthy* slice is quiet through
  // the global ts, so the published watermark catches up to it here — or,
  // when an applier is quarantined, stays pinned at its last successful
  // apply (its ops are retained in the redo log, not applied).
  RefreshWatermark();
  return out;
}

Status ApplierPool::ReviveSlice(size_t i) {
  if (i >= appliers_.size()) {
    return Status::InvalidArgument("no such stream slice");
  }
  Status st = appliers_[i]->Revive();
  // On success the slice clock advanced through the replayed commits; the
  // refresh heartbeats it the rest of the way (it is quiet now — its queue
  // was empty behind the quarantine, or the parked applier resumes and the
  // per-batch refresh takes over).
  RefreshWatermark();
  return st;
}

bool ApplierPool::slice_quarantined(size_t i) const {
  return i < appliers_.size() && appliers_[i]->quarantined();
}

Status ApplierPool::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return Status::OK();
    stopped_ = true;
  }
  Status out;
  for (auto& s : streams_) s->Close();
  for (auto& a : appliers_) {
    Status st = a->Stop();
    if (out.ok() && !st.ok()) out = st;
  }
  return out;
}

uint64_t ApplierPool::last_assigned_ts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_ts_ - 1;
}

uint64_t ApplierPool::ops_routed(size_t i) const {
  std::lock_guard<std::mutex> lk(mu_);
  return routed_count_[i];
}

}  // namespace gpmv
