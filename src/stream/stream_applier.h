/// \file stream_applier.h
/// \brief The background drain half of the streaming-update subsystem: one
/// applier thread pulls timestamped edge ops off an UpdateStream, coalesces
/// them into adaptive micro-batches, and pushes each through the engine's
/// two-phase maintenance path (QueryEngine::ApplyStreamBatch — deletions,
/// then insert deltas), so snapshots publish continuously while Submit and
/// Query keep running. Queries never wait on ingestion: the only exclusive
/// section is the per-micro-batch apply, and the sharded slice rebuild
/// still runs outside it through the PR 3 pending/coalesce hand-off.
///
/// Adaptive micro-batching: the applier drains whatever is queued, up to a
/// moving cap. While an apply is in flight the queue accumulates, so batch
/// size tracks the ingest-rate/apply-latency ratio by itself; the cap
/// steers publish lag — an apply slower than `max_lag_ms` halves it (AIMD),
/// a fast one lets it grow back toward `max_batch`. The resulting batch
/// sizes are recorded in `StreamStats::batch_size_hist`.
///
/// Failure contract: a failed ApplyStreamBatch makes the applier
/// *sticky-failed*: the error is latched, every subsequent drained op is
/// discarded (counted in ops_dropped) so producers never block on a dead
/// consumer, and FlushAndWait / Stop return the latched status. An op
/// referencing an unknown node fails its micro-batch's up-front validation
/// all-or-nothing (nothing applied); a failure deeper in the engine's
/// maintenance sweep follows ApplyUpdates' partial-failure semantics for
/// that batch — either way the applied-through watermark never advances
/// past a failed batch.
///
/// Quiesce: FlushAndWait() blocks until every op enqueued before the call
/// has been applied and published (or discarded by a sticky failure) —
/// the equivalence suites call it to compare streamed state against batch
/// oracles deterministically. Stop() closes the stream, drains the
/// remainder, joins the thread, and returns the final status; the
/// destructor does the same (discarding the status).

#ifndef GPMV_STREAM_STREAM_APPLIER_H_
#define GPMV_STREAM_STREAM_APPLIER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "engine/query_engine.h"
#include "stream/update_stream.h"

namespace gpmv {

/// Micro-batching knobs.
struct StreamApplierOptions {
  /// Upper bound on ops per micro-batch (post-coalesce batches are smaller).
  size_t max_batch = 256;
  /// Target publish-lag bound: an apply slower than this halves the drain
  /// cap, a faster one doubles it back (never above max_batch, never below
  /// 1). 0 disables adaptation (the cap stays at max_batch).
  double max_lag_ms = 20.0;
  /// Stream slice this applier commits (ApplierPool mode): batches go
  /// through QueryEngine::ApplyStreamBatchSlice(batch, ts, slice), so the
  /// engine's watermark derives from the min over all slices rather than
  /// this applier's own through_ts. Requires ConfigureStreamSlices.
  size_t slice = 0;
  bool use_slice_commit = false;
  /// Invoked after every handled micro-batch (applied or discarded), from
  /// the applier thread, outside any applier lock — the ApplierPool hooks
  /// its watermark refresh (idle-slice heartbeats) here.
  std::function<void()> on_batch_handled;
};

/// See file comment.
class StreamApplier {
 public:
  /// Starts the applier thread immediately. `engine` and `stream` must
  /// outlive this object (or its Stop()).
  StreamApplier(QueryEngine* engine, UpdateStream* stream,
                StreamApplierOptions opts = {});
  ~StreamApplier();

  StreamApplier(const StreamApplier&) = delete;
  StreamApplier& operator=(const StreamApplier&) = delete;

  /// Blocks until every op enqueued before the call is applied-and-
  /// published or discarded; returns the sticky status (OK while healthy).
  /// Safe from any thread, concurrently with producers still pushing —
  /// the watermark is captured at entry, so later pushes don't extend the
  /// wait.
  Status FlushAndWait();

  /// Closes the stream, drains the remainder, joins the applier thread and
  /// returns the sticky status. Idempotent.
  Status Stop();

  /// Sticky apply status (OK while healthy). Non-blocking.
  Status status() const;

  /// Timestamp through which ops have been consumed (applied or
  /// discarded). Non-blocking.
  uint64_t consumed_through_ts() const;

 private:
  void ApplierLoop();

  QueryEngine* engine_;
  UpdateStream* stream_;
  StreamApplierOptions opts_;
  /// Live queue-depth gauge (stream.queue_depth), resolved once from the
  /// engine's registry; null when metrics are disabled.
  obs::Gauge* queue_depth_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable consumed_cv_;
  uint64_t consumed_ts_ = 0;  ///< watermark: drained-and-handled through here
  Status status_;             ///< sticky first failure
  bool stopped_ = false;

  std::thread thread_;  ///< last member: joined by Stop()/dtor
};

}  // namespace gpmv

#endif  // GPMV_STREAM_STREAM_APPLIER_H_
