/// \file stream_applier.h
/// \brief The background drain half of the streaming-update subsystem: one
/// applier thread pulls timestamped edge ops off an UpdateStream, coalesces
/// them into adaptive micro-batches, and pushes each through the engine's
/// two-phase maintenance path (QueryEngine::ApplyStreamBatch — deletions,
/// then insert deltas), so snapshots publish continuously while Submit and
/// Query keep running. Queries never wait on ingestion: the only exclusive
/// section is the per-micro-batch apply, and the sharded slice rebuild
/// still runs outside it through the PR 3 pending/coalesce hand-off.
///
/// Adaptive micro-batching: the applier drains whatever is queued, up to a
/// moving cap. While an apply is in flight the queue accumulates, so batch
/// size tracks the ingest-rate/apply-latency ratio by itself; the cap
/// steers publish lag — an apply slower than `max_lag_ms` halves it (AIMD),
/// a fast one lets it grow back toward `max_batch`. The resulting batch
/// sizes are recorded in `StreamStats::batch_size_hist`.
///
/// Failure contract — retry, quarantine, revive (docs/ROBUSTNESS.md):
/// a failed micro-batch apply is *retried in place* with capped, jittered
/// exponential backoff (StreamRetryOptions); the engine's apply validates
/// all-or-nothing before mutating, so re-applying a failed batch is always
/// sound. While retrying, the consumed watermark does not advance — the
/// slice clock keeps pinning the global watermark at the last successful
/// apply, preserving the no-holes invariant. A batch that exhausts its
/// attempts (or fails deterministically: kInvalidArgument never retries)
/// *quarantines* the applier: the batch moves to a per-slice redo log, the
/// thread parks instead of draining, and the sticky status becomes
/// kResourceExhausted — producers feel queue backpressure (or fast-fail
/// through ApplierPool's quarantine check) rather than having ops silently
/// discarded. Nothing is dropped while quarantined; the *only* drop path
/// is Stop() on a quarantined applier, which discards the redo log and the
/// queued remainder as explicit ops_dropped. Revive() replays the redo log
/// (with the same retry policy) from the calling thread while the applier
/// is parked; on success the applier resumes draining and the slice clock
/// reintegrates through the replayed commits.
///
/// Op accounting is deferred for retained batches: a quarantined batch's
/// ops count into ops_ingested/applied/coalesced only when its redo entry
/// resolves (replayed or discarded), so the cross-counter invariant
/// `ops_ingested == ops_applied + ops_coalesced + ops_dropped` holds in
/// every observed stats snapshot — the chaos suite's zero-silent-drops
/// check rides on it.
///
/// Quiesce: FlushAndWait() blocks until every op enqueued before the call
/// has been applied and published, or the applier quarantined (returning
/// the quarantine status) — the equivalence suites call it to compare
/// streamed state against batch oracles deterministically. Stop() closes
/// the stream, drains the remainder, joins the thread, and returns the
/// final status; the destructor does the same (discarding the status).

#ifndef GPMV_STREAM_STREAM_APPLIER_H_
#define GPMV_STREAM_STREAM_APPLIER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "engine/query_engine.h"
#include "stream/update_stream.h"

namespace gpmv {

/// Bounded-retry policy for failed micro-batch applies.
struct StreamRetryOptions {
  /// Total apply attempts per batch before quarantine (clamped to >= 1;
  /// 1 = no retries). kInvalidArgument failures (deterministic validation
  /// errors) quarantine immediately regardless.
  size_t max_attempts = 4;
  /// First backoff delay; doubles per retry (jittered to [50%, 100%] of
  /// nominal), capped at backoff_max_ms. 0 retries immediately.
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 50.0;
  /// Jitter RNG seed (mixed with the slice index so K appliers draw
  /// distinct streams).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

/// Micro-batching knobs.
struct StreamApplierOptions {
  /// Upper bound on ops per micro-batch (post-coalesce batches are smaller).
  size_t max_batch = 256;
  /// Target publish-lag bound: an apply slower than this halves the drain
  /// cap, a faster one doubles it back (never above max_batch, never below
  /// 1). 0 disables adaptation (the cap stays at max_batch).
  double max_lag_ms = 20.0;
  /// Failed-apply retry policy (see file comment).
  StreamRetryOptions retry;
  /// Stream slice this applier commits (ApplierPool mode): batches go
  /// through QueryEngine::ApplyStreamBatchSlice(batch, ts, slice), so the
  /// engine's watermark derives from the min over all slices rather than
  /// this applier's own through_ts. Requires ConfigureStreamSlices.
  size_t slice = 0;
  bool use_slice_commit = false;
  /// Invoked after every handled micro-batch (applied or quarantined),
  /// from the applier thread, outside any applier lock — the ApplierPool
  /// hooks its watermark refresh (idle-slice heartbeats) here.
  std::function<void()> on_batch_handled;
};

/// See file comment.
class StreamApplier {
 public:
  /// Starts the applier thread immediately. `engine` and `stream` must
  /// outlive this object (or its Stop()).
  StreamApplier(QueryEngine* engine, UpdateStream* stream,
                StreamApplierOptions opts = {});
  ~StreamApplier();

  StreamApplier(const StreamApplier&) = delete;
  StreamApplier& operator=(const StreamApplier&) = delete;

  /// Blocks until every op enqueued before the call is applied-and-
  /// published, or the applier quarantined; returns the sticky status (OK
  /// while healthy, kResourceExhausted while quarantined). Safe from any
  /// thread, concurrently with producers still pushing — the watermark is
  /// captured at entry, so later pushes don't extend the wait.
  Status FlushAndWait();

  /// Replays the quarantined redo log from the calling thread (the applier
  /// stays parked meanwhile), with the configured retry policy per entry.
  /// On full success the applier resumes draining, its status resets to
  /// OK, and the slice clock reintegrates through the replayed commits;
  /// on failure the unreplayed remainder stays quarantined and the cause
  /// is returned. OK and a no-op when healthy.
  Status Revive();

  /// Closes the stream, drains the remainder, joins the applier thread and
  /// returns the final status. On a quarantined applier this *discards*
  /// the redo log and queued remainder as explicit ops_dropped — the one
  /// place retained ops die, and it is observable. Idempotent.
  Status Stop();

  /// Sticky status: OK while healthy, kResourceExhausted (wrapping the
  /// apply error) while quarantined. Non-blocking.
  Status status() const;

  /// True while the redo log holds an unreplayed failed batch and the
  /// applier is parked. Non-blocking.
  bool quarantined() const;

  /// Retained redo-log depth (batches, not ops). Non-blocking.
  size_t redo_depth() const;

  /// Timestamp through which ops have been consumed (applied, or
  /// discarded by a quarantined Stop). Does not advance past a retained
  /// (quarantined) batch. Non-blocking.
  uint64_t consumed_through_ts() const;

 private:
  /// One retained failed micro-batch plus the deferred accounting needed
  /// to settle its ops when it resolves.
  struct RedoEntry {
    std::vector<EdgeUpdate> batch;  ///< coalesced, as originally drained
    uint64_t through_ts = 0;
    size_t ops_popped = 0;  ///< pre-coalesce queue elements it covered
  };

  void ApplierLoop();
  /// Applies one batch with bounded, jittered-backoff retries. Counts
  /// failed attempts / performed retries into the out-params; aborts the
  /// backoff early (returning the last error) when Stop is requested.
  Status ApplyWithRetry(const std::vector<EdgeUpdate>& batch, uint64_t ts,
                        size_t* failed_attempts, size_t* retries);
  /// Jittered exponential backoff before retry number `attempt` (1-based).
  /// False when interrupted by Stop.
  bool BackoffWait(size_t attempt);
  /// Shutdown path for a quarantined applier: settles the redo log and
  /// drains the closed stream, counting everything as explicit drops.
  void DiscardRemainder();

  QueryEngine* engine_;
  UpdateStream* stream_;
  StreamApplierOptions opts_;
  /// Live gauges (stream.queue_depth / stream.redo_depth), resolved once
  /// from the engine's registry.
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* redo_depth_gauge_ = nullptr;
  /// Backoff jitter stream. Touched only by whichever thread currently
  /// runs applies (the applier thread, or a Revive caller while the
  /// applier is parked) — handoffs synchronize through mu_.
  Rng jitter_rng_;

  mutable std::mutex mu_;
  std::condition_variable consumed_cv_;
  /// Park/backoff wake channel: notified by Stop() and Revive().
  std::condition_variable state_cv_;
  uint64_t consumed_ts_ = 0;  ///< watermark: drained-and-settled through here
  Status status_;             ///< sticky: OK, or the quarantine status
  std::deque<RedoEntry> redo_;
  bool quarantined_ = false;
  bool reviving_ = false;
  bool quit_ = false;  ///< Stop requested: interrupts parks and backoffs
  bool stopped_ = false;

  std::thread thread_;  ///< last member: joined by Stop()/dtor
};

}  // namespace gpmv

#endif  // GPMV_STREAM_STREAM_APPLIER_H_
