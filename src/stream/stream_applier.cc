#include "stream/stream_applier.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/stopwatch.h"

namespace gpmv {

StreamApplier::StreamApplier(QueryEngine* engine, UpdateStream* stream,
                             StreamApplierOptions opts)
    : engine_(engine),
      stream_(stream),
      opts_(opts),
      jitter_rng_(opts.retry.jitter_seed ^ (opts.slice * 0x9e3779b97f4a7c15ULL +
                                            opts.slice)) {
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.retry.max_attempts == 0) opts_.retry.max_attempts = 1;
  queue_depth_gauge_ =
      engine_->metrics()->FindOrCreateGauge("stream.queue_depth");
  redo_depth_gauge_ =
      engine_->metrics()->FindOrCreateGauge("stream.redo_depth");
  thread_ = std::thread([this] { ApplierLoop(); });
}

StreamApplier::~StreamApplier() { (void)Stop(); }

bool StreamApplier::BackoffWait(size_t attempt) {
  double ms = opts_.retry.backoff_base_ms;
  for (size_t i = 1; i < attempt && ms < opts_.retry.backoff_max_ms; ++i) {
    ms *= 2.0;
  }
  ms = std::min(ms, opts_.retry.backoff_max_ms);
  // Jitter to [50%, 100%] of nominal: K appliers retrying the same outage
  // decorrelate instead of thundering onto the registry lock together.
  ms *= 0.5 + 0.5 * jitter_rng_.NextDouble();
  std::unique_lock<std::mutex> lk(mu_);
  if (ms <= 0.0) return !quit_;
  return !state_cv_.wait_for(lk,
                             std::chrono::duration<double, std::milli>(ms),
                             [this] { return quit_; });
}

Status StreamApplier::ApplyWithRetry(const std::vector<EdgeUpdate>& batch,
                                     uint64_t ts, size_t* failed_attempts,
                                     size_t* retries) {
  *failed_attempts = 0;
  *retries = 0;
  Status st;
  for (size_t attempt = 1; attempt <= opts_.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      if (!BackoffWait(attempt - 1)) break;  // Stop requested mid-backoff
      ++*retries;
    }
    st = opts_.use_slice_commit
             ? engine_->ApplyStreamBatchSlice(batch, ts, opts_.slice)
             : engine_->ApplyStreamBatch(batch, ts);
    if (st.ok()) return st;
    ++*failed_attempts;
    // Validation failures (unknown node) are deterministic: the batch can
    // never succeed, so burn no backoff on it — quarantine immediately and
    // let Revive (after the operator fixes the world) or Stop resolve it.
    if (st.code() == Status::Code::kInvalidArgument) break;
  }
  return st;
}

void StreamApplier::ApplierLoop() {
  size_t cap = opts_.max_batch;
  StreamDrainResult d;
  for (;;) {
    {
      // Quarantined appliers park instead of draining: every queued op is
      // *retained* behind the failed batch (FIFO order is the redo
      // contract), and the stalled queue is the producers' backpressure.
      std::unique_lock<std::mutex> lk(mu_);
      state_cv_.wait(lk, [this] { return !quarantined_ || quit_; });
      if (quarantined_ && quit_) break;
    }
    if (!stream_->Drain(cap, &d)) break;

    StreamStats delta;
    // The enqueue-side high-water mark is itself monotone, so reading it
    // into each per-batch delta keeps EngineStats.stream's gauge fresh
    // without a second merge point.
    delta.max_queue_depth = stream_->max_depth();

    size_t failed = 0, retries = 0;
    Stopwatch sw;
    Status st = ApplyWithRetry(d.batch, d.through_ts, &failed, &retries);
    const double apply_ms = sw.ElapsedMillis();
    delta.apply_failures = failed;
    delta.retries = retries;

    if (st.ok()) {
      delta.ops_ingested = d.ops_popped;
      delta.ops_coalesced = d.ops_popped - d.batch.size();
      delta.ops_applied = d.batch.size();
      delta.applied_through_ts = d.through_ts;
      delta.RecordBatch(d.batch.size(), d.oldest_wait_ms + apply_ms);
      std::lock_guard<std::mutex> lk(mu_);
      consumed_ts_ = std::max(consumed_ts_, d.through_ts);
    } else {
      // Retries exhausted (or a deterministic failure): quarantine. The
      // batch is retained in the redo log — its op accounting is deferred
      // until the entry resolves (Revive replay or Stop discard), so the
      // ingested == applied + coalesced + dropped invariant holds in every
      // stats snapshot. consumed_ts_ stays put: the slice clock pins the
      // watermark at the last successful apply (no holes).
      delta.quarantines = 1;
      size_t redo_depth;
      {
        std::lock_guard<std::mutex> lk(mu_);
        redo_.push_back(RedoEntry{d.batch, d.through_ts, d.ops_popped});
        redo_depth = redo_.size();
        quarantined_ = true;
        status_ = Status::ResourceExhausted(
            "stream slice " + std::to_string(opts_.slice) +
            " quarantined: " + st.ToString());
      }
      redo_depth_gauge_->Set(static_cast<double>(redo_depth));
      engine_->SetSliceQuarantined(opts_.slice, true);
    }
    engine_->MergeStreamStats(delta);
    // Live depth, not a high-water mark: exporter snapshots between drains
    // see how far the applier is behind right now.
    queue_depth_gauge_->Set(static_cast<double>(d.depth_after));

    consumed_cv_.notify_all();
    if (opts_.on_batch_handled) opts_.on_batch_handled();

    if (st.ok() && opts_.max_lag_ms > 0.0) {
      // AIMD-flavored cap steering: a slow apply halves the next drain so
      // publish lag recovers; a fast one doubles it back toward max_batch
      // (larger batches amortize the freeze + maintenance sweep).
      if (apply_ms > opts_.max_lag_ms) {
        cap = std::max<size_t>(1, cap / 2);
      } else {
        cap = std::min(opts_.max_batch, cap * 2);
      }
    }
  }
  {
    // A Revive may still be replaying the redo log it swapped out; let it
    // finish (Stop's quit_ interrupts its backoffs) so the discard below
    // settles whatever it put back, never racing its accounting.
    std::unique_lock<std::mutex> lk(mu_);
    state_cv_.wait(lk, [this] { return !reviving_; });
  }
  DiscardRemainder();
}

void StreamApplier::DiscardRemainder() {
  StreamStats delta;
  uint64_t last_ts = 0;
  bool was_quarantined;
  {
    std::lock_guard<std::mutex> lk(mu_);
    was_quarantined = quarantined_;
    for (const RedoEntry& e : redo_) {
      delta.ops_ingested += e.ops_popped;
      delta.ops_coalesced += e.ops_popped - e.batch.size();
      delta.ops_dropped += e.batch.size();
      last_ts = std::max(last_ts, e.through_ts);
    }
    redo_.clear();
  }
  // The stream is closed by now (Drain returned false or Stop closed it);
  // whatever producers managed to enqueue behind the quarantine drains
  // here as explicit drops, so flushes and accounting never hang.
  StreamDrainResult d;
  while (stream_->Drain(opts_.max_batch, &d)) {
    delta.ops_ingested += d.ops_popped;
    delta.ops_coalesced += d.ops_popped - d.batch.size();
    delta.ops_dropped += d.batch.size();
    last_ts = std::max(last_ts, d.through_ts);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    consumed_ts_ = std::max(consumed_ts_, last_ts);
  }
  if (delta.ops_ingested != 0 || delta.ops_dropped != 0) {
    engine_->MergeStreamStats(delta);
  }
  // The quarantine is resolved (by dropping); balance the engine's
  // quarantined-slice count so a torn-down slice stops flagging queries
  // as degraded. The sticky status stays kResourceExhausted for Stop().
  if (was_quarantined) engine_->SetSliceQuarantined(opts_.slice, false);
  redo_depth_gauge_->Set(0.0);
  consumed_cv_.notify_all();
}

Status StreamApplier::FlushAndWait() {
  const uint64_t target = stream_->last_assigned_ts();
  Status out;
  {
    std::unique_lock<std::mutex> lk(mu_);
    consumed_cv_.wait(
        lk, [&] { return consumed_ts_ >= target || quarantined_; });
    out = status_;
  }
  StreamStats delta;
  delta.flushes = 1;
  engine_->MergeStreamStats(delta);
  return out;
}

Status StreamApplier::Revive() {
  std::deque<RedoEntry> redo;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (reviving_) {
      return Status::ResourceExhausted("revive already in progress");
    }
    if (!quarantined_ || quit_) return status_;
    reviving_ = true;
    redo.swap(redo_);
  }

  // Replay on the calling thread; the applier stays parked (quarantined_
  // is still set), so slice commits never race.
  StreamStats delta;
  Status st;
  uint64_t replayed_ts = 0;
  while (!redo.empty()) {
    const RedoEntry& e = redo.front();
    size_t failed = 0, retries = 0;
    st = ApplyWithRetry(e.batch, e.through_ts, &failed, &retries);
    delta.apply_failures += failed;
    delta.retries += retries;
    if (!st.ok()) break;
    delta.ops_ingested += e.ops_popped;
    delta.ops_coalesced += e.ops_popped - e.batch.size();
    delta.ops_applied += e.batch.size();
    delta.applied_through_ts = std::max(delta.applied_through_ts,
                                        e.through_ts);
    delta.RecordBatch(e.batch.size(), 0.0);
    replayed_ts = std::max(replayed_ts, e.through_ts);
    redo.pop_front();
  }

  bool healthy;
  Status out;
  size_t redo_depth;
  {
    std::lock_guard<std::mutex> lk(mu_);
    consumed_ts_ = std::max(consumed_ts_, replayed_ts);
    if (redo.empty()) {
      quarantined_ = false;
      status_ = Status::OK();
      delta.revives = 1;
    } else {
      // Nothing enqueues into redo_ while quarantined (the applier is
      // parked), so the swap-back preserves FIFO replay order.
      redo_.swap(redo);
      status_ = Status::ResourceExhausted(
          "stream slice " + std::to_string(opts_.slice) +
          " quarantined: " + st.ToString());
    }
    healthy = !quarantined_;
    out = status_;
    redo_depth = redo_.size();
    reviving_ = false;
  }
  redo_depth_gauge_->Set(static_cast<double>(redo_depth));
  if (healthy) engine_->SetSliceQuarantined(opts_.slice, false);
  engine_->MergeStreamStats(delta);
  state_cv_.notify_all();
  consumed_cv_.notify_all();
  return healthy ? Status::OK() : out;
}

Status StreamApplier::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    quit_ = true;
  }
  state_cv_.notify_all();
  stream_->Close();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return status_;
    stopped_ = true;
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

Status StreamApplier::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

bool StreamApplier::quarantined() const {
  std::lock_guard<std::mutex> lk(mu_);
  return quarantined_;
}

size_t StreamApplier::redo_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return redo_.size();
}

uint64_t StreamApplier::consumed_through_ts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return consumed_ts_;
}

}  // namespace gpmv
