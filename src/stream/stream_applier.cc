#include "stream/stream_applier.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"

namespace gpmv {

StreamApplier::StreamApplier(QueryEngine* engine, UpdateStream* stream,
                             StreamApplierOptions opts)
    : engine_(engine), stream_(stream), opts_(opts) {
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  queue_depth_gauge_ =
      engine_->metrics()->FindOrCreateGauge("stream.queue_depth");
  thread_ = std::thread([this] { ApplierLoop(); });
}

StreamApplier::~StreamApplier() { (void)Stop(); }

void StreamApplier::ApplierLoop() {
  size_t cap = opts_.max_batch;
  StreamDrainResult d;
  while (stream_->Drain(cap, &d)) {
    bool healthy;
    {
      std::lock_guard<std::mutex> lk(mu_);
      healthy = status_.ok();
    }

    StreamStats delta;
    delta.ops_ingested = d.ops_popped;
    delta.ops_coalesced = d.ops_popped - d.batch.size();
    // The enqueue-side high-water mark is itself monotone, so reading it
    // into each per-batch delta keeps EngineStats.stream's gauge fresh
    // without a second merge point.
    delta.max_queue_depth = stream_->max_depth();

    Status st;
    double apply_ms = 0.0;
    if (healthy) {
      Stopwatch sw;
      st = opts_.use_slice_commit
               ? engine_->ApplyStreamBatchSlice(d.batch, d.through_ts,
                                                opts_.slice)
               : engine_->ApplyStreamBatch(d.batch, d.through_ts);
      apply_ms = sw.ElapsedMillis();
    }
    if (healthy && st.ok()) {
      delta.ops_applied = d.batch.size();
      delta.applied_through_ts = d.through_ts;
      delta.RecordBatch(d.batch.size(), d.oldest_wait_ms + apply_ms);
    } else {
      // Sticky failure: this batch (and everything after it) is discarded;
      // the watermark still advances so flushes and producers never hang.
      delta.ops_dropped = d.batch.size() + delta.ops_coalesced;
      delta.ops_coalesced = 0;
      if (healthy) ++delta.apply_failures;
    }
    engine_->MergeStreamStats(delta);
    // Live depth, not a high-water mark: exporter snapshots between drains
    // see how far the applier is behind right now.
    queue_depth_gauge_->Set(static_cast<double>(d.depth_after));

    {
      std::lock_guard<std::mutex> lk(mu_);
      if (healthy && !st.ok()) status_ = st;
      consumed_ts_ = std::max(consumed_ts_, d.through_ts);
    }
    consumed_cv_.notify_all();
    if (opts_.on_batch_handled) opts_.on_batch_handled();

    if (healthy && st.ok() && opts_.max_lag_ms > 0.0) {
      // AIMD-flavored cap steering: a slow apply halves the next drain so
      // publish lag recovers; a fast one doubles it back toward max_batch
      // (larger batches amortize the freeze + maintenance sweep).
      if (apply_ms > opts_.max_lag_ms) {
        cap = std::max<size_t>(1, cap / 2);
      } else {
        cap = std::min(opts_.max_batch, cap * 2);
      }
    }
  }
}

Status StreamApplier::FlushAndWait() {
  const uint64_t target = stream_->last_assigned_ts();
  Status out;
  {
    std::unique_lock<std::mutex> lk(mu_);
    consumed_cv_.wait(lk, [&] { return consumed_ts_ >= target; });
    out = status_;
  }
  StreamStats delta;
  delta.flushes = 1;
  engine_->MergeStreamStats(delta);
  return out;
}

Status StreamApplier::Stop() {
  stream_->Close();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return status_;
    stopped_ = true;
  }
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

Status StreamApplier::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return status_;
}

uint64_t StreamApplier::consumed_through_ts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return consumed_ts_;
}

}  // namespace gpmv
