#include "stream/update_stream.h"

#include <unordered_map>
#include <utility>

namespace gpmv {

UpdateStream::UpdateStream(UpdateStreamOptions opts) : opts_(opts) {
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
}

uint64_t UpdateStream::Push(EdgeUpdate op) {
  std::unique_lock<std::mutex> lk(mu_);
  not_full_.wait(lk, [this] {
    return closed_ || queue_.size() < opts_.queue_capacity;
  });
  if (closed_) return 0;
  const uint64_t ts = next_ts_++;
  queue_.push_back(Element{op, ts, std::chrono::steady_clock::now()});
  ++ops_accepted_;
  max_depth_ = std::max(max_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return ts;
}

uint64_t UpdateStream::Push(EdgeUpdate op, double timeout_ms,
                            bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  std::unique_lock<std::mutex> lk(mu_);
  const bool ok = not_full_.wait_for(
      lk, std::chrono::duration<double, std::milli>(timeout_ms),
      [this] { return closed_ || queue_.size() < opts_.queue_capacity; });
  if (!ok) {
    if (timed_out != nullptr) *timed_out = true;
    return 0;
  }
  if (closed_) return 0;
  const uint64_t ts = next_ts_++;
  queue_.push_back(Element{op, ts, std::chrono::steady_clock::now()});
  ++ops_accepted_;
  max_depth_ = std::max(max_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return ts;
}

uint64_t UpdateStream::PushWithTs(EdgeUpdate op, uint64_t ts,
                                  PushError* err) {
  if (err != nullptr) *err = PushError::kNone;
  std::unique_lock<std::mutex> lk(mu_);
  // Validate the ticket before waiting for space: a stale ticket will be
  // rejected no matter how long we wait, so parking the producer on a full
  // queue first would stall it (potentially unboundedly, behind a
  // quarantined consumer) only to refuse the op anyway.
  if (closed_) {
    if (err != nullptr) *err = PushError::kClosed;
    return 0;
  }
  if (ts < next_ts_) {
    if (err != nullptr) *err = PushError::kStaleTicket;
    return 0;
  }
  not_full_.wait(lk, [this] {
    return closed_ || queue_.size() < opts_.queue_capacity;
  });
  if (closed_) {
    if (err != nullptr) *err = PushError::kClosed;
    return 0;
  }
  if (ts < next_ts_) {
    // Another producer slipped a higher ticket in while we waited — only
    // possible for callers that don't serialize per-stream, but report it
    // faithfully rather than folding it into kClosed.
    if (err != nullptr) *err = PushError::kStaleTicket;
    return 0;
  }
  next_ts_ = ts + 1;
  queue_.push_back(Element{op, ts, std::chrono::steady_clock::now()});
  ++ops_accepted_;
  max_depth_ = std::max(max_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return ts;
}

uint64_t UpdateStream::PushWithTs(EdgeUpdate op, uint64_t ts,
                                  double timeout_ms, bool* timed_out,
                                  PushError* err) {
  if (timed_out != nullptr) *timed_out = false;
  if (err != nullptr) *err = PushError::kNone;
  std::unique_lock<std::mutex> lk(mu_);
  // Stale-ticket / closed fast paths before burning any of the deadline
  // (see the blocking overload).
  if (closed_) {
    if (err != nullptr) *err = PushError::kClosed;
    return 0;
  }
  if (ts < next_ts_) {
    if (err != nullptr) *err = PushError::kStaleTicket;
    return 0;
  }
  const bool ok = not_full_.wait_for(
      lk, std::chrono::duration<double, std::milli>(timeout_ms),
      [this] { return closed_ || queue_.size() < opts_.queue_capacity; });
  if (!ok) {
    if (timed_out != nullptr) *timed_out = true;
    if (err != nullptr) *err = PushError::kTimeout;
    return 0;
  }
  if (closed_) {
    if (err != nullptr) *err = PushError::kClosed;
    return 0;
  }
  if (ts < next_ts_) {
    if (err != nullptr) *err = PushError::kStaleTicket;
    return 0;
  }
  next_ts_ = ts + 1;
  queue_.push_back(Element{op, ts, std::chrono::steady_clock::now()});
  ++ops_accepted_;
  max_depth_ = std::max(max_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return ts;
}

uint64_t UpdateStream::TryPush(EdgeUpdate op, bool* full) {
  std::unique_lock<std::mutex> lk(mu_);
  if (full != nullptr) *full = false;
  if (closed_) return 0;
  if (queue_.size() >= opts_.queue_capacity) {
    if (full != nullptr) *full = true;
    return 0;
  }
  const uint64_t ts = next_ts_++;
  queue_.push_back(Element{op, ts, std::chrono::steady_clock::now()});
  ++ops_accepted_;
  max_depth_ = std::max(max_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return ts;
}

uint64_t UpdateStream::TryPushWithTs(EdgeUpdate op, uint64_t ts,
                                     PushError* err) {
  if (err != nullptr) *err = PushError::kNone;
  std::unique_lock<std::mutex> lk(mu_);
  if (closed_) {
    if (err != nullptr) *err = PushError::kClosed;
    return 0;
  }
  if (ts < next_ts_) {
    if (err != nullptr) *err = PushError::kStaleTicket;
    return 0;
  }
  if (queue_.size() >= opts_.queue_capacity) {
    if (err != nullptr) *err = PushError::kWouldBlock;
    return 0;
  }
  next_ts_ = ts + 1;
  queue_.push_back(Element{op, ts, std::chrono::steady_clock::now()});
  ++ops_accepted_;
  max_depth_ = std::max(max_depth_, queue_.size());
  lk.unlock();
  not_empty_.notify_one();
  return ts;
}

void UpdateStream::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return;
    closed_ = true;
  }
  // Blocked producers fail their Push; a blocked consumer wakes to drain
  // the remainder (and to observe closed-and-empty).
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool UpdateStream::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

bool UpdateStream::Drain(size_t max_ops, StreamDrainResult* out) {
  out->batch.clear();
  out->through_ts = 0;
  out->ops_popped = 0;
  out->depth_after = 0;
  out->oldest_wait_ms = 0.0;
  std::vector<EdgeUpdate> raw;
  {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // closed and drained: consumer done
    const auto now = std::chrono::steady_clock::now();
    out->oldest_wait_ms =
        std::chrono::duration<double, std::milli>(now -
                                                  queue_.front().enqueued_at)
            .count();
    const size_t n = std::min(std::max<size_t>(1, max_ops), queue_.size());
    raw.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      raw.push_back(queue_.front().op);
      out->through_ts = queue_.front().ts;
      queue_.pop_front();
    }
    out->ops_popped = n;
    out->depth_after = queue_.size();
  }
  not_full_.notify_all();
  out->batch = Coalesce(raw);
  return true;
}

uint64_t UpdateStream::last_assigned_ts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_ts_ - 1;
}

size_t UpdateStream::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

size_t UpdateStream::ops_accepted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ops_accepted_;
}

size_t UpdateStream::max_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_depth_;
}

std::vector<EdgeUpdate> UpdateStream::Coalesce(
    const std::vector<EdgeUpdate>& ops) {
  std::vector<EdgeUpdate> out;
  out.reserve(ops.size());
  // Edge -> index of its (unique) surviving op in `out`; a later op on the
  // same edge overwrites in place, so `out` keeps first-occurrence order
  // with last-occurrence kinds. Key packs (u, v) into 64 bits.
  std::unordered_map<uint64_t, size_t> last;
  last.reserve(ops.size());
  for (const EdgeUpdate& op : ops) {
    const uint64_t key =
        (static_cast<uint64_t>(op.u) << 32) | static_cast<uint64_t>(op.v);
    auto [it, inserted] = last.emplace(key, out.size());
    if (inserted) {
      out.push_back(op);
    } else {
      out[it->second] = op;
    }
  }
  return out;
}

}  // namespace gpmv
