/// \file stream_stats.h
/// \brief Observability counters for the streaming-update subsystem
/// (stream/update_stream.h + stream/stream_applier.h), aggregated into
/// `EngineStats::stream` by the engine.
///
/// This header is deliberately dependency-free (engine/query_engine.h
/// includes it to embed the struct in EngineStats, and the stream layer
/// includes query_engine.h — keeping the stats type here breaks what would
/// otherwise be a header cycle).
///
/// Threading: a StreamStats value is always built privately (per drained
/// micro-batch, by the applier thread) and merged into a shared aggregate
/// under a lock (`UpdateStream`'s queue mutex for the enqueue-side gauges,
/// the engine's counter mutex for `EngineStats::stream`). The struct itself
/// is plain data and not atomic — the *merge points* are what the
/// concurrency layer guards, and the TSan suite (tests/stream_test.cc,
/// tests/engine_concurrency_test.cc) regression-tests exactly that: a
/// `stats()` reader racing the applier must never see a torn batch (the
/// per-batch delta is merged as one unit, so cross-counter invariants like
/// ops_ingested == ops_applied + ops_coalesced + ops_dropped hold in every
/// observed snapshot).

#ifndef GPMV_STREAM_STREAM_STATS_H_
#define GPMV_STREAM_STREAM_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace gpmv {

/// Power-of-two micro-batch size histogram buckets: bucket b counts batches
/// with size in [2^b, 2^(b+1)); the last bucket absorbs everything larger.
constexpr size_t kStreamBatchBuckets = 12;

/// Streaming ingestion counters. Totals are monotone; *_max fields are
/// high-water marks; applied_through_ts is the newest stream timestamp
/// whose op is reflected in a published snapshot.
struct StreamStats {
  size_t ops_ingested = 0;   ///< ops the applier popped off the queue
  size_t ops_applied = 0;    ///< ops forwarded to ApplyStreamBatch (post-coalesce)
  size_t ops_coalesced = 0;  ///< ops eliminated by per-edge last-op-wins
  size_t ops_dropped = 0;  ///< ops discarded by Stop() on a quarantined
                           ///< slice (quarantine itself retains, never drops)
  size_t batches_applied = 0;   ///< micro-batches pushed through the engine
  size_t apply_failures = 0;    ///< ApplyStreamBatch calls that failed
  size_t retries = 0;      ///< failed-batch re-apply attempts (post-backoff)
  size_t quarantines = 0;  ///< slices that exhausted retries (redo retained)
  size_t revives = 0;      ///< successful ReviveSlice redo replays
  size_t flushes = 0;           ///< FlushAndWait quiesce calls served
  size_t max_queue_depth = 0;   ///< enqueue-side high-water mark
  size_t max_batch_size = 0;    ///< largest micro-batch applied
  /// batch_size_hist[b] counts applied micro-batches of size in
  /// [2^b, 2^(b+1)) (last bucket open-ended).
  size_t batch_size_hist[kStreamBatchBuckets] = {};
  /// Publish lag of a batch: queue wait of its oldest op + its apply time
  /// (enqueue -> visible-to-queries). avg = total / batches_applied.
  double publish_lag_ms_max = 0.0;
  double publish_lag_ms_total = 0.0;
  /// Newest stream timestamp included in a published snapshot (0 = none).
  uint64_t applied_through_ts = 0;

  static size_t BatchBucket(size_t batch_size) {
    size_t b = 0;
    while (batch_size > 1 && b + 1 < kStreamBatchBuckets) {
      batch_size >>= 1;
      ++b;
    }
    return b;
  }

  void RecordBatch(size_t batch_size, double publish_lag_ms) {
    ++batches_applied;
    max_batch_size = std::max(max_batch_size, batch_size);
    ++batch_size_hist[BatchBucket(batch_size)];
    publish_lag_ms_total += publish_lag_ms;
    publish_lag_ms_max = std::max(publish_lag_ms_max, publish_lag_ms);
  }

  void Merge(const StreamStats& o) {
    ops_ingested += o.ops_ingested;
    ops_applied += o.ops_applied;
    ops_coalesced += o.ops_coalesced;
    ops_dropped += o.ops_dropped;
    batches_applied += o.batches_applied;
    apply_failures += o.apply_failures;
    retries += o.retries;
    quarantines += o.quarantines;
    revives += o.revives;
    flushes += o.flushes;
    max_queue_depth = std::max(max_queue_depth, o.max_queue_depth);
    max_batch_size = std::max(max_batch_size, o.max_batch_size);
    for (size_t b = 0; b < kStreamBatchBuckets; ++b) {
      batch_size_hist[b] += o.batch_size_hist[b];
    }
    publish_lag_ms_max = std::max(publish_lag_ms_max, o.publish_lag_ms_max);
    publish_lag_ms_total += o.publish_lag_ms_total;
    applied_through_ts = std::max(applied_through_ts, o.applied_through_ts);
  }
};

}  // namespace gpmv

#endif  // GPMV_STREAM_STREAM_STATS_H_
