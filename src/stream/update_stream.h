/// \file update_stream.h
/// \brief Streaming-update ingestion front-end: a bounded multi-producer /
/// single-consumer queue of timestamped edge operations, drained by the
/// background StreamApplier (stream/stream_applier.h) into adaptive
/// micro-batches.
///
/// Ordering contract — the stream's observable semantics are *sequential*:
/// the final graph equals the one obtained by applying every accepted op in
/// timestamp (enqueue) order, one at a time. Edge inserts/deletes on
/// distinct edges commute and edge presence is a per-edge property, so this
/// is equivalently "for every edge, the op with the highest timestamp
/// wins". The drain path exploits exactly that: a drained micro-batch is
/// *coalesced* per edge (only the last op on each (u, v) survives), which
/// both shrinks the batch and makes the engine's batch set-semantics
/// (deletions applied before insertions — see QueryEngine::ApplyUpdates)
/// coincide with sequential order, since a coalesced batch carries at most
/// one op per edge. Note the consequence for equivalence oracles: a stream
/// containing *contradicting* ops on one edge (insert then delete, or vice
/// versa) matches the single-batch oracle only after the same last-op-wins
/// canonicalization — applying the raw op list as one set-semantics batch
/// would resurrect a deleted edge. tests/stream_equivalence_test.cc pins
/// both formulations.
///
/// Timestamps are dense 1-based sequence numbers assigned under the queue
/// mutex at Push; they double as the bounded-staleness watermark
/// ("applied-through") that the applier stamps onto published snapshots.
///
/// Concurrency: any number of producer threads may Push concurrently
/// (blocking while the queue is at capacity — backpressure, like the
/// executor's bounded task queue); exactly one consumer drains. Close()
/// makes further Push calls fail and lets the consumer drain the remainder;
/// Drain returns false only once the stream is closed *and* empty.

#ifndef GPMV_STREAM_UPDATE_STREAM_H_
#define GPMV_STREAM_UPDATE_STREAM_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/query_engine.h"
#include "stream/stream_stats.h"

namespace gpmv {

/// Queue sizing knobs.
struct UpdateStreamOptions {
  /// Maximum enqueued (not yet drained) ops before Push blocks.
  size_t queue_capacity = 4096;
};

/// One accepted edge op with its assigned stream timestamp.
struct TimestampedUpdate {
  EdgeUpdate op;
  uint64_t ts = 0;
};

/// Why a Push/PushWithTs/TryPush returned 0. The blocking overloads can
/// only report kClosed/kStaleTicket; the deadline overloads add kTimeout;
/// the Try overloads add kWouldBlock.
enum class PushError {
  kNone = 0,      ///< accepted
  kClosed,        ///< stream was closed
  kStaleTicket,   ///< PushWithTs ts not above every ts this stream has seen
  kTimeout,       ///< deadline elapsed while the queue stayed full
  kWouldBlock,    ///< TryPush with the queue at capacity
};

/// Result of one Drain call; `batch` is already coalesced (at most one op
/// per edge, each edge's last-enqueued op).
struct StreamDrainResult {
  std::vector<EdgeUpdate> batch;
  uint64_t through_ts = 0;     ///< highest timestamp popped (pre-coalesce)
  size_t ops_popped = 0;       ///< queue elements consumed (pre-coalesce)
  size_t depth_after = 0;      ///< queue depth left behind
  double oldest_wait_ms = 0.0; ///< queue wait of the oldest popped op
};

/// See file comment.
class UpdateStream {
 public:
  explicit UpdateStream(UpdateStreamOptions opts = {});

  UpdateStream(const UpdateStream&) = delete;
  UpdateStream& operator=(const UpdateStream&) = delete;

  /// Enqueues `op`, blocking while the queue is at capacity. Returns the
  /// assigned (1-based, strictly increasing) timestamp, or 0 if the stream
  /// was closed.
  uint64_t Push(EdgeUpdate op);

  /// Deadline-bounded Push: waits at most `timeout_ms` for queue space.
  /// Returns 0 on close *or* timeout; `*timed_out` (when non-null)
  /// distinguishes the two. The escape hatch for producers backpressured
  /// by a consumer that stopped draining (a quarantined slice applier) —
  /// they surface kDeadlineExceeded instead of blocking forever.
  uint64_t Push(EdgeUpdate op, double timeout_ms, bool* timed_out);

  /// Enqueues `op` with an *externally assigned* timestamp — the
  /// ApplierPool's routing path, where one global ticket source spans K
  /// per-slice streams and each stream sees a strictly increasing
  /// subsequence of it. `ts` must exceed every timestamp this stream has
  /// seen; returns `ts` on success and 0 when closed or out of order, with
  /// `*err` (when non-null) naming the reason. Ticket order is validated
  /// *before* waiting for queue space — a stale ticket is rejected
  /// immediately rather than parking the producer on a full queue only to
  /// be refused once space frees up. Blocks at capacity like Push.
  uint64_t PushWithTs(EdgeUpdate op, uint64_t ts, PushError* err = nullptr);

  /// Deadline-bounded PushWithTs (see the deadline-bounded Push): returns
  /// 0 on close, out-of-order ts, or timeout. `*err` (when non-null)
  /// distinguishes all three (kClosed / kStaleTicket / kTimeout);
  /// `*timed_out` is kept for callers that only care about the timeout
  /// bit. Like the blocking overload, a stale ticket fails fast without
  /// consuming any of the deadline.
  uint64_t PushWithTs(EdgeUpdate op, uint64_t ts, double timeout_ms,
                      bool* timed_out, PushError* err = nullptr);

  /// Non-blocking Push: fails (returns 0) when the queue is full or the
  /// stream is closed; `*full` distinguishes the two when non-null.
  uint64_t TryPush(EdgeUpdate op, bool* full = nullptr);

  /// Non-blocking PushWithTs: never waits for queue space. Returns `ts`
  /// on success, else 0 with `*err` set to kClosed, kStaleTicket, or
  /// kWouldBlock. The net server's admission path — it parks the op
  /// per-connection instead of blocking its event loop.
  uint64_t TryPushWithTs(EdgeUpdate op, uint64_t ts,
                         PushError* err = nullptr);

  /// Stops accepting ops (Push returns 0 from now on) and wakes a blocked
  /// Drain so the consumer can finish the remainder. Idempotent.
  void Close();

  bool closed() const;

  /// Consumer side (single-threaded): blocks until at least one op is
  /// queued or the stream is closed; pops up to `max_ops` ops, coalesces
  /// them per edge (last op wins), and fills `*out`. Returns false — with
  /// an empty `out->batch` — only when the stream is closed and empty.
  bool Drain(size_t max_ops, StreamDrainResult* out);

  /// Last timestamp assigned by Push (0 before the first op): the quiesce
  /// watermark FlushAndWait targets.
  uint64_t last_assigned_ts() const;

  size_t depth() const;

  /// Configured queue capacity (constant after construction).
  size_t capacity() const { return opts_.queue_capacity; }

  /// Enqueue-side counters: ops accepted so far and the depth high-water
  /// mark (the applier folds these into its per-batch deltas).
  size_t ops_accepted() const;
  size_t max_depth() const;

  /// Last-op-wins canonicalization, exposed for oracles and the applier
  /// alike: keeps, for every (u, v), only the op appearing last in `ops`.
  /// The result carries at most one op per edge, so applying it as a single
  /// set-semantics batch reproduces the sequential application of `ops`.
  static std::vector<EdgeUpdate> Coalesce(const std::vector<EdgeUpdate>& ops);

 private:
  struct Element {
    EdgeUpdate op;
    uint64_t ts;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  UpdateStreamOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Element> queue_;
  uint64_t next_ts_ = 1;
  size_t ops_accepted_ = 0;
  size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace gpmv

#endif  // GPMV_STREAM_UPDATE_STREAM_H_
