/// \file applier_pool.h
/// \brief N concurrent stream appliers over disjoint slice sets: the
/// multi-applier front half of the MVCC snapshot chain (graph/mvcc.h,
/// QueryEngine::ApplyStreamBatchSlice).
///
/// Topology: one pool owns K = `num_appliers` (UpdateStream, StreamApplier)
/// pairs — slice i's applier drains slice i's stream and commits through
/// the engine's slice-aware path. Ops route by edge:
/// `SliceOf(u, v) = hash(u, v) % K`, so *every op on one edge lands in one
/// slice* — per-edge last-op-wins coalescing and per-slice FIFO order then
/// reproduce sequential semantics exactly, while ops on different edges
/// commute across slices (the stream's ordering contract already only
/// promises per-edge order). Appliers drain, coalesce and validate
/// concurrently; their commits serialize only at the engine's chain head.
///
/// Timestamps: one *global* ticket source spans all K streams — Push grabs
/// a ticket under the pool mutex, then enqueues under a *per-slice* routing
/// mutex, so each slice stream sees a strictly increasing subsequence. The
/// pool mutex is never held across the (blocking, backpressured) enqueue:
/// the applier threads refresh the watermark under it after every batch, so
/// a producer parked on a full slice queue holding it would deadlock the
/// very drain that frees the queue. Ticket density is what makes the
/// min-over-slices watermark meaningful: once the ticket source passed T,
/// no op with ts <= T can appear anywhere (a ticket burned by a raced Stop
/// leaves a gap, but only post-stop, where it merely keeps the watermark
/// conservative). On an engine with prior streamed history the ticket
/// source resumes from the published watermark instead of 1, matching the
/// slice-clock seeding in QueryEngine::ConfigureStreamSlices — stale
/// watermarks must not satisfy read-your-writes waits for new tickets.
///
/// Watermark liveness (the stalled/idle-slice problem): the engine derives
/// applied_through_ts as the minimum over slice clocks, so a slice that
/// simply never receives ops would pin the watermark forever. After every
/// handled batch the pool refreshes: any slice whose applier has consumed
/// everything ever routed to it is *provably quiet* through the global
/// last-assigned ts (tickets bump the slice's routed tail under the pool
/// mutex before the op is enqueued, so a mid-flight op is already visible
/// in that tail) and its clock heartbeats forward
/// (QueryEngine::AdvanceStreamSlice). A slice with a pending op keeps its
/// clock — and therefore the global watermark — exactly at its last
/// applied ts: a lagging applier can never publish a hole. A *quarantined*
/// applier (retries exhausted — see stream_applier.h) is never heartbeated:
/// its failed batch is retained in the redo log, not applied, so its slice
/// clock pins the watermark at its last successful apply — FlushAndWait
/// then returns the quarantine status (kResourceExhausted) with the
/// watermark still short of the global ts, and producers routing to that
/// slice feel queue backpressure (Push blocks; PushWithDeadline fast-fails
/// kResourceExhausted). ReviveSlice replays the slice's redo log and, on
/// success, lets the next refresh heartbeat the slice clock back up to the
/// global ts — the watermark reintegrates without holes because nothing
/// was ever skipped.
///
/// Quiesce/teardown mirror the single-applier contract: FlushAndWait
/// flushes every applier then refreshes the watermark to the global ts;
/// Stop closes all streams, joins all threads, returns the first sticky
/// failure (a quarantined slice's retained ops are discarded by its
/// applier's Stop as explicit ops_dropped — the only drop path).

#ifndef GPMV_STREAM_APPLIER_POOL_H_
#define GPMV_STREAM_APPLIER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "engine/query_engine.h"
#include "stream/stream_applier.h"
#include "stream/update_stream.h"

namespace gpmv {

struct ApplierPoolOptions {
  /// Concurrent appliers / stream slices (clamped to >= 1).
  size_t num_appliers = 2;
  /// Per-applier micro-batching knobs (slice / use_slice_commit /
  /// on_batch_handled are overwritten by the pool).
  StreamApplierOptions applier;
  /// Per-slice queue sizing.
  UpdateStreamOptions stream;
};

/// See file comment.
class ApplierPool {
 public:
  /// Configures the engine's slice topology and starts all K applier
  /// threads. `engine` must outlive this object (or its Stop()).
  ApplierPool(QueryEngine* engine, ApplierPoolOptions opts = {});
  ~ApplierPool();

  ApplierPool(const ApplierPool&) = delete;
  ApplierPool& operator=(const ApplierPool&) = delete;

  /// Routes `op` to its edge's slice with the next global timestamp.
  /// Blocks while that slice's queue is at capacity (backpressure holds
  /// only that slice's routing mutex — producers for other slices and the
  /// appliers' watermark refresh keep running; per-slice FIFO of the
  /// global ticket order is preserved). Returns the assigned ts, 0 once
  /// stopped.
  uint64_t Push(EdgeUpdate op);

  /// Deadline-bounded Push. Fast-fails kResourceExhausted (assigning no
  /// ticket) when the target slice is quarantined — its consumer is parked,
  /// so waiting on its full queue would only time out anyway — and returns
  /// kDeadlineExceeded when the slice queue stays full past `timeout_ms`.
  /// On success stores the assigned ts through `*ts` (when non-null).
  Status PushWithDeadline(EdgeUpdate op, double timeout_ms,
                          uint64_t* ts = nullptr);

  /// Outcome of the non-blocking TryPush admission path.
  enum class TryPushResult {
    kOk = 0,       ///< accepted; `*ts_out` holds the assigned ts
    kWouldBlock,   ///< slice queue at capacity; no ticket was assigned
    kQuarantined,  ///< slice applier quarantined; retry after ReviveSlice
    kStopped,      ///< pool stopped
  };

  /// Non-blocking Push — the net server's admission path, which must never
  /// block its event-loop thread. The target slice's queue depth is probed
  /// under the slice routing mutex *before* a ticket is assigned, so a
  /// kWouldBlock outcome burns nothing: the caller parks the op and retries
  /// it later without marching the global ticket source (and with it every
  /// watermark target) forward on each attempt.
  TryPushResult TryPush(EdgeUpdate op, uint64_t* ts_out = nullptr);

  /// Blocks until every op pushed before the call is applied-and-published
  /// or retained behind a quarantine, then heartbeats every quiet slice so
  /// the published watermark reaches the global last-assigned ts. Returns
  /// the first applier's quarantine status (OK while all healthy).
  Status FlushAndWait();

  /// Replays slice `i`'s quarantined redo log from the calling thread
  /// (StreamApplier::Revive) and refreshes the watermark so the healed
  /// slice clock catches back up. OK and a no-op on a healthy slice.
  Status ReviveSlice(size_t i);

  /// True while slice `i`'s applier is quarantined (redo retained, thread
  /// parked). Non-blocking.
  bool slice_quarantined(size_t i) const;

  /// Closes every stream, drains remainders, joins all applier threads.
  /// Idempotent; returns the first sticky failure.
  Status Stop();

  size_t num_appliers() const { return appliers_.size(); }
  /// Last globally assigned stream timestamp. Before the first Push this
  /// is the engine watermark the ticket source resumed from (0 on a
  /// fresh engine).
  uint64_t last_assigned_ts() const;
  /// Total ops routed to slice `i` so far.
  uint64_t ops_routed(size_t i) const;

  /// The routing function, exposed for tests and oracles: every op on edge
  /// (u, v) maps to the same slice, so per-slice FIFO preserves per-edge
  /// order.
  static size_t SliceOf(NodeId u, NodeId v, size_t k);

 private:
  /// Heartbeat pass (see file comment): advances the clock of every slice
  /// that has consumed everything ever routed to it.
  void RefreshWatermark();

  QueryEngine* engine_;
  ApplierPoolOptions opts_;

  mutable std::mutex mu_;  ///< routing: ticket source + per-slice tails
  /// Per-slice enqueue sequencing (see Push): acquired *before* mu_ and
  /// held across the blocking enqueue, which mu_ never is. Lock order:
  /// route_mu_[s] -> mu_; RefreshWatermark takes only mu_.
  std::unique_ptr<std::mutex[]> route_mu_;
  uint64_t next_ts_ = 1;  ///< re-seeded from the engine watermark + 1
  std::vector<uint64_t> last_routed_;  ///< last ts routed to each slice
  std::vector<uint64_t> routed_count_;
  bool stopped_ = false;

  /// Slice i's queue and its applier; appliers after streams so applier
  /// threads (which touch the streams) are joined first on destruction.
  std::vector<std::unique_ptr<UpdateStream>> streams_;
  std::vector<std::unique_ptr<StreamApplier>> appliers_;
};

}  // namespace gpmv

#endif  // GPMV_STREAM_APPLIER_POOL_H_
