#include "workload/graph_gen.h"

#include <cmath>

#include "common/random.h"

namespace gpmv {

std::vector<std::string> SyntheticLabels(size_t num_labels) {
  std::vector<std::string> labels;
  labels.reserve(num_labels);
  for (size_t i = 0; i < num_labels; ++i) {
    labels.push_back("L" + std::to_string(i));
  }
  return labels;
}

namespace {

Graph GenerateLabeledGraph(size_t num_nodes, size_t num_edges,
                           size_t num_labels, double label_skew,
                           uint64_t seed) {
  Rng rng(seed);
  Graph g;
  const std::vector<std::string> labels = SyntheticLabels(num_labels);
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t label = label_skew > 0.0
                       ? static_cast<size_t>(rng.NextZipf(num_labels, label_skew))
                       : static_cast<size_t>(rng.NextBounded(num_labels));
    g.AddNode(labels[label]);
  }
  if (num_nodes < 2) return g;
  // Cap at the number of possible distinct non-self edges.
  const double max_edges =
      static_cast<double>(num_nodes) * static_cast<double>(num_nodes - 1);
  if (static_cast<double>(num_edges) > 0.5 * max_edges) {
    num_edges = static_cast<size_t>(0.5 * max_edges);
  }
  size_t added = 0;
  while (added < num_edges) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    if (g.AddEdgeIfAbsent(u, v)) ++added;
  }
  return g;
}

}  // namespace

Graph GenerateRandomGraph(const RandomGraphOptions& opts) {
  return GenerateLabeledGraph(opts.num_nodes, opts.num_edges, opts.num_labels,
                              opts.label_skew, opts.seed);
}

Graph GenerateDensificationGraph(size_t num_nodes, double alpha,
                                 size_t num_labels, uint64_t seed) {
  const size_t num_edges = static_cast<size_t>(
      std::pow(static_cast<double>(num_nodes), alpha));
  return GenerateLabeledGraph(num_nodes, num_edges, num_labels, 0.0, seed);
}

}  // namespace gpmv
