#include "workload/pattern_gen.h"

#include <algorithm>
#include <unordered_map>

#include "common/random.h"
#include "workload/graph_gen.h"

namespace gpmv {

namespace {

uint32_t DrawBound(Rng* rng, uint32_t max_bound, double star_prob) {
  if (star_prob > 0.0 && rng->NextBool(star_prob)) return kUnbounded;
  if (max_bound <= 1) return 1;
  return 1 + static_cast<uint32_t>(rng->NextBounded(max_bound));
}

}  // namespace

Pattern GenerateRandomPattern(const RandomPatternOptions& opts) {
  Rng rng(opts.seed);
  std::vector<std::string> pool =
      opts.label_pool.empty() ? SyntheticLabels(10) : opts.label_pool;

  const uint32_t n = std::max<uint32_t>(opts.num_nodes, 2);
  Pattern p;
  for (uint32_t i = 0; i < n; ++i) {
    const std::string& label = pool[rng.NextBounded(pool.size())];
    p.AddNode(label, Predicate(), label + "#" + std::to_string(i));
  }

  // Random arborescence keeps the pattern connected and isolation-free.
  for (uint32_t i = 1; i < n; ++i) {
    uint32_t j = static_cast<uint32_t>(rng.NextBounded(i));
    uint32_t bound = DrawBound(&rng, opts.max_bound, opts.star_prob);
    if (opts.dag_only || rng.NextBool(0.5)) {
      (void)p.AddEdge(j, i, bound);
    } else {
      (void)p.AddEdge(i, j, bound);
    }
  }

  const uint64_t max_extra =
      opts.dag_only ? static_cast<uint64_t>(n) * (n - 1) / 2
                    : static_cast<uint64_t>(n) * (n - 1);
  uint32_t target = std::max<uint32_t>(opts.num_edges, n - 1);
  target = static_cast<uint32_t>(
      std::min<uint64_t>(target, max_extra));
  size_t attempts = 0;
  while (p.num_edges() < target && attempts < 64ull * target + 256) {
    ++attempts;
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(n));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(n));
    if (u == v) continue;
    if (opts.dag_only && u > v) std::swap(u, v);
    uint32_t bound = DrawBound(&rng, opts.max_bound, opts.star_prob);
    (void)p.AddEdge(u, v, bound);  // AlreadyExists is fine — retry
  }
  return p;
}

namespace {

/// Builds one view covering the given query edges: copies of their endpoint
/// nodes (conditions preserved) and edges with slackened bounds.
Pattern ViewFromQueryEdges(const Pattern& q,
                           const std::vector<uint32_t>& edge_ids,
                           uint32_t bound_slack) {
  Pattern view;
  std::unordered_map<uint32_t, uint32_t> node_of;
  for (uint32_t e : edge_ids) {
    const PatternEdge& qe = q.edge(e);
    for (uint32_t u : {qe.src, qe.dst}) {
      if (node_of.count(u) == 0) {
        const PatternNode& pn = q.node(u);
        node_of[u] = view.AddNode(pn.label, pn.pred, pn.name);
      }
    }
    uint32_t bound = qe.bound == kUnbounded ? kUnbounded
                                            : qe.bound + bound_slack;
    (void)view.AddEdge(node_of[qe.src], node_of[qe.dst], bound);
  }
  return view;
}

}  // namespace

ViewSet GenerateCoveringViews(const Pattern& q,
                              const CoveringViewOptions& opts) {
  Rng rng(opts.seed);
  const uint32_t ne = static_cast<uint32_t>(q.num_edges());
  const uint32_t per = std::max<uint32_t>(opts.edges_per_view, 1);

  std::vector<ViewDefinition> defs;
  // Partition the query edges into contiguous chunks: the covering core.
  for (uint32_t start = 0; start < ne; start += per) {
    std::vector<uint32_t> chunk;
    for (uint32_t e = start; e < std::min(start + per, ne); ++e) {
      chunk.push_back(e);
    }
    defs.push_back(ViewDefinition{
        "cover" + std::to_string(defs.size()),
        ViewFromQueryEdges(q, chunk, opts.bound_slack)});
  }
  // Overlapping redundant views: random edge subsets.
  const uint32_t overlap_per =
      opts.overlap_edges > 0 ? opts.overlap_edges : per;
  for (uint32_t i = 0; i < opts.overlap_views; ++i) {
    std::vector<uint32_t> subset;
    for (uint32_t j = 0; j < overlap_per; ++j) {
      uint32_t e = static_cast<uint32_t>(rng.NextBounded(ne));
      if (std::find(subset.begin(), subset.end(), e) == subset.end()) {
        subset.push_back(e);
      }
    }
    std::sort(subset.begin(), subset.end());
    defs.push_back(ViewDefinition{
        "overlap" + std::to_string(i),
        ViewFromQueryEdges(q, subset, opts.bound_slack + 1)});
  }
  // Distractors: unrelated random views.
  std::vector<std::string> pool;
  for (uint32_t u = 0; u < q.num_nodes(); ++u) pool.push_back(q.node(u).label);
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  for (uint32_t i = 0; i < opts.num_distractors; ++i) {
    RandomPatternOptions ro;
    ro.num_nodes = 2 + static_cast<uint32_t>(rng.NextBounded(2));
    ro.num_edges = ro.num_nodes;
    ro.label_pool = pool;
    ro.max_bound = 2;
    ro.seed = opts.seed * 7919 + i;
    defs.push_back(
        ViewDefinition{"distractor" + std::to_string(i),
                       GenerateRandomPattern(ro)});
  }
  rng.Shuffle(&defs);

  ViewSet views;
  for (auto& def : defs) views.Add(std::move(def));
  return views;
}

ViewSet GenerateRandomViews(size_t count, const RandomPatternOptions& base,
                            uint64_t seed) {
  Rng rng(seed);
  ViewSet views;
  for (size_t i = 0; i < count; ++i) {
    RandomPatternOptions opts = base;
    opts.num_nodes =
        std::max<uint32_t>(2, base.num_nodes - 1 +
                                  static_cast<uint32_t>(rng.NextBounded(3)));
    opts.num_edges =
        std::max<uint32_t>(opts.num_nodes - 1,
                           base.num_edges - 1 +
                               static_cast<uint32_t>(rng.NextBounded(3)));
    opts.seed = seed * 104729 + i;
    views.Add("view" + std::to_string(i), GenerateRandomPattern(opts));
  }
  return views;
}

}  // namespace gpmv
