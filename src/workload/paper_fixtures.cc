#include "workload/paper_fixtures.h"

#include "pattern/pattern_builder.h"

namespace gpmv {

namespace {

NodeId FindByName(const Graph& g, const std::string& name) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const AttrValue* n = g.attrs(v).Get("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return v;
  }
  return kInvalidNode;
}

NodeId AddPerson(Graph* g, const std::string& name, const std::string& title) {
  AttributeSet attrs;
  attrs.Set("name", AttrValue(name));
  return g->AddNode(title, std::move(attrs));
}

}  // namespace

NodeId Fig1Fixture::node(const std::string& name) const {
  return FindByName(g, name);
}

Fig1Fixture MakeFig1() {
  Fig1Fixture f;
  // People of Fig. 1(a) with their job titles.
  NodeId walt = AddPerson(&f.g, "Walt", "PM");
  NodeId bob = AddPerson(&f.g, "Bob", "PM");
  NodeId mat = AddPerson(&f.g, "Mat", "DBA");
  NodeId fred = AddPerson(&f.g, "Fred", "DBA");
  NodeId mary = AddPerson(&f.g, "Mary", "DBA");
  NodeId dan = AddPerson(&f.g, "Dan", "PRG");
  NodeId pat = AddPerson(&f.g, "Pat", "PRG");
  NodeId bill = AddPerson(&f.g, "Bill", "PRG");
  NodeId emmy = AddPerson(&f.g, "Emmy", "ST");
  NodeId jean = AddPerson(&f.g, "Jean", "BA");
  // Collaboration edges (x, y): y worked well with x.
  for (auto [u, v] : std::initializer_list<std::pair<NodeId, NodeId>>{
           {bob, mat}, {walt, mat},                        // PM -> DBA
           {bob, dan}, {walt, bill},                       // PM -> PRG
           {fred, pat}, {mat, pat}, {mary, bill},          // DBA -> PRG
           {dan, fred}, {pat, mary}, {pat, mat}, {bill, mat},  // PRG -> DBA
           {walt, jean}, {dan, emmy}}) {                   // BA / ST fringe
    (void)f.g.AddEdge(u, v);
  }

  // Qs of Fig. 1(c): the collaboration cycle between DBAs and PRGs under a
  // project manager.
  f.qs = PatternBuilder()
             .Node("PM")
             .Node("DBA1", "DBA")
             .Node("PRG1", "PRG")
             .Node("DBA2", "DBA")
             .Node("PRG2", "PRG")
             .Edge("PM", "DBA1")
             .Edge("PM", "PRG2")
             .Edge("DBA1", "PRG1")
             .Edge("DBA2", "PRG2")
             .Edge("PRG1", "DBA2")
             .Edge("PRG2", "DBA1")
             .Build();

  // V1 (Fig. 1(b)): PM -> DBA (e1), PM -> PRG (e2).
  f.views.Add("V1", PatternBuilder()
                        .Node("PM")
                        .Node("DBA")
                        .Node("PRG")
                        .Edge("PM", "DBA")
                        .Edge("PM", "PRG")
                        .Build());
  // V2: DBA -> PRG (e3), PRG -> DBA (e4).
  f.views.Add("V2", PatternBuilder()
                        .Node("DBA")
                        .Node("PRG")
                        .Edge("DBA", "PRG")
                        .Edge("PRG", "DBA")
                        .Build());
  return f;
}

NodeId Fig3Fixture::node(const std::string& name) const {
  return FindByName(g, name);
}

Fig3Fixture MakeFig3() {
  Fig3Fixture f;
  NodeId pm1 = AddPerson(&f.g, "PM1", "PM");
  NodeId ai1 = AddPerson(&f.g, "AI1", "AI");
  NodeId ai2 = AddPerson(&f.g, "AI2", "AI");
  NodeId bio1 = AddPerson(&f.g, "Bio1", "Bio");
  NodeId db1 = AddPerson(&f.g, "DB1", "DB");
  NodeId db2 = AddPerson(&f.g, "DB2", "DB");
  NodeId se1 = AddPerson(&f.g, "SE1", "SE");
  NodeId se2 = AddPerson(&f.g, "SE2", "SE");
  for (auto [u, v] : std::initializer_list<std::pair<NodeId, NodeId>>{
           {ai2, bio1}, {pm1, ai2},              // V1(G): Se1, Se2
           {db1, ai2}, {db2, ai2},               // Se3
           {ai1, se1}, {ai2, se2},               // Se4
           {se1, db2}, {se2, db1}}) {            // Se5
    (void)f.g.AddEdge(u, v);
  }

  // Qs of Fig. 3(c).
  f.qs = PatternBuilder()
             .Node("PM")
             .Node("AI")
             .Node("Bio")
             .Node("DB")
             .Node("SE")
             .Edge("PM", "AI")
             .Edge("AI", "Bio")
             .Edge("DB", "AI")
             .Edge("AI", "SE")
             .Edge("SE", "DB")
             .Build();

  // V1: AI -> Bio (e1), PM -> AI (e2).
  f.views.Add("V1", PatternBuilder()
                        .Node("PM")
                        .Node("AI")
                        .Node("Bio")
                        .Edge("AI", "Bio")
                        .Edge("PM", "AI")
                        .Build());
  // V2: DB -> AI (e3), AI -> SE (e4), SE -> DB (e5).
  f.views.Add("V2", PatternBuilder()
                        .Node("DB")
                        .Node("AI")
                        .Node("SE")
                        .Edge("DB", "AI")
                        .Edge("AI", "SE")
                        .Edge("SE", "DB")
                        .Build());
  return f;
}

Fig4Fixture MakeFig4() {
  Fig4Fixture f;
  f.qs = PatternBuilder()
             .Node("A")
             .Node("B")
             .Node("C")
             .Node("D")
             .Node("E")
             .Edge("A", "B")
             .Edge("A", "C")
             .Edge("B", "D")
             .Edge("C", "D")
             .Edge("B", "E")
             .Build();

  f.views.Add("V1", PatternBuilder().Node("C").Node("D").Edge("C", "D").Build());
  f.views.Add("V2", PatternBuilder().Node("B").Node("E").Edge("B", "E").Build());
  f.views.Add("V3", PatternBuilder()
                        .Node("A").Node("B").Node("C")
                        .Edge("A", "B").Edge("A", "C")
                        .Build());
  f.views.Add("V4", PatternBuilder()
                        .Node("B").Node("C").Node("D")
                        .Edge("B", "D").Edge("C", "D")
                        .Build());
  f.views.Add("V5", PatternBuilder()
                        .Node("B").Node("D").Node("E")
                        .Edge("B", "D").Edge("B", "E")
                        .Build());
  f.views.Add("V6", PatternBuilder()
                        .Node("A").Node("B").Node("C").Node("D")
                        .Edge("A", "B").Edge("A", "C").Edge("C", "D")
                        .Build());
  f.views.Add("V7", PatternBuilder()
                        .Node("A").Node("B").Node("C").Node("D")
                        .Edge("A", "B").Edge("A", "C").Edge("B", "D")
                        .Build());
  return f;
}

Fig6Fixture MakeFig6() {
  Fig6Fixture f;
  // Qb: the Fig. 4 pattern with bounds fe(A,B)=2, fe(A,C)=3, fe(B,D)=3,
  // fe(C,D)=4, fe(B,E)=3.
  f.qb = PatternBuilder()
             .Node("A")
             .Node("B")
             .Node("C")
             .Node("D")
             .Node("E")
             .Edge("A", "B", 2)
             .Edge("A", "C", 3)
             .Edge("B", "D", 3)
             .Edge("C", "D", 4)
             .Edge("B", "E", 3)
             .Build();

  f.views.Add("V1",
              PatternBuilder().Node("C").Node("D").Edge("C", "D", 4).Build());
  f.views.Add("V2",
              PatternBuilder().Node("B").Node("E").Edge("B", "E", 3).Build());
  // V3: A ->(3) B ->(3) E; covers (A,B) and (B,E) only (Example 9).
  f.views.Add("V3", PatternBuilder()
                        .Node("A").Node("B").Node("E")
                        .Edge("A", "B", 3).Edge("B", "E", 3)
                        .Build());
  f.views.Add("V4", PatternBuilder()
                        .Node("B").Node("C").Node("D")
                        .Edge("B", "D", 3).Edge("C", "D", 4)
                        .Build());
  f.views.Add("V5", PatternBuilder()
                        .Node("B").Node("D").Node("E")
                        .Edge("B", "D", 3).Edge("B", "E", 3)
                        .Build());
  f.views.Add("V6", PatternBuilder()
                        .Node("A").Node("B").Node("C").Node("D")
                        .Edge("A", "B", 2).Edge("A", "C", 3).Edge("C", "D", 4)
                        .Build());
  // V7 carries C ->(2) D, but dist(C, D) in Qb is 4 > 2: M^Qb_V7 = ∅
  // (Example 9).
  f.views.Add("V7", PatternBuilder()
                        .Node("A").Node("B").Node("C").Node("D")
                        .Edge("A", "B", 2).Edge("A", "C", 3).Edge("C", "D", 2)
                        .Build());
  return f;
}

}  // namespace gpmv
