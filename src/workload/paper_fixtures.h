/// \file paper_fixtures.h
/// \brief The running examples of the paper, encoded exactly: the
/// recommendation network of Fig. 1, the project graph of Fig. 3, the
/// containment families of Fig. 4 (plain) and Fig. 6 (bounded).
///
/// Tests assert the published results on these fixtures (Examples 2-9);
/// examples/ uses Fig. 1 for the team-building walkthrough. The 12 YouTube
/// views of Fig. 7 live in workload/datasets.h (YoutubeViews).
///
/// Note on Fig. 6: the paper's figure is not fully legible in the source
/// text, so bounds were chosen to reproduce Example 9's claims verbatim
/// (M^Qb_V3 = {(A,B),(B,E)}; M^Qb_V7 = ∅ because dist(C,D) in Qb exceeds
/// V7's bound).

#ifndef GPMV_WORKLOAD_PAPER_FIXTURES_H_
#define GPMV_WORKLOAD_PAPER_FIXTURES_H_

#include "core/view.h"
#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Fig. 1: recommendation network G, views {V1, V2} and pattern Qs.
/// Node names (Bob, Walt, Mat, ...) are resolvable via NodeByName on the
/// patterns and via the `name` attribute on graph nodes.
struct Fig1Fixture {
  Graph g;
  Pattern qs;      ///< PM, DBA1, PRG1, DBA2, PRG2 with the collaboration cycle
  ViewSet views;   ///< V1: PM->{DBA, PRG}; V2: DBA<->PRG cycle
  NodeId node(const std::string& name) const;  ///< graph node by person name
};
Fig1Fixture MakeFig1();

/// Fig. 3: graph G, views {V1, V2} and pattern Qs over PM/AI/Bio/DB/SE.
struct Fig3Fixture {
  Graph g;
  Pattern qs;
  ViewSet views;
  NodeId node(const std::string& name) const;  ///< e.g. "AI2", "Bio1"
};
Fig3Fixture MakeFig3();

/// Fig. 4: pattern Qs over labels A..E and views V1..V7 (Examples 5-7).
struct Fig4Fixture {
  Pattern qs;
  ViewSet views;  ///< views()[i] is V_{i+1}
};
Fig4Fixture MakeFig4();

/// Fig. 6: bounded pattern Qb and bounded views V1..V7 (Example 9).
struct Fig6Fixture {
  Pattern qb;
  ViewSet views;
};
Fig6Fixture MakeFig6();

}  // namespace gpmv

#endif  // GPMV_WORKLOAD_PAPER_FIXTURES_H_
