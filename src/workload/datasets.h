/// \file datasets.h
/// \brief Synthetic stand-ins for the paper's real-life datasets
/// (Section VII: Amazon, Citation, YouTube) plus the per-dataset view sets
/// and query generators the benchmarks use.
///
/// We do not ship the SNAP/ArnetMiner/YouTube crawls; instead each generator
/// reproduces the schema and the structural properties the algorithms are
/// sensitive to — label alphabet and skew, degree, attribute distributions —
/// at a configurable scale (see DESIGN.md §4):
///
///  * Amazon — products labeled by group (Book, Music, ...), `rank`
///    attribute, co-purchase edges biased to the same group;
///  * Citation — papers labeled by research area, `year` attribute,
///    citation edges pointing to older papers, biased intra-area;
///  * YouTube — videos labeled by category with `A`ge, `R`ate, `V`isits,
///    `L`ength attributes, "related video" edges biased intra-category.
///
/// View sets mirror the paper's setup of 12 cached views per dataset whose
/// extensions are a few percent of the graph: selective predicate views
/// (top-ranked products, recent papers, highly-rated videos), with the
/// YouTube set following Fig. 7. Each dataset has a query generator that
/// only emits queries answerable from the dataset's views (the paper
/// likewise evaluates queries its cached views can answer).

#ifndef GPMV_WORKLOAD_DATASETS_H_
#define GPMV_WORKLOAD_DATASETS_H_

#include <cstdint>

#include "core/view.h"
#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpmv {

// ---------------------------------------------------------------- Amazon --

/// Co-purchasing network; ~3 out-edges per node.
Graph GenerateAmazonLike(size_t num_nodes, uint64_t seed);

/// 12 Amazon views with edge bounds `bound` (1 for Fig. 8(a), 2 for the
/// bounded runs of Fig. 8(i)).
ViewSet AmazonViews(uint32_t bound = 1);

/// Random query over the Amazon schema with `max_bound` on every edge;
/// guaranteed contained in AmazonViews(b) for any b >= max_bound.
Pattern GenerateAmazonQuery(uint32_t num_nodes, uint32_t num_edges,
                            uint32_t max_bound, uint64_t seed);

// -------------------------------------------------------------- Citation --

/// Citation network; edges cite older papers.
Graph GenerateCitationLike(size_t num_nodes, uint64_t seed);

/// 12 Citation views with edge bounds `bound` (3 for Fig. 8(j)).
ViewSet CitationViews(uint32_t bound = 1);

/// Random query over the Citation schema; contained in CitationViews(b)
/// for b >= max_bound.
Pattern GenerateCitationQuery(uint32_t num_nodes, uint32_t num_edges,
                              uint32_t max_bound, uint64_t seed);

// --------------------------------------------------------------- YouTube --

/// Recommendation network of videos; ~3 out-edges per node.
Graph GenerateYoutubeLike(size_t num_nodes, uint64_t seed);

/// The 12 predicate views of Fig. 7 (conditions on category, age, rate,
/// visits, length), with all edge bounds set to `bound`.
ViewSet YoutubeViews(uint32_t bound = 1);

/// Builds a query by gluing whole YouTube views together at nodes with
/// identical conditions until ~`target_edges` edges; every edge carries
/// bound `bound`. Contained in YoutubeViews(bound) by construction.
Pattern GenerateYoutubeQuery(uint32_t target_edges, uint32_t bound,
                             uint64_t seed);

}  // namespace gpmv

#endif  // GPMV_WORKLOAD_DATASETS_H_
