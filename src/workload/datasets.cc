#include "workload/datasets.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "common/random.h"
#include "pattern/pattern_builder.h"

namespace gpmv {

namespace {

/// Draws a connected random pattern over a label-pair schema: node labels
/// are chosen so that every edge's (src label, dst label) is in `schema`,
/// and every node carries `pred_of(label)`. Used by the Amazon and Citation
/// query generators; containment in the datasets' pair views follows from
/// label equality plus predicate implication.
using LabelPair = std::pair<std::string, std::string>;

Pattern SchemaPattern(const std::vector<LabelPair>& schema,
                      Predicate (*pred_of)(Rng*), uint32_t num_nodes,
                      uint32_t num_edges, uint32_t max_bound, uint64_t seed,
                      bool acyclic = false) {
  Rng rng(seed);
  Pattern p;
  std::vector<std::string> node_label;

  // DFS reachability used to keep acyclic patterns acyclic: a cyclic
  // pattern can never match an acyclic data graph (citations).
  auto has_path = [&p](uint32_t from, uint32_t to) {
    std::vector<uint32_t> stack{from};
    std::vector<char> seen(p.num_nodes(), 0);
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      if (v == to) return true;
      if (seen[v]) continue;
      seen[v] = 1;
      for (uint32_t e : p.out_edges(v)) stack.push_back(p.edge(e).dst);
    }
    return false;
  };

  auto add_node = [&](const std::string& label) {
    uint32_t id = p.AddNode(label, pred_of(&rng),
                            label + "#" + std::to_string(p.num_nodes()));
    node_label.push_back(label);
    return id;
  };
  auto draw_bound = [&]() -> uint32_t {
    return max_bound <= 1 ? 1
                          : 1 + static_cast<uint32_t>(rng.NextBounded(max_bound));
  };

  // Seed node from a random schema pair; grow a connected pattern.
  const LabelPair& first = schema[rng.NextBounded(schema.size())];
  add_node(first.first);
  while (p.num_nodes() < num_nodes) {
    // Attach a new node to a random existing node via a schema pair.
    uint32_t anchor = static_cast<uint32_t>(rng.NextBounded(p.num_nodes()));
    std::vector<std::pair<bool, std::string>> options;  // (outgoing?, label)
    for (const LabelPair& lp : schema) {
      if (lp.first == node_label[anchor]) options.emplace_back(true, lp.second);
      if (lp.second == node_label[anchor]) options.emplace_back(false, lp.first);
    }
    if (options.empty()) {
      // Anchor label has no schema pair (should not happen with the built-in
      // schemas); fall back to a fresh component seed.
      const LabelPair& lp = schema[rng.NextBounded(schema.size())];
      uint32_t a = add_node(lp.first);
      uint32_t b = add_node(lp.second);
      (void)p.AddEdge(a, b, draw_bound());
      continue;
    }
    auto [outgoing, label] = options[rng.NextBounded(options.size())];
    uint32_t fresh = add_node(label);
    if (outgoing) {
      (void)p.AddEdge(anchor, fresh, draw_bound());
    } else {
      (void)p.AddEdge(fresh, anchor, draw_bound());
    }
  }
  // Extra edges between existing nodes along schema pairs.
  size_t attempts = 0;
  while (p.num_edges() < num_edges && attempts < 64ull * num_edges + 256) {
    ++attempts;
    uint32_t u = static_cast<uint32_t>(rng.NextBounded(p.num_nodes()));
    uint32_t v = static_cast<uint32_t>(rng.NextBounded(p.num_nodes()));
    if (u == v) continue;
    bool allowed = false;
    for (const LabelPair& lp : schema) {
      if (lp.first == node_label[u] && lp.second == node_label[v]) {
        allowed = true;
        break;
      }
    }
    if (!allowed) continue;
    if (acyclic && has_path(v, u)) continue;
    (void)p.AddEdge(u, v, draw_bound());
  }
  return p;
}

/// 12 views = one single-edge view per schema pair (these guarantee
/// coverage of schema queries) topped up with small multi-edge views that
/// give minimal/minimum real choices.
ViewSet PairViews(const std::vector<LabelPair>& schema,
                  const Predicate& view_pred, uint32_t bound,
                  const std::vector<std::vector<LabelPair>>& composites) {
  ViewSet views;
  size_t i = 0;
  for (const LabelPair& lp : schema) {
    Pattern p;
    uint32_t a = p.AddNode(lp.first, view_pred, lp.first + "1");
    uint32_t b = p.AddNode(lp.second, view_pred, lp.second + "2");
    (void)p.AddEdge(a, b, bound);
    views.Add("pair" + std::to_string(i++), std::move(p));
  }
  for (const auto& chain : composites) {
    // Each composite is a label chain: pair j's source label equals pair
    // j-1's destination label.
    Pattern p;
    uint32_t prev = p.AddNode(chain[0].first, view_pred,
                              chain[0].first + "@0");
    for (size_t j = 0; j < chain.size(); ++j) {
      GPMV_DCHECK(j == 0 || chain[j].first == chain[j - 1].second);
      uint32_t next = p.AddNode(chain[j].second, view_pred,
                                chain[j].second + "@" + std::to_string(j + 1));
      (void)p.AddEdge(prev, next, bound);
      prev = next;
    }
    views.Add("chain" + std::to_string(i++), std::move(p));
  }
  return views;
}

// ---------------------------------------------------------------- Amazon --

const std::array<const char*, 8> kAmazonGroups = {
    "Book", "Music", "DVD", "Video", "Software", "Game", "Toy", "Electronics"};

const std::vector<LabelPair>& AmazonSchema() {
  static const std::vector<LabelPair> schema = {
      {"Book", "Book"},     {"Book", "Music"},    {"Music", "Music"},
      {"Music", "DVD"},     {"DVD", "DVD"},       {"DVD", "Video"},
      {"Video", "Video"},   {"Game", "Game"},     {"Game", "Software"},
      {"Software", "Software"}};
  return schema;
}

constexpr int64_t kAmazonViewRank = 20000;  // views cache top-ranked products
constexpr int64_t kAmazonMaxRank = 100000;

Predicate AmazonQueryPred(Rng* rng) {
  // Query condition at least as strict as the views' rank <= 20000, but
  // loose enough (15-20% selectivity) that benchmark queries usually have
  // non-empty results.
  int64_t r = 15000 + static_cast<int64_t>(rng->NextBounded(5001));
  return Predicate().Le("rank", r);
}

// -------------------------------------------------------------- Citation --

const std::array<const char*, 6> kCitationAreas = {"DB", "AI",  "SYS",
                                                   "ML", "TH", "NET"};

const std::vector<LabelPair>& CitationSchema() {
  static const std::vector<LabelPair> schema = {
      {"DB", "DB"},  {"AI", "AI"},  {"SYS", "SYS"}, {"ML", "ML"},
      {"DB", "SYS"}, {"AI", "ML"},  {"ML", "TH"},   {"DB", "AI"},
      {"SYS", "NET"}, {"NET", "NET"}};
  return schema;
}

constexpr int64_t kCitationViewYear = 2000;  // views cache recent papers

Predicate CitationQueryPred(Rng* rng) {
  int64_t y = kCitationViewYear + static_cast<int64_t>(rng->NextBounded(7));
  return Predicate().Ge("year", y);
}

// --------------------------------------------------------------- YouTube --

const std::array<const char*, 5> kYoutubeCategories = {"Music", "Sports",
                                                       "Comedy", "Ent", "News"};

}  // namespace

Graph GenerateAmazonLike(size_t num_nodes, uint64_t seed) {
  Rng rng(seed);
  Graph g;
  std::vector<std::vector<NodeId>> by_group(kAmazonGroups.size());
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t group = rng.NextBounded(kAmazonGroups.size());
    AttributeSet attrs;
    attrs.Set("rank", AttrValue(static_cast<int64_t>(
                          1 + rng.NextBounded(kAmazonMaxRank))));
    NodeId v = g.AddNode(kAmazonGroups[group], std::move(attrs));
    by_group[group].push_back(v);
  }
  // Co-purchase edges: ~3.25 per node (matching Amazon's |E|/|V|), 60%
  // within the same product group.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t group = 0;
    for (size_t gi = 0; gi < kAmazonGroups.size(); ++gi) {
      if (g.HasLabel(v, g.FindLabel(kAmazonGroups[gi]))) {
        group = gi;
        break;
      }
    }
    size_t degree = 2 + rng.NextBounded(3);  // 2..4
    for (size_t d = 0; d < degree; ++d) {
      NodeId w;
      if (rng.NextBool(0.6) && by_group[group].size() > 1) {
        w = by_group[group][rng.NextBounded(by_group[group].size())];
      } else {
        w = static_cast<NodeId>(rng.NextBounded(num_nodes));
      }
      if (w != v) g.AddEdgeIfAbsent(v, w);
    }
  }
  return g;
}

ViewSet AmazonViews(uint32_t bound) {
  const Predicate pred = Predicate().Le("rank", kAmazonViewRank);
  return PairViews(AmazonSchema(), pred, bound,
                   {{{"Book", "Book"}, {"Book", "Music"}},
                    {{"DVD", "Video"}, {"Video", "Video"}}});
}

Pattern GenerateAmazonQuery(uint32_t num_nodes, uint32_t num_edges,
                            uint32_t max_bound, uint64_t seed) {
  return SchemaPattern(AmazonSchema(), &AmazonQueryPred, num_nodes, num_edges,
                       max_bound, seed);
}

Graph GenerateCitationLike(size_t num_nodes, uint64_t seed) {
  Rng rng(seed);
  Graph g;
  std::vector<size_t> area_of(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t area = rng.NextBounded(kCitationAreas.size());
    area_of[i] = area;
    AttributeSet attrs;
    // Node ids correlate with time: later ids are newer papers.
    int64_t year = 1970 + static_cast<int64_t>(
                              (42.0 * static_cast<double>(i)) /
                              static_cast<double>(num_nodes));
    attrs.Set("year", AttrValue(year));
    g.AddNode(kCitationAreas[area], std::move(attrs));
  }
  // Citations point to older papers (smaller ids), 70% intra-area, and are
  // recency-biased (papers mostly cite recent work), so chains of recent
  // papers — what the year-predicate views cache — actually exist.
  auto draw_older = [&rng](NodeId v) {
    uint64_t back = 1 + rng.NextZipf(v, 1.05);
    return static_cast<NodeId>(v - std::min<uint64_t>(back, v));
  };
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    size_t degree = 1 + rng.NextBounded(3);  // 1..3 (Citation: |E|/|V| ~ 2.1)
    for (size_t d = 0; d < degree; ++d) {
      NodeId w = draw_older(v);
      if (rng.NextBool(0.7)) {
        // Retry a few times for an intra-area older paper.
        for (int t = 0; t < 4 && area_of[w] != area_of[v]; ++t) {
          w = draw_older(v);
        }
      }
      g.AddEdgeIfAbsent(v, w);
    }
  }
  return g;
}

ViewSet CitationViews(uint32_t bound) {
  const Predicate pred = Predicate().Ge("year", kCitationViewYear);
  return PairViews(CitationSchema(), pred, bound,
                   {{{"DB", "DB"}, {"DB", "AI"}},
                    {{"AI", "ML"}, {"ML", "TH"}}});
}

Pattern GenerateCitationQuery(uint32_t num_nodes, uint32_t num_edges,
                              uint32_t max_bound, uint64_t seed) {
  return SchemaPattern(CitationSchema(), &CitationQueryPred, num_nodes,
                       num_edges, max_bound, seed, /*acyclic=*/true);
}

Graph GenerateYoutubeLike(size_t num_nodes, uint64_t seed) {
  Rng rng(seed);
  Graph g;
  const std::vector<double> category_weights = {0.30, 0.15, 0.15, 0.25, 0.15};
  std::vector<std::vector<NodeId>> by_cat(kYoutubeCategories.size());
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t cat = rng.NextWeighted(category_weights);
    AttributeSet attrs;
    attrs.Set("A", AttrValue(static_cast<int64_t>(1 + rng.NextBounded(365))));
    attrs.Set("R", AttrValue(static_cast<int64_t>(1 + rng.NextBounded(5))));
    // Heavily skewed view counts, as on the real platform: only ~3% of
    // videos are popular (V >= 10K), keeping the Fig. 7 views' extensions a
    // small fraction of the graph (the paper reports ~4%).
    int64_t visits = rng.NextBool(0.03)
                         ? 10000 + static_cast<int64_t>(rng.NextBounded(990001))
                         : 100 + static_cast<int64_t>(rng.NextBounded(9900));
    attrs.Set("V", AttrValue(visits));
    attrs.Set("L", AttrValue(static_cast<int64_t>(10 + rng.NextBounded(990))));
    NodeId v = g.AddNode(kYoutubeCategories[cat], std::move(attrs));
    by_cat[cat].push_back(v);
  }
  // Related-video edges: ~2.8 per node, 70% intra-category.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t cat = 0;
    for (size_t ci = 0; ci < kYoutubeCategories.size(); ++ci) {
      if (g.HasLabel(v, g.FindLabel(kYoutubeCategories[ci]))) {
        cat = ci;
        break;
      }
    }
    size_t degree = 2 + rng.NextBounded(2);  // 2..3
    for (size_t d = 0; d < degree; ++d) {
      NodeId w;
      if (rng.NextBool(0.7) && by_cat[cat].size() > 1) {
        w = by_cat[cat][rng.NextBounded(by_cat[cat].size())];
      } else {
        w = static_cast<NodeId>(rng.NextBounded(num_nodes));
      }
      if (w != v) g.AddEdgeIfAbsent(v, w);
    }
  }
  return g;
}

ViewSet YoutubeViews(uint32_t bound) {
  // The 12 views of Fig. 7 (P1..P12). The figure's conditions use category
  // (C, here the node label), age A, rate R, visits V and length L; node
  // conditions without a category are wildcard-label predicate nodes.
  auto make = [bound](std::initializer_list<std::pair<const char*, Predicate>>
                          nodes,
                      std::initializer_list<std::pair<int, int>> edges) {
    Pattern p;
    int i = 0;
    for (const auto& [label, pred] : nodes) {
      p.AddNode(label, pred, std::string(*label ? label : "any") +
                                 std::to_string(i++));
    }
    for (const auto& [a, b] : edges) {
      (void)p.AddEdge(static_cast<uint32_t>(a), static_cast<uint32_t>(b),
                      bound);
    }
    return p;
  };

  ViewSet views;
  views.Add("P1", make({{"Music", Predicate().Ge("R", 4)},
                        {"", Predicate().Ge("V", 10000)}},
                       {{0, 1}}));
  views.Add("P2", make({{"Sports", Predicate()},
                        {"", Predicate().Ge("R", 5)}},
                       {{0, 1}}));
  views.Add("P3", make({{"Comedy", Predicate().Ge("V", 10000)},
                        {"", Predicate().Le("A", 100)}},
                       {{0, 1}}));
  views.Add("P4", make({{"News", Predicate().Ge("R", 4)},
                        {"", Predicate().Ge("V", 10000)},
                        {"Ent", Predicate()}},
                       {{0, 1}, {1, 2}}));
  views.Add("P5", make({{"Music", Predicate().Ge("R", 5)},
                        {"Music", Predicate().Ge("V", 10000)}},
                       {{0, 1}, {1, 0}}));
  views.Add("P6", make({{"Ent", Predicate().Ge("V", 10000)},
                        {"", Predicate().Ge("L", 200)}},
                       {{0, 1}}));
  views.Add("P7", make({{"Sports", Predicate().Ge("R", 4)},
                        {"Sports", Predicate().Ge("V", 10000)}},
                       {{0, 1}}));
  views.Add("P8", make({{"Comedy", Predicate().Ge("A", 100)},
                        {"", Predicate().Ge("R", 5)},
                        {"Comedy", Predicate()}},
                       {{0, 1}, {1, 2}, {2, 0}}));
  views.Add("P9", make({{"Music", Predicate().Ge("R", 4)},
                        {"Ent", Predicate().Ge("V", 10000)}},
                       {{0, 1}}));
  views.Add("P10", make({{"News", Predicate().Ge("A", 100)},
                         {"News", Predicate().Ge("V", 10000)}},
                        {{0, 1}}));
  views.Add("P11", make({{"Sports", Predicate().Ge("R", 5)},
                         {"Music", Predicate().Ge("R", 4)}},
                        {{0, 1}}));
  views.Add("P12", make({{"Ent", Predicate().Ge("R", 4)},
                         {"", Predicate().Ge("L", 200)},
                         {"Ent", Predicate().Ge("V", 10000)}},
                        {{0, 1}, {1, 2}}));
  return views;
}

Pattern GenerateYoutubeQuery(uint32_t target_edges, uint32_t bound,
                             uint64_t seed) {
  Rng rng(seed);
  const ViewSet views = YoutubeViews(bound);
  Pattern q;
  // Signature of a node's condition, for gluing.
  auto signature = [](const PatternNode& n) {
    return n.label + "|" + n.pred.ToString();
  };
  std::unordered_map<std::string, std::vector<uint32_t>> by_sig;

  while (q.num_edges() < target_edges) {
    const Pattern& v =
        views.view(rng.NextBounded(views.card())).pattern;
    // Copy the whole view; glue each copied node onto an existing query
    // node with an identical condition with probability 1/2. Copied nodes
    // are randomly *strengthened* (queries are stricter than the cached
    // views, as in the paper's setup) — implication keeps containment.
    std::vector<uint32_t> node_of(v.num_nodes(), kInvalidNode);
    for (uint32_t w = 0; w < v.num_nodes(); ++w) {
      PatternNode node = v.node(w);
      if (rng.NextBool(0.5)) node.pred.Ge("V", 20000);
      if (rng.NextBool(0.3)) node.pred.Ge("R", 4);
      const std::string sig = signature(node);
      auto it = by_sig.find(sig);
      if (it != by_sig.end() && !it->second.empty() && rng.NextBool(0.5)) {
        node_of[w] = it->second[rng.NextBounded(it->second.size())];
      } else {
        node_of[w] = q.AddNode(node.label, node.pred,
                               node.name + "/" +
                                   std::to_string(q.num_nodes()));
        by_sig[sig].push_back(node_of[w]);
      }
    }
    for (const PatternEdge& e : v.edges()) {
      (void)q.AddEdge(node_of[e.src], node_of[e.dst], e.bound);
    }
  }
  return q;
}

}  // namespace gpmv
