/// \file pattern_gen.h
/// \brief Random pattern-query and view-set generators (paper Section VII,
/// "Pattern and view generator").
///
/// The paper's generator is controlled by (|Vp|, |Ep|, labels, k): node
/// labels drawn from Σ and edge bounds drawn from [1, k] (k = 1 yields a
/// plain pattern query). Patterns are connected by construction (random
/// arborescence plus extra edges); `dag_only` restricts extra edges to a
/// topological direction, giving the QDAG/QCyclic families of Fig. 8(g).
///
/// Because randomly drawn queries are rarely contained in randomly drawn
/// views, the bench harness uses GenerateCoveringViews to derive a view set
/// that provably covers a query (groups of its edges, with optional bound
/// slack and overlapping/distractor views) — mirroring the paper's setup
/// where cached views were curated per dataset so queries are answerable.

#ifndef GPMV_WORKLOAD_PATTERN_GEN_H_
#define GPMV_WORKLOAD_PATTERN_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/view.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Parameters of the random pattern generator.
struct RandomPatternOptions {
  uint32_t num_nodes = 4;
  uint32_t num_edges = 6;
  /// Label pool; when empty, "L0".."L9".
  std::vector<std::string> label_pool;
  /// Max edge bound k; bounds drawn uniformly from [1, k]. k = 1 -> plain.
  uint32_t max_bound = 1;
  /// Probability that an edge gets the `*` bound (bounded patterns only).
  double star_prob = 0.0;
  /// Restrict edges to lower->higher node index (acyclic pattern).
  bool dag_only = false;
  uint64_t seed = 42;
};

/// Generates a connected random pattern (no isolated nodes; >= num_nodes-1
/// edges; self-loops excluded).
Pattern GenerateRandomPattern(const RandomPatternOptions& opts);

/// Parameters for deriving a covering view set from a query.
struct CoveringViewOptions {
  /// Query edges per generated view (the views partition the query edges).
  uint32_t edges_per_view = 2;
  /// Extra random views mixed in that may or may not cover anything.
  uint32_t num_distractors = 4;
  /// Added to each covered edge's bound in the view (looser views make the
  /// distance-index filter of BMatchJoin do real work).
  uint32_t bound_slack = 0;
  /// Extra per-view copies covering overlapping edge groups, so minimal and
  /// minimum containment have real choices to make.
  uint32_t overlap_views = 0;
  /// Edges per overlap view (0 = same as edges_per_view). Larger overlap
  /// views than partition views recreate the paper's minimum-vs-minimal gap:
  /// greedy minimum grabs the big views, first-fit minimal often settles for
  /// many small ones.
  uint32_t overlap_edges = 0;
  uint64_t seed = 42;
};

/// Builds a view set guaranteed to contain `q` (Q ⊑ V by construction).
ViewSet GenerateCoveringViews(const Pattern& q,
                              const CoveringViewOptions& opts);

/// Generates `count` independent random views (patterns) for containment
/// benchmarks — no coverage guarantee.
ViewSet GenerateRandomViews(size_t count, const RandomPatternOptions& base,
                            uint64_t seed);

}  // namespace gpmv

#endif  // GPMV_WORKLOAD_PATTERN_GEN_H_
