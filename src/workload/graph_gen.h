/// \file graph_gen.h
/// \brief Synthetic data-graph generators (paper Section VII, "Synthetic
/// data").
///
/// The paper's generator produces random graphs controlled by |V|, |E| and
/// a label alphabet Σ; the Fig. 8(f) ablation additionally uses graphs
/// following the densification law |E| = |V|^α of Leskovec et al. [26].
/// All generators are deterministic in their seed.

#ifndef GPMV_WORKLOAD_GRAPH_GEN_H_
#define GPMV_WORKLOAD_GRAPH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gpmv {

/// Parameters of the uniform random-graph generator.
struct RandomGraphOptions {
  size_t num_nodes = 1000;
  size_t num_edges = 2000;
  /// Size of the label alphabet Σ; labels are named "L0", "L1", ...
  size_t num_labels = 10;
  /// Zipf exponent for label frequencies; 0 = uniform.
  double label_skew = 0.0;
  uint64_t seed = 42;
};

/// Generates a random directed graph: labels drawn per node from Σ (skewed
/// when label_skew > 0), then `num_edges` distinct non-self edges sampled
/// uniformly.
Graph GenerateRandomGraph(const RandomGraphOptions& opts);

/// Generates a graph obeying the densification law |E| = |V|^alpha [26];
/// labels as in GenerateRandomGraph.
Graph GenerateDensificationGraph(size_t num_nodes, double alpha,
                                 size_t num_labels, uint64_t seed);

/// The label names "L0".."L<n-1>" the generators use.
std::vector<std::string> SyntheticLabels(size_t num_labels);

}  // namespace gpmv

#endif  // GPMV_WORKLOAD_GRAPH_GEN_H_
