#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gpmv {
namespace net {

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(wakeup): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::Watch(int fd, uint32_t events, FdHandler handler) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Unwatch(int fd) {
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wakeup();
}

uint64_t EventLoop::RunAfter(double delay_ms, std::function<void()> fn) {
  if (delay_ms < 0) delay_ms = 0;
  const TimerKey key{
      std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(delay_ms)),
      next_timer_id_++};
  timers_.emplace(key, std::move(fn));
  timer_index_.emplace(key.id, key);
  return key.id;
}

void EventLoop::CancelTimer(uint64_t id) {
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return;
  timers_.erase(it->second);
  timer_index_.erase(it);
}

void EventLoop::RequestStop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // Failure (full counter) still leaves the eventfd readable — good enough.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lk(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::RunExpiredTimers() {
  const auto now = std::chrono::steady_clock::now();
  // A timer callback may schedule new timers; those run on a later tick
  // even when due immediately (they sort after the ones expiring now and
  // the loop below re-reads begin()).
  while (!timers_.empty() && timers_.begin()->first.when <= now) {
    auto node = timers_.extract(timers_.begin());
    timer_index_.erase(node.key().id);
    node.mapped()();
  }
}

int EventLoop::TimeoutMs(int max_wait_ms) const {
  if (max_wait_ms < 0) max_wait_ms = 0;
  if (timers_.empty()) return max_wait_ms;
  const auto now = std::chrono::steady_clock::now();
  const auto due = timers_.begin()->first.when;
  if (due <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(due - now)
          .count() +
      1;  // round up so the wait does not undershoot the deadline
  return static_cast<int>(
      std::min<long long>(ms, static_cast<long long>(max_wait_ms)));
}

bool EventLoop::RunOnce(int max_wait_ms) {
  if (stop_requested()) return false;
  struct epoll_event events[64];
  const int n =
      ::epoll_wait(epoll_fd_, events, 64, TimeoutMs(max_wait_ms));
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      uint64_t drain = 0;
      [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
      continue;
    }
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed by an earlier handler
    std::shared_ptr<FdHandler> h = it->second;  // survive self-Unwatch
    (*h)(events[i].events);
  }
  DrainPosted();
  RunExpiredTimers();
  return !stop_requested();
}

void EventLoop::Run() {
  while (RunOnce(100)) {
  }
  // A Post racing RequestStop still runs (its Wakeup may have landed after
  // our final epoll wait).
  DrainPosted();
}

}  // namespace net
}  // namespace gpmv
