#include "net/protocol.h"

#include <cstring>

namespace gpmv {
namespace net {

namespace {

void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian reads off a payload; each advances *pos.
bool GetU8(const std::vector<uint8_t>& b, size_t* pos, uint8_t* v) {
  if (*pos + 1 > b.size()) return false;
  *v = b[*pos];
  *pos += 1;
  return true;
}

bool GetU32(const std::vector<uint8_t>& b, size_t* pos, uint32_t* v) {
  if (*pos + 4 > b.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(b[*pos + i]) << (8 * i);
  *v = out;
  *pos += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& b, size_t* pos, uint64_t* v) {
  if (*pos + 8 > b.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(b[*pos + i]) << (8 * i);
  *v = out;
  *pos += 8;
  return true;
}

bool ValidKind(uint8_t k) {
  return k >= static_cast<uint8_t>(FrameKind::kQuery) &&
         k <= static_cast<uint8_t>(FrameKind::kError);
}

bool ValidStatusCode(uint8_t s) {
  return s <= static_cast<uint8_t>(Status::Code::kResourceExhausted);
}

}  // namespace

bool IsRequestKind(FrameKind kind) {
  switch (kind) {
    case FrameKind::kQuery:
    case FrameKind::kUpdate:
    case FrameKind::kStats:
    case FrameKind::kShutdown:
      return true;
    default:
      return false;
  }
}

bool IsResponseKind(FrameKind kind) {
  switch (kind) {
    case FrameKind::kQueryResult:
    case FrameKind::kUpdateAck:
    case FrameKind::kStatsResult:
    case FrameKind::kOk:
    case FrameKind::kError:
      return true;
    default:
      return false;
  }
}

void EncodeFrame(FrameKind kind, Status::Code status, uint64_t request_id,
                 const uint8_t* payload, size_t payload_len,
                 std::string* out) {
  GPMV_DCHECK(payload_len <= kMaxPayloadBytes);
  out->reserve(out->size() + kFrameHeaderBytes + payload_len);
  PutU32(static_cast<uint32_t>(payload_len), out);
  out->push_back(static_cast<char>(kind));
  out->push_back(static_cast<char>(status));
  PutU16(0, out);  // reserved
  PutU64(request_id, out);
  out->append(reinterpret_cast<const char*>(payload), payload_len);
}

void EncodeFrame(FrameKind kind, Status::Code status, uint64_t request_id,
                 const std::string& payload, std::string* out) {
  EncodeFrame(kind, status, request_id,
              reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
              out);
}

void FrameParser::Feed(const uint8_t* data, size_t len) {
  if (!error_.ok()) return;  // latched: the connection is being torn down
  // Compact the consumed prefix before it dominates the buffer; amortized
  // O(1) per byte.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
  Parse();
}

void FrameParser::Parse() {
  while (error_.ok()) {
    const size_t avail = buf_.size() - consumed_;
    if (avail < kFrameHeaderBytes) return;
    const uint8_t* h = buf_.data() + consumed_;
    uint32_t payload_len = 0;
    std::memcpy(&payload_len, h, 4);  // wire is LE; so are our targets
    const uint8_t kind = h[4];
    const uint8_t status = h[5];
    const uint16_t reserved = static_cast<uint16_t>(h[6] | (h[7] << 8));
    if (payload_len > kMaxPayloadBytes) {
      error_ = Status::Corruption("frame declares " +
                                  std::to_string(payload_len) +
                                  " payload bytes (max " +
                                  std::to_string(kMaxPayloadBytes) + ")");
      return;
    }
    if (!ValidKind(kind) || reserved != 0 || !ValidStatusCode(status)) {
      error_ = Status::Corruption("malformed frame header (kind " +
                                  std::to_string(kind) + ", reserved " +
                                  std::to_string(reserved) + ")");
      return;
    }
    const FrameKind fk = static_cast<FrameKind>(kind);
    if (require_requests_ ? !IsRequestKind(fk) : !IsResponseKind(fk)) {
      error_ = Status::Corruption(
          std::string("unexpected ") +
          (require_requests_ ? "response" : "request") +
          " frame kind " + std::to_string(kind));
      return;
    }
    if (avail < kFrameHeaderBytes + payload_len) return;  // incomplete
    Frame f;
    f.kind = fk;
    f.status = static_cast<Status::Code>(status);
    std::memcpy(&f.request_id, h + 8, 8);
    f.payload.assign(h + kFrameHeaderBytes,
                     h + kFrameHeaderBytes + payload_len);
    consumed_ += kFrameHeaderBytes + payload_len;
    frames_.push_back(std::move(f));
  }
}

bool FrameParser::Next(Frame* out) {
  if (frames_.empty()) return false;
  *out = std::move(frames_.front());
  frames_.pop_front();
  return true;
}

// ---------------------------------------------------------------- payloads

std::string EncodeQueryRequest(const QueryRequest& req) {
  std::string out;
  PutU64(req.min_applied_ts, &out);
  PutU64(req.as_of_ts, &out);
  out.append(req.pattern_text);
  return out;
}

Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& payload) {
  QueryRequest req;
  size_t pos = 0;
  if (!GetU64(payload, &pos, &req.min_applied_ts) ||
      !GetU64(payload, &pos, &req.as_of_ts)) {
    return Status::InvalidArgument("query payload shorter than its header");
  }
  req.pattern_text.assign(payload.begin() + static_cast<ptrdiff_t>(pos),
                          payload.end());
  if (req.pattern_text.empty()) {
    return Status::InvalidArgument("query payload carries no pattern text");
  }
  return req;
}

std::string EncodeUpdateRequest(const EdgeUpdate& op) {
  std::string out;
  out.push_back(op.kind == EdgeUpdate::Kind::kInsert ? 0 : 1);
  PutU32(op.u, &out);
  PutU32(op.v, &out);
  return out;
}

Result<EdgeUpdate> DecodeUpdateRequest(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  uint8_t kind = 0;
  uint32_t u = 0, v = 0;
  if (!GetU8(payload, &pos, &kind) || !GetU32(payload, &pos, &u) ||
      !GetU32(payload, &pos, &v) || pos != payload.size()) {
    return Status::InvalidArgument("update payload is not 9 bytes");
  }
  if (kind > 1) {
    return Status::InvalidArgument("update op kind must be 0 or 1");
  }
  return kind == 0 ? EdgeUpdate::Insert(u, v) : EdgeUpdate::Delete(u, v);
}

std::string EncodeQueryResult(const QueryResponse& resp) {
  std::string out;
  out.push_back(resp.result.matched() ? 1 : 0);
  out.push_back(static_cast<char>(resp.plan));
  PutU64(resp.snapshot_version, &out);
  PutU64(resp.applied_through_ts, &out);
  const size_t num_edges = resp.result.num_pattern_edges();
  PutU32(static_cast<uint32_t>(num_edges), &out);
  for (uint32_t e = 0; e < num_edges; ++e) {
    const std::vector<NodePair>& pairs = resp.result.edge_matches(e);
    PutU32(static_cast<uint32_t>(pairs.size()), &out);
    for (const NodePair& p : pairs) {
      PutU32(p.first, &out);
      PutU32(p.second, &out);
    }
  }
  return out;
}

Result<QueryResultFrame> DecodeQueryResult(
    const std::vector<uint8_t>& payload) {
  QueryResultFrame out;
  size_t pos = 0;
  uint8_t matched = 0, plan = 0;
  uint32_t num_edges = 0;
  if (!GetU8(payload, &pos, &matched) || !GetU8(payload, &pos, &plan) ||
      !GetU64(payload, &pos, &out.snapshot_version) ||
      !GetU64(payload, &pos, &out.applied_through_ts) ||
      !GetU32(payload, &pos, &num_edges)) {
    return Status::InvalidArgument("query result payload truncated");
  }
  // Each declared edge costs at least 4 bytes; reject counts the remaining
  // payload cannot possibly carry before reserving for them.
  if (num_edges > (payload.size() - pos) / 4 + 1) {
    return Status::InvalidArgument("query result declares too many edges");
  }
  out.matched = matched != 0;
  out.plan = plan;
  out.edge_matches.resize(num_edges);
  for (uint32_t e = 0; e < num_edges; ++e) {
    uint32_t count = 0;
    if (!GetU32(payload, &pos, &count)) {
      return Status::InvalidArgument("query result payload truncated");
    }
    if (count > (payload.size() - pos) / 8) {
      return Status::InvalidArgument("query result declares too many pairs");
    }
    out.edge_matches[e].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t u = 0, v = 0;
      if (!GetU32(payload, &pos, &u) || !GetU32(payload, &pos, &v)) {
        return Status::InvalidArgument("query result payload truncated");
      }
      out.edge_matches[e].emplace_back(u, v);
    }
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("query result payload has trailing bytes");
  }
  return out;
}

std::string EncodeUpdateAck(uint64_t ts) {
  std::string out;
  PutU64(ts, &out);
  return out;
}

Result<uint64_t> DecodeUpdateAck(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  uint64_t ts = 0;
  if (!GetU64(payload, &pos, &ts) || pos != payload.size()) {
    return Status::InvalidArgument("update ack payload is not 8 bytes");
  }
  return ts;
}

}  // namespace net
}  // namespace gpmv
