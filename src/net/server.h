/// \file server.h
/// \brief The async network serving front end: a single-threaded epoll
/// event-loop server (net/event_loop.h) speaking the length-prefixed binary
/// protocol (net/protocol.h), multiplexing many client connections onto the
/// existing engine — queries through `QueryEngine::Submit` on the worker
/// pool, update ops through `ApplierPool::TryPush` into the MVCC ingest
/// slices, stats straight off the metrics registry.
///
/// Thread topology (three kinds of thread, two owned here):
///
///   * the **loop thread** (the caller of Run) owns every Connection and
///     all socket I/O. It never blocks on engine work: query submission
///     uses the executor's shed-when-saturated admission (a saturated pool
///     fast-fails kResourceExhausted instead of parking the loop), and op
///     admission uses the pool's non-blocking TryPush.
///   * the **waiter thread** (owned) turns query futures into response
///     frames: it blocks on each future in submission order, encodes the
///     response off-loop, and Posts the bytes back to the loop for
///     buffered sending. FIFO handling means one connection's responses
///     arrive in its submission order.
///   * the engine's own worker/applier threads, untouched.
///
/// Write path — small-packet coalescing after Galois's
/// NetworkInterfaceBuffered: response bytes append to a per-connection
/// buffer which flushes when it crosses `flush_bytes` (COMM_MIN) or when
/// the `flush_delay_ms` (COMM_DELAY) loop timer expires, whichever first.
/// A partial write arms EPOLLOUT and the remainder streams out as the
/// socket drains — a slow reader backpressures only its own buffer.
///
/// Read path — per-connection ingest backpressure: when an op's slice
/// queue is full, the op is *parked* on its connection, the connection's
/// EPOLLIN is paused (TCP backpressure propagates to that client alone),
/// and a retry timer re-attempts admission until it succeeds or
/// `push_deadline_ms` elapses — then the client gets a kDeadlineExceeded
/// error frame and reading resumes. A quarantined slice fails fast with
/// kResourceExhausted (retryable after revival) rather than burning the
/// deadline, mirroring ApplierPool::PushWithDeadline.
///
/// Read-your-writes: each connection tracks the highest stream ts it was
/// acked and every subsequent query on that connection carries
/// `QueryOptions::min_applied_ts >= ` that ts (the query frame's own
/// min_applied_ts field can raise the floor further — e.g. a client
/// reading another client's writes). So an ack'd update is visible to the
/// same client's next query, bounded by the engine's ryw timeout.
///
/// Shutdown: a kShutdown frame (or RequestStop) acks kOk, stops accepting,
/// fails parked ops, drains in-flight queries, flushes every connection,
/// then closes everything and returns from Run — the CI smoke job asserts
/// this clean exit.
///
/// Fault points (common/fault.h): `net.accept` drops a just-accepted
/// connection, `net.read` fails a socket read, `net.write` fails a flush
/// write; all three surface as abrupt connection closes, which is exactly
/// what the protocol-robustness suite exercises.

#ifndef GPMV_NET_SERVER_H_
#define GPMV_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/fault.h"
#include "common/status.h"
#include "engine/query_engine.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "stream/applier_pool.h"

namespace gpmv {
namespace net {

struct ServerOptions {
  /// TCP port to bind; 0 picks an ephemeral port — `port()` reports the
  /// actual one (tests bind 0 to avoid collisions).
  uint16_t port = 0;
  int listen_backlog = 128;
  /// Write-coalescing knobs (COMM_MIN / COMM_DELAY): flush a connection's
  /// out-buffer at this many bytes, or this many ms after the first
  /// unflushed byte, whichever comes first.
  size_t flush_bytes = 8 * 1024;
  double flush_delay_ms = 1.0;
  /// Parked-op admission: retry cadence and total deadline before the
  /// client gets kDeadlineExceeded.
  double push_retry_ms = 1.0;
  double push_deadline_ms = 1000.0;
  /// Accepted connections beyond this are immediately closed.
  size_t max_connections = 1024;
  /// Not owned; nullptr disables the net.* fault points.
  FaultInjector* fault = nullptr;
};

/// See file comment.
class Server {
 public:
  /// `engine` must outlive the server. `pool` may be null — update frames
  /// then fail with kNotSupported (query-only serving).
  Server(QueryEngine* engine, ApplierPool* pool, ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts the waiter thread. After OK, port() is live
  /// and Run() will serve.
  Status Start();

  /// Serves until a kShutdown frame or RequestStop; returns only after
  /// every connection is flushed and closed.
  void Run();

  /// Thread-safe, idempotent: makes Run wind down as if a kShutdown frame
  /// had arrived.
  void RequestStop();

  /// Bound port (useful when opts.port was 0). 0 before Start.
  uint16_t port() const { return bound_port_; }

  /// Lifetime accept count (tests).
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameParser parser{/*require_requests=*/true};

    /// Coalesced out-buffer: [sent, out.size()) is unsent. `sent` only
    /// grows; the buffer compacts when fully drained.
    std::string out;
    size_t sent = 0;
    bool want_write = false;    ///< EPOLLOUT armed
    uint64_t flush_timer = 0;   ///< pending COMM_DELAY timer id (0 = none)

    bool reading_paused = false;
    /// Parked update op (slice queue full): frames decoded behind it stay
    /// inside `parser` until it resolves.
    bool parked = false;
    EdgeUpdate parked_op;
    uint64_t parked_request_id = 0;
    std::chrono::steady_clock::time_point parked_deadline;
    uint64_t retry_timer = 0;

    uint64_t last_update_ts = 0;  ///< read-your-writes floor
    size_t inflight_queries = 0;
    /// Protocol error latched or peer half-closed: close once drained.
    bool draining = false;
  };

  /// One submitted query awaiting its future, in FIFO order.
  struct PendingQuery {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::future<QueryResponse> future;
    std::chrono::steady_clock::time_point submitted;
  };

  void OnAcceptable();
  void OnConnEvent(uint64_t conn_id, uint32_t events);
  void ReadFrom(Connection* c);
  void ProcessFrames(Connection* c);
  void Dispatch(Connection* c, const Frame& f);
  void HandleQuery(Connection* c, const Frame& f);
  void HandleUpdate(Connection* c, const Frame& f);
  void HandleStats(Connection* c, const Frame& f);
  void HandleShutdown(Connection* c, const Frame& f);
  /// Parked-op retry tick: re-attempts admission, acks or errors.
  void RetryParked(uint64_t conn_id);
  void FinishParked(Connection* c);

  /// Appends an encoded frame and applies the coalescing policy.
  void SendFrame(Connection* c, FrameKind kind, Status::Code status,
                 uint64_t request_id, const std::string& payload);
  void SendError(Connection* c, uint64_t request_id, const Status& st);
  /// Writes as much of the out-buffer as the socket takes now.
  void Flush(Connection* c);
  void UpdateReadInterest(Connection* c);
  /// Closes a draining connection once its responses are answered and
  /// written out. May invalidate `c`.
  void MaybeCloseDrained(Connection* c);
  void CloseConn(uint64_t conn_id);

  /// Waiter-thread body and its loop-side completion.
  void WaiterMain();
  void OnQueryDone(uint64_t conn_id, uint64_t request_id,
                   std::string encoded, bool is_error,
                   Status::Code error_code);

  void BeginShutdown();
  /// Stops the loop once shutdown started, queries drained, buffers empty.
  void MaybeFinishShutdown();

  QueryEngine* engine_;
  ApplierPool* pool_;
  ServerOptions opts_;

  EventLoop loop_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  bool started_ = false;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  std::atomic<uint64_t> accepted_{0};

  bool shutting_down_ = false;  ///< loop thread only

  /// Waiter-thread queue.
  std::thread waiter_;
  std::mutex wq_mu_;
  std::condition_variable wq_cv_;
  std::deque<PendingQuery> wq_;
  bool wq_stop_ = false;

  /// Stats frames: server-global gapless seq + steady ms since Start, so
  /// a socket-served artifact satisfies the exporter schema checker.
  uint64_t stats_seq_ = 0;
  std::chrono::steady_clock::time_point start_time_;

  /// Metric handles (resolved by name from the engine registry; the names
  /// are registered up front in QueryEngine::InitMetrics so they are
  /// pinned in every exporter artifact).
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_closed_ = nullptr;
  obs::Counter* m_frames_in_ = nullptr;
  obs::Counter* m_frames_out_ = nullptr;
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_updates_ = nullptr;
  obs::Counter* m_protocol_errors_ = nullptr;
  obs::Counter* m_errors_sent_ = nullptr;
  obs::Counter* m_parks_ = nullptr;
  obs::Counter* m_park_deadline_ = nullptr;
  obs::Counter* m_bytes_in_ = nullptr;
  obs::Counter* m_bytes_out_ = nullptr;
  obs::Counter* m_flushes_ = nullptr;
  obs::Gauge* m_open_conns_ = nullptr;
  obs::Histogram* m_request_us_ = nullptr;
  obs::Histogram* m_flush_bytes_ = nullptr;
};

}  // namespace net
}  // namespace gpmv

#endif  // GPMV_NET_SERVER_H_
