#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/exporter.h"
#include "pattern/pattern_io.h"

namespace gpmv {
namespace net {

namespace {

/// Hard backstop on the shutdown drain: a peer that stops reading must not
/// wedge the clean-exit path — its connection is cut after this long.
constexpr double kShutdownDrainMs = 2000.0;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Server::Server(QueryEngine* engine, ApplierPool* pool, ServerOptions opts)
    : engine_(engine), pool_(pool), opts_(opts) {
  if (opts_.flush_bytes == 0) opts_.flush_bytes = 1;
  if (opts_.max_connections == 0) opts_.max_connections = 1;
}

Server::~Server() {
  RequestStop();
  {
    std::lock_guard<std::mutex> lk(wq_mu_);
    wq_stop_ = true;
  }
  wq_cv_.notify_all();
  if (waiter_.joinable()) waiter_.join();
  for (auto& [id, c] : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

Status Server::Start() {
  if (started_) return Status::Internal("server already started");

  obs::MetricsRegistry& m = *engine_->metrics();
  m_accepted_ = m.FindOrCreateCounter("net.connections_accepted");
  m_closed_ = m.FindOrCreateCounter("net.connections_closed");
  m_frames_in_ = m.FindOrCreateCounter("net.frames_received");
  m_frames_out_ = m.FindOrCreateCounter("net.frames_sent");
  m_queries_ = m.FindOrCreateCounter("net.queries");
  m_updates_ = m.FindOrCreateCounter("net.updates");
  m_protocol_errors_ = m.FindOrCreateCounter("net.protocol_errors");
  m_errors_sent_ = m.FindOrCreateCounter("net.errors_sent");
  m_parks_ = m.FindOrCreateCounter("net.backpressure_parks");
  m_park_deadline_ = m.FindOrCreateCounter("net.backpressure_deadline");
  m_bytes_in_ = m.FindOrCreateCounter("net.bytes_read");
  m_bytes_out_ = m.FindOrCreateCounter("net.bytes_written");
  m_flushes_ = m.FindOrCreateCounter("net.flushes");
  m_open_conns_ = m.FindOrCreateGauge("net.open_connections");
  m_request_us_ = m.FindOrCreateHistogram("net.request_us");
  m_flush_bytes_ = m.FindOrCreateHistogram("net.flush_bytes");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &alen) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, opts_.listen_backlog) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }

  GPMV_RETURN_NOT_OK(loop_.Init());
  GPMV_RETURN_NOT_OK(
      loop_.Watch(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); }));

  start_time_ = std::chrono::steady_clock::now();
  waiter_ = std::thread([this] { WaiterMain(); });
  started_ = true;
  return Status::OK();
}

void Server::Run() {
  loop_.Run();
  // Loop done: stop the waiter and hard-close whatever survived (normally
  // nothing — MaybeFinishShutdown closed every connection already).
  {
    std::lock_guard<std::mutex> lk(wq_mu_);
    wq_stop_ = true;
  }
  wq_cv_.notify_all();
  if (waiter_.joinable()) waiter_.join();
  for (auto& [id, c] : conns_) {
    loop_.Unwatch(c->fd);
    ::close(c->fd);
    c->fd = -1;
  }
  conns_.clear();
  if (m_open_conns_ != nullptr) m_open_conns_->Set(0.0);
}

void Server::RequestStop() {
  if (!started_) return;
  loop_.Post([this] { BeginShutdown(); });
}

// ------------------------------------------------------------------ accept

void Server::OnAcceptable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the next EPOLLIN retries
    }
    if (GPMV_FAULT_POINT(opts_.fault, "net.accept") ||
        conns_.size() >= opts_.max_connections || shutting_down_) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // The server coalesces its own writes (COMM_MIN/COMM_DELAY); Nagle on
    // top of that would only delay the flushed packet.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    const uint64_t id = conn->id;
    Status st = loop_.Watch(fd, EPOLLIN, [this, id](uint32_t events) {
      OnConnEvent(id, events);
    });
    if (!st.ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    m_accepted_->Add(1);
    m_open_conns_->Set(static_cast<double>(conns_.size()));
  }
}

// -------------------------------------------------------------- read path

void Server::OnConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* c = it->second.get();
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(conn_id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    Flush(c);
    if (conns_.find(conn_id) == conns_.end()) return;  // Flush closed it
  }
  if ((events & EPOLLIN) != 0) ReadFrom(c);
}

void Server::ReadFrom(Connection* c) {
  const uint64_t conn_id = c->id;
  uint8_t buf[64 * 1024];
  for (;;) {
    if (c->reading_paused || c->draining) return;
    if (GPMV_FAULT_POINT(opts_.fault, "net.read")) {
      CloseConn(conn_id);
      return;
    }
    const ssize_t n = ::read(c->fd, buf, sizeof(buf));
    if (n > 0) {
      m_bytes_in_->Add(static_cast<uint64_t>(n));
      c->parser.Feed(buf, static_cast<size_t>(n));
      if (!c->parser.ok()) {
        // Framing error: unrecoverable for this connection. Best-effort
        // error frame, then drain-and-close. (Drain first: SendError can
        // flush and close the connection on a write fault.)
        m_protocol_errors_->Add(1);
        c->draining = true;
        const Status perr = c->parser.error();
        SendError(c, 0, perr);
        auto it = conns_.find(conn_id);
        if (it == conns_.end()) return;
        c = it->second.get();
        UpdateReadInterest(c);
        MaybeCloseDrained(c);
        return;
      }
      ProcessFrames(c);
      if (conns_.find(conn_id) == conns_.end()) return;
      continue;
    }
    if (n == 0) {
      // Peer half-closed: no more requests, but in-flight responses still
      // go out before we close.
      c->draining = true;
      UpdateReadInterest(c);
      MaybeCloseDrained(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }
}

void Server::ProcessFrames(Connection* c) {
  const uint64_t conn_id = c->id;
  Frame f;
  while (!c->parked && !c->draining && c->parser.Next(&f)) {
    Dispatch(c, f);
    if (conns_.find(conn_id) == conns_.end()) return;
  }
}

void Server::Dispatch(Connection* c, const Frame& f) {
  m_frames_in_->Add(1);
  switch (f.kind) {
    case FrameKind::kQuery:
      HandleQuery(c, f);
      return;
    case FrameKind::kUpdate:
      HandleUpdate(c, f);
      return;
    case FrameKind::kStats:
      HandleStats(c, f);
      return;
    case FrameKind::kShutdown:
      HandleShutdown(c, f);
      return;
    default:
      // Unreachable: the parser only surfaces request kinds.
      SendError(c, f.request_id,
                Status::InvalidArgument("unexpected frame kind"));
      return;
  }
}

void Server::HandleQuery(Connection* c, const Frame& f) {
  Result<QueryRequest> req = DecodeQueryRequest(f.payload);
  if (!req.ok()) {
    SendError(c, f.request_id, req.status());
    return;
  }
  Result<Pattern> pattern = PatternFromText(req->pattern_text);
  if (!pattern.ok()) {
    SendError(c, f.request_id, pattern.status());
    return;
  }
  QueryOptions qo;
  // Read-your-writes: this connection's acked updates, or any higher floor
  // the client asked for explicitly.
  qo.min_applied_ts = std::max(req->min_applied_ts, c->last_update_ts);
  qo.as_of_ts = req->as_of_ts;
  Result<std::future<QueryResponse>> fut =
      engine_->Submit(std::move(pattern).value(), qo);
  if (!fut.ok()) {
    // Shed by admission control (or shut down) — the loop thread never
    // blocks on a saturated pool.
    SendError(c, f.request_id, fut.status());
    return;
  }
  m_queries_->Add(1);
  ++c->inflight_queries;
  {
    std::lock_guard<std::mutex> lk(wq_mu_);
    wq_.push_back(PendingQuery{c->id, f.request_id,
                               std::move(fut).value(),
                               std::chrono::steady_clock::now()});
  }
  wq_cv_.notify_one();
}

void Server::HandleUpdate(Connection* c, const Frame& f) {
  Result<EdgeUpdate> op = DecodeUpdateRequest(f.payload);
  if (!op.ok()) {
    SendError(c, f.request_id, op.status());
    return;
  }
  if (pool_ == nullptr) {
    SendError(c, f.request_id,
              Status::NotSupported("server is serving queries only"));
    return;
  }
  uint64_t ts = 0;
  switch (pool_->TryPush(*op, &ts)) {
    case ApplierPool::TryPushResult::kOk:
      c->last_update_ts = std::max(c->last_update_ts, ts);
      m_updates_->Add(1);
      SendFrame(c, FrameKind::kUpdateAck, Status::Code::kOk, f.request_id,
                EncodeUpdateAck(ts));
      return;
    case ApplierPool::TryPushResult::kQuarantined:
      SendError(c, f.request_id,
                Status::ResourceExhausted(
                    "update slice quarantined; retry after revival"));
      return;
    case ApplierPool::TryPushResult::kStopped:
      SendError(c, f.request_id, Status::Internal("ingest stopped"));
      return;
    case ApplierPool::TryPushResult::kWouldBlock:
      break;
  }
  // Slice queue full: park the op on this connection and pause its reads —
  // backpressure lands on this client alone. Frames already decoded queue
  // up behind the parked op inside the parser.
  m_parks_->Add(1);
  c->parked = true;
  c->parked_op = *op;
  c->parked_request_id = f.request_id;
  c->parked_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(opts_.push_deadline_ms));
  UpdateReadInterest(c);
  const uint64_t id = c->id;
  c->retry_timer =
      loop_.RunAfter(opts_.push_retry_ms, [this, id] { RetryParked(id); });
}

void Server::RetryParked(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* c = it->second.get();
  c->retry_timer = 0;
  if (!c->parked) return;
  // A SendFrame/SendError can flush and (on a write fault) close the
  // connection, invalidating `c` — resolve the outcome first, send, then
  // re-look-up before FinishParked.
  uint64_t ts = 0;
  Status fail;
  bool acked = false;
  bool resolved = true;
  switch (pool_->TryPush(c->parked_op, &ts)) {
    case ApplierPool::TryPushResult::kOk:
      acked = true;
      break;
    case ApplierPool::TryPushResult::kQuarantined:
      fail = Status::ResourceExhausted(
          "update slice quarantined; retry after revival");
      break;
    case ApplierPool::TryPushResult::kStopped:
      fail = Status::Internal("ingest stopped");
      break;
    case ApplierPool::TryPushResult::kWouldBlock:
      if (std::chrono::steady_clock::now() >= c->parked_deadline) {
        m_park_deadline_->Add(1);
        fail = Status::DeadlineExceeded(
            "update not admitted within the push deadline "
            "(slice backpressure)");
      } else {
        resolved = false;
      }
      break;
  }
  if (!resolved) {
    c->retry_timer = loop_.RunAfter(
        opts_.push_retry_ms, [this, conn_id] { RetryParked(conn_id); });
    return;
  }
  if (acked) {
    c->last_update_ts = std::max(c->last_update_ts, ts);
    m_updates_->Add(1);
    SendFrame(c, FrameKind::kUpdateAck, Status::Code::kOk,
              c->parked_request_id, EncodeUpdateAck(ts));
  } else {
    SendError(c, c->parked_request_id, fail);
  }
  it = conns_.find(conn_id);
  if (it != conns_.end()) FinishParked(it->second.get());
}

void Server::FinishParked(Connection* c) {
  c->parked = false;
  if (c->retry_timer != 0) {
    loop_.CancelTimer(c->retry_timer);
    c->retry_timer = 0;
  }
  const uint64_t conn_id = c->id;
  // Drain the frames that queued up behind the parked op, then resume
  // reading from the socket.
  ProcessFrames(c);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  c = it->second.get();
  UpdateReadInterest(c);
  MaybeCloseDrained(c);  // peer may have half-closed while the op was parked
}

void Server::HandleStats(Connection* c, const Frame& f) {
  const std::string line = obs::SnapshotToJsonLine(
      engine_->metrics()->TakeSnapshot(), ++stats_seq_,
      MsSince(start_time_));
  SendFrame(c, FrameKind::kStatsResult, Status::Code::kOk, f.request_id,
            line);
}

void Server::HandleShutdown(Connection* c, const Frame& f) {
  SendFrame(c, FrameKind::kOk, Status::Code::kOk, f.request_id,
            std::string());
  BeginShutdown();
}

// ------------------------------------------------------------- write path

void Server::SendFrame(Connection* c, FrameKind kind, Status::Code status,
                       uint64_t request_id, const std::string& payload) {
  EncodeFrame(kind, status, request_id, payload, &c->out);
  m_frames_out_->Add(1);
  const size_t unsent = c->out.size() - c->sent;
  if (unsent >= opts_.flush_bytes) {
    if (c->flush_timer != 0) {
      loop_.CancelTimer(c->flush_timer);
      c->flush_timer = 0;
    }
    Flush(c);  // may close the connection; caller must re-look-up
    return;
  }
  if (c->flush_timer == 0 && !c->want_write) {
    const uint64_t id = c->id;
    c->flush_timer = loop_.RunAfter(opts_.flush_delay_ms, [this, id] {
      auto it = conns_.find(id);
      if (it == conns_.end()) return;
      it->second->flush_timer = 0;
      Flush(it->second.get());
    });
  }
}

void Server::SendError(Connection* c, uint64_t request_id,
                       const Status& st) {
  m_errors_sent_->Add(1);
  SendFrame(c, FrameKind::kError, st.code(), request_id, st.message());
}

void Server::Flush(Connection* c) {
  const uint64_t conn_id = c->id;
  size_t written = 0;
  while (c->sent < c->out.size()) {
    if (GPMV_FAULT_POINT(opts_.fault, "net.write")) {
      CloseConn(conn_id);
      return;
    }
    const ssize_t n = ::write(c->fd, c->out.data() + c->sent,
                              c->out.size() - c->sent);
    if (n > 0) {
      c->sent += static_cast<size_t>(n);
      written += static_cast<size_t>(n);
      m_bytes_out_->Add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket full: a slow reader. Arm EPOLLOUT and stream the rest out
      // as the peer drains — only this connection waits.
      if (!c->want_write) {
        c->want_write = true;
        UpdateReadInterest(c);
      }
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn_id);
    return;
  }
  if (written > 0) {
    m_flushes_->Add(1);
    m_flush_bytes_->Record(written);
  }
  if (c->sent == c->out.size()) {
    c->out.clear();
    c->sent = 0;
    if (c->want_write) {
      c->want_write = false;
      UpdateReadInterest(c);
    }
    MaybeCloseDrained(c);  // may close; nothing touches c afterwards
  }
  MaybeFinishShutdown();
}

void Server::UpdateReadInterest(Connection* c) {
  uint32_t events = 0;
  if (!c->reading_paused && !c->draining && !c->parked && !shutting_down_) {
    events |= EPOLLIN;
  }
  if (c->want_write) events |= EPOLLOUT;
  loop_.Modify(c->fd, events);
}

void Server::MaybeCloseDrained(Connection* c) {
  // A parked op still owes its client an ack/error even after the peer
  // half-closed its write side — it resolves (or deadlines) first.
  if (c->draining && !c->parked && c->inflight_queries == 0 &&
      c->sent == c->out.size()) {
    CloseConn(c->id);
  }
}

void Server::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* c = it->second.get();
  if (c->flush_timer != 0) loop_.CancelTimer(c->flush_timer);
  if (c->retry_timer != 0) loop_.CancelTimer(c->retry_timer);
  loop_.Unwatch(c->fd);
  ::close(c->fd);
  conns_.erase(it);
  m_closed_->Add(1);
  m_open_conns_->Set(static_cast<double>(conns_.size()));
  MaybeFinishShutdown();
}

// ---------------------------------------------------------- query futures

void Server::WaiterMain() {
  for (;;) {
    PendingQuery pq;
    {
      std::unique_lock<std::mutex> lk(wq_mu_);
      wq_cv_.wait(lk, [this] { return wq_stop_ || !wq_.empty(); });
      if (wq_stop_) return;  // abandoned futures complete harmlessly
      pq = std::move(wq_.front());
      wq_.pop_front();
    }
    QueryResponse resp = pq.future.get();
    m_request_us_->Record(
        static_cast<uint64_t>(MsSince(pq.submitted) * 1000.0));
    std::string encoded;
    bool is_error = false;
    Status::Code code = Status::Code::kOk;
    if (resp.status.ok()) {
      // Normalized match sets make equal results bit-identical on the
      // wire (the loadgen equivalence check relies on it).
      resp.result.Normalize();
      encoded = EncodeQueryResult(resp);
    } else {
      is_error = true;
      code = resp.status.code();
      encoded = resp.status.message();
    }
    loop_.Post([this, conn_id = pq.conn_id, request_id = pq.request_id,
                bytes = std::move(encoded), is_error, code]() mutable {
      OnQueryDone(conn_id, request_id, std::move(bytes), is_error, code);
    });
  }
}

void Server::OnQueryDone(uint64_t conn_id, uint64_t request_id,
                         std::string encoded, bool is_error,
                         Status::Code error_code) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    // Connection went away while the query ran; the result is dropped.
    MaybeFinishShutdown();
    return;
  }
  Connection* c = it->second.get();
  GPMV_DCHECK(c->inflight_queries > 0);
  --c->inflight_queries;
  if (is_error) {
    m_errors_sent_->Add(1);
    SendFrame(c, FrameKind::kError, error_code, request_id, encoded);
  } else {
    SendFrame(c, FrameKind::kQueryResult, Status::Code::kOk, request_id,
              encoded);
  }
  it = conns_.find(conn_id);
  if (it != conns_.end()) MaybeCloseDrained(it->second.get());
  MaybeFinishShutdown();
}

// -------------------------------------------------------------- shutdown

void Server::BeginShutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  loop_.Unwatch(listen_fd_);
  // Collect ids first: failing a parked op / flushing may close conns.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, c] : conns_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Connection* c = it->second.get();
    c->draining = true;
    if (c->parked) {
      // Fail the parked op *before* sending (SendError can flush and, on a
      // write fault, close the connection under us).
      c->parked = false;
      if (c->retry_timer != 0) {
        loop_.CancelTimer(c->retry_timer);
        c->retry_timer = 0;
      }
      const uint64_t rid = c->parked_request_id;
      SendError(c, rid, Status::Internal("server shutting down"));
      it = conns_.find(id);
      if (it == conns_.end()) continue;
      c = it->second.get();
    }
    UpdateReadInterest(c);
    // Stop coalescing: push whatever is buffered now.
    if (c->flush_timer != 0) {
      loop_.CancelTimer(c->flush_timer);
      c->flush_timer = 0;
    }
    Flush(c);
  }
  // Backstop: a peer that never drains its socket cannot hold the exit.
  loop_.RunAfter(kShutdownDrainMs, [this] {
    std::vector<uint64_t> stuck;
    stuck.reserve(conns_.size());
    for (auto& [id, c] : conns_) stuck.push_back(id);
    for (uint64_t id : stuck) CloseConn(id);
    loop_.RequestStop();
  });
  MaybeFinishShutdown();
}

void Server::MaybeFinishShutdown() {
  if (!shutting_down_) return;
  for (auto& [id, c] : conns_) {
    if (c->inflight_queries > 0 || c->sent != c->out.size()) return;
  }
  // Everything answered and drained: close the remainder and stop.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, c] : conns_) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Connection* c = it->second.get();
    if (c->flush_timer != 0) loop_.CancelTimer(c->flush_timer);
    if (c->retry_timer != 0) loop_.CancelTimer(c->retry_timer);
    loop_.Unwatch(c->fd);
    ::close(c->fd);
    conns_.erase(it);
    m_closed_->Add(1);
  }
  m_open_conns_->Set(0.0);
  loop_.RequestStop();
}

}  // namespace net
}  // namespace gpmv
