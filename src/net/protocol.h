/// \file protocol.h
/// \brief The length-prefixed binary wire protocol of the net serving front
/// end (net/server.h): frame layout, request/response payload codecs, and an
/// incremental, allocation-bounded `FrameParser` for the read path.
///
/// Frame layout (all integers little-endian, no padding on the wire):
///
///     offset  size  field
///     0       4     payload_len   bytes following the 16-byte header
///     4       1     kind          FrameKind
///     5       1     status        Status::Code (responses; 0 on requests)
///     6       2     reserved      must be 0
///     8       8     request_id    client-chosen; echoed on the response
///     16      payload_len bytes of kind-specific payload
///
/// Request kinds (client -> server):
///   kQuery     — `min_applied_ts` (u64) + `as_of_ts` (u64) + pattern text
///                (pattern_io.h format). The server raises the effective
///                read-your-writes floor to max(min_applied_ts, highest
///                update ts this connection has submitted).
///   kUpdate    — op kind (u8: 0 insert, 1 delete) + u (u32) + v (u32).
///   kStats     — empty payload; answered with one kStatsResult.
///   kShutdown  — empty payload; server acks with kOk, drains in-flight
///                work, flushes every connection and exits Run().
///
/// Response kinds (server -> client):
///   kQueryResult — matched (u8) + plan (u8) + snapshot_version (u64) +
///                  applied_through_ts (u64) + num_edges (u32), then per
///                  pattern edge: pair_count (u32) + pair_count x
///                  (u (u32), v (u32)). The match sets are serialized in
///                  normalized (sorted, deduplicated) order, so two
///                  results are bit-identical iff MatchResult::operator==
///                  holds — the loadgen equivalence check compares the raw
///                  payload bytes.
///   kUpdateAck   — assigned stream ts (u64).
///   kStatsResult — one exporter-schema JSON line (obs/exporter.h), seq
///                  assigned from a server-global monotone counter.
///   kOk          — empty payload (shutdown ack).
///   kError       — Status code in the header `status` byte + UTF-8 message
///                  payload. Sent for malformed payloads, failed queries,
///                  and per-connection backpressure (kDeadlineExceeded when
///                  an update could not be admitted within the server's
///                  push timeout, kResourceExhausted when its stream slice
///                  is quarantined or the executor sheds the query).
///
/// Framing errors (declared length above kMaxPayloadBytes, unknown kind,
/// nonzero reserved bytes) are not recoverable — the parser latches an
/// error state and the server closes the connection after best-effort
/// sending one kError frame. Everything else (unparseable pattern text,
/// short payloads) is a per-request kError; the connection lives on.
///
/// All codecs are pure functions of byte buffers so the protocol-robustness
/// suite (tests/net_test.cc) fuzzes them without sockets.

#ifndef GPMV_NET_PROTOCOL_H_
#define GPMV_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query_engine.h"
#include "simulation/match_result.h"

namespace gpmv {
namespace net {

/// Frame type tags (the wire `kind` byte). Values are part of the protocol.
enum class FrameKind : uint8_t {
  kQuery = 1,
  kUpdate = 2,
  kStats = 3,
  kShutdown = 4,
  kQueryResult = 5,
  kUpdateAck = 6,
  kStatsResult = 7,
  kOk = 8,
  kError = 9,
};

/// True for kinds a client may send (the server rejects response kinds on
/// its read path as protocol errors, and vice versa in the loadgen).
bool IsRequestKind(FrameKind kind);
bool IsResponseKind(FrameKind kind);

/// Fixed header size preceding every payload.
constexpr size_t kFrameHeaderBytes = 16;

/// Hard cap on a declared payload length; a header above it is a framing
/// error (protects the server from a 4 GiB allocation off 4 garbage bytes).
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// One decoded frame.
struct Frame {
  FrameKind kind = FrameKind::kError;
  Status::Code status = Status::Code::kOk;  ///< header status byte
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Serializes a frame (header + payload) onto `out` (appended).
void EncodeFrame(FrameKind kind, Status::Code status, uint64_t request_id,
                 const uint8_t* payload, size_t payload_len,
                 std::string* out);
void EncodeFrame(FrameKind kind, Status::Code status, uint64_t request_id,
                 const std::string& payload, std::string* out);

/// Incremental frame decoder: Feed() bytes as they arrive, Next() pops
/// complete frames. A framing error (oversized length, unknown kind,
/// nonzero reserved) latches: ok() turns false, error() describes it, and
/// further Feed()s are ignored. Payload-level validation is *not* done
/// here — a complete frame with garbage payload is surfaced to the caller,
/// whose typed decoder returns a per-request error.
class FrameParser {
 public:
  /// `require_requests`: accept only request kinds (the server side);
  /// false accepts only response kinds (the client side).
  explicit FrameParser(bool require_requests = true)
      : require_requests_(require_requests) {}

  /// Consumes `len` bytes; cheap append + in-place scan.
  void Feed(const uint8_t* data, size_t len);

  /// Pops the next complete frame into `*out`; false when none is buffered
  /// (or the parser is in the error state).
  bool Next(Frame* out);

  bool ok() const { return error_.ok(); }
  const Status& error() const { return error_; }

  /// Bytes buffered but not yet parsed into a frame (tests).
  size_t pending_bytes() const { return buf_.size() - consumed_; }

 private:
  void Parse();

  bool require_requests_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  ///< prefix of buf_ already parsed away
  std::deque<Frame> frames_;
  Status error_;
};

// ---------------------------------------------------------------- payloads

/// kQuery request payload.
struct QueryRequest {
  uint64_t min_applied_ts = 0;  ///< explicit read-your-writes floor
  uint64_t as_of_ts = 0;        ///< 0 = head
  std::string pattern_text;     ///< pattern_io.h format
};

std::string EncodeQueryRequest(const QueryRequest& req);
Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& payload);

/// kUpdate request payload.
std::string EncodeUpdateRequest(const EdgeUpdate& op);
Result<EdgeUpdate> DecodeUpdateRequest(const std::vector<uint8_t>& payload);

/// kQueryResult response payload (see file comment for the layout).
struct QueryResultFrame {
  bool matched = false;
  uint8_t plan = 0;  ///< PlanKind as ordinal
  uint64_t snapshot_version = 0;
  uint64_t applied_through_ts = 0;
  /// Per pattern edge, the normalized match pairs.
  std::vector<std::vector<NodePair>> edge_matches;
};

std::string EncodeQueryResult(const QueryResponse& resp);
Result<QueryResultFrame> DecodeQueryResult(
    const std::vector<uint8_t>& payload);

/// kUpdateAck payload.
std::string EncodeUpdateAck(uint64_t ts);
Result<uint64_t> DecodeUpdateAck(const std::vector<uint8_t>& payload);

}  // namespace net
}  // namespace gpmv

#endif  // GPMV_NET_PROTOCOL_H_
