/// \file event_loop.h
/// \brief Single-threaded epoll reactor underneath the net server
/// (net/server.h): fd readiness callbacks, cross-thread task posting via an
/// eventfd wakeup, and steady-clock timers (the write-coalescing flush
/// delay and parked-op retry cadence both ride on them).
///
/// Threading contract: Watch/Modify/Unwatch/RunAfter/CancelTimer and the
/// dispatched callbacks run on the loop thread only (the thread inside
/// Run()/RunOnce). Post and RequestStop are safe from any thread — they are
/// the *only* cross-thread entry points; the query-completion waiter thread
/// uses Post to hand encoded responses back to the loop.
///
/// A callback may freely Unwatch (and close) its own fd, or any other fd,
/// mid-dispatch: handlers are held by shared_ptr for the duration of the
/// call and events for since-removed fds are skipped.
///
/// Tests drive the loop deterministically with RunOnce(max_wait_ms) instead
/// of Run() — each call processes at most one epoll wait plus every posted
/// task and expired timer, so a test interleaves loop ticks with its own
/// assertions.

#ifndef GPMV_NET_EVENT_LOOP_H_
#define GPMV_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace gpmv {
namespace net {

/// See file comment.
class EventLoop {
 public:
  /// Receives the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdHandler = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must succeed
  /// before anything else is called.
  Status Init();

  /// Registers `fd` for `events` (EPOLLIN etc.); `handler` runs on the
  /// loop thread whenever the fd is ready.
  Status Watch(int fd, uint32_t events, FdHandler handler);

  /// Changes the event mask of a watched fd (pausing reads = dropping
  /// EPOLLIN, arming writes = adding EPOLLOUT).
  Status Modify(int fd, uint32_t events);

  /// Deregisters `fd`. The caller still owns (and closes) the fd.
  void Unwatch(int fd);

  /// Enqueues `fn` to run on the loop thread; wakes a blocked epoll wait.
  /// Safe from any thread.
  void Post(std::function<void()> fn);

  /// Schedules `fn` to run on the loop thread once `delay_ms` has elapsed
  /// (steady clock). Returns a timer id for CancelTimer. Loop thread only.
  uint64_t RunAfter(double delay_ms, std::function<void()> fn);

  /// Drops a pending timer; no-op when it already fired. Loop thread only.
  void CancelTimer(uint64_t id);

  /// Dispatches until RequestStop. Pending posted tasks are drained once
  /// more after the stop is observed, so a Post racing the stop is not
  /// silently lost.
  void Run();

  /// One loop tick: waits for readiness at most `max_wait_ms` (clipped to
  /// the next timer deadline; 0 polls), then dispatches fd events, posted
  /// tasks, and expired timers. Returns false once stop was requested.
  bool RunOnce(int max_wait_ms);

  /// Makes Run return after the current tick. Safe from any thread;
  /// idempotent.
  void RequestStop();

  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Fds currently watched (excluding the internal wakeup fd). Tests.
  size_t watched_fds() const { return handlers_.size(); }

 private:
  void Wakeup();
  void DrainPosted();
  void RunExpiredTimers();
  /// Epoll timeout honoring `max_wait_ms` and the earliest timer deadline.
  int TimeoutMs(int max_wait_ms) const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::atomic<bool> stop_{false};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  /// shared_ptr so a handler survives its own Unwatch mid-dispatch.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;

  /// Timers keyed by (deadline, id) — ordered map doubles as the min-heap;
  /// loop-thread-only so no lock.
  struct TimerKey {
    std::chrono::steady_clock::time_point when;
    uint64_t id;
    bool operator<(const TimerKey& o) const {
      return when != o.when ? when < o.when : id < o.id;
    }
  };
  std::map<TimerKey, std::function<void()>> timers_;
  std::unordered_map<uint64_t, TimerKey> timer_index_;  ///< id -> key
  uint64_t next_timer_id_ = 1;
};

}  // namespace net
}  // namespace gpmv

#endif  // GPMV_NET_EVENT_LOOP_H_
