/// \file parse_num.h
/// \brief Checked parsing of unsigned decimal integers for everything that
/// consumes user-controlled numeric text (CLI arguments, query-name
/// suffixes, protocol fields rendered as text).
///
/// Why not std::stoull / strtoull: stoull *throws* std::invalid_argument on
/// garbage (an uncaught abort when used on argv) and both silently accept
/// things a CLI should reject — leading whitespace, a '+' sign, "0x" hex —
/// while strtoull additionally wraps negative input ("-1" parses as 2^64-1)
/// and saturates overflow behind errno. ParseUnsigned accepts exactly the
/// strings made of decimal digits whose value fits the caller's bound, and
/// reports everything else as `false` instead of aborting.

#ifndef GPMV_COMMON_PARSE_NUM_H_
#define GPMV_COMMON_PARSE_NUM_H_

#include <cstdint>
#include <limits>
#include <string>

namespace gpmv {

/// Parses `text` as a non-negative decimal integer into `*out`. Rejects —
/// returning false with `*out` untouched — empty strings, any non-digit
/// character (signs, whitespace, hex, trailing junk), and values above
/// `max`.
inline bool ParseUnsigned(
    const std::string& text, uint64_t* out,
    uint64_t max = std::numeric_limits<uint64_t>::max()) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(ch - '0');
    if (v > (max - digit) / 10) return false;  // v * 10 + digit > max
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace gpmv

#endif  // GPMV_COMMON_PARSE_NUM_H_
