/// \file exec_context.h
/// \brief Per-thread execution context for cooperative cancellation:
/// a query deadline (QueryOptions::deadline_ms) plus the engine's fault
/// injector, installed RAII-style for the duration of one Execute call.
///
/// Why thread-local instead of parameter plumbing: the cancellation
/// checkpoints live deep inside the simulation fixpoints
/// (simulation/refinement.cc, simulation/bounded.cc) and the sharded
/// merge-round barriers (shard/shard_sim.cc), several layers below any
/// signature that could reasonably carry a deadline. All of those loops run
/// on the thread that called Execute — ParallelInvoke runs fan-out *tasks*
/// on pool workers, but every round barrier and every unsharded fixpoint
/// executes in the caller — so a thread-local installed at Execute entry is
/// visible at exactly the checkpoints that need it, with zero signature
/// churn and zero cost for code paths that never look.
///
/// Contract for checkpoints: expiry is advisory — a loop that observes
/// `DeadlineExpired()` abandons work *early* and unwinds; the caller that
/// installed the Scope (QueryEngine::Execute) re-checks at the end and
/// converts any expiry into a clean kDeadlineExceeded response, never
/// publishing or memoizing a partial result. Nested scopes restore the
/// outer context on destruction.

#ifndef GPMV_COMMON_EXEC_CONTEXT_H_
#define GPMV_COMMON_EXEC_CONTEXT_H_

#include <chrono>

#include "common/status.h"

namespace gpmv {

class FaultInjector;

namespace exec {

/// RAII install/restore of the calling thread's execution context.
/// `deadline_ms <= 0` installs "no deadline"; `fault` may be null.
class Scope {
 public:
  explicit Scope(double deadline_ms, FaultInjector* fault = nullptr);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool prev_active_;
  std::chrono::steady_clock::time_point prev_deadline_;
  FaultInjector* prev_fault_;
};

/// True when the current thread has a deadline installed.
bool DeadlineActive();

/// True when the installed deadline has passed (false with none
/// installed). One steady_clock read; loops call it every ~1k iterations,
/// not per element.
bool DeadlineExpired();

/// OK, or kDeadlineExceeded when the installed deadline has passed.
Status CheckDeadline();

/// Milliseconds until the installed deadline (clamped at 0); a huge value
/// with none installed. Bounds secondary waits (read-your-writes) so a
/// deadlined query never sleeps past its budget.
double DeadlineRemainingMs();

/// The fault injector installed for this thread (null outside a Scope or
/// when the engine has none wired).
FaultInjector* CurrentFault();

}  // namespace exec
}  // namespace gpmv

#endif  // GPMV_COMMON_EXEC_CONTEXT_H_
