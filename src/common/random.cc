#include "common/random.h"

#include <cmath>

#include "common/status.h"

namespace gpmv {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  GPMV_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  GPMV_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  GPMV_DCHECK(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  GPMV_DCHECK(n > 0);
  // Inverse-CDF approximation on the continuous Zipf density; adequate for
  // skewed label assignment in synthetic data (we do not need exact Zipf).
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;
  // Continuous inverse CDF yields a 1-indexed rank in [1, n]; shift to a
  // 0-indexed value so rank 0 is the most frequent.
  double x = std::pow(u * (std::pow(static_cast<double>(n), 1.0 - s) - 1.0) + 1.0,
                      1.0 / (1.0 - s));
  uint64_t k = static_cast<uint64_t>(x) - 1;
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace gpmv
