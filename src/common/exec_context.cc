#include "common/exec_context.h"

#include <limits>

namespace gpmv {
namespace exec {

namespace {

thread_local bool tl_deadline_active = false;
thread_local std::chrono::steady_clock::time_point tl_deadline;
thread_local FaultInjector* tl_fault = nullptr;

}  // namespace

Scope::Scope(double deadline_ms, FaultInjector* fault)
    : prev_active_(tl_deadline_active),
      prev_deadline_(tl_deadline),
      prev_fault_(tl_fault) {
  if (deadline_ms > 0.0) {
    tl_deadline_active = true;
    tl_deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(deadline_ms));
  } else {
    tl_deadline_active = false;
  }
  tl_fault = fault;
}

Scope::~Scope() {
  tl_deadline_active = prev_active_;
  tl_deadline = prev_deadline_;
  tl_fault = prev_fault_;
}

bool DeadlineActive() { return tl_deadline_active; }

bool DeadlineExpired() {
  return tl_deadline_active && std::chrono::steady_clock::now() >= tl_deadline;
}

Status CheckDeadline() {
  if (DeadlineExpired()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

double DeadlineRemainingMs() {
  if (!tl_deadline_active) return std::numeric_limits<double>::max();
  const double ms = std::chrono::duration<double, std::milli>(
                        tl_deadline - std::chrono::steady_clock::now())
                        .count();
  return ms > 0.0 ? ms : 0.0;
}

FaultInjector* CurrentFault() { return tl_fault; }

}  // namespace exec
}  // namespace gpmv
