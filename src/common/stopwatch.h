/// \file stopwatch.h
/// \brief Wall-clock timing helper used by the benchmark harness.

#ifndef GPMV_COMMON_STOPWATCH_H_
#define GPMV_COMMON_STOPWATCH_H_

#include <chrono>

namespace gpmv {

/// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpmv

#endif  // GPMV_COMMON_STOPWATCH_H_
