/// \file random.h
/// \brief Deterministic pseudo-random number generation.
///
/// All generators in the workload module take an explicit seed so that every
/// experiment in EXPERIMENTS.md is exactly reproducible. We use our own
/// splitmix64/xoshiro-style engine rather than std::mt19937 to guarantee the
/// same stream across standard library implementations.

#ifndef GPMV_COMMON_RANDOM_H_
#define GPMV_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gpmv {

/// Small, fast, seedable PRNG (xoshiro256** with splitmix64 seeding).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Draws an index in [0, weights.size()) proportional to weights.
  /// Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Approximate Zipf-distributed value in [0, n) with exponent `s`.
  uint64_t NextZipf(uint64_t n, double s);

 private:
  uint64_t state_[4];
};

}  // namespace gpmv

#endif  // GPMV_COMMON_RANDOM_H_
