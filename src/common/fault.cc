#include "common/fault.h"

#include <cstdlib>
#include <utility>

namespace gpmv {

namespace {

/// FNV-1a over the point name: decorrelates per-point RNG streams from the
/// shared injector seed.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void FaultInjector::Arm(const std::string& point, FaultPointSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  PointState& ps = points_[point];
  if (!ps.armed) armed_points_.fetch_add(1, std::memory_order_release);
  ps.spec = std::move(spec);
  ps.rng = Rng(seed_ ^ HashName(point));
  ps.hits = 0;
  ps.fired = 0;
  ps.armed = true;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_points_.fetch_sub(1, std::memory_order_release);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, ps] : points_) {
    if (ps.armed) {
      ps.armed = false;
      armed_points_.fetch_sub(1, std::memory_order_release);
    }
  }
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t at = entry.find('@');
    const size_t pct = entry.find('%');
    FaultPointSpec ps;
    std::string name;
    if (at != std::string::npos) {
      name = entry.substr(0, at);
      // `name@N[+N...]`: explicit 1-based hit indices.
      size_t p = at + 1;
      while (p < entry.size()) {
        char* parsed_end = nullptr;
        const unsigned long long n =
            std::strtoull(entry.c_str() + p, &parsed_end, 10);
        if (parsed_end == entry.c_str() + p || n == 0) {
          return Status::InvalidArgument("bad fault schedule: " + entry);
        }
        ps.fire_on.push_back(static_cast<uint64_t>(n));
        p = static_cast<size_t>(parsed_end - entry.c_str());
        if (p < entry.size()) {
          if (entry[p] != '+') {
            return Status::InvalidArgument("bad fault schedule: " + entry);
          }
          ++p;
        }
      }
      if (ps.fire_on.empty()) {
        return Status::InvalidArgument("bad fault schedule: " + entry);
      }
    } else if (pct != std::string::npos) {
      name = entry.substr(0, pct);
      char* parsed_end = nullptr;
      const double p = std::strtod(entry.c_str() + pct + 1, &parsed_end);
      if (parsed_end != entry.c_str() + entry.size() || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("bad fault probability: " + entry);
      }
      ps.probability = p;
    } else {
      return Status::InvalidArgument(
          "fault spec entry needs @N or %P: " + entry);
    }
    if (name.empty()) {
      return Status::InvalidArgument("fault spec entry missing name: " + entry);
    }
    Arm(name, std::move(ps));
  }
  return Status::OK();
}

bool FaultInjector::ShouldFail(const char* point) {
  if (armed_points_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return false;
  PointState& ps = it->second;
  const uint64_t hit = ++ps.hits;
  if (ps.spec.limit != 0 && ps.fired >= ps.spec.limit) return false;
  bool fire = false;
  for (uint64_t n : ps.spec.fire_on) {
    if (n == hit) {
      fire = true;
      break;
    }
  }
  if (!fire && ps.spec.probability > 0.0) {
    fire = ps.rng.NextBool(ps.spec.probability);
  }
  if (fire) {
    ++ps.fired;
    total_fired_.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fired(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

}  // namespace gpmv
