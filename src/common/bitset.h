/// \file bitset.h
/// \brief A runtime-sized dense bitset over 64-bit words.
///
/// The matching fixpoints keep one membership bit per candidate *rank*
/// (simulation/candidate_space.h), so the universe size is only known at
/// query time — std::bitset does not fit, and vector<char> wastes 8x the
/// cache. Only the handful of operations the fixpoints need are provided.

#ifndef GPMV_COMMON_BITSET_H_
#define GPMV_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpmv {

/// See file comment.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t n, bool value = false) { Reset(n, value); }

  /// Resizes to `n` bits, all set to `value`.
  void Reset(size_t n, bool value = false) {
    size_ = n;
    words_.assign((n + 63) / 64, value ? ~uint64_t{0} : uint64_t{0});
    if (value && n % 64 != 0) {
      words_.back() = (uint64_t{1} << (n % 64)) - 1;  // clear padding bits
    }
  }

  size_t size() const { return size_; }
  bool test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }
  void set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gpmv

#endif  // GPMV_COMMON_BITSET_H_
