/// \file fault.h
/// \brief Deterministic, schedule-driven fault injection for the failure-
/// domain test layer (tests/chaos_test.cc) and manual chaos runs
/// (`serve --fault-spec`).
///
/// A `FaultInjector` holds a set of *armed* fault points keyed by name.
/// Production code declares a point with the `GPMV_FAULT_POINT(injector,
/// "name")` macro at an abort-safe spot (before any state mutation, or at
/// a spot whose failure the surrounding recovery machinery handles); the
/// macro evaluates to true when the point should fire this hit. Each point
/// fires either on explicit 1-based hit indices (`fire_on`) — the
/// deterministic schedules the chaos suite sweeps — or with a per-hit
/// probability drawn from a *per-point* RNG seeded from the injector seed
/// and the point name, so two points never share a random stream and a
/// (seed, schedule) pair reproduces exactly.
///
/// Registered point names (grep for GPMV_FAULT_POINT; docs/ROBUSTNESS.md
/// keeps the catalog):
///   stream.apply      — fail a streamed micro-batch commit before any
///                       mutation (exercises applier retry/quarantine)
///   snapshot.refreeze — drop the incremental re-freeze fast path for one
///                       commit (degradation to a full rebuild, not an
///                       error)
///   shard.merge_round — fail a sharded evaluation at a merge-round
///                       barrier (exercises the unsharded failover)
///   executor.task     — reject a pool submission with kResourceExhausted
///   exporter.write    — fail one metrics-snapshot write
///   net.accept        — drop a just-accepted client connection
///   net.read          — fail a socket read (abrupt connection close)
///   net.write         — fail a socket flush write (abrupt close)
///
/// Cost when disabled: building with -DGPMV_FAULT_INJECTION=OFF compiles
/// every GPMV_FAULT_POINT to the constant `false` — no call, no branch on
/// the injector pointer. When compiled in but no injector is wired (the
/// default: EngineOptions::fault == nullptr), the macro is one null-pointer
/// test. With an injector attached, a disarmed injector costs one relaxed
/// atomic load; only armed points take the mutex + name lookup (fault
/// points sit on per-batch / per-round paths, never per-edge ones).
///
/// Thread safety: Arm/Disarm/ShouldFail/counter reads are safe from any
/// thread. Firing decisions serialize under the injector mutex, so an
/// explicit fire-on-Nth schedule fires exactly once even when two threads
/// race the same point.

#ifndef GPMV_COMMON_FAULT_H_
#define GPMV_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

// Default-on so a plain compile (no build-system flag) matches the CMake
// default; CMake passes =0 for -DGPMV_FAULT_INJECTION=OFF builds.
#ifndef GPMV_FAULT_INJECTION
#define GPMV_FAULT_INJECTION 1
#endif

namespace gpmv {

/// When one fault point fires. `fire_on` and `probability` compose: a hit
/// fires if its 1-based index is listed OR the per-point coin lands, and
/// `limit` caps total fires either way (0 = unlimited).
struct FaultPointSpec {
  double probability = 0.0;       ///< per-hit fire probability in [0, 1]
  std::vector<uint64_t> fire_on;  ///< explicit 1-based hit indices
  uint64_t limit = 0;             ///< max total fires (0 = unlimited)
};

/// See file comment.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms, resetting hit/fire counters) one point.
  void Arm(const std::string& point, FaultPointSpec spec);

  /// Disarms one point; its counters stay readable. No-op if unknown.
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Arms points from a CLI spec string: `;`-separated entries, each
  /// either `name@N[+N...]` (fire on the listed 1-based hits) or `name%P`
  /// (fire each hit with probability P). Example:
  /// `stream.apply@3;exporter.write%0.5`.
  Status ArmFromSpec(const std::string& spec);

  /// The hot call behind GPMV_FAULT_POINT: records a hit on `point` and
  /// decides whether it fires. Cheap (one relaxed load) while nothing is
  /// armed.
  bool ShouldFail(const char* point);

  /// Lifetime hit / fire counts for `point` (0 if never armed).
  uint64_t hits(const std::string& point) const;
  uint64_t fired(const std::string& point) const;
  /// Total fires across all points.
  uint64_t total_fired() const {
    return total_fired_.load(std::memory_order_relaxed);
  }

  /// The canonical error an injected failure surfaces as: an IOError whose
  /// message carries the recognizable "injected fault:" prefix plus the
  /// point name — chaos assertions and logs key off it.
  static Status InjectedFault(const char* point) {
    return Status::IOError(std::string("injected fault: ") + point);
  }

 private:
  struct PointState {
    FaultPointSpec spec;
    Rng rng{0};
    uint64_t hits = 0;
    uint64_t fired = 0;
    bool armed = false;
  };

  const uint64_t seed_;
  /// Count of currently armed points — the disarmed fast path.
  std::atomic<int> armed_points_{0};
  std::atomic<uint64_t> total_fired_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
};

#if GPMV_FAULT_INJECTION
/// True when the (possibly null) injector wants this hit of `point` to
/// fail. Callers decide what failing means at that site (error return,
/// degraded path, rejected submission).
#define GPMV_FAULT_POINT(injector, point) \
  ((injector) != nullptr && (injector)->ShouldFail(point))
#else
#define GPMV_FAULT_POINT(injector, point) false
#endif

}  // namespace gpmv

#endif  // GPMV_COMMON_FAULT_H_
