/// \file status.h
/// \brief RocksDB/Arrow-style error handling: `Status` for operations that
/// can fail without a value, `Result<T>` for operations that produce one.
///
/// Library code never throws on expected failures (bad input, parse errors,
/// capacity limits); it returns a `Status`/`Result` that the caller must
/// inspect. Logic errors (violated invariants) use GPMV_DCHECK and abort in
/// debug builds.

#ifndef GPMV_COMMON_STATUS_H_
#define GPMV_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>

namespace gpmv {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kCorruption,
    kIOError,
    kNotSupported,
    kInternal,
    kDeadlineExceeded,
    kResourceExhausted,
  };

  /// Default-constructed status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// Backpressure: a bounded resource (task queue, quarantined stream
  /// slice) refused new work. Retryable once the resource drains/revives.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-error holder. Accessing the value of an errored Result aborts,
/// so callers must check `ok()` (or use `ValueOrDie` semantics knowingly).
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

/// Propagate a non-OK Status to the caller.
#define GPMV_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::gpmv::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Debug-build invariant check.
#define GPMV_DCHECK(cond) assert(cond)

}  // namespace gpmv

#endif  // GPMV_COMMON_STATUS_H_
