#include "simulation/delta.h"

#include <algorithm>
#include <utility>

#include "common/bitset.h"
#include "graph/traversal.h"  // kUnbounded
#include "simulation/candidate_space.h"
#include "simulation/refinement.h"

namespace gpmv {

const char* DeltaInsertFallbackName(DeltaInsertFallback f) {
  switch (f) {
    case DeltaInsertFallback::kNone:
      return "none";
    case DeltaInsertFallback::kNotSimulationPattern:
      return "not_simulation_pattern";
    case DeltaInsertFallback::kUnmatchedRelation:
      return "unmatched_relation";
    case DeltaInsertFallback::kAreaTooLarge:
      return "area_too_large";
  }
  return "unknown";
}

namespace {

/// Longest path length (in edges) of a DAG pattern; the depth bound of the
/// addition chains. Kahn order + relaxation, O(|Vp| + |Ep|).
uint32_t LongestPatternPath(const Pattern& q) {
  const size_t np = q.num_nodes();
  std::vector<uint32_t> indeg(np, 0);
  for (uint32_t e = 0; e < q.num_edges(); ++e) ++indeg[q.edge(e).dst];
  std::vector<uint32_t> order;
  order.reserve(np);
  for (uint32_t u = 0; u < np; ++u) {
    if (indeg[u] == 0) order.push_back(u);
  }
  std::vector<uint32_t> depth(np, 0);
  uint32_t longest = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const uint32_t u = order[i];
    for (uint32_t e : q.out_edges(u)) {
      const uint32_t u2 = q.edge(e).dst;
      depth[u2] = std::max(depth[u2], depth[u] + 1);
      longest = std::max(longest, depth[u2]);
      if (--indeg[u2] == 0) order.push_back(u2);
    }
  }
  return longest;
}

bool Contains(const std::vector<NodeId>& sorted, NodeId v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

/// Bound-weighted longest path of a DAG pattern: each edge contributes its
/// hop bound, so the result limits how far (in graph hops) an addition
/// chain can extend from an inserted edge. kUnbounded when any edge on a
/// longest path carries a `*` bound.
uint32_t BoundWeightedLongestPath(const Pattern& q) {
  const size_t np = q.num_nodes();
  std::vector<uint32_t> indeg(np, 0);
  for (uint32_t e = 0; e < q.num_edges(); ++e) ++indeg[q.edge(e).dst];
  std::vector<uint32_t> order;
  order.reserve(np);
  for (uint32_t u = 0; u < np; ++u) {
    if (indeg[u] == 0) order.push_back(u);
  }
  std::vector<uint64_t> depth(np, 0);
  uint64_t longest = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const uint32_t u = order[i];
    for (uint32_t e : q.out_edges(u)) {
      const PatternEdge& pe = q.edge(e);
      const uint64_t step =
          pe.bound == kUnbounded ? kUnbounded : depth[u] + pe.bound;
      depth[pe.dst] = std::max(depth[pe.dst], step);
      longest = std::max(longest, depth[pe.dst]);
      if (--indeg[pe.dst] == 0) order.push_back(pe.dst);
    }
  }
  return longest >= kUnbounded ? kUnbounded
                               : static_cast<uint32_t>(longest);
}

/// Multi-source reverse BFS collecting every node that can reach an
/// inserted-edge source within `depth_limit` hops — the affected area.
/// Returns false (leaving `area` at the nodes visited so far) when more
/// than `cap` nodes are reached.
bool CollectAffectedArea(const GraphSnapshot& g,
                         const std::vector<NodePair>& inserted,
                         uint32_t depth_limit, size_t cap,
                         std::vector<NodeId>* area) {
  DenseBitset visited(g.num_nodes());
  area->clear();
  for (const NodePair& p : inserted) {
    if (visited.test(p.first)) continue;
    visited.set(p.first);
    area->push_back(p.first);
    if (area->size() > cap) return false;
  }
  size_t frontier_begin = 0;
  for (uint32_t depth = 0; depth < depth_limit; ++depth) {
    const size_t frontier_end = area->size();
    if (frontier_begin == frontier_end) break;
    for (size_t i = frontier_begin; i < frontier_end; ++i) {
      for (NodeId p : g.in_neighbors((*area)[i])) {
        if (visited.test(p)) continue;
        visited.set(p);
        area->push_back(p);
        if (area->size() > cap) return false;
      }
    }
    frontier_begin = frontier_end;
  }
  return true;
}

}  // namespace

Status DeltaSimulationInsert(const Pattern& q, const GraphSnapshot& g,
                             const std::vector<NodePair>& inserted,
                             const DeltaInsertOptions& opts,
                             std::vector<std::vector<NodeId>>* rel,
                             std::vector<std::vector<NodeId>>* added,
                             DeltaInsertStats* stats) {
  const size_t np = q.num_nodes();
  const size_t ne = q.num_edges();
  if (np == 0) return Status::InvalidArgument("empty pattern");
  if (rel->size() != np) {
    return Status::InvalidArgument("cached relation shape mismatch");
  }
  *stats = DeltaInsertStats{};
  added->assign(np, {});
  if (inserted.empty()) {  // nothing to do; the cached relation stands
    stats->applied = true;
    return Status::OK();
  }
  if (!q.IsSimulationPattern()) {
    stats->fallback = DeltaInsertFallback::kNotSimulationPattern;
    return Status::OK();
  }
  for (uint32_t u = 0; u < np; ++u) {
    if ((*rel)[u].empty()) {
      stats->fallback = DeltaInsertFallback::kUnmatchedRelation;
      return Status::OK();
    }
  }

  // Affected area: reverse BFS from the inserted sources, depth-bounded by
  // the pattern's longest path for DAGs (addition chains follow pattern
  // edges), unbounded — cap-limited only — around pattern cycles.
  const uint32_t depth_limit =
      q.IsDag() ? LongestPatternPath(q) : kUnbounded;
  const size_t cap =
      opts.max_area_fraction >= 1.0
          ? g.num_nodes()
          : static_cast<size_t>(opts.max_area_fraction *
                                static_cast<double>(g.num_nodes()));
  std::vector<NodeId> area;
  if (!CollectAffectedArea(g, inserted, depth_limit, cap, &area)) {
    stats->fallback = DeltaInsertFallback::kAreaTooLarge;
    stats->affected_nodes = area.size();
    return Status::OK();
  }
  stats->affected_nodes = area.size();

  // Optimistic additions: area nodes that satisfy a pattern node's search
  // condition and are not cached members yet. Ranked through a sparse
  // CandidateSpace over the delta sets only (the area is small; |V|-sized
  // inverse arrays would dominate).
  std::vector<std::vector<NodeId>> delta(np);
  for (uint32_t u = 0; u < np; ++u) {
    const PatternNode& pn = q.node(u);
    const LabelId lid =
        pn.label.empty() ? kInvalidLabel : g.FindLabel(pn.label);
    if (!pn.label.empty() && lid == kInvalidLabel) continue;
    for (NodeId v : area) {
      if (pn.MatchesData(g, v, lid) && !Contains((*rel)[u], v)) {
        delta[u].push_back(v);
      }
    }
  }
  CandidateSpace space;
  space.Reset(np, g.num_nodes(), /*dense_inverse=*/false);
  for (uint32_t u = 0; u < np; ++u) {
    stats->candidates += delta[u].size();
    space.Assign(u, std::move(delta[u]));
  }

  // Re-verify: the removal fixpoint of refinement.h restricted to the
  // delta candidates. succ_count[e][r] counts successors of the rank-r
  // delta candidate of src(e) alive in rel(dst) ∪ Δ(dst); cached members
  // are permanent support under insertions, so only Δ removals cascade.
  RankRemovalState st;
  st.Init(space);
  std::vector<std::vector<uint32_t>> succ_count(ne);
  for (uint32_t e = 0; e < ne; ++e) {
    const uint32_t u = q.edge(e).src;
    const uint32_t u2 = q.edge(e).dst;
    std::vector<uint32_t>& sc = succ_count[e];
    sc.assign(space.size(u), 0);
    for (uint32_t r = 0; r < space.size(u); ++r) {
      for (NodeId w : g.out_neighbors(space.node(u, r))) {
        if (Contains((*rel)[u2], w) ||
            space.rank(u2, w) != CandidateSpace::kNoRank) {
          ++sc[r];
        }
      }
      if (sc[r] == 0) st.Remove(u, r);
    }
  }
  while (!st.removals.empty()) {
    auto [u2, r2] = st.removals.front();
    st.removals.pop_front();
    const NodeId w = space.node(u2, r2);
    for (uint32_t e : q.in_edges(u2)) {
      const uint32_t u = q.edge(e).src;
      std::vector<uint32_t>& sc = succ_count[e];
      for (NodeId v : g.in_neighbors(w)) {
        const uint32_t r = space.rank(u, v);
        if (r == CandidateSpace::kNoRank) continue;
        if (--sc[r] == 0 && st.alive[u].test(r)) st.Remove(u, r);
      }
    }
  }

  // Merge the survivors: ranks are ascending node ids, so each added set
  // comes out sorted and the union is a linear merge.
  for (uint32_t u = 0; u < np; ++u) {
    std::vector<NodeId>& au = (*added)[u];
    au.reserve(st.alive_count[u]);
    for (uint32_t r = 0; r < space.size(u); ++r) {
      if (st.alive[u].test(r)) au.push_back(space.node(u, r));
    }
    stats->relation_added += au.size();
    if (au.empty()) continue;
    std::vector<NodeId> merged;
    merged.reserve((*rel)[u].size() + au.size());
    std::merge((*rel)[u].begin(), (*rel)[u].end(), au.begin(), au.end(),
               std::back_inserter(merged));
    (*rel)[u] = std::move(merged);
  }
  stats->applied = true;
  return Status::OK();
}

namespace {

/// BFS hop budget certifying a nonempty path of length <= bound from v via
/// one of its out-neighbors (mirrors bounded.cc).
uint32_t InnerBound(uint32_t bound) {
  return bound == kUnbounded ? kUnbounded : bound - 1;
}

}  // namespace

Status DeltaBoundedInsert(const Pattern& qb, const GraphSnapshot& g,
                          const std::vector<NodePair>& inserted,
                          const DeltaInsertOptions& opts,
                          std::vector<std::vector<NodeId>>* rel,
                          std::vector<std::vector<NodeId>>* added,
                          DeltaInsertStats* stats) {
  if (qb.IsSimulationPattern()) {
    return DeltaSimulationInsert(qb, g, inserted, opts, rel, added, stats);
  }
  const size_t np = qb.num_nodes();
  const size_t ne = qb.num_edges();
  if (np == 0) return Status::InvalidArgument("empty pattern");
  if (rel->size() != np) {
    return Status::InvalidArgument("cached relation shape mismatch");
  }
  *stats = DeltaInsertStats{};
  added->assign(np, {});
  if (inserted.empty()) {
    stats->applied = true;
    return Status::OK();
  }
  for (uint32_t u = 0; u < np; ++u) {
    if ((*rel)[u].empty()) {
      stats->fallback = DeltaInsertFallback::kUnmatchedRelation;
      return Status::OK();
    }
  }

  // Affected area: one addition-chain hop along pattern edge e covers up to
  // fe(e) graph hops, so the reverse BFS depth is the bound-weighted longest
  // pattern path — unbounded (cap-limited only) for cyclic patterns or `*`.
  const uint32_t depth_limit =
      qb.IsDag() ? BoundWeightedLongestPath(qb) : kUnbounded;
  const size_t cap =
      opts.max_area_fraction >= 1.0
          ? g.num_nodes()
          : static_cast<size_t>(opts.max_area_fraction *
                                static_cast<double>(g.num_nodes()));
  std::vector<NodeId> area;
  if (!CollectAffectedArea(g, inserted, depth_limit, cap, &area)) {
    stats->fallback = DeltaInsertFallback::kAreaTooLarge;
    stats->affected_nodes = area.size();
    return Status::OK();
  }
  stats->affected_nodes = area.size();

  // Optimistic additions: area nodes satisfying a pattern node's search
  // condition that are not cached members.
  std::vector<std::vector<NodeId>> delta(np);
  std::vector<DenseBitset> in_delta(np);
  for (uint32_t u = 0; u < np; ++u) {
    const PatternNode& pn = qb.node(u);
    const LabelId lid =
        pn.label.empty() ? kInvalidLabel : g.FindLabel(pn.label);
    in_delta[u].Reset(g.num_nodes());
    if (!pn.label.empty() && lid == kInvalidLabel) continue;
    for (NodeId v : area) {
      if (pn.MatchesData(g, v, lid) && !Contains((*rel)[u], v)) {
        delta[u].push_back(v);
        in_delta[u].set(v);
      }
    }
    std::sort(delta[u].begin(), delta[u].end());
    stats->candidates += delta[u].size();
  }

  // Re-verify fixpoint: a delta candidate v of u survives iff for every
  // pattern edge (u, u', k) some node of rel(u') ∪ Δ(u') lies within a
  // nonempty path of <= k hops from v. Cached members are permanent support
  // (bounded simulation is monotone under insertions), so only Δ removals
  // cascade; each check is a forward bounded BFS from out(v) — the bounded
  // analogue of the successor-count cascade, priced by the (capped) area.
  BfsScratch scratch(g.num_nodes());
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < ne; ++e) {
      const PatternEdge& pe = qb.edge(e);
      auto& du = delta[pe.src];
      size_t kept = 0;
      for (NodeId v : du) {
        scratch.Run(g, g.out_neighbors(v), InnerBound(pe.bound),
                    /*forward=*/true);
        bool ok = false;
        for (NodeId x : scratch.reached()) {
          if (in_delta[pe.dst].test(x) || Contains((*rel)[pe.dst], x)) {
            ok = true;
            break;
          }
        }
        if (ok) {
          du[kept++] = v;
        } else {
          in_delta[pe.src].reset(v);
          changed = true;
        }
      }
      du.resize(kept);
    }
  }

  // Merge the survivors (both sides sorted ascending).
  for (uint32_t u = 0; u < np; ++u) {
    std::vector<NodeId>& au = (*added)[u];
    au = std::move(delta[u]);
    stats->relation_added += au.size();
    if (au.empty()) continue;
    std::vector<NodeId> merged;
    merged.reserve((*rel)[u].size() + au.size());
    std::merge((*rel)[u].begin(), (*rel)[u].end(), au.begin(), au.end(),
               std::back_inserter(merged));
    (*rel)[u] = std::move(merged);
  }
  stats->applied = true;
  return Status::OK();
}

}  // namespace gpmv
