#include "simulation/refinement.h"

#include <deque>
#include <utility>

#include "common/bitset.h"
#include "common/exec_context.h"
#include "simulation/bounded.h"  // ComputeCandidateSets

namespace gpmv {

Status BuildCandidateSpace(const Pattern& q, const GraphSnapshot& g,
                           const std::vector<std::vector<NodeId>>* seed,
                           CandidateSpace* space) {
  const size_t np = q.num_nodes();
  if (np == 0) return Status::InvalidArgument("empty pattern");
  if (seed != nullptr && seed->size() != np) {
    return Status::InvalidArgument("seed relation shape mismatch");
  }
  space->Reset(np, g.num_nodes());
  if (seed != nullptr) {
    // External seeds: sort defensively (Assign deduplicates too).
    for (uint32_t u = 0; u < np; ++u) space->Assign(u, (*seed)[u]);
    return Status::OK();
  }
  std::vector<std::vector<NodeId>> cand;
  GPMV_RETURN_NOT_OK(ComputeCandidateSets(q, g, &cand));
  for (uint32_t u = 0; u < np; ++u) {
    // Candidate sets come out ascending and unique; rank = position.
    space->AssignPreranked(u, std::move(cand[u]));
  }
  return Status::OK();
}

namespace {

/// Fixpoint state; all per-candidate arrays are rank-indexed. The alive
/// bits and removal worklist are the shared RankRemovalState; the support
/// counters below encode this fixpoint's own removal conditions.
struct RefineState : RankRemovalState {
  std::vector<std::vector<uint32_t>> succ_count;  // e -> src-rank counter
  std::vector<std::vector<uint32_t>> pred_count;  // e -> dst-rank (dual)
};

}  // namespace

Status RefineSimulation(const Pattern& q, const GraphSnapshot& g,
                        const CandidateSpace& space, bool dual,
                        std::vector<std::vector<NodeId>>* sim) {
  const size_t np = q.num_nodes();
  const size_t ne = q.num_edges();
  if (np == 0) return Status::InvalidArgument("empty pattern");
  sim->assign(np, {});

  for (uint32_t u = 0; u < np; ++u) {
    if (space.size(u) == 0) return Status::OK();  // all-empty result
  }

  RefineState st;
  st.Init(space);

  // Initial support counters: every candidate of every pattern node is
  // alive, so succ_count[e][r] = |post(cand(src)[r]) ∩ cand(dst)| — one CSR
  // row walk per (edge, candidate).
  st.succ_count.resize(ne);
  if (dual) st.pred_count.resize(ne);
  for (uint32_t e = 0; e < ne; ++e) {
    const uint32_t u = q.edge(e).src;
    const uint32_t u2 = q.edge(e).dst;
    std::vector<uint32_t>& sc = st.succ_count[e];
    sc.assign(space.size(u), 0);
    for (uint32_t r = 0; r < space.size(u); ++r) {
      for (NodeId w : g.out_neighbors(space.node(u, r))) {
        if (space.rank(u2, w) != CandidateSpace::kNoRank) ++sc[r];
      }
    }
    if (dual) {
      std::vector<uint32_t>& pc = st.pred_count[e];
      pc.assign(space.size(u2), 0);
      for (uint32_t r2 = 0; r2 < space.size(u2); ++r2) {
        for (NodeId v : g.in_neighbors(space.node(u2, r2))) {
          if (space.rank(u, v) != CandidateSpace::kNoRank) ++pc[r2];
        }
      }
    }
  }

  // Queue initially violating candidates.
  for (uint32_t e = 0; e < ne; ++e) {
    const uint32_t u = q.edge(e).src;
    const uint32_t u2 = q.edge(e).dst;
    for (uint32_t r = 0; r < space.size(u); ++r) {
      if (st.succ_count[e][r] == 0) st.Remove(u, r);
    }
    if (dual) {
      for (uint32_t r2 = 0; r2 < space.size(u2); ++r2) {
        if (st.pred_count[e][r2] == 0) st.Remove(u2, r2);
      }
    }
  }

  // Propagate removals to the fixpoint. The deadline checkpoint is amortized
  // over a stride of worklist pops: one steady_clock read per ~1k removals
  // keeps the overhead invisible while bounding how long an expired query
  // can keep refining. Partial state is simply abandoned — the caller never
  // sees *sim on error.
  constexpr size_t kDeadlineStride = 1024;
  size_t pops = 0;
  while (!st.removals.empty()) {
    if (++pops % kDeadlineStride == 0) {
      GPMV_RETURN_NOT_OK(exec::CheckDeadline());
    }
    auto [u2, r2] = st.removals.front();
    st.removals.pop_front();
    if (st.alive_count[u2] == 0) return Status::OK();
    const NodeId w = space.node(u2, r2);
    // Child condition: w left sim(u2), so for every pattern edge
    // e = (u, u2), every candidate predecessor of w loses one supporter.
    for (uint32_t e : q.in_edges(u2)) {
      const uint32_t u = q.edge(e).src;
      std::vector<uint32_t>& sc = st.succ_count[e];
      for (NodeId v : g.in_neighbors(w)) {
        const uint32_t r = space.rank(u, v);
        if (r == CandidateSpace::kNoRank) continue;
        if (--sc[r] == 0 && st.alive[u].test(r)) st.Remove(u, r);
      }
    }
    if (dual) {
      // Parent condition: for every pattern edge e = (u2, u3), every
      // candidate successor of w loses one supporting predecessor.
      for (uint32_t e : q.out_edges(u2)) {
        const uint32_t u3 = q.edge(e).dst;
        std::vector<uint32_t>& pc = st.pred_count[e];
        for (NodeId x : g.out_neighbors(w)) {
          const uint32_t r3 = space.rank(u3, x);
          if (r3 == CandidateSpace::kNoRank) continue;
          if (--pc[r3] == 0 && st.alive[u3].test(r3)) st.Remove(u3, r3);
        }
      }
    }
  }
  for (uint32_t u = 0; u < np; ++u) {
    if (st.alive_count[u] == 0) return Status::OK();
  }

  // Extract: candidates are rank-ordered ascending, so each sim set comes
  // out sorted.
  for (uint32_t u = 0; u < np; ++u) {
    std::vector<NodeId>& su = (*sim)[u];
    su.reserve(st.alive_count[u]);
    for (uint32_t r = 0; r < space.size(u); ++r) {
      if (st.alive[u].test(r)) su.push_back(space.node(u, r));
    }
  }
  return Status::OK();
}

Result<MatchResult> ExtractSimulationMatches(
    const Pattern& q, const GraphSnapshot& g,
    const std::vector<std::vector<NodeId>>& sim) {
  MatchResult result = MatchResult::Empty(q);
  bool all_nonempty = !sim.empty();
  for (const auto& su : sim) all_nonempty = all_nonempty && !su.empty();
  if (!all_nonempty) return result;

  // Membership is one bit per graph node per pattern node.
  std::vector<DenseBitset> in_sim(q.num_nodes());
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    in_sim[u].Reset(g.num_nodes());
    for (NodeId v : sim[u]) in_sim[u].set(v);
  }
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    auto* se = result.mutable_edge_matches(e);
    for (NodeId v : sim[pe.src]) {
      for (NodeId w : g.out_neighbors(v)) {
        if (in_sim[pe.dst].test(w)) se->emplace_back(v, w);
      }
    }
    // Maximality of the relation guarantees non-emptiness, but guard anyway.
    if (se->empty()) return MatchResult::Empty(q);
  }
  result.set_matched(true);
  result.Normalize();
  result.DeriveNodeMatches(q);
  return result;
}

}  // namespace gpmv
