#include "simulation/strong.h"

#include <algorithm>

#include "simulation/dual.h"

namespace gpmv {

uint64_t StrongSimulationRadius(const Pattern& q) {
  const size_t n = q.num_nodes();
  if (n == 0) return 0;
  std::vector<std::vector<uint64_t>> dist(n,
                                          std::vector<uint64_t>(n, kInfDistance));
  for (size_t u = 0; u < n; ++u) dist[u][u] = 0;
  for (const PatternEdge& e : q.edges()) {
    uint64_t w = (e.bound == kUnbounded) ? kInfDistance : e.bound;
    if (w < dist[e.src][e.dst]) dist[e.src][e.dst] = dist[e.dst][e.src] = w;
  }
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInfDistance) continue;
      for (size_t j = 0; j < n; ++j) {
        if (dist[k][j] == kInfDistance) continue;
        uint64_t via = dist[i][k] + dist[k][j];
        if (via < dist[i][j]) dist[i][j] = via;
      }
    }
  }
  uint64_t diameter = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (dist[i][j] == kInfDistance) return kInfDistance;  // disconnected / `*`
      diameter = std::max(diameter, dist[i][j]);
    }
  }
  return diameter;
}

namespace {

/// Reusable per-ball scratch: O(|V|) arrays cleared via the touched lists
/// rather than refilled, so scanning many candidate centers stays linear in
/// the balls actually visited.
struct BallScratch {
  std::vector<uint64_t> dist;      // kInfDistance = unseen
  std::vector<NodeId> local_of;    // global -> local id; kInvalidNode = absent

  explicit BallScratch(size_t n)
      : dist(n, kInfDistance), local_of(n, kInvalidNode) {}
};

/// Undirected bounded BFS collecting the ball around `center` (sorted).
std::vector<NodeId> CollectBall(const GraphSnapshot& g, NodeId center,
                                uint64_t radius, BallScratch* scratch) {
  std::vector<NodeId> ball;
  if (radius == kInfDistance) {
    ball.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) ball[v] = v;
    return ball;
  }
  std::vector<NodeId> queue{center};
  scratch->dist[center] = 0;
  size_t head = 0;
  while (head < queue.size()) {
    NodeId v = queue[head++];
    uint64_t d = scratch->dist[v];
    if (d >= radius) continue;
    auto visit = [&](NodeId w) {
      if (scratch->dist[w] == kInfDistance) {
        scratch->dist[w] = d + 1;
        queue.push_back(w);
      }
    };
    for (NodeId w : g.out_neighbors(v)) visit(w);
    for (NodeId w : g.in_neighbors(v)) visit(w);
  }
  for (NodeId v : queue) scratch->dist[v] = kInfDistance;  // reset touched
  ball = std::move(queue);
  std::sort(ball.begin(), ball.end());
  return ball;
}

/// Builds the subgraph of `g` induced by sorted `nodes`, filling
/// scratch->local_of for the mapping (caller resets the touched entries).
Graph InducedSubgraph(const GraphSnapshot& g, const std::vector<NodeId>& nodes,
                      BallScratch* scratch) {
  Graph sub;
  for (NodeId v : nodes) {
    std::vector<std::string> labels;
    labels.reserve(g.labels(v).size());
    for (LabelId l : g.labels(v)) labels.push_back(g.LabelName(l));
    scratch->local_of[v] = sub.AddNode(labels, g.attrs(v));
  }
  for (NodeId v : nodes) {
    for (NodeId w : g.out_neighbors(v)) {
      if (scratch->local_of[w] != kInvalidNode) {
        sub.AddEdgeIfAbsent(scratch->local_of[v], scratch->local_of[w]);
      }
    }
  }
  return sub;
}

}  // namespace

Result<std::vector<StrongMatch>> MatchStrongSimulation(const Pattern& q,
                                                       const GraphSnapshot& g,
                                                       size_t max_matches) {
  if (q.num_nodes() == 0) return Status::InvalidArgument("empty pattern");
  std::vector<StrongMatch> matches;
  const uint64_t radius = StrongSimulationRadius(q);

  // Candidate centers: nodes matching at least one pattern node condition.
  std::vector<char> is_candidate(g.num_nodes(), 0);
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    const PatternNode& pn = q.node(u);
    LabelId lid = pn.label.empty() ? kInvalidLabel : g.FindLabel(pn.label);
    if (!pn.label.empty()) {
      if (lid == kInvalidLabel) continue;
      for (NodeId v : g.NodesWithLabel(lid)) {
        if (pn.MatchesData(g, v, lid)) is_candidate[v] = 1;
      }
    } else {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (pn.MatchesData(g, v, lid)) is_candidate[v] = 1;
      }
    }
  }

  BallScratch scratch(g.num_nodes());
  for (NodeId w = 0; w < g.num_nodes() && matches.size() < max_matches; ++w) {
    if (!is_candidate[w]) continue;
    std::vector<NodeId> ball = CollectBall(g, w, radius, &scratch);
    Graph sub = InducedSubgraph(g, ball, &scratch);

    std::vector<std::vector<NodeId>> sim;
    Status st = ComputeDualSimulationRelation(q, *sub.Freeze(), &sim);
    NodeId local_center = scratch.local_of[w];
    for (NodeId v : ball) scratch.local_of[v] = kInvalidNode;  // reset
    GPMV_RETURN_NOT_OK(st);
    bool nonempty = !sim.empty();
    for (const auto& su : sim) nonempty = nonempty && !su.empty();
    if (!nonempty) continue;

    // The center must appear in the relation.
    bool center_matched = false;
    for (const auto& su : sim) {
      if (std::binary_search(su.begin(), su.end(), local_center)) {
        center_matched = true;
        break;
      }
    }
    if (!center_matched) continue;

    StrongMatch m;
    m.center = w;
    m.relation.resize(q.num_nodes());
    for (uint32_t u = 0; u < q.num_nodes(); ++u) {
      for (NodeId lv : sim[u]) m.relation[u].push_back(ball[lv]);
      std::sort(m.relation[u].begin(), m.relation[u].end());
    }
    matches.push_back(std::move(m));
  }
  return matches;
}

Result<std::vector<StrongMatch>> MatchStrongSimulation(const Pattern& q,
                                                       const Graph& g,
                                                       size_t max_matches) {
  return MatchStrongSimulation(q, *GraphSnapshot::Build(g, g.version()),
                               max_matches);
}

}  // namespace gpmv
