/// \file refinement.h
/// \brief The shared rank-indexed refinement fixpoint behind plain and dual
/// simulation.
///
/// Both simulation flavors compute the unique maximum relation by deleting
/// violating (pattern node, candidate) pairs until stable:
///
///  * plain simulation — (u, v) needs, for every pattern edge (u, u'), a
///    data successor of v alive in sim(u') (child condition);
///  * dual simulation — additionally, for every pattern edge (u'', u), a
///    data predecessor of v alive in sim(u'') (parent condition).
///
/// The pre-refactor engines kept membership bitmaps and support counters in
/// O(|Q|·|V|) arrays zero-filled per call. This engine keys all state by
/// *candidate rank* (candidate_space.h) over a frozen CSR snapshot:
///
///  * alive(u) — one bit per rank of cand(u);
///  * per pattern edge e = (u, u'): succ_count[e][r] = |post(cand(u)[r]) ∩
///    sim(u')|, and under dual semantics pred_count[e][r'] =
///    |pre(cand(u')[r']) ∩ sim(u)|;
///  * a worklist of (pattern node, rank) removals; a removal walks the
///    CSR in-(out-)row of the removed node once, decrementing counters of
///    affected candidate ranks — counters hitting zero queue further
///    removals (Henzinger-Henzinger-Kopke style, restricted to candidates).
///
/// Counter and worklist work is proportional to Σ_e Σ_{v ∈ cand} deg(v)
/// rather than |Q|·|E|, and every counter access is an O(1) array index.
/// One O(|Q|·|V|) cost remains: filling the candidate space's dense
/// node->rank inverse (one |V|-sized array per pattern node, same order as
/// the pre-refactor membership bitmaps). An epoch-stamped reusable inverse
/// (see RankScratch in core/match_join.cc) could remove it if this path
/// ever serves huge graphs with sparse candidates.

#ifndef GPMV_SIMULATION_REFINEMENT_H_
#define GPMV_SIMULATION_REFINEMENT_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"
#include "simulation/candidate_space.h"
#include "simulation/match_result.h"

namespace gpmv {

/// The rank-indexed removal worklist shared by the full refinement fixpoint
/// below and the delta-insert re-verify fixpoint (simulation/delta.h): one
/// alive bit per candidate rank of each pattern node, live counts, and a
/// FIFO of (pattern node, rank) removals to propagate. The *conditions*
/// that trigger removals differ per fixpoint (support counters over the
/// full candidate space vs. over the delta candidates only) and stay with
/// the caller; this struct owns the idempotent remove-and-queue part.
struct RankRemovalState {
  std::vector<DenseBitset> alive;          // u -> rank bit
  std::vector<uint32_t> alive_count;       // u -> live candidates of u
  std::deque<std::pair<uint32_t, uint32_t>> removals;  // (u, rank)

  /// All candidates of `space` start alive, nothing queued.
  void Init(const CandidateSpace& space) {
    const size_t np = space.num_pattern_nodes();
    alive.resize(np);
    alive_count.resize(np);
    removals.clear();
    for (uint32_t u = 0; u < np; ++u) {
      alive[u].Reset(space.size(u), /*value=*/true);
      alive_count[u] = space.size(u);
    }
  }

  /// Kills (u, r) and queues it for propagation; no-op when already dead.
  void Remove(uint32_t u, uint32_t r) {
    if (!alive[u].test(r)) return;
    alive[u].reset(r);
    --alive_count[u];
    removals.emplace_back(u, r);
  }
};

/// Refines `space` (the per-pattern-node candidate sets) to the maximum
/// (dual-)simulation relation of `q` over `g` and writes it to `sim`
/// (sorted per pattern node; all sets empty signals "no match"). The
/// pattern's edge bounds are ignored — callers restrict to unit-bound
/// patterns (bounded simulation has its own BFS-based fixpoint).
Status RefineSimulation(const Pattern& q, const GraphSnapshot& g,
                        const CandidateSpace& space, bool dual,
                        std::vector<std::vector<NodeId>>* sim);

/// Builds the label/predicate candidate space for `q` over `g`
/// (ComputeCandidateSets, rank-assigned). When `seed` is non-null its sets
/// are used verbatim instead.
Status BuildCandidateSpace(const Pattern& q, const GraphSnapshot& g,
                           const std::vector<std::vector<NodeId>>* seed,
                           CandidateSpace* space);

/// Edge-match extraction shared by plain and dual simulation: pairs (v, w)
/// with v ∈ sim(src), (v, w) ∈ E and w ∈ sim(dst), normalized, with node
/// matches derived. All-empty `sim` yields an unmatched result.
Result<MatchResult> ExtractSimulationMatches(
    const Pattern& q, const GraphSnapshot& g,
    const std::vector<std::vector<NodeId>>& sim);

}  // namespace gpmv

#endif  // GPMV_SIMULATION_REFINEMENT_H_
