/// \file simulation.h
/// \brief Graph pattern matching via graph simulation — the `Match` baseline
/// of the paper ([16], [21]; Section II-A).
///
/// A graph G matches pattern Qs via simulation iff there is a relation
/// S ⊆ Vp × V such that every pattern node has a match and for every
/// (u, v) ∈ S and pattern edge (u, u') there is a data edge (v, v') with
/// (u', v') ∈ S. There is a unique maximum such S; Qs(G) is derived from it.
///
/// The implementation is the counter-based refinement in the spirit of
/// Henzinger-Henzinger-Kopke [21], run over a frozen CSR snapshot with all
/// state keyed by dense candidate ranks (simulation/refinement.h). Every
/// entry point takes either a `GraphSnapshot` (the fast path — freeze once,
/// query many times, as the engine does) or a `Graph` (convenience: builds
/// a one-shot snapshot internally).

#ifndef GPMV_SIMULATION_SIMULATION_H_
#define GPMV_SIMULATION_SIMULATION_H_

#include "common/status.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"

namespace gpmv {

/// Computes Qs(G) via graph simulation.
///
/// Fails with InvalidArgument when `qs` has a non-unit edge bound (use
/// MatchBoundedSimulation) or is empty.
Result<MatchResult> MatchSimulation(const Pattern& qs, const GraphSnapshot& g);
Result<MatchResult> MatchSimulation(const Pattern& qs, const Graph& g);

/// Computes only the maximum node relation sim(u) per pattern node (no edge
/// match extraction); used internally and by the dual/strong extensions.
/// `sim` is resized to qs.num_nodes(); empty overall result is signalled by
/// all-empty sets.
///
/// If `seed` is non-null it is used instead of the label index as the
/// initial candidate sets. Seeding with a superset of the maximum relation
/// (e.g. the relation before an edge deletion) yields the exact maximum
/// relation — the basis of decremental view maintenance.
Status ComputeSimulationRelation(
    const Pattern& qs, const GraphSnapshot& g,
    std::vector<std::vector<NodeId>>* sim,
    const std::vector<std::vector<NodeId>>* seed = nullptr);
Status ComputeSimulationRelation(
    const Pattern& qs, const Graph& g, std::vector<std::vector<NodeId>>* sim,
    const std::vector<std::vector<NodeId>>* seed = nullptr);

}  // namespace gpmv

#endif  // GPMV_SIMULATION_SIMULATION_H_
