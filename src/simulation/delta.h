/// \file delta.h
/// \brief Localized delta-simulation under edge *insertions* — the
/// incremental counterpart of the removal fixpoint in refinement.h, after
/// the insertion algorithms of Fan et al. (SIGMOD 2011, "Incremental graph
/// pattern matching") that the source paper delegates maintenance to.
///
/// Insertions only grow the maximum simulation relation: every member of
/// the cached relation stays a member, and any *new* member must be
/// reachable from the change. Concretely, a node can newly enter sim(u)
/// only by a chain v0 -> v1 -> ... -> vk of pre-existing data edges where
/// every vi is itself newly added along a pattern path from u and vk is the
/// source of an inserted edge (the base case: the inserted edge supplies
/// the missing successor). The chain follows pattern edges, so for DAG
/// patterns its length is bounded by the pattern's longest path — which
/// makes the *affected area* (all nodes that could newly enter any sim set)
/// a reverse BFS of that depth from the inserted-edge sources. For cyclic
/// patterns the chain can wind around pattern cycles, so the BFS is
/// depth-unbounded and only the area cap below keeps it local.
///
/// The delta fixpoint then works entirely inside the area:
///  1. *add* optimistically — every area node satisfying a pattern node's
///     search condition and not already in its sim set becomes a delta
///     candidate, rank-indexed through a CandidateSpace over the delta
///     sets only (never the |V| universe);
///  2. *re-verify* — the rank-indexed removal machinery of refinement.h
///     (RankRemovalState) prunes delta candidates lacking a successor in
///     sim(u') ∪ Δ(u') for some pattern edge (u, u'); cached members count
///     as permanent support (they never leave under insertions), so only
///     delta-candidate removals cascade.
///
/// Cost is proportional to the affected area's edge volume, not |G|. The
/// boundedness caveat of the paper applies: when the area exceeds
/// `max_area_fraction` of |V| (or the cached relation is unusable — see
/// DeltaInsertFallback), the caller must re-materialize from scratch
/// instead; DeltaSimulationInsert reports the fallback and leaves the
/// relation untouched.

#ifndef GPMV_SIMULATION_DELTA_H_
#define GPMV_SIMULATION_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"  // NodePair

namespace gpmv {

/// Why DeltaSimulationInsert declined to apply the delta.
enum class DeltaInsertFallback : uint8_t {
  kNone = 0,               ///< delta applied
  kNotSimulationPattern,   ///< pattern has a bound > 1 (paths, not edges)
  kUnmatchedRelation,      ///< cached relation is empty (collapsed); the
                           ///< pre-collapse maximum is lost, so additions
                           ///< cannot be localized
  kAreaTooLarge,           ///< affected area exceeded max_area_fraction·|V|
};

const char* DeltaInsertFallbackName(DeltaInsertFallback f);

/// Knobs for the locality heuristic.
struct DeltaInsertOptions {
  /// Re-materialize instead when the affected area exceeds this fraction of
  /// |V| (0 forces the fallback, >= 1 never falls back on area size).
  double max_area_fraction = 0.25;
};

/// Outcome counters of one DeltaSimulationInsert call.
struct DeltaInsertStats {
  bool applied = false;
  DeltaInsertFallback fallback = DeltaInsertFallback::kNone;
  size_t affected_nodes = 0;   ///< area size (nodes visited when capped)
  size_t candidates = 0;       ///< optimistic additions before re-verify
  size_t relation_added = 0;   ///< additions surviving re-verify
};

/// Updates `rel` — the cached maximum simulation relation of `q` on the
/// graph *before* the insertions — to the maximum relation on `g` (the
/// frozen snapshot *after* inserting `inserted`), touching only the
/// affected area. `q` must be a plain simulation pattern with every sim
/// set of `rel` non-empty; otherwise, or when the area cap trips, the call
/// returns OK with stats->applied == false and `rel` untouched (the caller
/// re-materializes). On success `added` holds the per-pattern-node newly
/// added members (sorted ascending, disjoint from the old sets) and `rel`
/// the merged relation — exactly what a from-scratch computation on `g`
/// would produce (property-tested in tests/delta_insert_test.cc).
Status DeltaSimulationInsert(const Pattern& q, const GraphSnapshot& g,
                             const std::vector<NodePair>& inserted,
                             const DeltaInsertOptions& opts,
                             std::vector<std::vector<NodeId>>* rel,
                             std::vector<std::vector<NodeId>>* added,
                             DeltaInsertStats* stats);

/// Bounded-pattern counterpart of DeltaSimulationInsert: updates the cached
/// maximum *bounded* simulation relation of `qb` under edge insertions.
/// Bounded simulation is equally monotone under insertions (new edges only
/// add paths, so every cached member keeps its witnesses), which gives the
/// same add-then-re-verify shape — but an addition chain hop now covers up
/// to fe(e) graph hops, so the affected area is a reverse BFS of the
/// pattern's *bound-weighted* longest-path depth (unbounded around pattern
/// cycles or `*` bounds, kept local only by the area cap), and re-verify
/// checks each delta candidate with a forward bounded BFS per pattern edge
/// (witness within fe(e) hops in rel(u') ∪ Δ(u')) instead of the rank
/// cascade over direct successors. Plain simulation patterns delegate to
/// DeltaSimulationInsert, making this a superset entry point. Fallback and
/// stats semantics match DeltaSimulationInsert; equivalence against
/// from-scratch ComputeBoundedSimulationRelation is property-tested in
/// tests/bounded_delta_test.cc.
Status DeltaBoundedInsert(const Pattern& qb, const GraphSnapshot& g,
                          const std::vector<NodePair>& inserted,
                          const DeltaInsertOptions& opts,
                          std::vector<std::vector<NodeId>>* rel,
                          std::vector<std::vector<NodeId>>* added,
                          DeltaInsertStats* stats);

}  // namespace gpmv

#endif  // GPMV_SIMULATION_DELTA_H_
