#include "simulation/candidate_space.h"

#include <algorithm>

namespace gpmv {

void CandidateSpace::Reset(size_t num_pattern_nodes, size_t num_graph_nodes,
                           bool dense_inverse) {
  num_graph_nodes_ = num_graph_nodes;
  total_ranks_ = 0;
  nodes_.assign(num_pattern_nodes, {});
  if (dense_inverse) {
    inv_.assign(num_pattern_nodes,
                std::vector<uint32_t>(num_graph_nodes, kNoRank));
  } else {
    inv_.clear();
  }
}

void CandidateSpace::Assign(uint32_t u, std::vector<NodeId> candidates) {
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  AssignPreranked(u, std::move(candidates));
}

void CandidateSpace::ResetForConcurrentAssign(size_t num_pattern_nodes,
                                              size_t num_graph_nodes) {
  num_graph_nodes_ = num_graph_nodes;
  total_ranks_ = 0;
  nodes_.assign(num_pattern_nodes, {});
  inv_.assign(num_pattern_nodes, {});  // inners filled per assignment
}

void CandidateSpace::AssignPrerankedConcurrent(uint32_t u,
                                               std::vector<NodeId> candidates) {
  std::vector<uint32_t>& inv = inv_[u];
  inv.assign(num_graph_nodes_, kNoRank);
  for (uint32_t r = 0; r < candidates.size(); ++r) {
    GPMV_DCHECK(candidates[r] < num_graph_nodes_);
    inv[candidates[r]] = r;
  }
  nodes_[u] = std::move(candidates);
}

void CandidateSpace::FinishConcurrentAssign() {
  total_ranks_ = 0;
  for (const auto& ns : nodes_) total_ranks_ += ns.size();
}

void CandidateSpace::AssignPreranked(uint32_t u,
                                     std::vector<NodeId> candidates) {
  total_ranks_ -= nodes_[u].size();
  if (!inv_.empty()) {
    std::vector<uint32_t>& inv = inv_[u];
    for (NodeId v : nodes_[u]) inv[v] = kNoRank;  // drop a prior assignment
    for (uint32_t r = 0; r < candidates.size(); ++r) {
      GPMV_DCHECK(candidates[r] < num_graph_nodes_);
      inv[candidates[r]] = r;
    }
  }
  total_ranks_ += candidates.size();
  nodes_[u] = std::move(candidates);
}

}  // namespace gpmv
