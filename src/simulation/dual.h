/// \file dual.h
/// \brief Dual simulation (Ma et al. [28]) — extension named in Section VIII.
///
/// Dual simulation strengthens graph simulation with a parent condition:
/// for (u, v) in the relation, every *outgoing* pattern edge (u, u') needs a
/// data edge (v, v') with (u', v') related, and every *incoming* pattern
/// edge (u'', u) needs a data edge (v'', v) with (u'', v'') related. The
/// maximum dual relation is unique and contained in the maximum simulation
/// relation. The paper notes all view techniques carry over; we provide the
/// matcher so views can be materialized under dual semantics as well.
///
/// Implemented on the shared rank-indexed refinement engine
/// (simulation/refinement.h) over a frozen CSR snapshot; the `Graph`
/// overloads build a one-shot snapshot internally.

#ifndef GPMV_SIMULATION_DUAL_H_
#define GPMV_SIMULATION_DUAL_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"

namespace gpmv {

/// Computes the maximum dual-simulation node relation; all-empty signals
/// "no match".
Status ComputeDualSimulationRelation(const Pattern& q, const GraphSnapshot& g,
                                     std::vector<std::vector<NodeId>>* sim);
Status ComputeDualSimulationRelation(const Pattern& q, const Graph& g,
                                     std::vector<std::vector<NodeId>>* sim);

/// Computes Q(G) under dual simulation (edge match sets are data edges whose
/// endpoints are dual-related). Requires a plain simulation pattern.
Result<MatchResult> MatchDualSimulation(const Pattern& q,
                                        const GraphSnapshot& g);
Result<MatchResult> MatchDualSimulation(const Pattern& q, const Graph& g);

}  // namespace gpmv

#endif  // GPMV_SIMULATION_DUAL_H_
