#include "simulation/match_result.h"

#include <algorithm>

namespace gpmv {

MatchResult MatchResult::Empty(const Pattern& pattern) {
  MatchResult r;
  r.Resize(pattern.num_nodes(), pattern.num_edges());
  r.matched_ = false;
  return r;
}

size_t MatchResult::TotalMatches() const {
  size_t total = 0;
  for (const auto& se : edge_matches_) total += se.size();
  return total;
}

void MatchResult::DeriveNodeMatches(const Pattern& pattern) {
  node_matches_.assign(pattern.num_nodes(), {});
  for (uint32_t u = 0; u < pattern.num_nodes(); ++u) {
    auto& su = node_matches_[u];
    if (!pattern.out_edges(u).empty()) {
      for (uint32_t e : pattern.out_edges(u)) {
        su.reserve(su.size() + edge_matches_[e].size());
        for (const NodePair& p : edge_matches_[e]) su.push_back(p.first);
      }
    } else {
      for (uint32_t e : pattern.in_edges(u)) {
        su.reserve(su.size() + edge_matches_[e].size());
        for (const NodePair& p : edge_matches_[e]) su.push_back(p.second);
      }
    }
    // The common case — one contributing edge with canonically sorted
    // matches — yields an already-sorted column; skip the sort then.
    if (!std::is_sorted(su.begin(), su.end())) {
      std::sort(su.begin(), su.end());
    }
    su.erase(std::unique(su.begin(), su.end()), su.end());
  }
}

void MatchResult::Normalize() {
  for (auto& se : edge_matches_) {
    std::sort(se.begin(), se.end());
    se.erase(std::unique(se.begin(), se.end()), se.end());
  }
  for (auto& su : node_matches_) {
    std::sort(su.begin(), su.end());
    su.erase(std::unique(su.begin(), su.end()), su.end());
  }
}

bool MatchResult::operator==(const MatchResult& other) const {
  return matched_ == other.matched_ && edge_matches_ == other.edge_matches_ &&
         node_matches_ == other.node_matches_;
}

std::string MatchResult::ToString(const Pattern& pattern,
                                  const Graph& g) const {
  if (!matched_) return "(no match)\n";
  std::string out;
  for (uint32_t e = 0; e < edge_matches_.size(); ++e) {
    const PatternEdge& pe = pattern.edge(e);
    out += "(" + pattern.node(pe.src).name + ", " + pattern.node(pe.dst).name +
           "): {";
    for (size_t i = 0; i < edge_matches_[e].size(); ++i) {
      if (i) out += ", ";
      out += "(" + g.DescribeNode(edge_matches_[e][i].first) + "->" +
             g.DescribeNode(edge_matches_[e][i].second) + ")";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace gpmv
