/// \file strong.h
/// \brief Strong simulation (Ma et al. [28]) — extension named in
/// Section VIII.
///
/// Strong simulation adds locality to dual simulation: Q strongly matches G
/// at center w if the ball B(w, dQ) — the subgraph induced by all nodes
/// within undirected distance dQ of w, where dQ is the pattern's diameter —
/// dual-matches Q with w appearing in the relation. Each matching ball
/// yields a "maximum perfect subgraph".
///
/// For bounded patterns we take dQ as the undirected *weighted* diameter
/// (edge weight = bound); a pattern containing a `*` edge makes the ball the
/// whole graph, degrading gracefully to dual simulation.

#ifndef GPMV_SIMULATION_STRONG_H_
#define GPMV_SIMULATION_STRONG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"

namespace gpmv {

/// One strong-simulation match: the ball center and the dual relation on
/// the ball, reported in *global* node ids.
struct StrongMatch {
  NodeId center = kInvalidNode;
  /// relation[u] = matches of pattern node u inside the ball (sorted).
  std::vector<std::vector<NodeId>> relation;
};

/// Computes all strong-simulation matches (up to `max_matches`).
/// Intended for moderate graphs; each candidate center costs a ball
/// extraction plus a dual-simulation run. Ball collection and subgraph
/// induction walk the frozen CSR snapshot; the `Graph` overload builds a
/// one-shot snapshot internally.
Result<std::vector<StrongMatch>> MatchStrongSimulation(
    const Pattern& q, const GraphSnapshot& g, size_t max_matches = SIZE_MAX);
Result<std::vector<StrongMatch>> MatchStrongSimulation(
    const Pattern& q, const Graph& g, size_t max_matches = SIZE_MAX);

/// The ball radius used for `q` (undirected weighted diameter;
/// kInfDistance when the pattern has a `*` edge on every undirected path
/// realizing the diameter).
uint64_t StrongSimulationRadius(const Pattern& q);

}  // namespace gpmv

#endif  // GPMV_SIMULATION_STRONG_H_
