/// \file match_result.h
/// \brief The result of evaluating a (bounded) pattern query on a graph.
///
/// Following the paper (Section II-A), the result Q(G) of a query with edge
/// set Ep is the set {(e, Se) | e ∈ Ep} derived from the unique maximum
/// match relation So, where Se is the match set of pattern edge e:
///  * graph simulation: Se ⊆ E(G) — data edges;
///  * bounded simulation: Se ⊆ V(G) × V(G) — node pairs (v, v') connected by
///    a nonempty path of length ≤ fe(e).
/// Q(G) = ∅ (matched() == false) when some pattern node has no match.
///
/// We also retain the node-level relation (sim sets) because view
/// materialization and the containment machinery need it.

#ifndef GPMV_SIMULATION_MATCH_RESULT_H_
#define GPMV_SIMULATION_MATCH_RESULT_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpmv {

/// One match of a pattern edge: a data node pair (for simulation patterns
/// always an actual data edge).
using NodePair = std::pair<NodeId, NodeId>;

/// Result of Q(G); see file comment.
class MatchResult {
 public:
  MatchResult() = default;

  /// An empty (failed) result shaped for `pattern`.
  static MatchResult Empty(const Pattern& pattern);

  /// True iff Q E_sim G (every pattern node and edge has a match).
  bool matched() const { return matched_; }
  void set_matched(bool m) { matched_ = m; }

  size_t num_pattern_edges() const { return edge_matches_.size(); }

  const std::vector<NodePair>& edge_matches(uint32_t e) const {
    return edge_matches_[e];
  }
  std::vector<NodePair>* mutable_edge_matches(uint32_t e) {
    return &edge_matches_[e];
  }

  const std::vector<NodeId>& node_matches(uint32_t u) const {
    return node_matches_[u];
  }
  std::vector<NodeId>* mutable_node_matches(uint32_t u) {
    return &node_matches_[u];
  }

  void Resize(size_t num_nodes, size_t num_edges) {
    node_matches_.resize(num_nodes);
    edge_matches_.resize(num_edges);
  }

  /// |Q(G)|: total number of entries across all match sets Se (Table I).
  size_t TotalMatches() const;

  /// Rebuilds node_matches from the edge match sets: a node matches pattern
  /// node u iff it appears in Q(G) at u's position. All matchers (direct and
  /// view-based) use this convention so results compare structurally; for
  /// pattern nodes with out-edges it coincides with the maximum relation.
  void DeriveNodeMatches(const Pattern& pattern);

  /// Sorts and deduplicates all match sets; canonical form for comparison.
  void Normalize();

  /// Structural equality on normalized results.
  bool operator==(const MatchResult& other) const;

  /// Renders match sets with node names resolved via `pattern` and `g`
  /// (mirrors the tables in the paper's examples).
  std::string ToString(const Pattern& pattern, const Graph& g) const;

 private:
  bool matched_ = false;
  std::vector<std::vector<NodePair>> edge_matches_;
  std::vector<std::vector<NodeId>> node_matches_;
};

}  // namespace gpmv

#endif  // GPMV_SIMULATION_MATCH_RESULT_H_
