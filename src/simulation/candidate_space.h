/// \file candidate_space.h
/// \brief Dense candidate ranks per pattern node.
///
/// Every matching fixpoint in this library maintains per-(pattern node,
/// data node) state — membership bits, support counters, match-set
/// occurrence counts. Keying that state by NodeId forces either hash maps
/// (the pre-refactor MatchJoin engine: an unordered_map lookup per pair per
/// scan dominated the engine's warm path) or O(|Q|·|V|) arrays (the
/// pre-refactor simulation engines: zero-filled per call even when
/// candidates were sparse).
///
/// `CandidateSpace` assigns each pattern node u's candidate set a *dense
/// rank*: candidates are sorted ascending and numbered 0..|cand(u)|-1. All
/// fixpoint state then lives in flat arrays indexed by rank — O(1)
/// unhashed access, proportional to the candidate count rather than |V| —
/// and rank->node / node->rank translate in O(1) via the stored forward and
/// inverse maps. The inverse map is one |V|-sized array per pattern node
/// (uint32), filled once at build; `kNoRank` marks non-candidates, which is
/// also how fixpoints test candidate membership in O(1).
///
/// Rank ↔ node id mapping contract:
///
///  * ranks are *per pattern node*: rank r of u and rank r of u' are
///    unrelated; always pair a rank with its pattern node;
///  * `node(u, rank(u, v)) == v` for every candidate v of u, and
///    `rank(u, node(u, r)) == r` for every r < size(u) — except after
///    `AssignPreranked` in sparse mode with caller-ordered candidates,
///    where rank() is unusable for that node (see its comment);
///  * via `Assign`/`AssignPreranked`-from-sorted-input, rank order equals
///    ascending node-id order, so iterating ranks 0..size(u)-1 yields a
///    sorted candidate list — matchers rely on this to emit sorted sim
///    sets without re-sorting (the sharded engine additionally relies on
///    it to give each shard's owned ranks a deterministic order);
///  * a built space is immutable-in-practice: every accessor is const and
///    any number of threads may translate concurrently (the engine shares
///    one space across all per-shard fixpoint tasks of a query).

#ifndef GPMV_SIMULATION_CANDIDATE_SPACE_H_
#define GPMV_SIMULATION_CANDIDATE_SPACE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gpmv {

/// See file comment.
class CandidateSpace {
 public:
  static constexpr uint32_t kNoRank = static_cast<uint32_t>(-1);

  /// Clears and re-shapes for `num_pattern_nodes` pattern nodes over a
  /// graph universe of node ids [0, num_graph_nodes).
  ///
  /// With `dense_inverse` (the default), node->rank lookups are O(1)
  /// through one |V|-sized array per pattern node — right for fixpoints
  /// that translate ranks inside their inner loops (the simulation
  /// refinement resolves a rank per traversed data edge). Without it, no
  /// per-universe arrays are allocated and rank() binary-searches the
  /// sorted candidate list — right when ranks are resolved only during
  /// setup (MatchJoin translates each merged pair once, then runs entirely
  /// on ranks; zero-filling |V|-sized arrays per query would dominate).
  void Reset(size_t num_pattern_nodes, size_t num_graph_nodes,
             bool dense_inverse = true);

  /// Assigns pattern node u's candidates (deduplicated and sorted
  /// internally; ids must be < num_graph_nodes). Overwrites any previous
  /// assignment for u.
  void Assign(uint32_t u, std::vector<NodeId> candidates);

  /// Installs candidates whose dense numbering the caller already fixed:
  /// rank r = candidates[r], no sorting, no deduplication (the caller
  /// guarantees uniqueness — e.g. first-appearance numbering during
  /// MatchJoin's pair translation, which keeps init O(pairs) instead of
  /// O(pairs log pairs)). With a dense inverse the inverse is updated; in
  /// sparse mode rank() must not be called for u afterwards (its binary
  /// search needs ascending order) — such callers keep their own map.
  void AssignPreranked(uint32_t u, std::vector<NodeId> candidates);

  /// Fan-out building (the sharded engine): shapes the space like
  /// Reset(dense_inverse = true) but defers the per-pattern-node inverse
  /// fills to AssignPrerankedConcurrent, which distinct threads may call
  /// for *distinct* `u` concurrently (each touches only u's slots, and the
  /// |V|-sized kNoRank fill — the expensive part of a dense Reset — runs
  /// inside the per-node call). Call FinishConcurrentAssign after joining;
  /// until then total_ranks() is unspecified. Every pattern node must be
  /// assigned before rank() is consulted.
  void ResetForConcurrentAssign(size_t num_pattern_nodes,
                                size_t num_graph_nodes);
  void AssignPrerankedConcurrent(uint32_t u, std::vector<NodeId> candidates);
  void FinishConcurrentAssign();

  size_t num_pattern_nodes() const { return nodes_.size(); }

  /// |cand(u)|.
  uint32_t size(uint32_t u) const {
    return static_cast<uint32_t>(nodes_[u].size());
  }

  /// Total ranks across all pattern nodes (the fixpoint state footprint).
  size_t total_ranks() const { return total_ranks_; }

  /// Candidates of u in rank order (ascending node id).
  const std::vector<NodeId>& nodes(uint32_t u) const { return nodes_[u]; }

  NodeId node(uint32_t u, uint32_t rank) const { return nodes_[u][rank]; }

  /// Rank of `v` in u's candidate set; kNoRank when v is not a candidate.
  /// O(1) with a dense inverse, O(log c) otherwise.
  uint32_t rank(uint32_t u, NodeId v) const {
    if (!inv_.empty()) return inv_[u][v];
    const std::vector<NodeId>& ns = nodes_[u];
    auto it = std::lower_bound(ns.begin(), ns.end(), v);
    return (it != ns.end() && *it == v)
               ? static_cast<uint32_t>(it - ns.begin())
               : kNoRank;
  }

 private:
  size_t num_graph_nodes_ = 0;
  size_t total_ranks_ = 0;
  std::vector<std::vector<NodeId>> nodes_;    // u -> rank -> node
  std::vector<std::vector<uint32_t>> inv_;    // u -> node -> rank (optional)
};

}  // namespace gpmv

#endif  // GPMV_SIMULATION_CANDIDATE_SPACE_H_
