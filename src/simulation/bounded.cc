#include "simulation/bounded.h"

#include <algorithm>

#include "common/bitset.h"
#include "common/exec_context.h"
#include "graph/traversal.h"

namespace gpmv {

Status ComputeCandidateSets(const Pattern& q, const Graph& g,
                            std::vector<std::vector<NodeId>>* cand) {
  if (q.num_nodes() == 0) return Status::InvalidArgument("empty pattern");
  cand->assign(q.num_nodes(), {});
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    const PatternNode& pn = q.node(u);
    LabelId lid = pn.label.empty() ? kInvalidLabel : g.FindLabel(pn.label);
    auto& cu = (*cand)[u];
    if (!pn.label.empty()) {
      if (lid == kInvalidLabel) continue;
      for (NodeId v : g.NodesWithLabel(lid)) {
        if (pn.MatchesData(g, v, lid)) cu.push_back(v);
      }
      std::sort(cu.begin(), cu.end());
    } else {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (pn.MatchesData(g, v, lid)) cu.push_back(v);
      }
    }
  }
  return Status::OK();
}

void ComputeCandidateSet(const Pattern& q, uint32_t u, const GraphSnapshot& g,
                         std::vector<NodeId>* cand) {
  const PatternNode& pn = q.node(u);
  LabelId lid = pn.label.empty() ? kInvalidLabel : g.FindLabel(pn.label);
  cand->clear();
  if (!pn.label.empty()) {
    if (lid == kInvalidLabel) return;
    // Label ranges are stored ascending, so the set comes out sorted.
    for (NodeId v : g.NodesWithLabel(lid)) {
      if (pn.MatchesData(g, v, lid)) cand->push_back(v);
    }
  } else {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (pn.MatchesData(g, v, lid)) cand->push_back(v);
    }
  }
}

Status ComputeCandidateSets(const Pattern& q, const GraphSnapshot& g,
                            std::vector<std::vector<NodeId>>* cand) {
  if (q.num_nodes() == 0) return Status::InvalidArgument("empty pattern");
  cand->assign(q.num_nodes(), {});
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    ComputeCandidateSet(q, u, g, &(*cand)[u]);
  }
  return Status::OK();
}

namespace {

/// BFS hop budget that certifies "some out-neighbor of v reaches the target
/// set within bound-1 hops", i.e. v reaches it by a nonempty path within
/// `bound` hops.
uint32_t InnerBound(uint32_t bound) {
  return bound == kUnbounded ? kUnbounded : bound - 1;
}

}  // namespace

Status ComputeBoundedSimulationRelation(
    const Pattern& qb, const GraphSnapshot& g,
    std::vector<std::vector<NodeId>>* sim,
    const std::vector<std::vector<NodeId>>* seed) {
  if (seed != nullptr) {
    if (seed->size() != qb.num_nodes()) {
      return Status::InvalidArgument("seed relation shape mismatch");
    }
    *sim = *seed;
  } else {
    GPMV_RETURN_NOT_OK(ComputeCandidateSets(qb, g, sim));
  }
  const size_t np = qb.num_nodes();
  for (uint32_t u = 0; u < np; ++u) {
    if ((*sim)[u].empty()) {
      sim->assign(np, {});
      return Status::OK();
    }
  }

  BfsScratch scratch(g.num_nodes());
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < qb.num_edges(); ++e) {
      // One BFS + filter pass per pattern edge is the unit of work here, so
      // a per-edge deadline checkpoint bounds overrun to a single pass.
      // Partial *sim is abandoned on error, never returned.
      GPMV_RETURN_NOT_OK(exec::CheckDeadline());
      const PatternEdge& pe = qb.edge(e);
      auto& su = (*sim)[pe.src];
      const auto& st = (*sim)[pe.dst];
      // Which nodes reach sim(dst) by a nonempty path of length <= bound?
      // Exactly those with an out-neighbor within bound-1 reverse hops.
      scratch.Run(g, st, InnerBound(pe.bound), /*forward=*/false);
      size_t kept = 0;
      for (NodeId v : su) {
        bool ok = false;
        for (NodeId w : g.out_neighbors(v)) {
          if (scratch.Reached(w)) {
            ok = true;
            break;
          }
        }
        if (ok) su[kept++] = v;
      }
      if (kept != su.size()) {
        su.resize(kept);
        changed = true;
        if (su.empty()) {
          sim->assign(np, {});
          return Status::OK();
        }
      }
    }
  }
  return Status::OK();
}

Status ComputeBoundedSimulationRelation(
    const Pattern& qb, const Graph& g, std::vector<std::vector<NodeId>>* sim,
    const std::vector<std::vector<NodeId>>* seed) {
  return ComputeBoundedSimulationRelation(
      qb, *GraphSnapshot::Build(g, g.version()), sim, seed);
}

namespace {

/// Extraction shared by both bounded matchers: match sets + exact shortest
/// distances from a final relation.
Result<MatchResult> ExtractBoundedMatches(
    const Pattern& qb, const GraphSnapshot& g,
    const std::vector<std::vector<NodeId>>& sim,
    std::vector<std::vector<uint32_t>>* distances) {
  MatchResult result = MatchResult::Empty(qb);
  if (distances != nullptr) distances->assign(qb.num_edges(), {});
  bool all_nonempty = !sim.empty();
  for (const auto& su : sim) all_nonempty = all_nonempty && !su.empty();
  if (!all_nonempty) return result;

  std::vector<DenseBitset> in_sim(qb.num_nodes());
  for (uint32_t u = 0; u < qb.num_nodes(); ++u) {
    in_sim[u].Reset(g.num_nodes());
    for (NodeId v : sim[u]) in_sim[u].set(v);
  }

  BfsScratch scratch(g.num_nodes());
  for (uint32_t e = 0; e < qb.num_edges(); ++e) {
    // Extraction runs one BFS per candidate — the most expensive tail of a
    // bounded query — so it honors the deadline at the same per-edge grain
    // as the fixpoint above.
    GPMV_RETURN_NOT_OK(exec::CheckDeadline());
    const PatternEdge& pe = qb.edge(e);
    auto* se = result.mutable_edge_matches(e);
    std::vector<uint32_t>* de =
        distances != nullptr ? &(*distances)[e] : nullptr;
    for (NodeId v : sim[pe.src]) {
      // Shortest nonempty path v ~> x has length 1 + (shortest path from an
      // out-neighbor of v to x), so BFS from out(v) with budget bound-1.
      scratch.Run(g, g.out_neighbors(v), InnerBound(pe.bound),
                  /*forward=*/true);
      for (NodeId x : scratch.reached()) {
        if (!in_sim[pe.dst].test(x)) continue;
        se->emplace_back(v, x);
        if (de != nullptr) de->push_back(scratch.dist(x) + 1);
      }
    }
    if (se->empty()) {
      if (distances != nullptr) distances->assign(qb.num_edges(), {});
      return MatchResult::Empty(qb);
    }
    // Sort pairs (and distances in lockstep) into canonical order.
    std::vector<size_t> order(se->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*se)[a] < (*se)[b];
    });
    std::vector<NodePair> sorted_pairs(se->size());
    for (size_t i = 0; i < order.size(); ++i) sorted_pairs[i] = (*se)[order[i]];
    *se = std::move(sorted_pairs);
    if (de != nullptr) {
      std::vector<uint32_t> sorted_dist(de->size());
      for (size_t i = 0; i < order.size(); ++i) sorted_dist[i] = (*de)[order[i]];
      *de = std::move(sorted_dist);
    }
  }
  result.set_matched(true);
  result.DeriveNodeMatches(qb);
  return result;
}

}  // namespace

Result<MatchResult> MatchBoundedSimulation(
    const Pattern& qb, const GraphSnapshot& g,
    std::vector<std::vector<uint32_t>>* distances,
    const std::vector<std::vector<NodeId>>* seed) {
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(ComputeBoundedSimulationRelation(qb, g, &sim, seed));
  return ExtractBoundedMatches(qb, g, sim, distances);
}

Result<MatchResult> MatchBoundedSimulation(
    const Pattern& qb, const Graph& g,
    std::vector<std::vector<uint32_t>>* distances,
    const std::vector<std::vector<NodeId>>* seed) {
  return MatchBoundedSimulation(qb, *GraphSnapshot::Build(g, g.version()),
                                distances, seed);
}

namespace {

/// Pre-refactor extraction kept verbatim on the mutable graph, used only by
/// the naive baseline so the equivalence property tests compare the
/// snapshot-based fast path against a fully independent pipeline (candidate
/// enumeration, fixpoint, *and* extraction).
Result<MatchResult> ExtractBoundedMatchesOnGraph(
    const Pattern& qb, const Graph& g,
    const std::vector<std::vector<NodeId>>& sim,
    std::vector<std::vector<uint32_t>>* distances) {
  MatchResult result = MatchResult::Empty(qb);
  if (distances != nullptr) distances->assign(qb.num_edges(), {});
  bool all_nonempty = !sim.empty();
  for (const auto& su : sim) all_nonempty = all_nonempty && !su.empty();
  if (!all_nonempty) return result;

  std::vector<std::vector<char>> in_sim(qb.num_nodes(),
                                        std::vector<char>(g.num_nodes(), 0));
  for (uint32_t u = 0; u < qb.num_nodes(); ++u) {
    for (NodeId v : sim[u]) in_sim[u][v] = 1;
  }

  BfsScratch scratch(g.num_nodes());
  for (uint32_t e = 0; e < qb.num_edges(); ++e) {
    const PatternEdge& pe = qb.edge(e);
    auto* se = result.mutable_edge_matches(e);
    std::vector<uint32_t>* de =
        distances != nullptr ? &(*distances)[e] : nullptr;
    for (NodeId v : sim[pe.src]) {
      scratch.Run(g, g.out_neighbors(v), InnerBound(pe.bound),
                  /*forward=*/true);
      for (NodeId x : scratch.reached()) {
        if (!in_sim[pe.dst][x]) continue;
        se->emplace_back(v, x);
        if (de != nullptr) de->push_back(scratch.dist(x) + 1);
      }
    }
    if (se->empty()) {
      if (distances != nullptr) distances->assign(qb.num_edges(), {});
      return MatchResult::Empty(qb);
    }
    std::vector<size_t> order(se->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*se)[a] < (*se)[b];
    });
    std::vector<NodePair> sorted_pairs(se->size());
    for (size_t i = 0; i < order.size(); ++i) sorted_pairs[i] = (*se)[order[i]];
    *se = std::move(sorted_pairs);
    if (de != nullptr) {
      std::vector<uint32_t> sorted_dist(de->size());
      for (size_t i = 0; i < order.size(); ++i) sorted_dist[i] = (*de)[order[i]];
      *de = std::move(sorted_dist);
    }
  }
  result.set_matched(true);
  result.DeriveNodeMatches(qb);
  return result;
}

}  // namespace

Result<MatchResult> MatchBoundedSimulationNaive(
    const Pattern& qb, const Graph& g,
    std::vector<std::vector<uint32_t>>* distances) {
  // The pre-refactor reference: runs entirely on the mutable graph so the
  // equivalence property tests exercise an independent code path.
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(ComputeCandidateSets(qb, g, &sim));
  const size_t np = qb.num_nodes();
  bool any_empty = false;
  for (const auto& su : sim) any_empty = any_empty || su.empty();
  if (any_empty) {
    sim.assign(np, {});
    return ExtractBoundedMatchesOnGraph(qb, g, sim, distances);
  }

  // Literal fixpoint of [16]: every iteration re-checks every candidate of
  // every pattern edge with its own bounded BFS.
  BfsScratch scratch(g.num_nodes());
  std::vector<std::vector<char>> in_sim(np,
                                        std::vector<char>(g.num_nodes(), 0));
  auto rebuild_bitmap = [&](uint32_t u) {
    std::fill(in_sim[u].begin(), in_sim[u].end(), 0);
    for (NodeId v : sim[u]) in_sim[u][v] = 1;
  };
  for (uint32_t u = 0; u < np; ++u) rebuild_bitmap(u);

  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < qb.num_edges(); ++e) {
      const PatternEdge& pe = qb.edge(e);
      auto& su = sim[pe.src];
      size_t kept = 0;
      for (NodeId v : su) {
        // Per-candidate forward BFS — the cubic term.
        scratch.Run(g, g.out_neighbors(v), InnerBound(pe.bound),
                    /*forward=*/true);
        bool ok = false;
        for (NodeId x : scratch.reached()) {
          if (in_sim[pe.dst][x]) {
            ok = true;
            break;
          }
        }
        if (ok) su[kept++] = v;
      }
      if (kept != su.size()) {
        su.resize(kept);
        rebuild_bitmap(pe.src);
        changed = true;
        if (su.empty()) {
          sim.assign(np, {});
          return ExtractBoundedMatchesOnGraph(qb, g, sim, distances);
        }
      }
    }
  }
  return ExtractBoundedMatchesOnGraph(qb, g, sim, distances);
}

}  // namespace gpmv
