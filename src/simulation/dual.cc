#include "simulation/dual.h"

#include <algorithm>
#include <deque>

#include "simulation/bounded.h"  // ComputeCandidateSets

namespace gpmv {

namespace {

struct DualState {
  std::vector<std::vector<char>> in_sim;
  std::vector<std::vector<uint32_t>> succ_count;  // |post(v) ∩ sim(u)|
  std::vector<std::vector<uint32_t>> pred_count;  // |pre(v) ∩ sim(u)|
  std::vector<size_t> sim_size;
  std::vector<std::vector<uint32_t>> pattern_preds;  // u' -> {u : (u,u') ∈ Ep}
  std::vector<std::vector<uint32_t>> pattern_succs;  // u' -> {u : (u',u) ∈ Ep}
  std::deque<std::pair<uint32_t, NodeId>> removals;

  void Remove(uint32_t u, NodeId v) {
    if (!in_sim[u][v]) return;
    in_sim[u][v] = 0;
    --sim_size[u];
    removals.emplace_back(u, v);
  }
};

}  // namespace

Status ComputeDualSimulationRelation(const Pattern& q, const Graph& g,
                                     std::vector<std::vector<NodeId>>* sim) {
  std::vector<std::vector<NodeId>> cand;
  GPMV_RETURN_NOT_OK(ComputeCandidateSets(q, g, &cand));
  const size_t np = q.num_nodes();
  const size_t n = g.num_nodes();
  sim->assign(np, {});
  for (const auto& cu : cand) {
    if (cu.empty()) return Status::OK();
  }

  DualState st;
  st.in_sim.assign(np, std::vector<char>(n, 0));
  st.sim_size.assign(np, 0);
  for (uint32_t u = 0; u < np; ++u) {
    for (NodeId v : cand[u]) st.in_sim[u][v] = 1;
    st.sim_size[u] = cand[u].size();
  }

  st.succ_count.assign(np, std::vector<uint32_t>(n, 0));
  st.pred_count.assign(np, std::vector<uint32_t>(n, 0));
  for (uint32_t u = 0; u < np; ++u) {
    for (NodeId w : cand[u]) {
      for (NodeId v : g.in_neighbors(w)) ++st.succ_count[u][v];
      for (NodeId v : g.out_neighbors(w)) ++st.pred_count[u][v];
    }
  }

  st.pattern_preds.assign(np, {});
  st.pattern_succs.assign(np, {});
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    st.pattern_preds[q.edge(e).dst].push_back(q.edge(e).src);
    st.pattern_succs[q.edge(e).src].push_back(q.edge(e).dst);
  }
  for (auto& v : st.pattern_preds) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : st.pattern_succs) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Initial violations.
  for (uint32_t u = 0; u < np; ++u) {
    for (NodeId v : cand[u]) {
      bool ok = true;
      for (uint32_t u2 : st.pattern_succs[u]) {
        if (st.succ_count[u2][v] == 0) { ok = false; break; }
      }
      if (ok) {
        for (uint32_t u0 : st.pattern_preds[u]) {
          if (st.pred_count[u0][v] == 0) { ok = false; break; }
        }
      }
      if (!ok) st.Remove(u, v);
    }
  }

  // Propagate.
  while (!st.removals.empty()) {
    auto [u2, w] = st.removals.front();
    st.removals.pop_front();
    if (st.sim_size[u2] == 0) return Status::OK();
    for (NodeId v : g.in_neighbors(w)) {
      if (--st.succ_count[u2][v] == 0) {
        for (uint32_t u : st.pattern_preds[u2]) st.Remove(u, v);
      }
    }
    for (NodeId x : g.out_neighbors(w)) {
      if (--st.pred_count[u2][x] == 0) {
        for (uint32_t u : st.pattern_succs[u2]) st.Remove(u, x);
      }
    }
  }
  for (uint32_t u = 0; u < np; ++u) {
    if (st.sim_size[u] == 0) return Status::OK();
  }

  for (uint32_t u = 0; u < np; ++u) {
    auto& su = (*sim)[u];
    su.reserve(st.sim_size[u]);
    for (NodeId v = 0; v < n; ++v) {
      if (st.in_sim[u][v]) su.push_back(v);
    }
  }
  return Status::OK();
}

Result<MatchResult> MatchDualSimulation(const Pattern& q, const Graph& g) {
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument("dual simulation needs unit bounds");
  }
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(ComputeDualSimulationRelation(q, g, &sim));

  MatchResult result = MatchResult::Empty(q);
  bool all_nonempty = !sim.empty();
  for (const auto& su : sim) all_nonempty = all_nonempty && !su.empty();
  if (!all_nonempty) return result;

  std::vector<std::vector<char>> in_sim(q.num_nodes(),
                                        std::vector<char>(g.num_nodes(), 0));
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    for (NodeId v : sim[u]) in_sim[u][v] = 1;
  }
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    auto* se = result.mutable_edge_matches(e);
    for (NodeId v : sim[pe.src]) {
      for (NodeId w : g.out_neighbors(v)) {
        if (in_sim[pe.dst][w]) se->emplace_back(v, w);
      }
    }
    if (se->empty()) return MatchResult::Empty(q);
  }
  result.set_matched(true);
  result.Normalize();
  result.DeriveNodeMatches(q);
  return result;
}

}  // namespace gpmv
