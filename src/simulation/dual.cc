#include "simulation/dual.h"

#include "simulation/refinement.h"

namespace gpmv {

Status ComputeDualSimulationRelation(const Pattern& q, const GraphSnapshot& g,
                                     std::vector<std::vector<NodeId>>* sim) {
  CandidateSpace space;
  GPMV_RETURN_NOT_OK(BuildCandidateSpace(q, g, /*seed=*/nullptr, &space));
  return RefineSimulation(q, g, space, /*dual=*/true, sim);
}

Status ComputeDualSimulationRelation(const Pattern& q, const Graph& g,
                                     std::vector<std::vector<NodeId>>* sim) {
  return ComputeDualSimulationRelation(q, *GraphSnapshot::Build(g, g.version()),
                                       sim);
}

Result<MatchResult> MatchDualSimulation(const Pattern& q,
                                        const GraphSnapshot& g) {
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument("dual simulation needs unit bounds");
  }
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(ComputeDualSimulationRelation(q, g, &sim));
  return ExtractSimulationMatches(q, g, sim);
}

Result<MatchResult> MatchDualSimulation(const Pattern& q, const Graph& g) {
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument("dual simulation needs unit bounds");
  }
  return MatchDualSimulation(q, *GraphSnapshot::Build(g, g.version()));
}

}  // namespace gpmv
