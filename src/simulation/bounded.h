/// \file bounded.h
/// \brief Bounded simulation — the `BMatch` baseline of the paper
/// ([16]; Section VI).
///
/// A bounded pattern edge e = (u, u') with fe(e) = k matches a *nonempty
/// path* of length ≤ k (any length for `*`). The maximum relation is
/// computed by a fixpoint that prunes candidates using multi-source reverse
/// bounded BFS; match sets (node pairs with their exact shortest distances)
/// are extracted with forward bounded BFS per candidate source. The
/// extraction distances also feed the distance index I(V) used by
/// BMatchJoin (Section VI-A).
///
/// All traversals run over a frozen CSR snapshot; `Graph` overloads build a
/// one-shot snapshot internally (freeze once and reuse on hot paths).
/// `MatchBoundedSimulationNaive` deliberately stays on the mutable graph —
/// it is the pre-refactor cubic reference the equivalence property tests
/// compare against.

#ifndef GPMV_SIMULATION_BOUNDED_H_
#define GPMV_SIMULATION_BOUNDED_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"

namespace gpmv {

/// Label/predicate candidate sets cand(u) for each pattern node, with no
/// structural pruning. Candidates are listed in ascending node id.
Status ComputeCandidateSets(const Pattern& q, const Graph& g,
                            std::vector<std::vector<NodeId>>* cand);
Status ComputeCandidateSets(const Pattern& q, const GraphSnapshot& g,
                            std::vector<std::vector<NodeId>>* cand);

/// Single-pattern-node slice of ComputeCandidateSets (same label/predicate
/// logic, ascending output) — the unit the sharded engine fans out per
/// pattern node while building a candidate space.
void ComputeCandidateSet(const Pattern& q, uint32_t u, const GraphSnapshot& g,
                         std::vector<NodeId>* cand);

/// Computes the maximum bounded-simulation node relation sim(u) per pattern
/// node. All-empty sets signal "no match". A non-null `seed` replaces the
/// label-index candidates (see ComputeSimulationRelation); each seed set
/// must be sorted.
Status ComputeBoundedSimulationRelation(
    const Pattern& qb, const GraphSnapshot& g,
    std::vector<std::vector<NodeId>>* sim,
    const std::vector<std::vector<NodeId>>* seed = nullptr);
Status ComputeBoundedSimulationRelation(
    const Pattern& qb, const Graph& g, std::vector<std::vector<NodeId>>* sim,
    const std::vector<std::vector<NodeId>>* seed = nullptr);

/// Computes Qb(G) via bounded simulation. If `distances` is non-null it is
/// filled parallel to the result's edge matches: (*distances)[e][i] is the
/// shortest-path length realizing edge_matches(e)[i] (1 for plain edges).
/// Accepts plain simulation patterns as the special case fe(e) = 1.
/// `seed` optionally replaces the candidate sets (see
/// ComputeBoundedSimulationRelation).
Result<MatchResult> MatchBoundedSimulation(
    const Pattern& qb, const GraphSnapshot& g,
    std::vector<std::vector<uint32_t>>* distances = nullptr,
    const std::vector<std::vector<NodeId>>* seed = nullptr);
Result<MatchResult> MatchBoundedSimulation(
    const Pattern& qb, const Graph& g,
    std::vector<std::vector<uint32_t>>* distances = nullptr,
    const std::vector<std::vector<NodeId>>* seed = nullptr);

/// The paper's cubic baseline ([16]): a recompute-from-scratch fixpoint
/// that re-validates every candidate with its own forward bounded BFS per
/// iteration — O(|Q||G|²)-style behavior. Produces exactly the same result
/// as MatchBoundedSimulation (property-tested); it exists as the `BMatch`
/// baseline the evaluation figures compare against and as the snapshot-free
/// reference implementation for the dense-path equivalence tests.
Result<MatchResult> MatchBoundedSimulationNaive(
    const Pattern& qb, const Graph& g,
    std::vector<std::vector<uint32_t>>* distances = nullptr);

}  // namespace gpmv

#endif  // GPMV_SIMULATION_BOUNDED_H_
