#include "simulation/simulation.h"

#include "simulation/refinement.h"

namespace gpmv {

Status ComputeSimulationRelation(const Pattern& qs, const GraphSnapshot& g,
                                 std::vector<std::vector<NodeId>>* sim,
                                 const std::vector<std::vector<NodeId>>* seed) {
  CandidateSpace space;
  GPMV_RETURN_NOT_OK(BuildCandidateSpace(qs, g, seed, &space));
  return RefineSimulation(qs, g, space, /*dual=*/false, sim);
}

Status ComputeSimulationRelation(const Pattern& qs, const Graph& g,
                                 std::vector<std::vector<NodeId>>* sim,
                                 const std::vector<std::vector<NodeId>>* seed) {
  return ComputeSimulationRelation(qs, *GraphSnapshot::Build(g, g.version()),
                                   sim, seed);
}

Result<MatchResult> MatchSimulation(const Pattern& qs,
                                    const GraphSnapshot& g) {
  if (!qs.IsSimulationPattern()) {
    return Status::InvalidArgument(
        "pattern has non-unit bounds; use MatchBoundedSimulation");
  }
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(ComputeSimulationRelation(qs, g, &sim));
  return ExtractSimulationMatches(qs, g, sim);
}

Result<MatchResult> MatchSimulation(const Pattern& qs, const Graph& g) {
  if (!qs.IsSimulationPattern()) {
    return Status::InvalidArgument(
        "pattern has non-unit bounds; use MatchBoundedSimulation");
  }
  return MatchSimulation(qs, *GraphSnapshot::Build(g, g.version()));
}

}  // namespace gpmv
