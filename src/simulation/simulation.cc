#include "simulation/simulation.h"

#include <algorithm>
#include <deque>

namespace gpmv {

namespace {

/// Shared state of the refinement.
struct SimState {
  const Pattern& q;
  const Graph& g;
  // in_sim[u][v] — is (u, v) currently in the relation?
  std::vector<std::vector<char>> in_sim;
  // succ_count[u][v] — |post(v) ∩ sim(u)|.
  std::vector<std::vector<uint32_t>> succ_count;
  // sim_size[u] — current |sim(u)|.
  std::vector<size_t> sim_size;
  // Pattern predecessors per pattern node (dedup'd).
  std::vector<std::vector<uint32_t>> pattern_preds;
  std::deque<std::pair<uint32_t, NodeId>> removals;

  SimState(const Pattern& q_in, const Graph& g_in) : q(q_in), g(g_in) {}
};

/// Seeds sim(u) with the label/predicate candidates, or from `seed` when
/// provided.
bool SeedCandidates(SimState* st,
                    const std::vector<std::vector<NodeId>>* seed) {
  const Pattern& q = st->q;
  const Graph& g = st->g;
  const size_t np = q.num_nodes();
  const size_t n = g.num_nodes();
  st->in_sim.assign(np, std::vector<char>(n, 0));
  st->sim_size.assign(np, 0);
  if (seed != nullptr) {
    for (uint32_t u = 0; u < np; ++u) {
      for (NodeId v : (*seed)[u]) {
        if (!st->in_sim[u][v]) {
          st->in_sim[u][v] = 1;
          ++st->sim_size[u];
        }
      }
      if (st->sim_size[u] == 0) return false;
    }
    return true;
  }
  for (uint32_t u = 0; u < np; ++u) {
    const PatternNode& pn = q.node(u);
    LabelId lid = pn.label.empty() ? kInvalidLabel : g.FindLabel(pn.label);
    if (!pn.label.empty()) {
      if (lid == kInvalidLabel) return false;  // label absent from G
      for (NodeId v : g.NodesWithLabel(lid)) {
        if (pn.MatchesData(g, v, lid)) {
          st->in_sim[u][v] = 1;
          ++st->sim_size[u];
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        if (pn.MatchesData(g, v, lid)) {
          st->in_sim[u][v] = 1;
          ++st->sim_size[u];
        }
      }
    }
    if (st->sim_size[u] == 0) return false;
  }
  return true;
}

/// Builds succ_count and queues initially-invalid pairs.
void InitCounters(SimState* st) {
  const Pattern& q = st->q;
  const Graph& g = st->g;
  const size_t np = q.num_nodes();
  const size_t n = g.num_nodes();

  st->succ_count.assign(np, std::vector<uint32_t>(n, 0));
  for (uint32_t u = 0; u < np; ++u) {
    for (NodeId w = 0; w < n; ++w) {
      if (!st->in_sim[u][w]) continue;
      for (NodeId v : g.in_neighbors(w)) ++st->succ_count[u][v];
    }
  }

  st->pattern_preds.assign(np, {});
  for (uint32_t u = 0; u < np; ++u) {
    for (uint32_t e : q.in_edges(u)) {
      st->pattern_preds[u].push_back(q.edge(e).src);
    }
    auto& ps = st->pattern_preds[u];
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
  }

  // A pair (u, v) is invalid when some pattern edge (u, u') has no
  // supporting data successor: succ_count[u'][v] == 0.
  for (uint32_t u = 0; u < np; ++u) {
    for (uint32_t e : q.out_edges(u)) {
      uint32_t u2 = q.edge(e).dst;
      for (NodeId v = 0; v < n; ++v) {
        if (st->in_sim[u][v] && st->succ_count[u2][v] == 0) {
          st->in_sim[u][v] = 0;
          --st->sim_size[u];
          st->removals.emplace_back(u, v);
        }
      }
    }
  }
}

/// Propagates queued removals to a fixpoint. Returns false if some sim set
/// drained completely.
bool Refine(SimState* st) {
  const Pattern& q = st->q;
  const Graph& g = st->g;
  while (!st->removals.empty()) {
    auto [u2, w] = st->removals.front();
    st->removals.pop_front();
    if (st->sim_size[u2] == 0) return false;
    // (u2, w) left the relation: successors counters of w's predecessors
    // w.r.t. pattern node u2 drop by one.
    for (NodeId v : g.in_neighbors(w)) {
      if (--st->succ_count[u2][v] != 0) continue;
      // v no longer has any successor matching u2: every pattern node u
      // with an edge u -> u2 loses v.
      for (uint32_t u : st->pattern_preds[u2]) {
        if (st->in_sim[u][v]) {
          st->in_sim[u][v] = 0;
          --st->sim_size[u];
          if (st->sim_size[u] == 0) return false;
          st->removals.emplace_back(u, v);
        }
      }
    }
  }
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    if (st->sim_size[u] == 0) return false;
  }
  return true;
}

}  // namespace

Status ComputeSimulationRelation(const Pattern& qs, const Graph& g,
                                 std::vector<std::vector<NodeId>>* sim,
                                 const std::vector<std::vector<NodeId>>* seed) {
  if (qs.num_nodes() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  if (seed != nullptr && seed->size() != qs.num_nodes()) {
    return Status::InvalidArgument("seed relation shape mismatch");
  }
  sim->assign(qs.num_nodes(), {});

  SimState st(qs, g);
  if (!SeedCandidates(&st, seed)) return Status::OK();  // all-empty result
  InitCounters(&st);
  if (!Refine(&st)) return Status::OK();

  for (uint32_t u = 0; u < qs.num_nodes(); ++u) {
    auto& su = (*sim)[u];
    su.reserve(st.sim_size[u]);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (st.in_sim[u][v]) su.push_back(v);
    }
  }
  return Status::OK();
}

Result<MatchResult> MatchSimulation(const Pattern& qs, const Graph& g) {
  if (!qs.IsSimulationPattern()) {
    return Status::InvalidArgument(
        "pattern has non-unit bounds; use MatchBoundedSimulation");
  }
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(ComputeSimulationRelation(qs, g, &sim));

  MatchResult result = MatchResult::Empty(qs);
  bool all_nonempty = !sim.empty();
  for (const auto& su : sim) all_nonempty = all_nonempty && !su.empty();
  if (!all_nonempty) return result;

  // Membership bitmap per pattern node for O(1) edge-extraction checks.
  std::vector<std::vector<char>> in_sim(qs.num_nodes(),
                                        std::vector<char>(g.num_nodes(), 0));
  for (uint32_t u = 0; u < qs.num_nodes(); ++u) {
    for (NodeId v : sim[u]) in_sim[u][v] = 1;
  }
  for (uint32_t e = 0; e < qs.num_edges(); ++e) {
    const PatternEdge& pe = qs.edge(e);
    auto* se = result.mutable_edge_matches(e);
    for (NodeId v : sim[pe.src]) {
      for (NodeId w : g.out_neighbors(v)) {
        if (in_sim[pe.dst][w]) se->emplace_back(v, w);
      }
    }
    // Maximality of the relation guarantees non-emptiness, but guard anyway.
    if (se->empty()) return MatchResult::Empty(qs);
  }
  result.set_matched(true);
  result.Normalize();
  result.DeriveNodeMatches(qs);
  return result;
}

}  // namespace gpmv
