/// \file bmatch_join.h
/// \brief BMatchJoin — answering *bounded* pattern queries using views
/// (paper Section VI-A, Theorem 9).
///
/// BMatchJoin is MatchJoin plus the distance index I(V): view extensions
/// materialize, for every pair (v, v'), the exact shortest distance d from
/// v to v' in G, and the merge step keeps a pair for query edge e only when
/// d ≤ fe(e). The shared engine in match_join.cc performs exactly that
/// lookup in columnar form — ViewEdgeExtension stores the distances
/// parallel to the pairs, so the merge reads d without any hashing; that is
/// why the plain forwarding overload suffices for correctness (the Fig. 8
/// bounded benchmarks run through it).
///
/// The second overload additionally consults the paper's explicit
/// 〈(v, v'), d〉 table (distance_index.h): every merged pair of every
/// bounded query edge is re-checked against I(V) with an O(1) lookup.
/// Because materialized distances are exact shortest-path lengths in G,
/// the table and the columnar data must agree; a pair whose indexed
/// distance violates the query bound (or which the index does not know)
/// means the index was built over different extensions than the join is
/// reading, and the join fails with Internal rather than return matches
/// that violate fe(e).

#ifndef GPMV_CORE_BMATCH_JOIN_H_
#define GPMV_CORE_BMATCH_JOIN_H_

#include "core/distance_index.h"
#include "core/match_join.h"

namespace gpmv {

/// Computes Qb(G) from view extensions only; `qb` may carry arbitrary edge
/// bounds (a plain pattern is accepted as the fe(e) = 1 special case).
/// Bound checking uses the distances materialized inside the extensions —
/// the columnar equivalent of the I(V) lookup (see file comment).
Result<MatchResult> BMatchJoin(const Pattern& qb, const ViewSet& views,
                               const std::vector<ViewExtension>& exts,
                               const ContainmentMapping& mapping,
                               const MatchJoinOptions& opts = {},
                               MatchJoinStats* stats = nullptr);

/// As above, but additionally bound-checks every result pair of every
/// bounded query edge against the explicit distance index (built over the
/// same `exts`, e.g. via DistanceIndex::Build). Fails with Internal when
/// the index disagrees with the materialized distances.
Result<MatchResult> BMatchJoin(const Pattern& qb, const ViewSet& views,
                               const std::vector<ViewExtension>& exts,
                               const ContainmentMapping& mapping,
                               const DistanceIndex& index,
                               const MatchJoinOptions& opts = {},
                               MatchJoinStats* stats = nullptr);

}  // namespace gpmv

#endif  // GPMV_CORE_BMATCH_JOIN_H_
