/// \file bmatch_join.h
/// \brief BMatchJoin — answering *bounded* pattern queries using views
/// (paper Section VI-A, Theorem 9).
///
/// BMatchJoin is MatchJoin plus the distance index I(V): view extensions
/// materialize, for every pair (v, v'), the exact shortest distance d from
/// v to v' in G, and the merge step keeps a pair for query edge e only when
/// d ≤ fe(e). The shared engine in match_join.cc performs exactly that, so
/// this entry point validates the bounded setting and forwards; it also
/// exposes the standalone DistanceIndex structure (distance_index.h) for
/// callers that want the paper's 〈(v, v'), d〉 lookup table explicitly.

#ifndef GPMV_CORE_BMATCH_JOIN_H_
#define GPMV_CORE_BMATCH_JOIN_H_

#include "core/match_join.h"

namespace gpmv {

/// Computes Qb(G) from view extensions only; `qb` may carry arbitrary edge
/// bounds (a plain pattern is accepted as the fe(e) = 1 special case).
Result<MatchResult> BMatchJoin(const Pattern& qb, const ViewSet& views,
                               const std::vector<ViewExtension>& exts,
                               const ContainmentMapping& mapping,
                               const MatchJoinOptions& opts = {},
                               MatchJoinStats* stats = nullptr);

}  // namespace gpmv

#endif  // GPMV_CORE_BMATCH_JOIN_H_
