/// \file match_join.h
/// \brief MatchJoin — answering (bounded) pattern queries using materialized
/// views (paper Fig. 2, Section III; BMatchJoin, Section VI-A).
///
/// Given Q ⊑ V with mapping λ, MatchJoin computes Q(G) from V(G) alone:
///
///  1. *Merge*: Se := ∪_{e' ∈ λ(e)} Se', filtered to pairs that satisfy the
///     query's own node conditions (checked against extension snapshots)
///     and, for bounded edges, whose materialized distance d ≤ fe(e) — the
///     distance-index lookup of BMatchJoin. V(G) pairs are real graph
///     edges/paths, so the union is a superset of the true match set.
///  2. *Fixpoint*: repeatedly delete pairs (v, x) of Se, e = (u, u2), whose
///     source v no longer covers every pattern edge out of u or whose
///     target x no longer covers every pattern edge out of u2 (the
///     simulation condition, lines 5-11 of Fig. 2), until stable. The
///     survivors are exactly Q(G).
///
/// Scheduling implements the paper's bottom-up optimization: pattern edges
/// are processed in ascending SCC-rank order (rank of the target node) via
/// a priority worklist, so child match sets stabilize before parents are
/// scanned; with `use_rank_order = false` the engine degrades to the
/// repeated-full-pass fixpoint (`MatchJoin_nopt` in Fig. 8(f)). Per-edge
/// visit counts are reported in MatchJoinStats.
///
/// The fixpoint state is keyed by *dense candidate ranks*
/// (simulation/candidate_space.h): after the merge, every pattern node's
/// candidates get ranks 0..c-1, match sets become rank pairs, and the
/// out/in support counters become flat arrays — profiling showed the
/// previous per-edge `unordered_map<NodeId, uint32_t>` counters dominating
/// the engine's warm path. `use_dense_ranks = false` selects that original
/// hash-map engine, kept as the equivalence-test reference and microbench
/// baseline.
///
/// The same engine serves plain and bounded patterns: a plain edge is just
/// fe(e) = 1 and simulation views materialize d = 1. `BMatchJoin` (in
/// bmatch_join.h) is the bounded entry point.

#ifndef GPMV_CORE_MATCH_JOIN_H_
#define GPMV_CORE_MATCH_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/containment.h"
#include "core/view.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"

namespace gpmv {

/// Which matching semantics the fixpoint enforces.
enum class JoinSemantics {
  kSimulation,      ///< forward-only (the paper's default)
  kDualSimulation,  ///< forward + backward ([28]; Section VIII extension)
};

/// Knobs for the MatchJoin engine.
struct MatchJoinOptions {
  /// Process edges bottom-up by SCC rank (Section III optimization). When
  /// false, run repeated full passes in edge order until a fixpoint.
  bool use_rank_order = true;
  /// Matching semantics (see DualMatchJoin).
  JoinSemantics semantics = JoinSemantics::kSimulation;
  /// Run the fixpoint on dense candidate ranks (candidate_space.h): match
  /// sets become rank pairs and the per-edge out/in support counters flat
  /// uint32 arrays indexed by rank — O(1) unhashed access on the warm path.
  /// When false, fall back to the pre-refactor engine keyed by NodeId
  /// through unordered_maps; it computes identical results and exists as
  /// the reference baseline for the equivalence property tests and the
  /// dense-vs-hash microbench (bench/fixpoint_microbench.cc).
  bool use_dense_ranks = true;
};

/// Observability counters for tests, the Fig. 8(f) ablation, and the
/// engine's perf telemetry (engine_throughput prints the aggregate).
struct MatchJoinStats {
  size_t initial_pairs = 0;       ///< pairs after merge + filters
  size_t removed_pairs = 0;       ///< deletions during the fixpoint
  size_t match_set_visits = 0;    ///< match-set scans (Lemma 2 metric)
  size_t filtered_by_condition = 0;  ///< pairs dropped by query conditions
  size_t filtered_by_distance = 0;   ///< pairs dropped by d > fe(e)
  /// Fixpoint scheduling steps: worklist pops under rank order, full sweeps
  /// under the unoptimized schedule. A regression here means the fixpoint
  /// converges more slowly (more re-scans per query).
  size_t fixpoint_iterations = 0;
  /// Support counters that drained to zero during the fixpoint — each one
  /// is a (pattern node, candidate) invalidation cascading into pair
  /// removals; tracks how much of the merged input the fixpoint discards.
  size_t counters_zeroed = 0;
  /// Dense ranks allocated across pattern nodes (0 on the hash-map path);
  /// the footprint of the rank-indexed fixpoint state.
  size_t candidate_ranks = 0;

  /// Field-wise sum, for aggregating per-query stats into engine totals.
  void Merge(const MatchJoinStats& other) {
    initial_pairs += other.initial_pairs;
    removed_pairs += other.removed_pairs;
    match_set_visits += other.match_set_visits;
    filtered_by_condition += other.filtered_by_condition;
    filtered_by_distance += other.filtered_by_distance;
    fixpoint_iterations += other.fixpoint_iterations;
    counters_zeroed += other.counters_zeroed;
    candidate_ranks += other.candidate_ranks;
  }
};

/// Computes Q(G) from view extensions only.
///
/// `mapping` must come from a containment check of `q` against `views` with
/// contained == true; `exts` must hold one extension per view of `views`
/// (extensions of unselected views are not read and may be empty).
Result<MatchResult> MatchJoin(const Pattern& q, const ViewSet& views,
                              const std::vector<ViewExtension>& exts,
                              const ContainmentMapping& mapping,
                              const MatchJoinOptions& opts = {},
                              MatchJoinStats* stats = nullptr);

/// Answers `q` under *dual simulation* from the same (simulation-
/// materialized) view extensions and (simulation-based) containment mapping:
/// the dual relation is contained in the simulation relation, so the merged
/// view pairs over-approximate it on every graph, and a fixpoint that also
/// enforces the backward (parent) condition converges to exactly the dual
/// result — Section VIII's claim that the techniques carry over to dual
/// simulation, made concrete. Requires a unit-bound pattern.
Result<MatchResult> DualMatchJoin(const Pattern& q, const ViewSet& views,
                                  const std::vector<ViewExtension>& exts,
                                  const ContainmentMapping& mapping,
                                  const MatchJoinOptions& opts = {},
                                  MatchJoinStats* stats = nullptr);

}  // namespace gpmv

#endif  // GPMV_CORE_MATCH_JOIN_H_
