/// \file rewriting.h
/// \brief Maximally contained rewriting — Section VIII names "efficient
/// algorithms for computing maximally contained rewriting using views, when
/// a pattern query is not contained in available views" as the second open
/// issue; this module provides the natural solution for simulation-based
/// patterns.
///
/// When Q !⊑ V, no equivalent rewriting exists (Theorem 1), but the subset
/// of query edges covered by view matches still admits view-only answering.
/// We compute the *maximal view-answerable subquery* Q′ of Q:
///
///   1. covered := ∪_V M^Q_V; drop uncovered edges;
///   2. re-derive the view matches on the induced subquery — dropping edges
///      weakens the query's structure, so certificates that relied on
///      removed edges may disappear — and iterate to a fixpoint.
///
/// The result Q′ is the largest edge-subgraph of Q answerable from V alone,
/// and Q′(G) (computed by MatchJoin) is a *contained rewriting* in the
/// query-answering sense: for every kept edge e, the true match set Se of Q
/// satisfies Se ⊆ S′e — Q′ only removes constraints — so Q′(G) is a sound
/// over-approximation that never misses a real match, and is exact when
/// Q ⊑ V.

#ifndef GPMV_CORE_REWRITING_H_
#define GPMV_CORE_REWRITING_H_

#include <vector>

#include "common/status.h"
#include "core/containment.h"
#include "core/match_join.h"
#include "core/view.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"

namespace gpmv {

/// The outcome of maximally contained rewriting.
struct PartialAnswer {
  /// True iff Q ⊑ V (the rewriting is the whole query and the answer exact).
  bool exact = false;
  /// Original-query edge ids answerable from the views (sorted).
  std::vector<uint32_t> covered_edges;
  /// Original-query edge ids that no view covers (sorted).
  std::vector<uint32_t> uncovered_edges;
  /// The maximal view-answerable subquery (empty when nothing is covered).
  Pattern subquery;
  /// subquery edge index -> original query edge index.
  std::vector<uint32_t> original_edge_of;
  /// Q′(G): match sets per *subquery* edge; for each kept edge this is a
  /// superset of the true Se of Q on G.
  MatchResult result;
};

/// Computes the maximal view-answerable subquery of `q` and evaluates it
/// from `exts`. Never fails on uncovered queries — it degrades to an empty
/// rewriting (`covered_edges` empty, unmatched result).
Result<PartialAnswer> MaximallyContainedRewriting(
    const Pattern& q, const ViewSet& views,
    const std::vector<ViewExtension>& exts,
    const MatchJoinOptions& opts = {});

}  // namespace gpmv

#endif  // GPMV_CORE_REWRITING_H_
