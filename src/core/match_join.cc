#include "core/match_join.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "graph/scc.h"
#include "simulation/candidate_space.h"

namespace gpmv {

namespace {

/// Merge step shared by both engines (Fig. 2 line 1, plus the
/// distance-index and predicate filters): Se := ∪_{e' ∈ λ(e)} Se',
/// restricted to pairs satisfying the query's own conditions. Each output
/// set is sorted and deduplicated.
Status MergeViewPairs(const Pattern& q, const ViewSet& views,
                      const std::vector<ViewExtension>& exts,
                      const ContainmentMapping& mapping,
                      MatchJoinStats* stats,
                      std::vector<std::vector<NodePair>>* merged) {
  if (!mapping.contained) {
    return Status::InvalidArgument("query is not contained in the views");
  }
  if (mapping.lambda.size() != q.num_edges()) {
    return Status::InvalidArgument("mapping does not fit this query");
  }
  if (exts.size() != views.card()) {
    return Status::InvalidArgument("one extension per view required");
  }

  merged->assign(q.num_edges(), {});
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& qe = q.edge(e);
    const PatternNode& src_node = q.node(qe.src);
    const PatternNode& dst_node = q.node(qe.dst);
    auto& pairs = (*merged)[e];

    for (const ViewEdgeRef& ref : mapping.lambda[e]) {
      if (ref.view >= exts.size()) {
        return Status::InvalidArgument("mapping references unknown view");
      }
      const ViewExtension& ext = exts[ref.view];
      if (ref.edge >= ext.num_view_edges()) {
        return Status::InvalidArgument("mapping references unknown view edge");
      }
      const ViewEdgeExtension& vee = ext.edge(ref.edge);

      // Hoist the pair filters: the distance check only bites when the view
      // edge's bound is looser than the query's, and the node-condition
      // check only when the query is *stricter* than the view (predicate
      // views, or a label the view does not already require). In the common
      // warm-path case neither applies and the merge is a bulk append with
      // no per-pair snapshot lookups.
      const PatternEdge& ve = views.view(ref.view).pattern.edge(ref.edge);
      const PatternNode& vsrc = views.view(ref.view).pattern.node(ve.src);
      const PatternNode& vdst = views.view(ref.view).pattern.node(ve.dst);
      const bool check_distance = qe.bound != kUnbounded && ve.bound > qe.bound;
      const bool check_src = !src_node.pred.IsTrivial() ||
                             (!src_node.label.empty() &&
                              src_node.label != vsrc.label);
      const bool check_dst = !dst_node.pred.IsTrivial() ||
                             (!dst_node.label.empty() &&
                              dst_node.label != vdst.label);
      if (!check_distance && !check_src && !check_dst) {
        pairs.insert(pairs.end(), vee.pairs.begin(), vee.pairs.end());
        continue;
      }

      for (size_t i = 0; i < vee.pairs.size(); ++i) {
        const NodePair& p = vee.pairs[i];
        // Distance-index check: materialized shortest distance must satisfy
        // the *query's* bound (views may be looser).
        if (check_distance && vee.distances[i] > qe.bound) {
          if (stats != nullptr) ++stats->filtered_by_distance;
          continue;
        }
        // Query node conditions, evaluated on cached snapshots — the query
        // may be stricter than the view (predicate views).
        const NodeSnapshot* s1 = ext.snapshot(p.first);
        const NodeSnapshot* s2 = ext.snapshot(p.second);
        GPMV_DCHECK(s1 != nullptr && s2 != nullptr);
        bool ok =
            (!check_src ||
             ((src_node.label.empty() || s1->HasLabel(src_node.label)) &&
              (src_node.pred.IsTrivial() || src_node.pred.Eval(s1->attrs)))) &&
            (!check_dst ||
             ((dst_node.label.empty() || s2->HasLabel(dst_node.label)) &&
              (dst_node.pred.IsTrivial() || dst_node.pred.Eval(s2->attrs))));
        if (!ok) {
          if (stats != nullptr) ++stats->filtered_by_condition;
          continue;
        }
        pairs.push_back(p);
      }
    }
    // A single contributing view edge arrives sorted and deduplicated
    // (extensions store canonical order, and filtering preserves it).
    if (mapping.lambda[e].size() > 1) {
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    }
    if (stats != nullptr) stats->initial_pairs += pairs.size();
  }
  return Status::OK();
}

/// r(e = (u', u)) = r(u): rank of the target node (bottom-up scheduling).
std::vector<uint32_t> EdgeSccRanks(const Pattern& q) {
  std::vector<uint32_t> node_rank = ComputeSccRanks(q.Adjacency());
  std::vector<uint32_t> edge_rank(q.num_edges());
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    edge_rank[e] = node_rank[q.edge(e).dst];
  }
  return edge_rank;
}

/// The Fig. 2 fixpoint schedules, shared by both engines. `Engine` provides
/// ScanEdge(e) -> changed and EdgeEmpty(e).
template <typename Engine>
bool RunFixpoint(Engine& eng, const Pattern& q, const MatchJoinOptions& opts,
                 MatchJoinStats* stats) {
  const bool dual = opts.semantics == JoinSemantics::kDualSimulation;
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    if (eng.EdgeEmpty(e)) return false;
  }
  if (!opts.use_rank_order) {
    // The unoptimized fixpoint of Fig. 2: sweep all match sets until no
    // sweep changes anything.
    bool changed = true;
    while (changed) {
      changed = false;
      if (stats != nullptr) ++stats->fixpoint_iterations;
      for (uint32_t e = 0; e < q.num_edges(); ++e) {
        if (eng.ScanEdge(e)) {
          changed = true;
          if (eng.EdgeEmpty(e)) return false;
        }
      }
    }
    return true;
  }

  // Priority worklist keyed by (rank, edge id); when Se changes, every edge
  // whose pair validity consults out-counts of e's source is re-queued.
  const std::vector<uint32_t> edge_rank = EdgeSccRanks(q);
  std::set<std::pair<uint32_t, uint32_t>> pending;
  std::vector<char> queued(q.num_edges(), 1);
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    pending.emplace(edge_rank[e], e);
  }
  while (!pending.empty()) {
    uint32_t e = pending.begin()->second;
    pending.erase(pending.begin());
    queued[e] = 0;
    if (stats != nullptr) ++stats->fixpoint_iterations;
    if (!eng.ScanEdge(e)) continue;
    if (eng.EdgeEmpty(e)) return false;
    // Changed out-counts affect node validity at e's source; under dual
    // semantics, changed in-counts affect validity at e's target.
    std::vector<uint32_t> touched{q.edge(e).src};
    if (dual) touched.push_back(q.edge(e).dst);
    for (uint32_t u : touched) {
      for (const auto& deps : {q.out_edges(u), q.in_edges(u)}) {
        for (uint32_t f : deps) {
          if (!queued[f]) {
            queued[f] = 1;
            pending.emplace(edge_rank[f], f);
          }
        }
      }
    }
  }
  return true;
}

/// Thread-local node->rank scratch shared across MatchJoin calls: epoch
/// stamping makes "new candidate space" an O(1) counter bump instead of a
/// clear, so assigning ranks is one flat array probe per pair endpoint —
/// no sorting, no hashing, no per-query |V|-sized zero-fill. Grows to the
/// largest node universe seen on the thread (8 bytes per node).
struct RankScratch {
  std::vector<uint32_t> rank;
  std::vector<uint64_t> epoch;
  uint64_t current = 0;

  void Grow(size_t universe) {
    if (rank.size() < universe) {
      rank.resize(universe, 0);
      epoch.resize(universe, 0);
    }
  }
};

/// The dense-rank fixpoint: match sets are rank pairs, support counters
/// flat arrays indexed by candidate rank (see match_join.h file comment).
class DenseJoinEngine {
 public:
  DenseJoinEngine(const Pattern& q, const MatchJoinOptions& opts,
                  MatchJoinStats* stats)
      : q_(q), opts_(opts), stats_(stats) {}

  void Init(std::vector<std::vector<NodePair>> merged) {
    const size_t np = q_.num_nodes();
    const size_t ne = q_.num_edges();

    // Universe: the largest node id appearing in any merged pair.
    size_t universe = 0;
    for (const auto& pairs : merged) {
      for (const NodePair& p : pairs) {
        universe = std::max(universe,
                            static_cast<size_t>(std::max(p.first, p.second)) + 1);
      }
    }

    edges_.resize(ne);
    for (uint32_t e = 0; e < ne; ++e) {
      edges_[e].pairs = std::move(merged[e]);
      edges_[e].rpairs.resize(edges_[e].pairs.size());
    }

    // Candidates of pattern node u: every node appearing at u's position in
    // some merged pair of an edge incident to u, ranked in first-appearance
    // order — one scratch probe per endpoint, O(total pairs) overall.
    static thread_local RankScratch scratch;
    scratch.Grow(universe);
    space_.Reset(np, universe, /*dense_inverse=*/false);
    std::vector<NodeId> nodes;
    for (uint32_t u = 0; u < np; ++u) {
      ++scratch.current;
      auto rank_of = [&](NodeId v) {
        if (scratch.epoch[v] != scratch.current) {
          scratch.epoch[v] = scratch.current;
          scratch.rank[v] = static_cast<uint32_t>(nodes.size());
          nodes.push_back(v);
        }
        return scratch.rank[v];
      };
      for (uint32_t e : q_.out_edges(u)) {
        EdgeState& st = edges_[e];
        for (size_t i = 0; i < st.pairs.size(); ++i) {
          st.rpairs[i].first = rank_of(st.pairs[i].first);
        }
      }
      for (uint32_t e : q_.in_edges(u)) {
        EdgeState& st = edges_[e];
        for (size_t i = 0; i < st.pairs.size(); ++i) {
          st.rpairs[i].second = rank_of(st.pairs[i].second);
        }
      }
      space_.AssignPreranked(u, std::move(nodes));
      nodes = {};
    }
    if (stats_ != nullptr) stats_->candidate_ranks += space_.total_ranks();

    // Dense support counters over the rank spaces.
    for (uint32_t e = 0; e < ne; ++e) {
      EdgeState& st = edges_[e];
      st.out_count.assign(space_.size(q_.edge(e).src), 0);
      if (dual()) st.in_count.assign(space_.size(q_.edge(e).dst), 0);
      for (const RankPair& rp : st.rpairs) {
        ++st.out_count[rp.first];
        if (dual()) ++st.in_count[rp.second];
      }
    }
  }

  bool EdgeEmpty(uint32_t e) const { return edges_[e].rpairs.empty(); }

  /// Scans Se once, deleting invalid pairs; returns true if Se changed.
  /// Validity checks read only the rank pairs; the node pairs are compacted
  /// in lockstep so extraction needs no back-translation.
  bool ScanEdge(uint32_t e) {
    if (stats_ != nullptr) ++stats_->match_set_visits;
    EdgeState& st = edges_[e];
    const uint32_t u = q_.edge(e).src;
    const uint32_t u2 = q_.edge(e).dst;
    size_t kept = 0;
    for (size_t i = 0; i < st.rpairs.size(); ++i) {
      const RankPair& rp = st.rpairs[i];
      if (NodeValid(u, rp.first) && NodeValid(u2, rp.second)) {
        st.rpairs[kept] = rp;
        st.pairs[kept] = st.pairs[i];
        ++kept;
      } else {
        if (--st.out_count[rp.first] == 0 && stats_ != nullptr) {
          ++stats_->counters_zeroed;
        }
        if (dual() && --st.in_count[rp.second] == 0 && stats_ != nullptr) {
          ++stats_->counters_zeroed;
        }
        if (stats_ != nullptr) ++stats_->removed_pairs;
      }
    }
    if (kept == st.rpairs.size()) return false;
    st.rpairs.resize(kept);
    st.pairs.resize(kept);
    return true;
  }

  MatchResult Extract() {
    MatchResult result = MatchResult::Empty(q_);
    for (uint32_t e = 0; e < q_.num_edges(); ++e) {
      *result.mutable_edge_matches(e) = std::move(edges_[e].pairs);
    }
    result.set_matched(true);
    result.DeriveNodeMatches(q_);
    return result;
  }

 private:
  using RankPair = std::pair<uint32_t, uint32_t>;

  struct EdgeState {
    std::vector<NodePair> pairs;       // alive pairs (merge order: sorted)
    std::vector<RankPair> rpairs;      // the same pairs as candidate ranks
    std::vector<uint32_t> out_count;   // by src rank: alive pairs from it
    std::vector<uint32_t> in_count;    // by dst rank (dual mode only)
  };

  bool dual() const {
    return opts_.semantics == JoinSemantics::kDualSimulation;
  }

  /// Node-match validity of (u, rank): the candidate supports every pattern
  /// edge out of u (simulation), plus every edge into u under dual
  /// semantics. Every check is one flat array load.
  bool NodeValid(uint32_t u, uint32_t rank) const {
    for (uint32_t e : q_.out_edges(u)) {
      if (edges_[e].out_count[rank] == 0) return false;
    }
    if (dual()) {
      for (uint32_t e : q_.in_edges(u)) {
        if (edges_[e].in_count[rank] == 0) return false;
      }
    }
    return true;
  }

  const Pattern& q_;
  const MatchJoinOptions opts_;
  MatchJoinStats* stats_;
  CandidateSpace space_;
  std::vector<EdgeState> edges_;
};

/// The pre-refactor engine: per-edge match state keyed by NodeId through
/// unordered_maps. Kept verbatim as the reference the equivalence property
/// tests and fixpoint_microbench compare the dense engine against.
class HashJoinEngine {
 public:
  HashJoinEngine(const Pattern& q, const MatchJoinOptions& opts,
                 MatchJoinStats* stats)
      : q_(q), opts_(opts), stats_(stats) {}

  void Init(std::vector<std::vector<NodePair>> merged) {
    edges_.resize(q_.num_edges());
    for (uint32_t e = 0; e < q_.num_edges(); ++e) {
      edges_[e].pairs = std::move(merged[e]);
      for (const NodePair& p : edges_[e].pairs) {
        ++edges_[e].out_count[p.first];
        if (dual()) ++edges_[e].in_count[p.second];
      }
    }
  }

  bool EdgeEmpty(uint32_t e) const { return edges_[e].pairs.empty(); }

  bool ScanEdge(uint32_t e) {
    if (stats_ != nullptr) ++stats_->match_set_visits;
    EdgeState& st = edges_[e];
    const uint32_t u = q_.edge(e).src;
    const uint32_t u2 = q_.edge(e).dst;
    size_t kept = 0;
    for (size_t i = 0; i < st.pairs.size(); ++i) {
      const NodePair& p = st.pairs[i];
      if (NodeValid(u, p.first) && NodeValid(u2, p.second)) {
        st.pairs[kept++] = p;
      } else {
        if (--st.out_count[p.first] == 0 && stats_ != nullptr) {
          ++stats_->counters_zeroed;
        }
        if (dual() && --st.in_count[p.second] == 0 && stats_ != nullptr) {
          ++stats_->counters_zeroed;
        }
        if (stats_ != nullptr) ++stats_->removed_pairs;
      }
    }
    if (kept == st.pairs.size()) return false;
    st.pairs.resize(kept);
    return true;
  }

  MatchResult Extract() {
    MatchResult result = MatchResult::Empty(q_);
    for (uint32_t e = 0; e < q_.num_edges(); ++e) {
      *result.mutable_edge_matches(e) = std::move(edges_[e].pairs);
    }
    result.set_matched(true);
    result.DeriveNodeMatches(q_);
    return result;
  }

 private:
  /// Mutable per-edge state of the fixpoint.
  struct EdgeState {
    std::vector<NodePair> pairs;  // alive pairs, compacted in place
    // out_count[v] = number of alive pairs with source v.
    std::unordered_map<NodeId, uint32_t> out_count;
    // in_count[v] = number of alive pairs with target v (dual mode only).
    std::unordered_map<NodeId, uint32_t> in_count;
  };

  bool dual() const {
    return opts_.semantics == JoinSemantics::kDualSimulation;
  }

  bool NodeValid(uint32_t u, NodeId v) const {
    for (uint32_t e : q_.out_edges(u)) {
      auto it = edges_[e].out_count.find(v);
      if (it == edges_[e].out_count.end() || it->second == 0) return false;
    }
    if (dual()) {
      for (uint32_t e : q_.in_edges(u)) {
        auto it = edges_[e].in_count.find(v);
        if (it == edges_[e].in_count.end() || it->second == 0) return false;
      }
    }
    return true;
  }

  const Pattern& q_;
  const MatchJoinOptions opts_;
  MatchJoinStats* stats_;
  std::vector<EdgeState> edges_;
};

template <typename Engine>
Result<MatchResult> RunEngine(const Pattern& q, const ViewSet& views,
                              const std::vector<ViewExtension>& exts,
                              const ContainmentMapping& mapping,
                              const MatchJoinOptions& opts,
                              MatchJoinStats* stats) {
  std::vector<std::vector<NodePair>> merged;
  GPMV_RETURN_NOT_OK(MergeViewPairs(q, views, exts, mapping, stats, &merged));
  Engine engine(q, opts, stats);
  engine.Init(std::move(merged));
  if (!RunFixpoint(engine, q, opts, stats)) return MatchResult::Empty(q);
  return engine.Extract();
}

}  // namespace

Result<MatchResult> MatchJoin(const Pattern& q, const ViewSet& views,
                              const std::vector<ViewExtension>& exts,
                              const ContainmentMapping& mapping,
                              const MatchJoinOptions& opts,
                              MatchJoinStats* stats) {
  if (q.num_edges() == 0) {
    return Status::InvalidArgument("query has no edges");
  }
  return opts.use_dense_ranks
             ? RunEngine<DenseJoinEngine>(q, views, exts, mapping, opts, stats)
             : RunEngine<HashJoinEngine>(q, views, exts, mapping, opts, stats);
}

Result<MatchResult> DualMatchJoin(const Pattern& q, const ViewSet& views,
                                  const std::vector<ViewExtension>& exts,
                                  const ContainmentMapping& mapping,
                                  const MatchJoinOptions& opts,
                                  MatchJoinStats* stats) {
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument("dual simulation needs unit bounds");
  }
  MatchJoinOptions dual_opts = opts;
  dual_opts.semantics = JoinSemantics::kDualSimulation;
  return MatchJoin(q, views, exts, mapping, dual_opts, stats);
}

}  // namespace gpmv
