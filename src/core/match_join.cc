#include "core/match_join.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "graph/scc.h"

namespace gpmv {

namespace {

/// Mutable per-edge state of the fixpoint.
struct EdgeState {
  std::vector<NodePair> pairs;  // alive pairs, compacted in place
  // out_count[v] = number of alive pairs with source v.
  std::unordered_map<NodeId, uint32_t> out_count;
  // in_count[v] = number of alive pairs with target v (dual mode only).
  std::unordered_map<NodeId, uint32_t> in_count;
};

class JoinEngine {
 public:
  JoinEngine(const Pattern& q, const MatchJoinOptions& opts,
             MatchJoinStats* stats)
      : q_(q), opts_(opts), stats_(stats) {}

  Status Init(const ViewSet& views, const std::vector<ViewExtension>& exts,
              const ContainmentMapping& mapping);

  /// Runs the fixpoint; returns false if some match set drained.
  bool Run();

  MatchResult Extract();

 private:
  bool dual() const { return opts_.semantics == JoinSemantics::kDualSimulation; }

  /// Node-match validity of (u, v): v supports every pattern edge out of u
  /// (simulation), plus every pattern edge into u under dual semantics.
  bool NodeValid(uint32_t u, NodeId v) const {
    for (uint32_t e : q_.out_edges(u)) {
      auto it = edges_[e].out_count.find(v);
      if (it == edges_[e].out_count.end() || it->second == 0) return false;
    }
    if (dual()) {
      for (uint32_t e : q_.in_edges(u)) {
        auto it = edges_[e].in_count.find(v);
        if (it == edges_[e].in_count.end() || it->second == 0) return false;
      }
    }
    return true;
  }

  /// Scans Se once, deleting invalid pairs; returns true if Se changed.
  bool ScanEdge(uint32_t e) {
    if (stats_ != nullptr) ++stats_->match_set_visits;
    EdgeState& st = edges_[e];
    const uint32_t u = q_.edge(e).src;
    const uint32_t u2 = q_.edge(e).dst;
    size_t kept = 0;
    for (size_t i = 0; i < st.pairs.size(); ++i) {
      const NodePair& p = st.pairs[i];
      if (NodeValid(u, p.first) && NodeValid(u2, p.second)) {
        st.pairs[kept++] = p;
      } else {
        --st.out_count[p.first];
        if (dual()) --st.in_count[p.second];
        if (stats_ != nullptr) ++stats_->removed_pairs;
      }
    }
    if (kept == st.pairs.size()) return false;
    st.pairs.resize(kept);
    return true;
  }

  bool RunRankOrdered();
  bool RunFullPasses();

  const Pattern& q_;
  const MatchJoinOptions opts_;
  MatchJoinStats* stats_;
  std::vector<EdgeState> edges_;
  std::vector<uint32_t> edge_rank_;
};

Status JoinEngine::Init(const ViewSet& views,
                        const std::vector<ViewExtension>& exts,
                        const ContainmentMapping& mapping) {
  if (!mapping.contained) {
    return Status::InvalidArgument("query is not contained in the views");
  }
  if (mapping.lambda.size() != q_.num_edges()) {
    return Status::InvalidArgument("mapping does not fit this query");
  }
  if (exts.size() != views.card()) {
    return Status::InvalidArgument("one extension per view required");
  }

  edges_.resize(q_.num_edges());
  for (uint32_t e = 0; e < q_.num_edges(); ++e) {
    const PatternEdge& qe = q_.edge(e);
    const PatternNode& src_node = q_.node(qe.src);
    const PatternNode& dst_node = q_.node(qe.dst);
    auto& pairs = edges_[e].pairs;

    for (const ViewEdgeRef& ref : mapping.lambda[e]) {
      if (ref.view >= exts.size()) {
        return Status::InvalidArgument("mapping references unknown view");
      }
      const ViewExtension& ext = exts[ref.view];
      if (ref.edge >= ext.num_view_edges()) {
        return Status::InvalidArgument("mapping references unknown view edge");
      }
      const ViewEdgeExtension& vee = ext.edge(ref.edge);
      for (size_t i = 0; i < vee.pairs.size(); ++i) {
        const NodePair& p = vee.pairs[i];
        // Distance-index check: materialized shortest distance must satisfy
        // the *query's* bound (views may be looser).
        if (qe.bound != kUnbounded && vee.distances[i] > qe.bound) {
          if (stats_ != nullptr) ++stats_->filtered_by_distance;
          continue;
        }
        // Query node conditions, evaluated on cached snapshots — the query
        // may be stricter than the view (predicate views).
        const NodeSnapshot* s1 = ext.snapshot(p.first);
        const NodeSnapshot* s2 = ext.snapshot(p.second);
        GPMV_DCHECK(s1 != nullptr && s2 != nullptr);
        bool ok =
            (src_node.label.empty() || s1->HasLabel(src_node.label)) &&
            (dst_node.label.empty() || s2->HasLabel(dst_node.label)) &&
            (src_node.pred.IsTrivial() || src_node.pred.Eval(s1->attrs)) &&
            (dst_node.pred.IsTrivial() || dst_node.pred.Eval(s2->attrs));
        if (!ok) {
          if (stats_ != nullptr) ++stats_->filtered_by_condition;
          continue;
        }
        pairs.push_back(p);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    for (const NodePair& p : pairs) {
      ++edges_[e].out_count[p.first];
      if (dual()) ++edges_[e].in_count[p.second];
    }
    if (stats_ != nullptr) stats_->initial_pairs += pairs.size();
  }

  // r(e = (u', u)) = r(u): rank of the target node.
  std::vector<uint32_t> node_rank = ComputeSccRanks(q_.Adjacency());
  edge_rank_.resize(q_.num_edges());
  for (uint32_t e = 0; e < q_.num_edges(); ++e) {
    edge_rank_[e] = node_rank[q_.edge(e).dst];
  }
  return Status::OK();
}

bool JoinEngine::RunRankOrdered() {
  // Priority worklist keyed by (rank, edge id); when Se changes, every edge
  // whose pair validity consults out-counts of e's source is re-queued.
  std::set<std::pair<uint32_t, uint32_t>> pending;
  std::vector<char> queued(q_.num_edges(), 1);
  for (uint32_t e = 0; e < q_.num_edges(); ++e) {
    pending.emplace(edge_rank_[e], e);
  }
  while (!pending.empty()) {
    uint32_t e = pending.begin()->second;
    pending.erase(pending.begin());
    queued[e] = 0;
    if (!ScanEdge(e)) continue;
    if (edges_[e].pairs.empty()) return false;
    // Changed out-counts affect node validity at e's source; under dual
    // semantics, changed in-counts affect validity at e's target.
    std::vector<uint32_t> touched{q_.edge(e).src};
    if (dual()) touched.push_back(q_.edge(e).dst);
    for (uint32_t u : touched) {
      for (const auto& deps : {q_.out_edges(u), q_.in_edges(u)}) {
        for (uint32_t f : deps) {
          if (!queued[f]) {
            queued[f] = 1;
            pending.emplace(edge_rank_[f], f);
          }
        }
      }
    }
  }
  return true;
}

bool JoinEngine::RunFullPasses() {
  // The unoptimized fixpoint of Fig. 2: sweep all match sets until no sweep
  // changes anything.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < q_.num_edges(); ++e) {
      if (ScanEdge(e)) {
        changed = true;
        if (edges_[e].pairs.empty()) return false;
      }
    }
  }
  return true;
}

bool JoinEngine::Run() {
  for (const EdgeState& st : edges_) {
    if (st.pairs.empty()) return false;
  }
  return opts_.use_rank_order ? RunRankOrdered() : RunFullPasses();
}

MatchResult JoinEngine::Extract() {
  MatchResult result = MatchResult::Empty(q_);
  for (uint32_t e = 0; e < q_.num_edges(); ++e) {
    *result.mutable_edge_matches(e) = std::move(edges_[e].pairs);
  }
  result.set_matched(true);
  result.DeriveNodeMatches(q_);
  return result;
}

}  // namespace

Result<MatchResult> MatchJoin(const Pattern& q, const ViewSet& views,
                              const std::vector<ViewExtension>& exts,
                              const ContainmentMapping& mapping,
                              const MatchJoinOptions& opts,
                              MatchJoinStats* stats) {
  if (q.num_edges() == 0) {
    return Status::InvalidArgument("query has no edges");
  }
  JoinEngine engine(q, opts, stats);
  GPMV_RETURN_NOT_OK(engine.Init(views, exts, mapping));
  if (!engine.Run()) return MatchResult::Empty(q);
  return engine.Extract();
}

Result<MatchResult> DualMatchJoin(const Pattern& q, const ViewSet& views,
                                  const std::vector<ViewExtension>& exts,
                                  const ContainmentMapping& mapping,
                                  const MatchJoinOptions& opts,
                                  MatchJoinStats* stats) {
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument("dual simulation needs unit bounds");
  }
  MatchJoinOptions dual_opts = opts;
  dual_opts.semantics = JoinSemantics::kDualSimulation;
  return MatchJoin(q, views, exts, mapping, dual_opts, stats);
}

}  // namespace gpmv
