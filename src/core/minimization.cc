#include "core/minimization.h"

#include <algorithm>

#include "core/view_match.h"

namespace gpmv {

namespace {

/// Nonempty weighted distances of the pattern (cheapest nonempty path;
/// `*` edges are untraversable for finite budgets), plus reachability for
/// `*` bounds — mirrors view_match.cc's semantics.
struct PatternMetrics {
  std::vector<std::vector<uint64_t>> ndist;
  std::vector<std::vector<char>> reach;
};

PatternMetrics ComputeMetrics(const Pattern& q) {
  PatternMetrics m;
  const size_t n = q.num_nodes();
  std::vector<std::vector<uint64_t>> dist = q.WeightedDistances();
  m.ndist.assign(n, std::vector<uint64_t>(n, kInfDistance));
  for (const PatternEdge& e : q.edges()) {
    uint64_t w = (e.bound == kUnbounded) ? kInfDistance : e.bound;
    if (w == kInfDistance) continue;
    for (size_t t = 0; t < n; ++t) {
      if (dist[e.dst][t] == kInfDistance) continue;
      uint64_t via = w + dist[e.dst][t];
      if (via < m.ndist[e.src][t]) m.ndist[e.src][t] = via;
    }
  }
  m.reach.assign(n, std::vector<char>(n, 0));
  const auto adj = q.Adjacency();
  for (size_t s = 0; s < n; ++s) {
    std::vector<uint32_t> stack(adj[s].begin(), adj[s].end());
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      if (m.reach[s][v]) continue;
      m.reach[s][v] = 1;
      for (uint32_t w : adj[v]) {
        if (!m.reach[s][w]) stack.push_back(w);
      }
    }
  }
  return m;
}

/// rel[v][u] — node v of the pattern simulates node u (every data node
/// matching u also matches v, on every graph). The same fixpoint as the
/// view-match relation, with the pattern playing both roles.
std::vector<std::vector<char>> SelfSimulation(const Pattern& q) {
  const size_t n = q.num_nodes();
  const PatternMetrics m = ComputeMetrics(q);
  std::vector<std::vector<char>> rel(n, std::vector<char>(n, 0));
  for (size_t v = 0; v < n; ++v) {
    for (size_t u = 0; u < n; ++u) {
      rel[v][u] = QueryNodeMatchesViewNode(q.node(u), q.node(v)) ? 1 : 0;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t v = 0; v < n; ++v) {
      for (size_t u = 0; u < n; ++u) {
        if (!rel[v][u]) continue;
        bool ok = true;
        for (uint32_t ev : q.out_edges(static_cast<uint32_t>(v))) {
          const PatternEdge& pe = q.edge(ev);
          bool found = false;
          for (size_t u2 = 0; u2 < n && !found; ++u2) {
            if (!rel[pe.dst][u2]) continue;
            if (pe.bound == kUnbounded) {
              found = m.reach[u][u2] != 0;
            } else {
              found = m.ndist[u][u2] != kInfDistance &&
                      m.ndist[u][u2] <= pe.bound;
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          rel[v][u] = 0;
          changed = true;
        }
      }
    }
  }
  return rel;
}

bool SameCondition(const PatternNode& a, const PatternNode& b) {
  return a.label == b.label && a.pred.Implies(b.pred) && b.pred.Implies(a.pred);
}

}  // namespace

std::vector<uint32_t> SimilarityClasses(const Pattern& q) {
  const size_t n = q.num_nodes();
  const auto rel = SelfSimulation(q);
  std::vector<uint32_t> cls(n, static_cast<uint32_t>(-1));
  uint32_t next = 0;
  for (uint32_t u = 0; u < n; ++u) {
    if (cls[u] != static_cast<uint32_t>(-1)) continue;
    cls[u] = next;
    for (uint32_t v = u + 1; v < n; ++v) {
      if (cls[v] != static_cast<uint32_t>(-1)) continue;
      // Mutual similarity with identical search conditions (merging nodes
      // with weaker/stronger conditions is unsound for the quotient's
      // candidate filter).
      if (rel[u][v] && rel[v][u] && SameCondition(q.node(u), q.node(v))) {
        cls[v] = next;
      }
    }
    ++next;
  }
  return cls;
}

Result<MinimizedPattern> MinimizePattern(const Pattern& q) {
  if (q.num_nodes() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  MinimizedPattern out;
  out.node_map = SimilarityClasses(q);
  uint32_t num_classes =
      q.num_nodes() == 0
          ? 0
          : *std::max_element(out.node_map.begin(), out.node_map.end()) + 1;

  if (num_classes == q.num_nodes()) {
    // Nothing collapses.
    out.pattern = q;
    out.edge_map.resize(q.num_edges());
    for (uint32_t e = 0; e < q.num_edges(); ++e) out.edge_map[e] = e;
    out.changed = false;
    return out;
  }

  // Build the quotient: one node per class (representative's condition),
  // deduplicated edges between classes. Conflicting bounds between the same
  // class pair would change match-set semantics — bail out to the original.
  Pattern quotient;
  std::vector<uint32_t> representative(num_classes, kInvalidNode);
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    uint32_t c = out.node_map[u];
    if (representative[c] == kInvalidNode) {
      representative[c] = u;
      const PatternNode& n = q.node(u);
      quotient.AddNode(n.label, n.pred, n.name);
    }
  }
  // (class src, class dst) -> (quotient edge id, bound).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> edge_ids(
      num_classes);
  out.edge_map.assign(q.num_edges(), 0);
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    uint32_t cs = out.node_map[pe.src];
    uint32_t cd = out.node_map[pe.dst];
    uint32_t found = kInvalidNode;
    for (auto& [dst, id] : edge_ids[cs]) {
      if (dst == cd) {
        found = id;
        break;
      }
    }
    if (found != kInvalidNode) {
      if (quotient.edge(found).bound != pe.bound) {
        // Conflicting bounds: conservatively refuse to minimize.
        out.pattern = q;
        out.edge_map.resize(q.num_edges());
        for (uint32_t i = 0; i < q.num_edges(); ++i) out.edge_map[i] = i;
        for (uint32_t u = 0; u < q.num_nodes(); ++u) out.node_map[u] = u;
        out.changed = false;
        return out;
      }
      out.edge_map[e] = found;
      continue;
    }
    uint32_t id = static_cast<uint32_t>(quotient.num_edges());
    GPMV_RETURN_NOT_OK(quotient.AddEdge(cs, cd, pe.bound));
    edge_ids[cs].emplace_back(cd, id);
    out.edge_map[e] = id;
  }
  out.pattern = std::move(quotient);
  out.changed = true;
  return out;
}

}  // namespace gpmv
