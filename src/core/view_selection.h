/// \file view_selection.h
/// \brief Workload-driven view selection — Section VIII's first open issue:
/// "decide what views to cache such that a set of frequently used pattern
/// queries can be answered by using the views".
///
/// Given a workload of pattern queries and a library of candidate view
/// definitions, SelectViews greedily picks at most `max_views` candidates,
/// maximizing first the number of *fully answerable* workload queries
/// (Q ⊑ selected) and then the total number of covered query edges. The
/// per-(query, candidate) view matches are computed once; the greedy loop
/// works on bitsets, so selection is fast even for large libraries.
///
/// CandidateViewsFromWorkload builds a sensible default library from the
/// workload itself: every distinct single query edge and every distinct
/// adjacent edge pair, deduplicated structurally — the sub-patterns whose
/// results a cache layer would naturally retain.

#ifndef GPMV_CORE_VIEW_SELECTION_H_
#define GPMV_CORE_VIEW_SELECTION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/view.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Selection knobs.
struct ViewSelectionOptions {
  /// Cache budget: maximum number of views to select.
  size_t max_views = 8;
};

/// Outcome of a selection run.
struct ViewSelectionResult {
  /// Indices into the candidate set, in greedy pick order.
  std::vector<uint32_t> selected;
  /// answerable[i] — is workload query i contained in the selected views?
  std::vector<bool> answerable;
  size_t answerable_count = 0;
  /// Total query edges covered across the workload.
  size_t covered_edges = 0;
  size_t total_edges = 0;
};

/// Greedy workload-driven selection (see file comment).
Result<ViewSelectionResult> SelectViews(const std::vector<Pattern>& workload,
                                        const ViewSet& candidates,
                                        const ViewSelectionOptions& opts = {});

/// Builds a candidate library from the workload's own sub-patterns:
/// distinct single edges and distinct adjacent edge pairs.
ViewSet CandidateViewsFromWorkload(const std::vector<Pattern>& workload);

}  // namespace gpmv

#endif  // GPMV_CORE_VIEW_SELECTION_H_
