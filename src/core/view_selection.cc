#include "core/view_selection.h"

#include <algorithm>
#include <set>
#include <string>

#include "core/view_match.h"

namespace gpmv {

namespace {

/// Fixed-width bitset over query edges (queries are small; one word is the
/// common case).
class EdgeBits {
 public:
  explicit EdgeBits(size_t bits = 0) : words_((bits + 63) / 64, 0) {}

  void Set(uint32_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }

  size_t CountNewlyCovered(const EdgeBits& covered) const {
    size_t n = 0;
    for (size_t w = 0; w < words_.size(); ++w) {
      n += static_cast<size_t>(
          __builtin_popcountll(words_[w] & ~covered.words_[w]));
    }
    return n;
  }

  void Merge(const EdgeBits& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  bool CoversAll(size_t bits) const { return Count() == bits; }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace

Result<ViewSelectionResult> SelectViews(const std::vector<Pattern>& workload,
                                        const ViewSet& candidates,
                                        const ViewSelectionOptions& opts) {
  const size_t nq = workload.size();
  const size_t nc = candidates.card();

  // coverage[c][i] — edges of query i that candidate c covers.
  std::vector<std::vector<EdgeBits>> coverage(nc);
  for (uint32_t c = 0; c < nc; ++c) {
    coverage[c].reserve(nq);
    for (size_t i = 0; i < nq; ++i) {
      EdgeBits bits(workload[i].num_edges());
      Result<ViewMatchResult> vm =
          ComputeViewMatch(candidates.view(c).pattern, workload[i]);
      GPMV_RETURN_NOT_OK(vm.status());
      for (uint32_t e : vm->covered) bits.Set(e);
      coverage[c].push_back(std::move(bits));
    }
  }

  std::vector<EdgeBits> covered;
  covered.reserve(nq);
  size_t total_edges = 0;
  for (const Pattern& q : workload) {
    covered.emplace_back(q.num_edges());
    total_edges += q.num_edges();
  }
  // Queries the edge-coverage machinery can never answer (isolated nodes,
  // no edges) are excluded from the answerable objective.
  std::vector<char> eligible(nq, 0);
  for (size_t i = 0; i < nq; ++i) {
    eligible[i] = workload[i].num_edges() > 0 &&
                  workload[i].HasNoIsolatedNode();
  }

  auto answerable_now = [&](size_t i) {
    return eligible[i] && covered[i].CoversAll(workload[i].num_edges());
  };

  ViewSelectionResult result;
  std::vector<char> used(nc, 0);
  while (result.selected.size() < opts.max_views) {
    uint32_t best = static_cast<uint32_t>(-1);
    size_t best_queries = 0, best_edges = 0;
    for (uint32_t c = 0; c < nc; ++c) {
      if (used[c]) continue;
      size_t new_queries = 0, new_edges = 0;
      for (size_t i = 0; i < nq; ++i) {
        size_t gain = coverage[c][i].CountNewlyCovered(covered[i]);
        if (gain == 0) continue;
        new_edges += gain;
        if (eligible[i] && !answerable_now(i) &&
            covered[i].Count() + gain == workload[i].num_edges()) {
          ++new_queries;
        }
      }
      if (new_edges == 0) continue;
      if (new_queries > best_queries ||
          (new_queries == best_queries && new_edges > best_edges)) {
        best = c;
        best_queries = new_queries;
        best_edges = new_edges;
      }
    }
    if (best == static_cast<uint32_t>(-1)) break;  // no further gain
    used[best] = 1;
    result.selected.push_back(best);
    for (size_t i = 0; i < nq; ++i) covered[i].Merge(coverage[best][i]);
  }

  result.answerable.resize(nq);
  for (size_t i = 0; i < nq; ++i) {
    result.answerable[i] = answerable_now(i);
    result.answerable_count += result.answerable[i] ? 1 : 0;
    result.covered_edges += covered[i].Count();
  }
  result.total_edges = total_edges;
  return result;
}

namespace {

/// Canonical signature of a small pattern (nodes renamed positionally).
std::string Signature(const Pattern& p) {
  std::string sig;
  for (uint32_t u = 0; u < p.num_nodes(); ++u) {
    sig += p.node(u).label + "|" + p.node(u).pred.ToString() + ";";
  }
  for (const PatternEdge& e : p.edges()) {
    sig += std::to_string(e.src) + ">" + std::to_string(e.dst) + "@" +
           std::to_string(e.bound) + ";";
  }
  return sig;
}

Pattern EdgePattern(const Pattern& q, uint32_t e) {
  Pattern p;
  const PatternEdge& pe = q.edge(e);
  uint32_t a = p.AddNode(q.node(pe.src).label, q.node(pe.src).pred, "n0");
  uint32_t b = pe.src == pe.dst
                   ? a
                   : p.AddNode(q.node(pe.dst).label, q.node(pe.dst).pred, "n1");
  (void)p.AddEdge(a, b, pe.bound);
  return p;
}

Pattern EdgePairPattern(const Pattern& q, uint32_t e1, uint32_t e2) {
  Pattern p;
  std::vector<std::pair<uint32_t, uint32_t>> node_map;  // (query node, local)
  auto local = [&](uint32_t u) {
    for (auto& [qu, lu] : node_map) {
      if (qu == u) return lu;
    }
    uint32_t lu = p.AddNode(q.node(u).label, q.node(u).pred,
                            "n" + std::to_string(node_map.size()));
    node_map.emplace_back(u, lu);
    return lu;
  };
  for (uint32_t e : {e1, e2}) {
    const PatternEdge& pe = q.edge(e);
    uint32_t a = local(pe.src);
    uint32_t b = local(pe.dst);
    (void)p.AddEdge(a, b, pe.bound);
  }
  return p;
}

}  // namespace

ViewSet CandidateViewsFromWorkload(const std::vector<Pattern>& workload) {
  ViewSet candidates;
  std::set<std::string> seen;
  size_t counter = 0;
  auto add = [&](Pattern p) {
    std::string sig = Signature(p);
    if (seen.insert(sig).second) {
      candidates.Add("cand" + std::to_string(counter++), std::move(p));
    }
  };
  for (const Pattern& q : workload) {
    for (uint32_t e = 0; e < q.num_edges(); ++e) add(EdgePattern(q, e));
    // Adjacent pairs: edges sharing any endpoint.
    for (uint32_t e1 = 0; e1 < q.num_edges(); ++e1) {
      for (uint32_t e2 = e1 + 1; e2 < q.num_edges(); ++e2) {
        const PatternEdge& a = q.edge(e1);
        const PatternEdge& b = q.edge(e2);
        bool adjacent = a.src == b.src || a.src == b.dst || a.dst == b.src ||
                        a.dst == b.dst;
        if (adjacent) add(EdgePairPattern(q, e1, e2));
      }
    }
  }
  return candidates;
}

}  // namespace gpmv
