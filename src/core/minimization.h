/// \file minimization.h
/// \brief Pattern-query minimization via the similarity quotient.
///
/// Section IV notes that "like for relational queries, the query
/// containment analysis is important in minimizing and optimizing pattern
/// queries" (Corollary 4). For simulation semantics the classical device is
/// the *similarity quotient*: pattern nodes that simulate each other inside
/// the pattern (same search condition, mutually similar forward structure)
/// have identical match sets sim(u) on every data graph, so they can be
/// collapsed into one node — and parallel edges between collapsed classes
/// coincide. The paper's own Fig. 1 pattern is the canonical witness:
/// DBA1/DBA2 and PRG1/PRG2 are similar pairs, and indeed Example 2 reports
/// identical match sets for the duplicated edges; the quotient shrinks the
/// query from 5 nodes / 6 edges to 3 nodes / 4 edges.
///
/// MinimizePattern returns the quotient along with the node/edge mappings,
/// so Q(G) for the original query is recovered edge-by-edge from the
/// minimized query's result: Se(Q, G) = S_{edge_map[e]}(Q_min, G) for all G.
/// Bounded patterns are quotiented only when similar nodes also agree on
/// their bounds (a conservative, sound restriction).

#ifndef GPMV_CORE_MINIMIZATION_H_
#define GPMV_CORE_MINIMIZATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Result of minimizing a pattern.
struct MinimizedPattern {
  Pattern pattern;                   ///< the quotient query
  std::vector<uint32_t> node_map;    ///< original node -> quotient node
  std::vector<uint32_t> edge_map;    ///< original edge -> quotient edge
  bool changed = false;              ///< did anything collapse?
};

/// Collapses mutually similar pattern nodes (see file comment). Always
/// succeeds; `changed == false` means the pattern was already minimal
/// under this criterion.
Result<MinimizedPattern> MinimizePattern(const Pattern& q);

/// The mutual-similarity classes used by MinimizePattern: class id per
/// pattern node (dense ids). Exposed for tests.
std::vector<uint32_t> SimilarityClasses(const Pattern& q);

}  // namespace gpmv

#endif  // GPMV_CORE_MINIMIZATION_H_
