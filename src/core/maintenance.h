/// \file maintenance.h
/// \brief Incremental maintenance of materialized view extensions.
///
/// Section I argues the view-based approach is practical because cached
/// pattern views can be maintained incrementally under graph updates
/// (citing [15], Fan et al., SIGMOD 2011). This module provides a working
/// maintenance layer with the following contract:
///
///  * *Edge deletions* are handled decrementally: the maximum (bounded)
///    simulation relation can only shrink under deletions, so the cached
///    relation is re-refined seeded from its previous value — no label
///    scan, no candidate re-enumeration — and the match sets re-extracted.
///    For plain simulation views a constant-time prescreen skips deletions
///    that touch no matched node.
///  * *Edge insertions* re-materialize the view: insertions can grow the
///    relation beyond the cached seed, which a removal-driven engine cannot
///    discover. (The full delta algorithm of [15] is out of scope; the
///    interface is insertion-ready so it can be swapped in.)
///
/// Callers mutate the Graph first, then notify the maintained view.

#ifndef GPMV_CORE_MAINTENANCE_H_
#define GPMV_CORE_MAINTENANCE_H_

#include <vector>

#include "common/status.h"
#include "core/view.h"
#include "graph/graph.h"

namespace gpmv {

/// Recomputes `relation` and `ext` for `def` on `g`. When `seeded`, the
/// current contents of `relation` are used as the candidate seed — sound
/// only when the relation can have shrunk (i.e. after deletions), because
/// seeding restricts the search to the seed sets. `relation` must hold the
/// previous relation when `seeded` is true; it is overwritten either way.
/// The snapshot overload is the engine's path (one frozen snapshot serves
/// the whole refresh); the Graph overload freezes internally.
Status RefreshViewExtension(const ViewDefinition& def, const GraphSnapshot& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation);
Status RefreshViewExtension(const ViewDefinition& def, const Graph& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation);

/// Constant-time prescreen for *plain simulation* views: removing edge
/// (u, v) can only shrink the extension when (u, v) was itself a match pair
/// of some view edge, because only match pairs support the relation.
/// `relation` must be the view's cached node relation (sorted sets). Always
/// true for bounded views — the deleted edge may be interior to a matched
/// path, which this screen cannot see.
bool DeletionMayAffectView(const ViewDefinition& def,
                           const std::vector<std::vector<NodeId>>& relation,
                           NodeId u, NodeId v);

/// A view definition together with its maintained extension on one graph.
///
/// Takes the graph by mutable reference so refreshes run off
/// `Graph::Freeze()` — the cached snapshot re-freezes *incrementally*
/// after each notified edge change (only the touched adjacency rows are
/// rebuilt) instead of copying the whole graph per update.
class MaintainedView {
 public:
  explicit MaintainedView(ViewDefinition def) : def_(std::move(def)) {}

  /// Fully materializes against `g`; must be called before notifications.
  Status Attach(Graph& g);

  /// Notifies that edge (u, v) was removed from `g` (after the removal).
  Status OnEdgeRemoved(Graph& g, NodeId u, NodeId v);

  /// Notifies that edge (u, v) was inserted into `g` (after the insertion).
  Status OnEdgeInserted(Graph& g, NodeId u, NodeId v);

  const ViewDefinition& definition() const { return def_; }
  const ViewExtension& extension() const { return ext_; }

  /// Maintenance counters (observability / tests).
  size_t refresh_count() const { return refresh_count_; }
  size_t skipped_updates() const { return skipped_updates_; }

 private:
  Status Refresh(Graph& g, bool seeded);

  ViewDefinition def_;
  ViewExtension ext_;
  std::vector<std::vector<NodeId>> relation_;  // cached node relation
  bool attached_ = false;
  size_t refresh_count_ = 0;
  size_t skipped_updates_ = 0;
};

}  // namespace gpmv

#endif  // GPMV_CORE_MAINTENANCE_H_
