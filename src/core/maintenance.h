/// \file maintenance.h
/// \brief Incremental maintenance of materialized view extensions.
///
/// Section I argues the view-based approach is practical because cached
/// pattern views can be maintained incrementally under graph updates
/// (citing [15], Fan et al., SIGMOD 2011). This module provides a working
/// maintenance layer with the following contract:
///
///  * *Edge deletions* are handled decrementally: the maximum (bounded)
///    simulation relation can only shrink under deletions, so the cached
///    relation is re-refined seeded from its previous value — no label
///    scan, no candidate re-enumeration — and the match sets re-extracted.
///    For plain simulation views a constant-time prescreen skips deletions
///    that touch no matched node.
///  * *Edge insertions* are handled with the localized delta of [15]
///    (simulation/delta.h): the affected area around the inserted edges'
///    endpoints is computed from the cached relation's reach, a delta
///    fixpoint adds-then-re-verifies matches inside that area only, and the
///    new match pairs merge into the cached extension — no from-scratch
///    MatchJoin, cost proportional to the area's edge volume. Bounded views
///    take the same route through DeltaBoundedInsert plus a bounded merge:
///    an inserted edge (a, b) can shorten paths between untouched pairs, so
///    the merge additionally sweeps the bound-radius balls around each
///    inserted edge and add-or-min-updates the (pair, distance) columns —
///    distances stay exact shortest nonempty path lengths throughout. The
///    path re-materializes instead (counted in InsertMaintenanceStats::
///    rematerialize_fallbacks) when the delta cannot apply: views whose
///    cached relation is empty, or an affected area larger than
///    `max_area_fraction`·|V| — the boundedness caveat of [15].
///
/// Mixed batches run deletions first, then the insert delta (each phase
/// against its own frozen snapshot); a view that would re-materialize for
/// the insert phase anyway skips the deletion refresh entirely.
///
/// Callers mutate the Graph first, then notify the maintained view.

#ifndef GPMV_CORE_MAINTENANCE_H_
#define GPMV_CORE_MAINTENANCE_H_

#include <vector>

#include "common/status.h"
#include "core/distance_index.h"
#include "core/view.h"
#include "graph/graph.h"
#include "simulation/delta.h"

namespace gpmv {

/// Recomputes `relation` and `ext` for `def` on `g`. When `seeded`, the
/// current contents of `relation` are used as the candidate seed — sound
/// only when the relation can have shrunk (i.e. after deletions), because
/// seeding restricts the search to the seed sets. `relation` must hold the
/// previous relation when `seeded` is true; it is overwritten either way.
/// The snapshot overload is the engine's path (one frozen snapshot serves
/// the whole refresh); the Graph overload freezes internally.
Status RefreshViewExtension(const ViewDefinition& def, const GraphSnapshot& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation);
Status RefreshViewExtension(const ViewDefinition& def, const Graph& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation);

/// Insert-path knobs; see file comment and simulation/delta.h.
struct InsertMaintenanceOptions {
  /// Kill switch: false always re-materializes on insertions (the
  /// pre-delta behavior; bench/update_latency's baseline).
  bool enable_delta = true;
  /// Affected-area fallback threshold (DeltaInsertOptions).
  double max_area_fraction = 0.25;
};

/// Counters of the insert maintenance path, aggregated per update batch by
/// the engine (EngineStats::delta) and per view by MaintainedView.
struct InsertMaintenanceStats {
  size_t delta_refreshes = 0;          ///< views maintained via the delta
  size_t rematerialize_fallbacks = 0;  ///< views re-materialized instead
  size_t affected_nodes = 0;           ///< Σ affected-area sizes
  size_t delta_relation_added = 0;     ///< Σ nodes added to sim sets
  size_t delta_matches_added = 0;      ///< Σ match pairs merged into exts

  /// Bounded-view slice of the above (counted in addition, not instead):
  size_t bounded_delta_refreshes = 0;  ///< bounded views kept via the delta
  size_t bounded_matches_added = 0;    ///< Σ bounded pairs added/shortened

  /// Fallback-reason breakdown (sums to rematerialize_fallbacks):
  size_t fallback_not_simulation = 0;  ///< (legacy) bounded-delta disabled
  size_t fallback_unmatched = 0;       ///< cached relation had empty sets
  size_t fallback_area_too_large = 0;  ///< affected area over the threshold
  size_t fallback_disabled = 0;        ///< enable_delta was false

  void Merge(const InsertMaintenanceStats& other) {
    delta_refreshes += other.delta_refreshes;
    rematerialize_fallbacks += other.rematerialize_fallbacks;
    affected_nodes += other.affected_nodes;
    delta_relation_added += other.delta_relation_added;
    delta_matches_added += other.delta_matches_added;
    bounded_delta_refreshes += other.bounded_delta_refreshes;
    bounded_matches_added += other.bounded_matches_added;
    fallback_not_simulation += other.fallback_not_simulation;
    fallback_unmatched += other.fallback_unmatched;
    fallback_area_too_large += other.fallback_area_too_large;
    fallback_disabled += other.fallback_disabled;
  }
};

/// Insert-path refresh: brings `ext`/`relation` (valid for the graph
/// *before* `inserted` was added) up to date with `g`, the frozen snapshot
/// *after* the insertions. Tries DeltaBoundedInsert (which handles plain
/// patterns via DeltaSimulationInsert) and merges the new match pairs into
/// the extension in place; falls back to a full unseeded
/// RefreshViewExtension when the delta cannot apply (see file comment).
/// `stats` (optional) accumulates — callers zero it per batch. For bounded
/// views a non-null `dindex` receives every added or shortened
/// (pair, distance) via AddOrShorten, keeping the engine's distance index
/// in lockstep without a rebuild; on the re-materialize fallback the caller
/// must refresh `dindex` itself (the merge never ran).
Status RefreshViewExtensionInserted(const ViewDefinition& def,
                                    const GraphSnapshot& g,
                                    const std::vector<NodePair>& inserted,
                                    const InsertMaintenanceOptions& opts,
                                    ViewExtension* ext,
                                    std::vector<std::vector<NodeId>>* relation,
                                    InsertMaintenanceStats* stats = nullptr,
                                    DistanceIndex* dindex = nullptr);

/// Constant-time prescreen for *plain simulation* views: removing edge
/// (u, v) can only shrink the extension when (u, v) was itself a match pair
/// of some view edge, because only match pairs support the relation.
/// `relation` must be the view's cached node relation (sorted sets). Always
/// true for bounded views — the deleted edge may be interior to a matched
/// path, which this screen cannot see.
bool DeletionMayAffectView(const ViewDefinition& def,
                           const std::vector<std::vector<NodeId>>& relation,
                           NodeId u, NodeId v);

/// A view definition together with its maintained extension on one graph.
///
/// Takes the graph by mutable reference so refreshes run off
/// `Graph::Freeze()` — the cached snapshot re-freezes *incrementally*
/// after each notified edge change (only the touched adjacency rows are
/// rebuilt) instead of copying the whole graph per update.
class MaintainedView {
 public:
  explicit MaintainedView(ViewDefinition def,
                          InsertMaintenanceOptions opts = {})
      : def_(std::move(def)), opts_(opts) {}

  /// Fully materializes against `g`; must be called before notifications.
  Status Attach(Graph& g);

  /// Notifies that edge (u, v) was removed from `g` (after the removal).
  Status OnEdgeRemoved(Graph& g, NodeId u, NodeId v);

  /// Notifies that edge (u, v) was inserted into `g` (after the insertion).
  /// Runs the localized insert delta; re-materializes only on fallback.
  Status OnEdgeInserted(Graph& g, NodeId u, NodeId v);

  const ViewDefinition& definition() const { return def_; }
  const ViewExtension& extension() const { return ext_; }

  /// Maintenance counters (observability / tests).
  size_t refresh_count() const { return refresh_count_; }
  size_t skipped_updates() const { return skipped_updates_; }
  const InsertMaintenanceStats& insert_stats() const { return insert_stats_; }

 private:
  Status Refresh(Graph& g, bool seeded);

  ViewDefinition def_;
  InsertMaintenanceOptions opts_;
  ViewExtension ext_;
  std::vector<std::vector<NodeId>> relation_;  // cached node relation
  bool attached_ = false;
  size_t refresh_count_ = 0;
  size_t skipped_updates_ = 0;
  InsertMaintenanceStats insert_stats_;
};

}  // namespace gpmv

#endif  // GPMV_CORE_MAINTENANCE_H_
