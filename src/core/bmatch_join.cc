#include "core/bmatch_join.h"

#include "graph/traversal.h"  // kUnbounded

namespace gpmv {

Result<MatchResult> BMatchJoin(const Pattern& qb, const ViewSet& views,
                               const std::vector<ViewExtension>& exts,
                               const ContainmentMapping& mapping,
                               const MatchJoinOptions& opts,
                               MatchJoinStats* stats) {
  return MatchJoin(qb, views, exts, mapping, opts, stats);
}

Result<MatchResult> BMatchJoin(const Pattern& qb, const ViewSet& views,
                               const std::vector<ViewExtension>& exts,
                               const ContainmentMapping& mapping,
                               const DistanceIndex& index,
                               const MatchJoinOptions& opts,
                               MatchJoinStats* stats) {
  Result<MatchResult> r = MatchJoin(qb, views, exts, mapping, opts, stats);
  GPMV_RETURN_NOT_OK(r.status());
  if (!r->matched()) return r;
  for (uint32_t e = 0; e < qb.num_edges(); ++e) {
    const uint32_t bound = qb.edge(e).bound;
    if (bound == kUnbounded) continue;
    for (const NodePair& p : r->edge_matches(e)) {
      std::optional<uint32_t> d = index.Distance(p.first, p.second);
      if (!d.has_value() || *d > bound) {
        return Status::Internal(
            "distance index disagrees with materialized view distances");
      }
    }
  }
  return r;
}

}  // namespace gpmv
