#include "core/bmatch_join.h"

namespace gpmv {

Result<MatchResult> BMatchJoin(const Pattern& qb, const ViewSet& views,
                               const std::vector<ViewExtension>& exts,
                               const ContainmentMapping& mapping,
                               const MatchJoinOptions& opts,
                               MatchJoinStats* stats) {
  return MatchJoin(qb, views, exts, mapping, opts, stats);
}

}  // namespace gpmv
