#include "core/rewriting.h"

#include <algorithm>
#include <unordered_map>

#include "core/view_match.h"

namespace gpmv {

namespace {

/// Subgraph of `q` induced by the given edge ids (nodes restricted to their
/// endpoints). `original_edge_of` receives the back-mapping.
Pattern InducedSubquery(const Pattern& q, const std::vector<uint32_t>& edges,
                        std::vector<uint32_t>* original_edge_of) {
  Pattern sub;
  std::unordered_map<uint32_t, uint32_t> node_of;
  original_edge_of->clear();
  for (uint32_t e : edges) {
    const PatternEdge& pe = q.edge(e);
    for (uint32_t u : {pe.src, pe.dst}) {
      if (node_of.count(u) == 0) {
        const PatternNode& n = q.node(u);
        node_of[u] = sub.AddNode(n.label, n.pred, n.name);
      }
    }
    (void)sub.AddEdge(node_of[pe.src], node_of[pe.dst], pe.bound);
    original_edge_of->push_back(e);
  }
  return sub;
}

}  // namespace

Result<PartialAnswer> MaximallyContainedRewriting(
    const Pattern& q, const ViewSet& views,
    const std::vector<ViewExtension>& exts, const MatchJoinOptions& opts) {
  if (q.num_edges() == 0) {
    return Status::InvalidArgument("query has no edges");
  }
  if (exts.size() != views.card()) {
    return Status::InvalidArgument("one extension per view required");
  }

  PartialAnswer answer;

  // Iterate: covered edges of the current subquery, re-induced until the
  // covered set is closed under the structural weakening it causes.
  std::vector<uint32_t> kept(q.num_edges());
  for (uint32_t e = 0; e < q.num_edges(); ++e) kept[e] = e;
  Pattern current = q;
  std::vector<uint32_t> current_to_original = kept;

  for (;;) {
    Result<std::vector<ViewMatchResult>> matches =
        ComputeAllViewMatches(current, views);
    GPMV_RETURN_NOT_OK(matches.status());
    std::vector<char> covered(current.num_edges(), 0);
    size_t covered_count = 0;
    for (const ViewMatchResult& vm : *matches) {
      for (uint32_t e : vm.covered) {
        if (!covered[e]) {
          covered[e] = 1;
          ++covered_count;
        }
      }
    }
    if (covered_count == current.num_edges()) break;  // fixpoint
    std::vector<uint32_t> surviving;
    std::vector<uint32_t> surviving_original;
    for (uint32_t e = 0; e < current.num_edges(); ++e) {
      if (covered[e]) {
        surviving.push_back(e);
        surviving_original.push_back(current_to_original[e]);
      }
    }
    if (surviving.empty()) {
      // Nothing answerable from the views.
      answer.exact = false;
      for (uint32_t e = 0; e < q.num_edges(); ++e) {
        answer.uncovered_edges.push_back(e);
      }
      answer.result = MatchResult::Empty(answer.subquery);
      return answer;
    }
    std::vector<uint32_t> dummy;
    current = InducedSubquery(current, surviving, &dummy);
    current_to_original = std::move(surviving_original);
  }

  answer.covered_edges = current_to_original;
  std::sort(answer.covered_edges.begin(), answer.covered_edges.end());
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    if (!std::binary_search(answer.covered_edges.begin(),
                            answer.covered_edges.end(), e)) {
      answer.uncovered_edges.push_back(e);
    }
  }
  answer.exact = answer.uncovered_edges.empty();
  answer.subquery = std::move(current);
  answer.original_edge_of = std::move(current_to_original);

  Result<ContainmentMapping> mapping =
      CheckContainment(answer.subquery, views);
  GPMV_RETURN_NOT_OK(mapping.status());
  GPMV_DCHECK(mapping->contained);
  Result<MatchResult> result =
      MatchJoin(answer.subquery, views, exts, *mapping, opts);
  GPMV_RETURN_NOT_OK(result.status());
  answer.result = std::move(result).value();
  return answer;
}

}  // namespace gpmv
