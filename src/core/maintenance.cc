#include "core/maintenance.h"

#include <algorithm>

#include "simulation/bounded.h"

namespace gpmv {

Status RefreshViewExtension(const ViewDefinition& def, const GraphSnapshot& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation) {
  std::vector<std::vector<NodeId>> new_relation;
  GPMV_RETURN_NOT_OK(ComputeBoundedSimulationRelation(
      def.pattern, g, &new_relation, seeded ? relation : nullptr));
  *relation = std::move(new_relation);
  Result<ViewExtension> fresh = ViewExtension::Materialize(def, g, relation);
  GPMV_RETURN_NOT_OK(fresh.status());
  *ext = std::move(fresh).value();
  return Status::OK();
}

Status RefreshViewExtension(const ViewDefinition& def, const Graph& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation) {
  return RefreshViewExtension(def, *GraphSnapshot::Build(g, g.version()),
                              seeded, ext, relation);
}

bool DeletionMayAffectView(const ViewDefinition& def,
                           const std::vector<std::vector<NodeId>>& relation,
                           NodeId u, NodeId v) {
  if (!def.pattern.IsSimulationPattern()) return true;
  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    const PatternEdge& pe = def.pattern.edge(e);
    const auto& su = relation[pe.src];
    const auto& sv = relation[pe.dst];
    if (std::binary_search(su.begin(), su.end(), u) &&
        std::binary_search(sv.begin(), sv.end(), v)) {
      return true;
    }
  }
  return false;
}

Status MaintainedView::Attach(Graph& g) {
  attached_ = true;
  return Refresh(g, /*seeded=*/false);
}

Status MaintainedView::Refresh(Graph& g, bool seeded) {
  ++refresh_count_;
  // Freeze() is cached and re-freezes incrementally after edge updates, so
  // a notification-driven refresh does not copy the whole graph.
  return RefreshViewExtension(def_, *g.Freeze(), seeded, &ext_, &relation_);
}

Status MaintainedView::OnEdgeRemoved(Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  if (!DeletionMayAffectView(def_, relation_, u, v)) {
    ++skipped_updates_;
    return Status::OK();
  }
  // Deletions only shrink the maximum relation: re-refine from the cached
  // relation instead of re-enumerating label candidates.
  return Refresh(g, /*seeded=*/true);
}

Status MaintainedView::OnEdgeInserted(Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  (void)u;
  (void)v;
  // Insertions can grow the relation beyond the cached seed; re-materialize.
  return Refresh(g, /*seeded=*/false);
}

}  // namespace gpmv
