#include "core/maintenance.h"

#include <algorithm>
#include <iterator>

#include "simulation/bounded.h"

namespace gpmv {

Status RefreshViewExtension(const ViewDefinition& def, const GraphSnapshot& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation) {
  std::vector<std::vector<NodeId>> new_relation;
  GPMV_RETURN_NOT_OK(ComputeBoundedSimulationRelation(
      def.pattern, g, &new_relation, seeded ? relation : nullptr));
  *relation = std::move(new_relation);
  Result<ViewExtension> fresh = ViewExtension::Materialize(def, g, relation);
  GPMV_RETURN_NOT_OK(fresh.status());
  *ext = std::move(fresh).value();
  return Status::OK();
}

Status RefreshViewExtension(const ViewDefinition& def, const Graph& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation) {
  return RefreshViewExtension(def, *GraphSnapshot::Build(g, g.version()),
                              seeded, ext, relation);
}

namespace {

/// Merges the insert delta into a plain-simulation extension in place: new
/// match pairs of view edge (s, t) are exactly the inserted edges landing
/// in rel'(s) × rel'(t) plus the edges incident to newly added relation
/// members — old pairs never leave under insertions, and since every new
/// pair has a new edge or a new endpoint, the three sources cover all of
/// them and are disjoint from the old sorted list.
size_t MergeInsertDelta(const ViewDefinition& def, const GraphSnapshot& g,
                        const std::vector<NodePair>& inserted,
                        const std::vector<std::vector<NodeId>>& relation,
                        const std::vector<std::vector<NodeId>>& added,
                        ViewExtension* ext) {
  size_t pairs_added = 0;
  auto contains = [](const std::vector<NodeId>& sorted, NodeId v) {
    return std::binary_search(sorted.begin(), sorted.end(), v);
  };
  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    const PatternEdge& pe = def.pattern.edge(e);
    const std::vector<NodeId>& rs = relation[pe.src];
    const std::vector<NodeId>& rt = relation[pe.dst];
    std::vector<NodePair> fresh;
    for (const NodePair& p : inserted) {
      if (contains(rs, p.first) && contains(rt, p.second)) fresh.push_back(p);
    }
    for (NodeId v : added[pe.src]) {
      for (NodeId w : g.out_neighbors(v)) {
        if (contains(rt, w)) fresh.emplace_back(v, w);
      }
    }
    for (NodeId w : added[pe.dst]) {
      for (NodeId v : g.in_neighbors(w)) {
        if (contains(rs, v)) fresh.emplace_back(v, w);
      }
    }
    if (fresh.empty()) continue;
    std::sort(fresh.begin(), fresh.end());
    fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());

    ViewEdgeExtension& vee = (*ext->mutable_edges())[e];
    // Guard the sorted-unique invariant against re-notified edges: a pair
    // is only new if it is not cached yet (an `inserted` entry for an edge
    // that already existed would otherwise duplicate its match pair).
    fresh.erase(std::remove_if(fresh.begin(), fresh.end(),
                               [&](const NodePair& p) {
                                 return std::binary_search(
                                     vee.pairs.begin(), vee.pairs.end(), p);
                               }),
                fresh.end());
    if (fresh.empty()) continue;
    std::vector<NodePair> merged;
    merged.reserve(vee.pairs.size() + fresh.size());
    std::merge(vee.pairs.begin(), vee.pairs.end(), fresh.begin(), fresh.end(),
               std::back_inserter(merged));
    vee.pairs = std::move(merged);
    // Plain simulation views: every match is one data edge, distance 1.
    vee.distances.assign(vee.pairs.size(), 1);
    pairs_added += fresh.size();
    for (const NodePair& p : fresh) {
      ext->EnsureSnapshot(g, p.first);
      ext->EnsureSnapshot(g, p.second);
    }
  }
  return pairs_added;
}

}  // namespace

Status RefreshViewExtensionInserted(const ViewDefinition& def,
                                    const GraphSnapshot& g,
                                    const std::vector<NodePair>& inserted,
                                    const InsertMaintenanceOptions& opts,
                                    ViewExtension* ext,
                                    std::vector<std::vector<NodeId>>* relation,
                                    InsertMaintenanceStats* stats) {
  InsertMaintenanceStats local;
  if (stats == nullptr) stats = &local;
  if (opts.enable_delta) {
    DeltaInsertOptions dopts;
    dopts.max_area_fraction = opts.max_area_fraction;
    DeltaInsertStats dstats;
    std::vector<std::vector<NodeId>> added;
    GPMV_RETURN_NOT_OK(DeltaSimulationInsert(def.pattern, g, inserted, dopts,
                                             relation, &added, &dstats));
    if (dstats.applied) {
      ++stats->delta_refreshes;
      stats->affected_nodes += dstats.affected_nodes;
      stats->delta_relation_added += dstats.relation_added;
      stats->delta_matches_added +=
          MergeInsertDelta(def, g, inserted, *relation, added, ext);
      return Status::OK();
    }
    switch (dstats.fallback) {
      case DeltaInsertFallback::kNotSimulationPattern:
        ++stats->fallback_not_simulation;
        break;
      case DeltaInsertFallback::kUnmatchedRelation:
        ++stats->fallback_unmatched;
        break;
      case DeltaInsertFallback::kAreaTooLarge:
        ++stats->fallback_area_too_large;
        break;
      case DeltaInsertFallback::kNone:
        break;
    }
  } else {
    ++stats->fallback_disabled;
  }
  ++stats->rematerialize_fallbacks;
  return RefreshViewExtension(def, g, /*seeded=*/false, ext, relation);
}

bool DeletionMayAffectView(const ViewDefinition& def,
                           const std::vector<std::vector<NodeId>>& relation,
                           NodeId u, NodeId v) {
  if (!def.pattern.IsSimulationPattern()) return true;
  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    const PatternEdge& pe = def.pattern.edge(e);
    const auto& su = relation[pe.src];
    const auto& sv = relation[pe.dst];
    if (std::binary_search(su.begin(), su.end(), u) &&
        std::binary_search(sv.begin(), sv.end(), v)) {
      return true;
    }
  }
  return false;
}

Status MaintainedView::Attach(Graph& g) {
  attached_ = true;
  return Refresh(g, /*seeded=*/false);
}

Status MaintainedView::Refresh(Graph& g, bool seeded) {
  ++refresh_count_;
  // Freeze() is cached and re-freezes incrementally after edge updates, so
  // a notification-driven refresh does not copy the whole graph.
  return RefreshViewExtension(def_, *g.Freeze(), seeded, &ext_, &relation_);
}

Status MaintainedView::OnEdgeRemoved(Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  if (!DeletionMayAffectView(def_, relation_, u, v)) {
    ++skipped_updates_;
    return Status::OK();
  }
  // Deletions only shrink the maximum relation: re-refine from the cached
  // relation instead of re-enumerating label candidates.
  return Refresh(g, /*seeded=*/true);
}

Status MaintainedView::OnEdgeInserted(Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  // Localized insert delta; re-materializes internally on fallback. Either
  // way the extension was maintained, so the refresh counter advances
  // (insert_stats_ breaks it down into delta vs fallback).
  ++refresh_count_;
  return RefreshViewExtensionInserted(def_, *g.Freeze(), {{u, v}}, opts_,
                                      &ext_, &relation_, &insert_stats_);
}

}  // namespace gpmv
