#include "core/maintenance.h"

#include <algorithm>

#include "simulation/bounded.h"

namespace gpmv {

Status MaintainedView::Attach(const Graph& g) {
  attached_ = true;
  return Refresh(g, /*seeded=*/false);
}

Status MaintainedView::Refresh(const Graph& g, bool seeded) {
  ++refresh_count_;
  std::vector<std::vector<NodeId>> new_relation;
  GPMV_RETURN_NOT_OK(ComputeBoundedSimulationRelation(
      def_.pattern, g, &new_relation, seeded ? &relation_ : nullptr));
  relation_ = std::move(new_relation);
  Result<ViewExtension> ext =
      ViewExtension::Materialize(def_, g, &relation_);
  GPMV_RETURN_NOT_OK(ext.status());
  ext_ = std::move(ext).value();
  return Status::OK();
}

Status MaintainedView::OnEdgeRemoved(const Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  // For plain simulation views, a deleted edge can only matter when it was
  // itself a match pair of some view edge: only match pairs support the
  // relation. (Bounded views skip the prescreen — the deleted edge may be
  // interior to a matched path.)
  if (def_.pattern.IsSimulationPattern()) {
    bool relevant = false;
    for (uint32_t e = 0; e < def_.pattern.num_edges() && !relevant; ++e) {
      const PatternEdge& pe = def_.pattern.edge(e);
      const auto& su = relation_[pe.src];
      const auto& sv = relation_[pe.dst];
      relevant = std::binary_search(su.begin(), su.end(), u) &&
                 std::binary_search(sv.begin(), sv.end(), v);
    }
    if (!relevant) {
      ++skipped_updates_;
      return Status::OK();
    }
  }
  // Deletions only shrink the maximum relation: re-refine from the cached
  // relation instead of re-enumerating label candidates.
  return Refresh(g, /*seeded=*/true);
}

Status MaintainedView::OnEdgeInserted(const Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  (void)u;
  (void)v;
  // Insertions can grow the relation beyond the cached seed; re-materialize.
  return Refresh(g, /*seeded=*/false);
}

}  // namespace gpmv
