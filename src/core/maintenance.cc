#include "core/maintenance.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "graph/traversal.h"
#include "simulation/bounded.h"

namespace gpmv {

Status RefreshViewExtension(const ViewDefinition& def, const GraphSnapshot& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation) {
  std::vector<std::vector<NodeId>> new_relation;
  GPMV_RETURN_NOT_OK(ComputeBoundedSimulationRelation(
      def.pattern, g, &new_relation, seeded ? relation : nullptr));
  *relation = std::move(new_relation);
  Result<ViewExtension> fresh = ViewExtension::Materialize(def, g, relation);
  GPMV_RETURN_NOT_OK(fresh.status());
  *ext = std::move(fresh).value();
  return Status::OK();
}

Status RefreshViewExtension(const ViewDefinition& def, const Graph& g,
                            bool seeded, ViewExtension* ext,
                            std::vector<std::vector<NodeId>>* relation) {
  return RefreshViewExtension(def, *GraphSnapshot::Build(g, g.version()),
                              seeded, ext, relation);
}

namespace {

/// Merges the insert delta into a plain-simulation extension in place: new
/// match pairs of view edge (s, t) are exactly the inserted edges landing
/// in rel'(s) × rel'(t) plus the edges incident to newly added relation
/// members — old pairs never leave under insertions, and since every new
/// pair has a new edge or a new endpoint, the three sources cover all of
/// them and are disjoint from the old sorted list.
size_t MergeInsertDelta(const ViewDefinition& def, const GraphSnapshot& g,
                        const std::vector<NodePair>& inserted,
                        const std::vector<std::vector<NodeId>>& relation,
                        const std::vector<std::vector<NodeId>>& added,
                        ViewExtension* ext) {
  size_t pairs_added = 0;
  auto contains = [](const std::vector<NodeId>& sorted, NodeId v) {
    return std::binary_search(sorted.begin(), sorted.end(), v);
  };
  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    const PatternEdge& pe = def.pattern.edge(e);
    const std::vector<NodeId>& rs = relation[pe.src];
    const std::vector<NodeId>& rt = relation[pe.dst];
    std::vector<NodePair> fresh;
    for (const NodePair& p : inserted) {
      if (contains(rs, p.first) && contains(rt, p.second)) fresh.push_back(p);
    }
    for (NodeId v : added[pe.src]) {
      for (NodeId w : g.out_neighbors(v)) {
        if (contains(rt, w)) fresh.emplace_back(v, w);
      }
    }
    for (NodeId w : added[pe.dst]) {
      for (NodeId v : g.in_neighbors(w)) {
        if (contains(rs, v)) fresh.emplace_back(v, w);
      }
    }
    if (fresh.empty()) continue;
    std::sort(fresh.begin(), fresh.end());
    fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());

    ViewEdgeExtension& vee = (*ext->mutable_edges())[e];
    // Guard the sorted-unique invariant against re-notified edges: a pair
    // is only new if it is not cached yet (an `inserted` entry for an edge
    // that already existed would otherwise duplicate its match pair).
    fresh.erase(std::remove_if(fresh.begin(), fresh.end(),
                               [&](const NodePair& p) {
                                 return std::binary_search(
                                     vee.pairs.begin(), vee.pairs.end(), p);
                               }),
                fresh.end());
    if (fresh.empty()) continue;
    std::vector<NodePair> merged;
    merged.reserve(vee.pairs.size() + fresh.size());
    std::merge(vee.pairs.begin(), vee.pairs.end(), fresh.begin(), fresh.end(),
               std::back_inserter(merged));
    vee.pairs = std::move(merged);
    // Plain simulation views: every match is one data edge, distance 1.
    vee.distances.assign(vee.pairs.size(), 1);
    pairs_added += fresh.size();
    for (const NodePair& p : fresh) {
      ext->EnsureSnapshot(g, p.first);
      ext->EnsureSnapshot(g, p.second);
    }
  }
  return pairs_added;
}

/// Merges the insert delta into a *bounded* extension in place. Unlike the
/// plain case, an inserted edge (a, b) can create or shorten match pairs
/// between members the delta never touched, so fresh (pair, distance)
/// candidates come from three sources per view edge (s, t, k):
///   (a) newly added sources v ∈ Δ(s): forward bounded BFS from out(v)
///       gives the exact shortest nonempty distance to every x ∈ rel'(t)
///       within k;
///   (b) newly added targets x ∈ Δ(t): symmetric reverse BFS from in(x);
///   (c) per inserted edge (a, b): every path using an inserted edge splits
///       as v ~> a → b ~> x with both halves in the post-insert graph, so
///       the reverse (k-1)-ball of a crossed with the forward (k-1)-ball of
///       b yields drev(v) + 1 + dfwd(x) — minimized over inserted edges
///       this is the exact new distance for any old-member pair whose
///       shortest path crosses the insertions.
/// Candidates add-or-min into the sorted (pairs, distances) columns, which
/// keeps every stored distance an exact shortest nonempty path length.
/// A non-null `dindex` sees each added/updated pair via AddOrShorten.
size_t MergeBoundedInsertDelta(const ViewDefinition& def,
                               const GraphSnapshot& g,
                               const std::vector<NodePair>& inserted,
                               const std::vector<std::vector<NodeId>>& relation,
                               const std::vector<std::vector<NodeId>>& added,
                               ViewExtension* ext, DistanceIndex* dindex) {
  size_t pairs_changed = 0;
  auto contains = [](const std::vector<NodeId>& sorted, NodeId v) {
    return std::binary_search(sorted.begin(), sorted.end(), v);
  };
  auto inner = [](uint32_t bound) {
    return bound == kUnbounded ? kUnbounded : bound - 1;
  };
  BfsScratch scratch(g.num_nodes());
  BfsScratch fwd(g.num_nodes());
  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    const PatternEdge& pe = def.pattern.edge(e);
    const std::vector<NodeId>& rs = relation[pe.src];
    const std::vector<NodeId>& rt = relation[pe.dst];
    const uint32_t k = pe.bound;
    std::vector<std::pair<NodePair, uint32_t>> fresh;
    // (a) new sources: exact forward distances to targets within k.
    for (NodeId v : added[pe.src]) {
      scratch.Run(g, g.out_neighbors(v), inner(k), /*forward=*/true);
      for (NodeId x : scratch.reached()) {
        if (contains(rt, x)) fresh.push_back({{v, x}, scratch.dist(x) + 1});
      }
    }
    // (b) new targets: exact reverse distances from sources within k.
    for (NodeId x : added[pe.dst]) {
      scratch.Run(g, g.in_neighbors(x), inner(k), /*forward=*/false);
      for (NodeId v : scratch.reached()) {
        if (contains(rs, v)) fresh.push_back({{v, x}, scratch.dist(v) + 1});
      }
    }
    // (c) shortened/created old-member pairs through each inserted edge.
    for (const NodePair& ab : inserted) {
      scratch.RunSingle(g, ab.first, inner(k), /*forward=*/false);
      fwd.RunSingle(g, ab.second, inner(k), /*forward=*/true);
      std::vector<std::pair<NodeId, uint32_t>> targets;
      for (NodeId x : fwd.reached()) {
        if (contains(rt, x)) targets.emplace_back(x, fwd.dist(x));
      }
      if (targets.empty()) continue;
      for (NodeId v : scratch.reached()) {
        if (!contains(rs, v)) continue;
        const uint32_t head = scratch.dist(v) + 1;
        for (const auto& [x, dx] : targets) {
          if (k == kUnbounded || head + dx <= k) {
            fresh.push_back({{v, x}, head + dx});
          }
        }
      }
    }
    if (fresh.empty()) continue;
    // Sort by pair keeping the minimum distance per pair.
    std::sort(fresh.begin(), fresh.end());
    size_t out = 0;
    for (size_t i = 0; i < fresh.size(); ++i) {
      if (out > 0 && fresh[out - 1].first == fresh[i].first) continue;
      fresh[out++] = fresh[i];
    }
    fresh.resize(out);

    // Lockstep add-or-min merge with the sorted extension columns.
    ViewEdgeExtension& vee = (*ext->mutable_edges())[e];
    std::vector<NodePair> merged_pairs;
    std::vector<uint32_t> merged_dists;
    merged_pairs.reserve(vee.pairs.size() + fresh.size());
    merged_dists.reserve(vee.pairs.size() + fresh.size());
    size_t i = 0, j = 0;
    bool edge_changed = false;
    while (i < vee.pairs.size() || j < fresh.size()) {
      if (j == fresh.size() ||
          (i < vee.pairs.size() && vee.pairs[i] < fresh[j].first)) {
        merged_pairs.push_back(vee.pairs[i]);
        merged_dists.push_back(vee.distances[i]);
        ++i;
      } else if (i == vee.pairs.size() || fresh[j].first < vee.pairs[i]) {
        merged_pairs.push_back(fresh[j].first);
        merged_dists.push_back(fresh[j].second);
        ext->EnsureSnapshot(g, fresh[j].first.first);
        ext->EnsureSnapshot(g, fresh[j].first.second);
        if (dindex != nullptr) {
          dindex->AddOrShorten(fresh[j].first.first, fresh[j].first.second,
                               fresh[j].second);
        }
        ++pairs_changed;
        edge_changed = true;
        ++j;
      } else {
        merged_pairs.push_back(vee.pairs[i]);
        if (fresh[j].second < vee.distances[i]) {
          merged_dists.push_back(fresh[j].second);
          if (dindex != nullptr) {
            dindex->AddOrShorten(fresh[j].first.first, fresh[j].first.second,
                                 fresh[j].second);
          }
          ++pairs_changed;
          edge_changed = true;
        } else {
          merged_dists.push_back(vee.distances[i]);
        }
        ++i;
        ++j;
      }
    }
    if (edge_changed) {
      vee.pairs = std::move(merged_pairs);
      vee.distances = std::move(merged_dists);
    }
  }
  return pairs_changed;
}

}  // namespace

Status RefreshViewExtensionInserted(const ViewDefinition& def,
                                    const GraphSnapshot& g,
                                    const std::vector<NodePair>& inserted,
                                    const InsertMaintenanceOptions& opts,
                                    ViewExtension* ext,
                                    std::vector<std::vector<NodeId>>* relation,
                                    InsertMaintenanceStats* stats,
                                    DistanceIndex* dindex) {
  InsertMaintenanceStats local;
  if (stats == nullptr) stats = &local;
  if (opts.enable_delta) {
    DeltaInsertOptions dopts;
    dopts.max_area_fraction = opts.max_area_fraction;
    DeltaInsertStats dstats;
    std::vector<std::vector<NodeId>> added;
    GPMV_RETURN_NOT_OK(DeltaBoundedInsert(def.pattern, g, inserted, dopts,
                                          relation, &added, &dstats));
    if (dstats.applied) {
      ++stats->delta_refreshes;
      stats->affected_nodes += dstats.affected_nodes;
      stats->delta_relation_added += dstats.relation_added;
      if (def.pattern.IsSimulationPattern()) {
        stats->delta_matches_added +=
            MergeInsertDelta(def, g, inserted, *relation, added, ext);
      } else {
        ++stats->bounded_delta_refreshes;
        const size_t changed = MergeBoundedInsertDelta(
            def, g, inserted, *relation, added, ext, dindex);
        stats->delta_matches_added += changed;
        stats->bounded_matches_added += changed;
      }
      return Status::OK();
    }
    switch (dstats.fallback) {
      case DeltaInsertFallback::kNotSimulationPattern:
        ++stats->fallback_not_simulation;
        break;
      case DeltaInsertFallback::kUnmatchedRelation:
        ++stats->fallback_unmatched;
        break;
      case DeltaInsertFallback::kAreaTooLarge:
        ++stats->fallback_area_too_large;
        break;
      case DeltaInsertFallback::kNone:
        break;
    }
  } else {
    ++stats->fallback_disabled;
  }
  ++stats->rematerialize_fallbacks;
  return RefreshViewExtension(def, g, /*seeded=*/false, ext, relation);
}

bool DeletionMayAffectView(const ViewDefinition& def,
                           const std::vector<std::vector<NodeId>>& relation,
                           NodeId u, NodeId v) {
  if (!def.pattern.IsSimulationPattern()) return true;
  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    const PatternEdge& pe = def.pattern.edge(e);
    const auto& su = relation[pe.src];
    const auto& sv = relation[pe.dst];
    if (std::binary_search(su.begin(), su.end(), u) &&
        std::binary_search(sv.begin(), sv.end(), v)) {
      return true;
    }
  }
  return false;
}

Status MaintainedView::Attach(Graph& g) {
  attached_ = true;
  return Refresh(g, /*seeded=*/false);
}

Status MaintainedView::Refresh(Graph& g, bool seeded) {
  ++refresh_count_;
  // Freeze() is cached and re-freezes incrementally after edge updates, so
  // a notification-driven refresh does not copy the whole graph.
  return RefreshViewExtension(def_, *g.Freeze(), seeded, &ext_, &relation_);
}

Status MaintainedView::OnEdgeRemoved(Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  if (!DeletionMayAffectView(def_, relation_, u, v)) {
    ++skipped_updates_;
    return Status::OK();
  }
  // Deletions only shrink the maximum relation: re-refine from the cached
  // relation instead of re-enumerating label candidates.
  return Refresh(g, /*seeded=*/true);
}

Status MaintainedView::OnEdgeInserted(Graph& g, NodeId u, NodeId v) {
  if (!attached_) return Status::InvalidArgument("view not attached");
  // Localized insert delta; re-materializes internally on fallback. Either
  // way the extension was maintained, so the refresh counter advances
  // (insert_stats_ breaks it down into delta vs fallback).
  ++refresh_count_;
  return RefreshViewExtensionInserted(def_, *g.Freeze(), {{u, v}}, opts_,
                                      &ext_, &relation_, &insert_stats_);
}

}  // namespace gpmv
