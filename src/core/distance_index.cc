#include "core/distance_index.h"

#include <algorithm>

namespace gpmv {

DistanceIndex DistanceIndex::Build(const std::vector<ViewExtension>& exts) {
  DistanceIndex idx;
  for (const ViewExtension& ext : exts) {
    for (uint32_t e = 0; e < ext.num_view_edges(); ++e) {
      const ViewEdgeExtension& vee = ext.edge(e);
      for (size_t i = 0; i < vee.pairs.size(); ++i) {
        uint64_t key = Key(vee.pairs[i].first, vee.pairs[i].second);
        auto [it, inserted] = idx.index_.try_emplace(key, vee.distances[i]);
        if (!inserted) it->second = std::min(it->second, vee.distances[i]);
      }
    }
  }
  return idx;
}

std::optional<uint32_t> DistanceIndex::Distance(NodeId v, NodeId v2) const {
  auto it = index_.find(Key(v, v2));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace gpmv
