#include "core/distance_index.h"

#include <algorithm>

#include "graph/traversal.h"

namespace gpmv {

DistanceIndex DistanceIndex::Build(const std::vector<ViewExtension>& exts) {
  DistanceIndex idx;
  for (const ViewExtension& ext : exts) {
    for (uint32_t e = 0; e < ext.num_view_edges(); ++e) {
      const ViewEdgeExtension& vee = ext.edge(e);
      for (size_t i = 0; i < vee.pairs.size(); ++i) {
        idx.AddOrShorten(vee.pairs[i].first, vee.pairs[i].second,
                         vee.distances[i]);
      }
    }
  }
  return idx;
}

std::optional<uint32_t> DistanceIndex::Distance(NodeId v, NodeId v2) const {
  auto sit = index_.find(v);
  if (sit == index_.end()) return std::nullopt;
  auto it = sit->second.find(v2);
  if (it == sit->second.end()) return std::nullopt;
  return it->second;
}

void DistanceIndex::AddOrShorten(NodeId v, NodeId v2, uint32_t d) {
  auto [it, inserted] = index_[v].try_emplace(v2, d);
  if (inserted) {
    ++size_;
  } else if (d < it->second) {
    it->second = d;
  }
  budget_ = std::max(budget_, it->second);
}

size_t DistanceIndex::ApplyInsertions(const GraphSnapshot& g,
                                      const std::vector<NodePair>& inserted) {
  if (size_ == 0 || inserted.empty()) return 0;
  // Any improved path for a tracked pair has length <= its old distance
  // <= B; splitting it at the inserted edge leaves both halves <= B - 1.
  const uint32_t half = budget_ == 0 ? 0 : budget_ - 1;
  BfsScratch rev(g.num_nodes());
  BfsScratch fwd(g.num_nodes());
  size_t shortened = 0;
  for (const NodePair& e : inserted) {
    rev.RunSingle(g, e.first, half, /*forward=*/false);
    fwd.RunSingle(g, e.second, half, /*forward=*/true);
    for (NodeId v : rev.reached()) {
      auto sit = index_.find(v);
      if (sit == index_.end()) continue;
      const uint32_t head = rev.dist(v) + 1;
      for (auto& [x, d] : sit->second) {
        if (!fwd.Reached(x)) continue;
        const uint32_t cand = head + fwd.dist(x);
        if (cand < d) {
          d = cand;
          ++shortened;
        }
      }
    }
  }
  return shortened;
}

size_t DistanceIndex::InvalidateForDeletions(
    const GraphSnapshot& g, const std::vector<NodePair>& deleted) {
  if (size_ == 0 || deleted.empty()) return 0;
  // A stale entry's old path crossed some deleted edge; its prefix up to
  // the *first* deleted edge survives in the post-delete graph, so the
  // source lies within B - 1 reverse hops of that edge's tail.
  const uint32_t half = budget_ == 0 ? 0 : budget_ - 1;
  BfsScratch rev(g.num_nodes());
  size_t newly_dirty = 0;
  for (const NodePair& e : deleted) {
    rev.RunSingle(g, e.first, half, /*forward=*/false);
    for (NodeId v : rev.reached()) {
      if (index_.find(v) == index_.end()) continue;
      if (dirty_.insert(v).second) ++newly_dirty;
    }
  }
  return newly_dirty;
}

void DistanceIndex::RepairDirty(const GraphSnapshot& g) {
  if (dirty_.empty()) return;
  // Stored distances are shortest *nonempty* path lengths (a tracked
  // (v, v) pair means a cycle through v), so the refresh BFS starts from
  // v's out-neighbors at depth B - 1 and adds the first hop back.
  const uint32_t half = budget_ == 0 ? 0 : budget_ - 1;
  BfsScratch fwd(g.num_nodes());
  for (NodeId v : dirty_) {
    auto sit = index_.find(v);
    if (sit == index_.end()) continue;
    fwd.Run(g, g.out_neighbors(v), half, /*forward=*/true);
    auto& targets = sit->second;
    for (auto it = targets.begin(); it != targets.end();) {
      if (fwd.Reached(it->first)) {
        it->second = fwd.dist(it->first) + 1;
        ++it;
      } else {
        it = targets.erase(it);
        --size_;
      }
    }
    if (targets.empty()) index_.erase(sit);
    ++repairs_;
  }
  dirty_.clear();
}

void DistanceIndex::RepairAll(const GraphSnapshot& g) {
  for (const auto& [v, targets] : index_) dirty_.insert(v);
  RepairDirty(g);
}

}  // namespace gpmv
