/// \file containment.h
/// \brief Pattern containment Q ⊑ V and the three containment problems
/// (paper Sections III, IV, V and VI-B).
///
/// Q ⊑ V holds iff every query edge's match set is covered, on every data
/// graph, by the union of match sets of view edges — equivalently (Prop.
/// 7/11) iff Ep = ∪_V M^Q_V. The functions here decide containment and
/// produce the mapping λ : Ep → P(view edges) that MatchJoin consumes:
///
///  * CheckContainment   — `contain`/`Bcontain`: all views, quadratic time;
///  * MinimalContainment — `minimal`/`Bminimal`: an inclusion-minimal subset
///    (dropping any selected view breaks containment), quadratic time;
///  * MinimumContainment — `minimum`/`Bminimum`: greedy O(log |Ep|)-
///    approximation of the NP-complete minimum subset (Theorem 6);
///  * ExactMinimumContainment — exhaustive optimum for small view sets,
///    used by tests and the Fig. 8(h) harness to gauge the approximation.
///
/// A query with an isolated node is reported as not contained: edge-level
/// coverage can never witness matches for such a node (the paper assumes
/// connected patterns).

#ifndef GPMV_CORE_CONTAINMENT_H_
#define GPMV_CORE_CONTAINMENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/view.h"
#include "core/view_match.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Reference to one edge of one view.
struct ViewEdgeRef {
  uint32_t view = 0;
  uint32_t edge = 0;

  bool operator==(const ViewEdgeRef& o) const {
    return view == o.view && edge == o.edge;
  }
  bool operator<(const ViewEdgeRef& o) const {
    return view != o.view ? view < o.view : edge < o.edge;
  }
};

/// Outcome of a containment analysis.
struct ContainmentMapping {
  /// Does Q ⊑ (selected subset of) V hold?
  bool contained = false;
  /// Indices of the views used (sorted ascending).
  std::vector<uint32_t> selected;
  /// λ: for each query edge, the covering view edges (within `selected`).
  /// Meaningful only when `contained`.
  std::vector<std::vector<ViewEdgeRef>> lambda;
};

/// Decides Q ⊑ V using every view (algorithm `contain`).
Result<ContainmentMapping> CheckContainment(const Pattern& q,
                                            const ViewSet& views);

/// Finds an inclusion-minimal covering subset (algorithm `minimal`, Fig. 5).
/// Not contained -> `contained == false`, empty selection.
Result<ContainmentMapping> MinimalContainment(const Pattern& q,
                                              const ViewSet& views);

/// Greedy set-cover approximation of the minimum covering subset
/// (algorithm `minimum`). card(selected) ≤ log(|Ep|) · card(optimum).
Result<ContainmentMapping> MinimumContainment(const Pattern& q,
                                              const ViewSet& views);

/// Exhaustive minimum (exponential in card(V); requires card(V) ≤ 24).
Result<ContainmentMapping> ExactMinimumContainment(const Pattern& q,
                                                   const ViewSet& views);

/// Shared first phase: the view match of every view against `q`.
Result<std::vector<ViewMatchResult>> ComputeAllViewMatches(
    const Pattern& q, const ViewSet& views);

}  // namespace gpmv

#endif  // GPMV_CORE_CONTAINMENT_H_
