/// \file view_io.h
/// \brief Plain-text serialization of view sets.
///
/// A view-set file is a sequence of `view <name>` headers, each followed by
/// a pattern in the pattern_io.h format:
///
///     view pm_leads
///     node PM label=PM
///     node DBA label=DBA
///     edge PM DBA
///     view qa_covers
///     ...

#ifndef GPMV_CORE_VIEW_IO_H_
#define GPMV_CORE_VIEW_IO_H_

#include <string>

#include "common/status.h"
#include "core/view.h"

namespace gpmv {

/// Serializes a view set in the format above.
std::string ViewSetToText(const ViewSet& views);

/// Parses a view set from the format above.
Result<ViewSet> ViewSetFromText(const std::string& text);

/// File helpers.
Status WriteViewSetFile(const ViewSet& views, const std::string& path);
Result<ViewSet> ReadViewSetFile(const std::string& path);

}  // namespace gpmv

#endif  // GPMV_CORE_VIEW_IO_H_
