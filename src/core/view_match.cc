#include "core/view_match.h"

#include <algorithm>

namespace gpmv {

bool QueryNodeMatchesViewNode(const PatternNode& qu, const PatternNode& vw) {
  if (!vw.label.empty() && vw.label != qu.label) return false;
  return qu.pred.Implies(vw.pred);
}

namespace {

/// Nonempty-path weighted distances over the query pattern: ndist[u][u'] is
/// the least total bound of a path with >= 1 edge from u to u'
/// (kInfDistance if none). Differs from WeightedDistances on the diagonal,
/// where it is the cheapest cycle through u.
std::vector<std::vector<uint64_t>> NonemptyDistances(const Pattern& q) {
  std::vector<std::vector<uint64_t>> dist = q.WeightedDistances();
  const size_t n = q.num_nodes();
  std::vector<std::vector<uint64_t>> ndist(n,
                                           std::vector<uint64_t>(n, kInfDistance));
  for (const PatternEdge& e : q.edges()) {
    uint64_t w = (e.bound == kUnbounded) ? kInfDistance : e.bound;
    if (w == kInfDistance) continue;
    for (size_t t = 0; t < n; ++t) {
      if (dist[e.dst][t] == kInfDistance) continue;
      uint64_t via = w + dist[e.dst][t];
      if (via < ndist[e.src][t]) ndist[e.src][t] = via;
    }
  }
  return ndist;
}

/// reach[u][u'] — is there a nonempty path from u to u' in the pattern,
/// traversing edges of any bound (including `*`)? This is what a `*` view
/// bound needs: reachability, not a finite-weight certificate.
std::vector<std::vector<char>> NonemptyReachability(const Pattern& q) {
  const size_t n = q.num_nodes();
  std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
  const auto adj = q.Adjacency();
  for (size_t s = 0; s < n; ++s) {
    // BFS from s's successors marks all targets of nonempty paths.
    std::vector<uint32_t> stack(adj[s].begin(), adj[s].end());
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      if (reach[s][v]) continue;
      reach[s][v] = 1;
      for (uint32_t w : adj[v]) {
        if (!reach[s][w]) stack.push_back(w);
      }
    }
  }
  return reach;
}

/// Does a query-node distance certify a view-edge bound?
bool DistanceWithin(uint64_t ndist, bool reachable, uint32_t view_bound) {
  if (view_bound == kUnbounded) return reachable;
  return ndist != kInfDistance && ndist <= static_cast<uint64_t>(view_bound);
}

/// Does query-edge bound fe(e) fit under view-edge bound kV? (`*` only
/// under `*`.)
bool BoundCovered(uint32_t query_bound, uint32_t view_bound) {
  if (view_bound == kUnbounded) return true;
  if (query_bound == kUnbounded) return false;
  return query_bound <= view_bound;
}

}  // namespace

Result<ViewMatchResult> ComputeViewMatch(const Pattern& view,
                                         const Pattern& q) {
  if (view.num_nodes() == 0 || q.num_nodes() == 0) {
    return Status::InvalidArgument("empty pattern");
  }
  const size_t nv = view.num_nodes();
  const size_t nq = q.num_nodes();

  // rel[w][u] — view node w can simulate query node u.
  std::vector<std::vector<char>> rel(nv, std::vector<char>(nq, 0));
  for (size_t w = 0; w < nv; ++w) {
    for (size_t u = 0; u < nq; ++u) {
      rel[w][u] = QueryNodeMatchesViewNode(q.node(u), view.node(w)) ? 1 : 0;
    }
  }

  const std::vector<std::vector<uint64_t>> ndist = NonemptyDistances(q);
  const std::vector<std::vector<char>> reach = NonemptyReachability(q);

  // Fixpoint: (w, u) needs, for every view edge (w, w', kV), some u' with
  // (w', u') related and a nonempty path u ~> u' within kV. Patterns are
  // tiny, so plain iteration suffices.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t w = 0; w < nv; ++w) {
      for (size_t u = 0; u < nq; ++u) {
        if (!rel[w][u]) continue;
        bool ok = true;
        for (uint32_t ev : view.out_edges(static_cast<uint32_t>(w))) {
          const PatternEdge& ve = view.edge(ev);
          bool found = false;
          for (size_t u2 = 0; u2 < nq && !found; ++u2) {
            found = rel[ve.dst][u2] &&
                    DistanceWithin(ndist[u][u2], reach[u][u2] != 0, ve.bound);
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          rel[w][u] = 0;
          changed = true;
        }
      }
    }
  }

  ViewMatchResult result;
  result.per_view_edge.assign(view.num_edges(), {});

  // The view itself must match Q (every view node nonempty); otherwise the
  // view match is empty by definition (V !E_sim Q).
  for (size_t w = 0; w < nv; ++w) {
    bool any = false;
    for (size_t u = 0; u < nq; ++u) any = any || rel[w][u];
    if (!any) return result;
  }

  for (uint32_t ev = 0; ev < view.num_edges(); ++ev) {
    const PatternEdge& ve = view.edge(ev);
    auto& covered_edges = result.per_view_edge[ev];
    for (uint32_t e = 0; e < q.num_edges(); ++e) {
      const PatternEdge& qe = q.edge(e);
      if (rel[ve.src][qe.src] && rel[ve.dst][qe.dst] &&
          BoundCovered(qe.bound, ve.bound)) {
        covered_edges.push_back(e);
      }
    }
    for (uint32_t e : covered_edges) result.covered.push_back(e);
  }
  std::sort(result.covered.begin(), result.covered.end());
  result.covered.erase(std::unique(result.covered.begin(), result.covered.end()),
                       result.covered.end());
  return result;
}

}  // namespace gpmv
