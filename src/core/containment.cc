#include "core/containment.h"

#include <algorithm>

namespace gpmv {

namespace {

/// Builds λ restricted to `selected` (sorted view indices) from per-view
/// matches; also sets `contained` by checking full edge coverage.
ContainmentMapping BuildMapping(const Pattern& q,
                                const std::vector<ViewMatchResult>& matches,
                                std::vector<uint32_t> selected) {
  ContainmentMapping m;
  m.lambda.assign(q.num_edges(), {});
  std::sort(selected.begin(), selected.end());
  for (uint32_t vi : selected) {
    const ViewMatchResult& vm = matches[vi];
    for (uint32_t ev = 0; ev < vm.per_view_edge.size(); ++ev) {
      for (uint32_t qe : vm.per_view_edge[ev]) {
        m.lambda[qe].push_back(ViewEdgeRef{vi, ev});
      }
    }
  }
  m.contained = q.num_edges() > 0 && q.HasNoIsolatedNode();
  for (const auto& refs : m.lambda) {
    if (refs.empty()) {
      m.contained = false;
      break;
    }
  }
  if (m.contained) {
    m.selected = std::move(selected);
  } else {
    m.lambda.assign(q.num_edges(), {});
  }
  return m;
}

}  // namespace

Result<std::vector<ViewMatchResult>> ComputeAllViewMatches(
    const Pattern& q, const ViewSet& views) {
  std::vector<ViewMatchResult> matches;
  matches.reserve(views.card());
  for (const ViewDefinition& def : views.views()) {
    Result<ViewMatchResult> vm = ComputeViewMatch(def.pattern, q);
    GPMV_RETURN_NOT_OK(vm.status());
    matches.push_back(std::move(vm).value());
  }
  return matches;
}

Result<ContainmentMapping> CheckContainment(const Pattern& q,
                                            const ViewSet& views) {
  Result<std::vector<ViewMatchResult>> matches = ComputeAllViewMatches(q, views);
  GPMV_RETURN_NOT_OK(matches.status());
  std::vector<uint32_t> all(views.card());
  for (uint32_t i = 0; i < views.card(); ++i) all[i] = i;
  return BuildMapping(q, *matches, std::move(all));
}

Result<ContainmentMapping> MinimalContainment(const Pattern& q,
                                              const ViewSet& views) {
  Result<std::vector<ViewMatchResult>> matches_or =
      ComputeAllViewMatches(q, views);
  GPMV_RETURN_NOT_OK(matches_or.status());
  const std::vector<ViewMatchResult>& matches = *matches_or;
  const size_t ne = q.num_edges();

  // Phase 1 (Fig. 5 lines 2-7): add views that contribute uncovered edges,
  // maintaining M(e) = selected views covering e; stop once E = Ep.
  std::vector<char> covered(ne, 0);
  size_t covered_count = 0;
  std::vector<std::vector<uint32_t>> covering_views(ne);  // the index M
  std::vector<uint32_t> selected;
  for (uint32_t vi = 0; vi < views.card() && covered_count < ne; ++vi) {
    bool contributes = false;
    for (uint32_t e : matches[vi].covered) {
      if (!covered[e]) {
        contributes = true;
        break;
      }
    }
    if (!contributes) continue;
    selected.push_back(vi);
    for (uint32_t e : matches[vi].covered) {
      covering_views[e].push_back(vi);
      if (!covered[e]) {
        covered[e] = 1;
        ++covered_count;
      }
    }
  }
  if (covered_count < ne || ne == 0 || !q.HasNoIsolatedNode()) {
    return ContainmentMapping{};  // Qs not contained in V (line 8)
  }

  // Phase 2 (lines 9-11): drop views that became redundant.
  for (size_t i = selected.size(); i-- > 0;) {
    uint32_t vj = selected[i];
    bool needed = false;
    for (uint32_t e : matches[vj].covered) {
      if (covering_views[e].size() == 1) {
        GPMV_DCHECK(covering_views[e][0] == vj);
        needed = true;
        break;
      }
    }
    if (needed) continue;
    selected.erase(selected.begin() + static_cast<ptrdiff_t>(i));
    for (uint32_t e : matches[vj].covered) {
      auto& cv = covering_views[e];
      cv.erase(std::remove(cv.begin(), cv.end(), vj), cv.end());
    }
  }
  return BuildMapping(q, matches, std::move(selected));
}

Result<ContainmentMapping> MinimumContainment(const Pattern& q,
                                              const ViewSet& views) {
  Result<std::vector<ViewMatchResult>> matches_or =
      ComputeAllViewMatches(q, views);
  GPMV_RETURN_NOT_OK(matches_or.status());
  const std::vector<ViewMatchResult>& matches = *matches_or;
  const size_t ne = q.num_edges();

  std::vector<char> covered(ne, 0);
  size_t covered_count = 0;
  std::vector<char> used(views.card(), 0);
  std::vector<uint32_t> selected;

  // Greedy set cover: repeatedly take the view covering the most still-
  // uncovered edges (the paper's α(V) ranking; |Ep| is a common factor).
  while (covered_count < ne) {
    uint32_t best = kInvalidNode;
    size_t best_gain = 0;
    for (uint32_t vi = 0; vi < views.card(); ++vi) {
      if (used[vi]) continue;
      size_t gain = 0;
      for (uint32_t e : matches[vi].covered) gain += covered[e] ? 0 : 1;
      if (gain > best_gain) {
        best_gain = gain;
        best = vi;
      }
    }
    if (best == kInvalidNode) break;  // no progress possible: Q !⊑ V
    used[best] = 1;
    selected.push_back(best);
    for (uint32_t e : matches[best].covered) {
      if (!covered[e]) {
        covered[e] = 1;
        ++covered_count;
      }
    }
  }
  if (covered_count < ne) return ContainmentMapping{};
  return BuildMapping(q, matches, std::move(selected));
}

Result<ContainmentMapping> ExactMinimumContainment(const Pattern& q,
                                                   const ViewSet& views) {
  if (views.card() > 24) {
    return Status::NotSupported("exact minimum limited to card(V) <= 24");
  }
  if (q.num_edges() > 64) {
    return Status::NotSupported("exact minimum limited to |Ep| <= 64");
  }
  Result<std::vector<ViewMatchResult>> matches_or =
      ComputeAllViewMatches(q, views);
  GPMV_RETURN_NOT_OK(matches_or.status());
  const std::vector<ViewMatchResult>& matches = *matches_or;

  const uint64_t full = q.num_edges() == 64
                            ? ~uint64_t{0}
                            : ((uint64_t{1} << q.num_edges()) - 1);
  std::vector<uint64_t> mask(views.card(), 0);
  for (uint32_t vi = 0; vi < views.card(); ++vi) {
    for (uint32_t e : matches[vi].covered) mask[vi] |= uint64_t{1} << e;
  }

  uint32_t best_subset_bits = 0;
  bool found = false;
  size_t best_size = views.card() + 1;
  const uint32_t limit = uint32_t{1} << views.card();
  for (uint32_t bits = 1; bits < limit; ++bits) {
    size_t size = static_cast<size_t>(__builtin_popcount(bits));
    if (size >= best_size) continue;
    uint64_t cover = 0;
    for (uint32_t vi = 0; vi < views.card(); ++vi) {
      if (bits & (uint32_t{1} << vi)) cover |= mask[vi];
    }
    if (cover == full) {
      best_size = size;
      best_subset_bits = bits;
      found = true;
    }
  }
  if (!found || q.num_edges() == 0) return ContainmentMapping{};
  std::vector<uint32_t> selected;
  for (uint32_t vi = 0; vi < views.card(); ++vi) {
    if (best_subset_bits & (uint32_t{1} << vi)) selected.push_back(vi);
  }
  return BuildMapping(q, matches, std::move(selected));
}

}  // namespace gpmv
