/// \file view.h
/// \brief View definitions V and materialized view extensions V(G)
/// (paper Section II-B).
///
/// A view definition is itself a (bounded) pattern query; its extension in a
/// data graph G is the materialized query result V(G), stored per view edge
/// as the sorted list of matching node pairs together with their exact
/// shortest-path distances (always 1 for plain simulation views).
///
/// Extensions also snapshot the labels and attributes of every node that
/// appears in some match. This is what lets MatchJoin answer a query whose
/// node conditions are *stricter* than the view's (predicate views, Fig. 7)
/// without ever touching G: the initial union of view matches is filtered
/// against the query's own conditions using the snapshots. With plain label
/// equality the filter never removes anything.

#ifndef GPMV_CORE_VIEW_H_
#define GPMV_CORE_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "pattern/pattern.h"
#include "simulation/match_result.h"

namespace gpmv {

/// A named view definition (a pattern query).
struct ViewDefinition {
  std::string name;
  Pattern pattern;
};

/// A set V = {V1, ..., Vn} of view definitions.
class ViewSet {
 public:
  ViewSet() = default;

  ViewSet& Add(ViewDefinition def) {
    defs_.push_back(std::move(def));
    return *this;
  }
  ViewSet& Add(const std::string& name, Pattern pattern) {
    return Add(ViewDefinition{name, std::move(pattern)});
  }

  /// card(V): number of view definitions.
  size_t card() const { return defs_.size(); }

  /// |V|: total size (nodes + edges) of all view definitions (Table I).
  size_t Size() const;

  const ViewDefinition& view(size_t i) const { return defs_[i]; }
  const std::vector<ViewDefinition>& views() const { return defs_; }

 private:
  std::vector<ViewDefinition> defs_;
};

/// Labels + attributes of one node captured at materialization time.
struct NodeSnapshot {
  std::vector<std::string> labels;  // sorted label names
  AttributeSet attrs;

  bool HasLabel(const std::string& label) const;
};

/// Matches of one view edge in G.
struct ViewEdgeExtension {
  /// Matching node pairs, sorted ascending.
  std::vector<NodePair> pairs;
  /// Parallel to `pairs`: exact shortest-path distance realizing the match
  /// (1 for plain simulation views).
  std::vector<uint32_t> distances;
};

/// The materialized result V(G) of one view.
class ViewExtension {
 public:
  /// Evaluates `def` on `g` (graph simulation when all bounds are 1, bounded
  /// simulation otherwise) and materializes the result. A view that does not
  /// match G yields an extension with matched() == false and empty edges —
  /// still usable (it contributes nothing). `seed` optionally replaces the
  /// candidate sets (incremental maintenance from a cached relation). The
  /// snapshot overload is the engine's path — one frozen snapshot serves
  /// the simulation run and the label/attribute node snapshots alike.
  static Result<ViewExtension> Materialize(
      const ViewDefinition& def, const GraphSnapshot& g,
      const std::vector<std::vector<NodeId>>* seed = nullptr);
  static Result<ViewExtension> Materialize(
      const ViewDefinition& def, const Graph& g,
      const std::vector<std::vector<NodeId>>* seed = nullptr);

  bool matched() const { return matched_; }
  size_t num_view_edges() const { return edges_.size(); }
  const ViewEdgeExtension& edge(uint32_t e) const { return edges_[e]; }

  /// Snapshot of node `v`; nullptr when v appears in no match of this view.
  const NodeSnapshot* snapshot(NodeId v) const;

  /// |V(G)| contribution: total number of materialized pairs.
  size_t TotalPairs() const;

  /// Rough memory footprint in bytes (pairs, distances and snapshots); used
  /// to report view-to-graph size ratios as in Section VII.
  size_t ApproxBytes() const;

  /// Internal/maintenance accessors.
  std::vector<ViewEdgeExtension>* mutable_edges() { return &edges_; }
  void set_matched(bool m) { matched_ = m; }
  std::unordered_map<NodeId, NodeSnapshot>* mutable_snapshots() {
    return &snapshots_;
  }

  /// Captures node `v`'s labels + attributes if not snapshotted yet — used
  /// at materialization and when delta maintenance adds match pairs.
  void EnsureSnapshot(const GraphSnapshot& g, NodeId v);

 private:
  bool matched_ = false;
  std::vector<ViewEdgeExtension> edges_;
  std::unordered_map<NodeId, NodeSnapshot> snapshots_;
};

/// Materializes every view of `views` on `g`.
Result<std::vector<ViewExtension>> MaterializeAll(const ViewSet& views,
                                                  const Graph& g);

/// Total number of pairs across a collection of extensions (|V(G)|).
size_t TotalExtensionPairs(const std::vector<ViewExtension>& exts);

}  // namespace gpmv

#endif  // GPMV_CORE_VIEW_H_
