#include "core/view_io.h"

#include <fstream>
#include <sstream>

#include "pattern/pattern_io.h"

namespace gpmv {

std::string ViewSetToText(const ViewSet& views) {
  std::ostringstream os;
  for (const ViewDefinition& def : views.views()) {
    os << "view " << def.name << '\n' << PatternToText(def.pattern);
  }
  return os.str();
}

Result<ViewSet> ViewSetFromText(const std::string& text) {
  ViewSet views;
  std::istringstream in(text);
  std::string line;
  std::string current_name;
  std::string current_body;
  bool has_view = false;

  auto flush = [&]() -> Status {
    if (!has_view) return Status::OK();
    Result<Pattern> p = PatternFromText(current_body);
    GPMV_RETURN_NOT_OK(p.status());
    views.Add(current_name, std::move(p).value());
    current_body.clear();
    return Status::OK();
  };

  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "view") {
      std::string name;
      ls >> name;
      if (name.empty()) return Status::Corruption("view header needs a name");
      GPMV_RETURN_NOT_OK(flush());
      current_name = name;
      has_view = true;
    } else {
      if (!first.empty() && first[0] != '#' && !has_view) {
        return Status::Corruption("pattern line before any 'view' header");
      }
      current_body += line;
      current_body += '\n';
    }
  }
  GPMV_RETURN_NOT_OK(flush());
  return views;
}

Status WriteViewSetFile(const ViewSet& views, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open " + path);
  f << ViewSetToText(views);
  if (!f.good()) return Status::IOError("write failed");
  return Status::OK();
}

Result<ViewSet> ReadViewSetFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ViewSetFromText(buf.str());
}

}  // namespace gpmv
