#include "core/view.h"

#include <algorithm>

#include "simulation/bounded.h"

namespace gpmv {

size_t ViewSet::Size() const {
  size_t total = 0;
  for (const ViewDefinition& def : defs_) total += def.pattern.Size();
  return total;
}

bool NodeSnapshot::HasLabel(const std::string& label) const {
  return std::binary_search(labels.begin(), labels.end(), label);
}

Result<ViewExtension> ViewExtension::Materialize(
    const ViewDefinition& def, const GraphSnapshot& g,
    const std::vector<std::vector<NodeId>>* seed) {
  ViewExtension ext;
  ext.edges_.resize(def.pattern.num_edges());

  std::vector<std::vector<uint32_t>> distances;
  Result<MatchResult> match =
      MatchBoundedSimulation(def.pattern, g, &distances, seed);
  GPMV_RETURN_NOT_OK(match.status());
  ext.matched_ = match->matched();
  if (!ext.matched_) return ext;

  for (uint32_t e = 0; e < def.pattern.num_edges(); ++e) {
    ext.edges_[e].pairs = match->edge_matches(e);
    ext.edges_[e].distances = std::move(distances[e]);
    for (const NodePair& p : ext.edges_[e].pairs) {
      ext.EnsureSnapshot(g, p.first);
      ext.EnsureSnapshot(g, p.second);
    }
  }
  return ext;
}

void ViewExtension::EnsureSnapshot(const GraphSnapshot& g, NodeId v) {
  auto [it, inserted] = snapshots_.try_emplace(v);
  if (!inserted) return;
  NodeSnapshot& snap = it->second;
  snap.labels.reserve(g.labels(v).size());
  for (LabelId l : g.labels(v)) snap.labels.push_back(g.LabelName(l));
  std::sort(snap.labels.begin(), snap.labels.end());
  snap.attrs = g.attrs(v);
}

Result<ViewExtension> ViewExtension::Materialize(
    const ViewDefinition& def, const Graph& g,
    const std::vector<std::vector<NodeId>>* seed) {
  return Materialize(def, *GraphSnapshot::Build(g, g.version()), seed);
}

const NodeSnapshot* ViewExtension::snapshot(NodeId v) const {
  auto it = snapshots_.find(v);
  return it == snapshots_.end() ? nullptr : &it->second;
}

size_t ViewExtension::TotalPairs() const {
  size_t total = 0;
  for (const ViewEdgeExtension& e : edges_) total += e.pairs.size();
  return total;
}

size_t ViewExtension::ApproxBytes() const {
  size_t bytes = 0;
  for (const ViewEdgeExtension& e : edges_) {
    bytes += e.pairs.size() * sizeof(NodePair);
    bytes += e.distances.size() * sizeof(uint32_t);
  }
  for (const auto& [v, snap] : snapshots_) {
    bytes += sizeof(v) + sizeof(NodeSnapshot);
    for (const std::string& l : snap.labels) bytes += l.size();
    for (const auto& [name, value] : snap.attrs.entries()) {
      bytes += name.size() + sizeof(AttrValue);
      if (value.is_string()) bytes += value.as_string().size();
    }
  }
  return bytes;
}

Result<std::vector<ViewExtension>> MaterializeAll(const ViewSet& views,
                                                  const Graph& g) {
  // One frozen snapshot serves every view's materialization.
  std::shared_ptr<const GraphSnapshot> snap =
      GraphSnapshot::Build(g, g.version());
  std::vector<ViewExtension> exts;
  exts.reserve(views.card());
  for (const ViewDefinition& def : views.views()) {
    Result<ViewExtension> ext = ViewExtension::Materialize(def, *snap);
    GPMV_RETURN_NOT_OK(ext.status());
    exts.push_back(std::move(ext).value());
  }
  return exts;
}

size_t TotalExtensionPairs(const std::vector<ViewExtension>& exts) {
  size_t total = 0;
  for (const ViewExtension& ext : exts) total += ext.TotalPairs();
  return total;
}

}  // namespace gpmv
