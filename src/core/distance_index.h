/// \file distance_index.h
/// \brief The distance index I(V) of Section VI-A.
///
/// For each pair (v, v') materialized in some view extension, I(V) records
/// the exact shortest distance d from v to v' in G, giving BMatchJoin O(1)
/// distance lookups without touching G. Its size is bounded by |V(G)|.
/// The MatchJoin engine consumes the equivalent columnar form stored inside
/// each ViewEdgeExtension; this standalone structure provides the paper's
/// lookup-table view of the same data for external callers and tests.

#ifndef GPMV_CORE_DISTANCE_INDEX_H_
#define GPMV_CORE_DISTANCE_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/view.h"
#include "graph/graph.h"

namespace gpmv {

/// Lookup table 〈(v, v'), d〉 built from materialized view extensions.
class DistanceIndex {
 public:
  DistanceIndex() = default;

  /// Builds I(V) over the given extensions. Distances are shortest-path
  /// lengths in G and therefore agree across views; the minimum is kept as
  /// a safeguard.
  static DistanceIndex Build(const std::vector<ViewExtension>& exts);

  /// Distance from v to v' if the pair is materialized anywhere.
  std::optional<uint32_t> Distance(NodeId v, NodeId v2) const;

  size_t size() const { return index_.size(); }

 private:
  static uint64_t Key(NodeId v, NodeId v2) {
    return (static_cast<uint64_t>(v) << 32) | v2;
  }

  std::unordered_map<uint64_t, uint32_t> index_;
};

}  // namespace gpmv

#endif  // GPMV_CORE_DISTANCE_INDEX_H_
