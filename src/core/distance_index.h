/// \file distance_index.h
/// \brief The distance index I(V) of Section VI-A, maintained incrementally.
///
/// For each pair (v, v') materialized in some view extension, I(V) records
/// the exact shortest distance d from v to v' in G, giving BMatchJoin O(1)
/// distance lookups without touching G. Its size is bounded by |V(G)|.
/// The MatchJoin engine consumes the equivalent columnar form stored inside
/// each ViewEdgeExtension; this standalone structure provides the paper's
/// lookup-table view of the same data for external callers and the engine's
/// bounded-view maintenance path.
///
/// Incremental contract. Every stored entry is the *exact* shortest-path
/// distance in the current graph; a tracked pair may be absent only when its
/// distance exceeds the index budget B (the largest distance ever stored).
/// Consumers that treat a lookup miss as "too far" (BMatchJoin checks
/// `!d || *d > bound`) therefore stay correct across maintenance, because
/// every view bound is <= B by construction.
///
///  * Insertions only shorten distances. A new shortest v ~> v' path through
///    an inserted edge (a, b) splits into v ~> a and b ~> v', each of length
///    <= B - 1 (the whole path is <= the old distance <= B). ApplyInsertions
///    runs one reverse and one forward BFS of budget B - 1 per inserted edge
///    on the post-insert snapshot and min-updates the tracked entries inside
///    the ball product — no rebuild, cost proportional to the affected ball.
///  * Deletions can only lengthen distances, and only for sources whose old
///    shortest path crossed a deleted edge. The prefix of that path up to
///    its *first* deleted edge survives deletion, so the source sits in the
///    post-delete reverse (B-1)-ball of some deleted edge's tail.
///    InvalidateForDeletions marks exactly those tracked sources dirty;
///    lookups stay lock-free and const, and the owner calls RepairDirty
///    (one forward budget-B BFS per dirty source) to re-resolve or drop
///    their entries before the next query wave.

#ifndef GPMV_CORE_DISTANCE_INDEX_H_
#define GPMV_CORE_DISTANCE_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/view.h"
#include "graph/graph.h"
#include "graph/snapshot.h"

namespace gpmv {

/// Lookup table 〈(v, v'), d〉 built from materialized view extensions and
/// maintained in place under edge insertions/deletions.
class DistanceIndex {
 public:
  DistanceIndex() = default;

  /// Builds I(V) over the given extensions. Distances are shortest-path
  /// lengths in G and therefore agree across views; the minimum is kept as
  /// a safeguard. The budget becomes the largest stored distance.
  static DistanceIndex Build(const std::vector<ViewExtension>& exts);

  /// Distance from v to v' if the pair is tracked and currently resolved.
  /// Dirty sources still answer (their entries may be stale-short until
  /// RepairDirty); the engine repairs before exposing the new snapshot.
  std::optional<uint32_t> Distance(NodeId v, NodeId v2) const;

  /// Tracks the pair (or shortens its stored distance). Raises the budget
  /// when d exceeds it — the view-merge path feeds fresh pairs through
  /// here, keeping the ball budget in sync with what is actually stored.
  void AddOrShorten(NodeId v, NodeId v2, uint32_t d);

  /// Min-updates every tracked entry whose shortest path improved through
  /// one of `inserted`, via budget-(B-1) balls on the post-insert snapshot
  /// `g`. Returns the number of entries shortened.
  size_t ApplyInsertions(const GraphSnapshot& g,
                         const std::vector<NodePair>& inserted);

  /// Marks every tracked source inside the post-delete reverse (B-1)-ball
  /// of a deleted edge's tail dirty. `g` is the snapshot *after* the
  /// deletions. Returns the number of newly dirtied sources.
  size_t InvalidateForDeletions(const GraphSnapshot& g,
                                const std::vector<NodePair>& deleted);

  /// Re-resolves the entries of every dirty source with one forward
  /// budget-B BFS each on `g`: distances are refreshed (they may grow) and
  /// pairs no longer reachable within the budget are dropped. Each
  /// repaired source increments repairs().
  void RepairDirty(const GraphSnapshot& g);

  /// Marks every source dirty and repairs — a full refresh without losing
  /// the tracked pair set.
  void RepairAll(const GraphSnapshot& g);

  size_t size() const { return size_; }
  uint32_t budget() const { return budget_; }
  size_t dirty_count() const { return dirty_.size(); }
  /// Cumulative count of dirty sources repaired by RepairDirty/RepairAll.
  size_t repairs() const { return repairs_; }

 private:
  // Per-source adjacency of tracked targets: the balls of ApplyInsertions
  // and the per-source repair both want "all entries of v" without scanning
  // the whole table, which the old flat (v << 32 | v') keying could not do.
  std::unordered_map<NodeId, std::unordered_map<NodeId, uint32_t>> index_;
  std::unordered_set<NodeId> dirty_;
  size_t size_ = 0;
  uint32_t budget_ = 0;
  size_t repairs_ = 0;
};

}  // namespace gpmv

#endif  // GPMV_CORE_DISTANCE_INDEX_H_
