/// \file view_match.h
/// \brief View matches M^Q_V — the core device behind containment checking
/// (paper Sections IV, V-A and VI-B).
///
/// Treating the query Q itself as a (weighted) data graph, we simulate the
/// view pattern V over it. A view node w matches a query node u when u's
/// search condition is at least as strict: equal label (or view wildcard)
/// and query predicate ⇒ view predicate. The match set SeV of view edge
/// eV = (w, w') then consists of the *query edges* e = (u, u') whose
/// endpoints are related to (w, w') — these are exactly the query edges
/// whose data-level matches are guaranteed, on every graph G, to be found
/// inside SeV of the materialized view (Prop. 7).
///
/// For bounded patterns the relation uses weighted distances in Q (edge
/// weight = its bound, `*` = infinite), and eV with bound kV covers query
/// edge e only when fe(e) ≤ kV. The latter is a sound strengthening of the
/// paper's weighted-distance rule — see DESIGN.md §4; on all examples of the
/// paper (Fig. 6, Example 9) the two coincide.

#ifndef GPMV_CORE_VIEW_MATCH_H_
#define GPMV_CORE_VIEW_MATCH_H_

#include <vector>

#include "common/status.h"
#include "pattern/pattern.h"

namespace gpmv {

/// The view match from one view to a query.
struct ViewMatchResult {
  /// per_view_edge[eV] = indices of query edges in SeV (sorted).
  std::vector<std::vector<uint32_t>> per_view_edge;
  /// M^Q_V: union of all SeV — sorted indices of covered query edges.
  std::vector<uint32_t> covered;
};

/// Computes M^Q_V for view pattern `view` over query `q`. Handles both
/// plain (all bounds 1) and bounded patterns; a plain view applied to a
/// bounded query (and vice versa) is handled by the same weighted rule.
Result<ViewMatchResult> ComputeViewMatch(const Pattern& view,
                                         const Pattern& q);

/// True iff the data-node condition of query node `qu` is at least as
/// strict as that of view node `vw` (label equality or view wildcard, and
/// predicate implication). Exposed for tests.
bool QueryNodeMatchesViewNode(const PatternNode& qu, const PatternNode& vw);

}  // namespace gpmv

#endif  // GPMV_CORE_VIEW_MATCH_H_
