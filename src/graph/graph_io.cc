#include "graph/graph_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace gpmv {

namespace {

std::string EncodeValue(const AttrValue& v) {
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  if (v.is_int()) return std::to_string(v.as_int());
  std::ostringstream os;
  os << v.as_double();
  // Ensure doubles round-trip as doubles, not ints.
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

AttrValue DecodeValue(const std::string& token) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    return AttrValue(token.substr(1, token.size() - 2));
  }
  errno = 0;
  char* end = nullptr;
  long long iv = std::strtoll(token.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0' && !token.empty()) {
    return AttrValue(static_cast<int64_t>(iv));
  }
  errno = 0;
  double dv = std::strtod(token.c_str(), &end);
  if (errno == 0 && end != nullptr && *end == '\0' && !token.empty()) {
    return AttrValue(dv);
  }
  return AttrValue(token);
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

Status WriteGraph(const Graph& g, std::ostream* out) {
  (*out) << "# gpmv graph: " << g.num_nodes() << " nodes, " << g.num_edges()
         << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    (*out) << "v " << v << ' ';
    const auto& ls = g.labels(v);
    if (ls.empty()) {
      (*out) << '-';
    } else {
      for (size_t i = 0; i < ls.size(); ++i) {
        if (i) (*out) << ',';
        (*out) << g.LabelName(ls[i]);
      }
    }
    for (const auto& [name, value] : g.attrs(v).entries()) {
      (*out) << ' ' << name << '=' << EncodeValue(value);
    }
    (*out) << '\n';
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.out_neighbors(v)) {
      (*out) << "e " << v << ' ' << w << '\n';
    }
  }
  if (!out->good()) return Status::IOError("write failed");
  return Status::OK();
}

Result<Graph> ReadGraph(std::istream* in) {
  Graph g;
  std::string line;
  size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    auto fail = [&](const std::string& msg) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " + msg);
    };
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> tok = SplitWs(line);
    if (tok.empty()) continue;
    if (tok[0] == "v") {
      if (tok.size() < 3) return fail("v line needs id and labels");
      char* end = nullptr;
      unsigned long id = std::strtoul(tok[1].c_str(), &end, 10);
      if (*end != '\0') return fail("bad node id '" + tok[1] + "'");
      if (id != g.num_nodes()) return fail("node ids must be dense and in order");
      std::vector<std::string> labels;
      if (tok[2] != "-") {
        std::istringstream ls(tok[2]);
        std::string lab;
        while (std::getline(ls, lab, ',')) {
          if (!lab.empty()) labels.push_back(lab);
        }
      }
      AttributeSet attrs;
      for (size_t i = 3; i < tok.size(); ++i) {
        size_t eq = tok[i].find('=');
        if (eq == std::string::npos || eq == 0) {
          return fail("bad attribute token '" + tok[i] + "'");
        }
        attrs.Set(tok[i].substr(0, eq), DecodeValue(tok[i].substr(eq + 1)));
      }
      g.AddNode(labels, std::move(attrs));
    } else if (tok[0] == "e") {
      if (tok.size() != 3) return fail("e line needs two endpoints");
      char* end = nullptr;
      unsigned long u = std::strtoul(tok[1].c_str(), &end, 10);
      if (*end != '\0') return fail("bad src '" + tok[1] + "'");
      unsigned long w = std::strtoul(tok[2].c_str(), &end, 10);
      if (*end != '\0') return fail("bad dst '" + tok[2] + "'");
      Status st = g.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(w));
      if (!st.ok()) return fail(st.ToString());
    } else {
      return fail("unknown record '" + tok[0] + "'");
    }
  }
  return g;
}

std::string GraphToString(const Graph& g) {
  std::ostringstream os;
  WriteGraph(g, &os);
  return os.str();
}

Result<Graph> GraphFromString(const std::string& text) {
  std::istringstream is(text);
  return ReadGraph(&is);
}

Status WriteGraphFile(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open " + path);
  return WriteGraph(g, &f);
}

Result<Graph> ReadGraphFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open " + path);
  return ReadGraph(&f);
}

}  // namespace gpmv
