/// \file statistics.h
/// \brief Descriptive statistics of data graphs — used by the CLI, the
/// dataset generators' validation tests, and EXPERIMENTS.md to document the
/// synthetic stand-ins (degree profile, label skew).

#ifndef GPMV_GRAPH_STATISTICS_H_
#define GPMV_GRAPH_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace gpmv {

/// Aggregate profile of one graph.
struct GraphStatistics {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  double avg_out_degree = 0.0;
  size_t max_out_degree = 0;
  size_t max_in_degree = 0;
  size_t source_nodes = 0;  ///< in-degree 0
  size_t sink_nodes = 0;    ///< out-degree 0
  size_t self_loops = 0;

  /// (label name, node count), sorted by count descending.
  std::vector<std::pair<std::string, size_t>> label_histogram;

  /// out-degree histogram in power-of-two buckets: bucket i counts nodes
  /// with out-degree in [2^i, 2^(i+1)) (bucket 0 = degree 0..1).
  std::vector<size_t> out_degree_buckets;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

class GraphSnapshot;

/// Computes the statistics of `g` in one pass; the snapshot overload walks
/// the frozen CSR arrays instead of the mutable adjacency.
GraphStatistics ComputeStatistics(const Graph& g);
GraphStatistics ComputeStatistics(const GraphSnapshot& g);

}  // namespace gpmv

#endif  // GPMV_GRAPH_STATISTICS_H_
