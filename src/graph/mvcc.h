/// \file mvcc.h
/// \brief MVCC substrate for the engine's published-snapshot chain: version
/// vectors (per-slice applied-through cut arithmetic), the retained chain of
/// committed cuts, RAII pins, and the per-slice stream clock that derives the
/// global watermark as a minimum.
///
/// The engine used to publish exactly one `(snapshot, version, watermark)`
/// triple; every query read the head and every committer overwrote it. This
/// file generalizes that slot into a *chain* of immutable `SnapshotCut`s:
///
///  * A `VersionVector` records, per stream slice, the highest update
///    timestamp that slice has applied. Cut arithmetic (componentwise
///    `CoveredBy`, `Merge`, `MinSlice`/`MaxSlice`) is what makes "a
///    consistent cut" a first-class value instead of a single counter.
///  * A `SnapshotCut` is one committed point: the frozen graph, its engine
///    version, the slice vector at commit time, and the min-derived
///    `watermark`. A cut is *prefix-consistent* when `watermark ==
///    max_applied_ts`: the frozen state is exactly the op prefix `<=
///    watermark` (no hole from a lagging slice, no op from the future).
///    Only prefix-consistent cuts are eligible `AS OF` targets — they are
///    the cuts for which replaying the op prefix into a fresh engine is
///    bit-identical ground truth.
///  * A `SnapshotChain` retains a bounded window of recent cuts. `Publish`
///    appends at the head (same-version republish may only *advance* the
///    watermark — late writers lose); `PinHead`/`PinAsOf` hand out RAII
///    `SnapshotRef` pins. GC trims unpinned cuts beyond the retained window
///    on every publish/release; a pinned old cut survives until its last
///    pin is released, then is collected.
///  * A `SliceClock` tracks per-slice applied-through timestamps. Each
///    slice's clock is monotone (commits to one slice serialize at its
///    chain head), and the *global* watermark is `Watermark() == min` over
///    slices — a lagging applier can therefore never publish a hole: the
///    watermark simply waits for it. Idle slices are advanced by explicit
///    heartbeats (`Advance` with no batch) once their router proves no
///    older op can still arrive for them.
///
/// Thread safety: `SnapshotChain` and `SliceClock` are internally
/// synchronized; `VersionVector`, `SnapshotCut`, and `SnapshotRef` are
/// immutable-after-build values with the usual const-is-shareable rule.

#ifndef GPMV_GRAPH_MVCC_H_
#define GPMV_GRAPH_MVCC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/snapshot.h"

namespace gpmv {

/// Per-slice applied-through timestamps; the coordinate system of a
/// consistent cut. Slice i's component is the highest stream timestamp
/// slice i has applied (0 = nothing yet).
class VersionVector {
 public:
  VersionVector() = default;
  explicit VersionVector(size_t num_slices) : w_(num_slices, 0) {}

  size_t num_slices() const { return w_.size(); }
  bool empty() const { return w_.empty(); }
  uint64_t slice(size_t i) const { return w_[i]; }
  void set_slice(size_t i, uint64_t ts) { w_[i] = ts; }

  /// True iff every component of *this is <= the matching component of
  /// `other` — this cut is visible within (covered by) `other`. Vectors of
  /// different width never cover each other (the slice topology changed).
  bool CoveredBy(const VersionVector& other) const;

  /// Componentwise maximum (least upper bound of two cuts). Widths must
  /// match; DCHECKed.
  static VersionVector Merge(const VersionVector& a, const VersionVector& b);

  /// Minimum component — the contiguous watermark this cut supports: every
  /// op with ts <= MinSlice() has been applied by its slice. 0 for the
  /// empty vector.
  uint64_t MinSlice() const;
  /// Maximum component — the newest op any slice has applied. 0 for the
  /// empty vector.
  uint64_t MaxSlice() const;

  bool operator==(const VersionVector& o) const { return w_ == o.w_; }
  bool operator!=(const VersionVector& o) const { return !(*this == o); }

  /// "[3, 0, 7]" — for traces and test failure messages.
  std::string ToString() const;

 private:
  std::vector<uint64_t> w_;
};

/// One committed point of the engine: an immutable frozen graph plus the
/// cut coordinates it was published at.
struct SnapshotCut {
  /// Engine commit sequence (the snapshot's `version()`); strictly
  /// increasing along the chain.
  uint64_t version = 0;
  /// Per-slice applied-through timestamps at commit time.
  VersionVector slices;
  /// Min-derived contiguous watermark: every streamed op with ts <=
  /// watermark is reflected in `snapshot`.
  uint64_t watermark = 0;
  /// Newest streamed op reflected in `snapshot` (max over `slices`).
  uint64_t max_applied_ts = 0;
  /// The frozen graph at this cut.
  std::shared_ptr<const GraphSnapshot> snapshot;

  /// True iff the frozen state is exactly the op prefix <= watermark —
  /// no slice ran ahead. These are the only valid `AS OF` targets.
  bool prefix_consistent() const { return watermark == max_applied_ts; }
};

class SnapshotChain;

/// RAII pin on one retained cut. While any `SnapshotRef` to a cut is
/// alive, the chain's GC will not collect it (or any metadata needed to
/// find it). Movable, not copyable; releasing re-runs GC so an unpinned
/// out-of-window cut is collected promptly.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& o) noexcept;
  SnapshotRef& operator=(SnapshotRef&& o) noexcept;
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef();

  bool valid() const { return cut_ != nullptr; }
  const SnapshotCut& cut() const { return *cut_; }
  const std::shared_ptr<const SnapshotCut>& cut_ptr() const { return cut_; }

  /// Drop the pin early (idempotent).
  void Release();

 private:
  friend class SnapshotChain;
  SnapshotRef(SnapshotChain* chain, std::shared_ptr<const SnapshotCut> cut)
      : chain_(chain), cut_(std::move(cut)) {}

  SnapshotChain* chain_ = nullptr;
  std::shared_ptr<const SnapshotCut> cut_ = nullptr;
};

struct SnapshotChainOptions {
  /// Historical cuts retained behind the head for `AS OF` pins (the head
  /// itself is always retained). Unpinned cuts older than the newest
  /// `retain` are collected at the next publish/release.
  size_t retain = 8;
};

/// The retained chain of committed cuts. See file comment.
class SnapshotChain {
 public:
  explicit SnapshotChain(SnapshotChainOptions opts = {}) : opts_(opts) {}

  /// Append `cut` as the new head. `cut.version` must be >= the current
  /// head's version: a *newer* version extends the chain; a *same*-version
  /// publish (watermark-only heartbeat racing another) replaces the head
  /// iff it advances the watermark, else it is dropped; an *older* version
  /// is dropped (a late heartbeat that lost the race to a real commit).
  /// Runs GC on the tail.
  void Publish(SnapshotCut cut);

  /// Pin the newest cut. Invalid ref iff nothing was ever published.
  SnapshotRef PinHead();

  /// Pin the newest retained *prefix-consistent* cut whose watermark is
  /// <= `ts` — the `AS OF ts` target. NotFound when no retained cut
  /// qualifies (`ts` predates the retained window or falls before the
  /// first commit).
  Result<SnapshotRef> PinAsOf(uint64_t ts);

  uint64_t head_version() const;
  uint64_t head_watermark() const;
  size_t depth() const;          ///< retained cuts, head included
  size_t pinned_cuts() const;    ///< cuts with >= 1 live pin
  uint64_t gc_collected() const; ///< total cuts collected since startup

 private:
  friend class SnapshotRef;
  void Unpin(const SnapshotCut* cut);
  void CollectLocked();

  SnapshotChainOptions opts_;
  mutable std::mutex mu_;
  /// Oldest → newest; strictly increasing version.
  std::deque<std::shared_ptr<const SnapshotCut>> chain_;
  /// version → live pin count (entries erased at zero).
  std::vector<std::pair<uint64_t, size_t>> pins_;
  uint64_t gc_collected_ = 0;
};

/// Per-slice applied-through clock; the engine's single watermark atomic
/// derives from `Watermark()` (min over slices). `Advance` is monotone per
/// slice — commits to one slice serialize at its chain head, so a stale
/// advance is simply ignored.
class SliceClock {
 public:
  explicit SliceClock(size_t num_slices = 1) : w_(num_slices) {}

  /// Reset to `num_slices` zeroed slices (stream topology change; only
  /// valid while no streamed ops are in flight).
  void Reset(size_t num_slices);

  /// Record slice `s` having applied through `ts`. Monotone: a stale `ts`
  /// is a no-op. Returns the new global watermark (min over slices).
  uint64_t Advance(size_t s, uint64_t ts);

  size_t num_slices() const;
  VersionVector Current() const;
  uint64_t Watermark() const;      ///< min over slices
  uint64_t MaxApplied() const;     ///< max over slices

 private:
  mutable std::mutex mu_;
  VersionVector w_;
};

}  // namespace gpmv

#endif  // GPMV_GRAPH_MVCC_H_
