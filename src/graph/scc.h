/// \file scc.h
/// \brief Strongly connected components and the SCC-rank used by the
/// MatchJoin "bottom-up" optimization (paper Section III).
///
/// Given a pattern Qs, the paper collapses it into its condensation GSCC and
/// assigns each node u the rank
///     r(u) = 0                                if s(u) is a leaf of GSCC,
///     r(u) = max{ 1 + r(u') | (s(u),s(u')) }  otherwise,
/// then processes pattern edges (u',u) in ascending order of r(u) so that
/// match sets of "lower" edges stabilize before their parents are checked
/// (Lemma 2: on DAG patterns every match set is visited at most once).
///
/// The functions here operate on a plain adjacency list so they serve both
/// patterns and graphs.

#ifndef GPMV_GRAPH_SCC_H_
#define GPMV_GRAPH_SCC_H_

#include <cstdint>
#include <vector>

namespace gpmv {

/// Result of an SCC decomposition.
struct SccResult {
  /// Component id per node; ids are in *reverse topological order of
  /// discovery* (Tarjan property: for an edge u->v across components,
  /// comp[u] > comp[v]).
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
  /// Number of nodes in each component.
  std::vector<uint32_t> component_size;
};

/// Iterative Tarjan SCC over an adjacency list.
SccResult ComputeScc(const std::vector<std::vector<uint32_t>>& adj);

/// Computes the paper's rank r(u) for every node of the given adjacency
/// list (see file comment). A component is a leaf when it has no outgoing
/// condensation edge.
std::vector<uint32_t> ComputeSccRanks(
    const std::vector<std::vector<uint32_t>>& adj);

}  // namespace gpmv

#endif  // GPMV_GRAPH_SCC_H_
