/// \file graph.h
/// \brief The data-graph substrate: a directed graph with multi-labeled,
/// attributed nodes (paper Section II-A).
///
/// A data graph is G = (V, E, L) where L(v) is a *set* of labels drawn from
/// an alphabet Σ; nodes additionally carry typed attributes evaluated by
/// pattern predicates. Labels are interned per graph into dense `LabelId`s;
/// a label index (label -> nodes) supports candidate enumeration during
/// matching. Edges are kept in sorted adjacency vectors (out and in) and can
/// be removed, which the incremental view-maintenance module relies on.

#ifndef GPMV_GRAPH_GRAPH_H_
#define GPMV_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/attribute.h"

namespace gpmv {

class GraphSnapshot;

using NodeId = uint32_t;
using LabelId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr LabelId kInvalidLabel = static_cast<LabelId>(-1);

/// A directed data graph with labeled, attributed nodes.
class Graph {
 public:
  Graph() = default;

  /// Adds a node carrying the given labels (interned) and attributes.
  /// Returns the new node's id (ids are dense, starting at 0).
  NodeId AddNode(const std::vector<std::string>& labels,
                 AttributeSet attrs = {});

  /// Convenience: single-label node.
  NodeId AddNode(const std::string& label, AttributeSet attrs = {});

  /// Adds edge (u, v). Fails on invalid endpoints, self-parallel duplicates.
  Status AddEdge(NodeId u, NodeId v);

  /// Adds edge (u, v) unless it already exists; returns true if added.
  /// Endpoints must be valid.
  bool AddEdgeIfAbsent(NodeId u, NodeId v);

  /// Removes edge (u, v); NotFound if absent.
  Status RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  size_t num_nodes() const { return out_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// |G| = number of nodes plus number of edges (Table I).
  size_t Size() const { return num_nodes() + num_edges(); }

  const std::vector<NodeId>& out_neighbors(NodeId v) const { return out_[v]; }
  const std::vector<NodeId>& in_neighbors(NodeId v) const { return in_[v]; }
  size_t out_degree(NodeId v) const { return out_[v].size(); }
  size_t in_degree(NodeId v) const { return in_[v].size(); }

  const std::vector<LabelId>& labels(NodeId v) const { return node_labels_[v]; }
  bool HasLabel(NodeId v, LabelId label) const;
  const AttributeSet& attrs(NodeId v) const { return node_attrs_[v]; }
  AttributeSet* mutable_attrs(NodeId v) {
    // Conservatively assume the caller writes: the node section of any
    // cached snapshot goes stale.
    ++version_;
    ++node_section_version_;
    return &node_attrs_[v];
  }

  /// Interns `name`, creating a fresh LabelId on first sight.
  LabelId InternLabel(const std::string& name);

  /// Looks up `name`; kInvalidLabel if never interned.
  LabelId FindLabel(const std::string& name) const;

  const std::string& LabelName(LabelId id) const { return label_names_[id]; }
  size_t num_labels() const { return label_names_.size(); }

  /// All nodes carrying `label` (empty for unknown labels).
  const std::vector<NodeId>& NodesWithLabel(LabelId label) const;

  /// First label of `v` rendered as a string ("" for unlabeled nodes);
  /// used by IO and debugging.
  std::string DescribeNode(NodeId v) const;

  /// Freezes the current graph state into an immutable CSR snapshot
  /// (graph/snapshot.h) and caches it: repeated calls without intervening
  /// mutations return the same snapshot. After edge-only mutations the
  /// re-freeze is incremental — only the adjacency rows touched since the
  /// last freeze are rebuilt, and the node section (labels, label index,
  /// attributes) is shared with the previous snapshot. Not safe to call
  /// concurrently with itself or with mutations (callers serialize, e.g.
  /// the engine freezes under its exclusive registry lock).
  std::shared_ptr<const GraphSnapshot> Freeze();

  /// Degrades the next Freeze() after a mutation to a full row rebuild by
  /// poisoning the dirty-row set, as if it had overflowed kMaxDirtyRows.
  /// The produced snapshot is identical — only slower to build — and the
  /// cached current snapshot is untouched, so this never changes what
  /// queries read. The `snapshot.refreeze` fault point (common/fault.h)
  /// uses it to model losing the incremental-freeze fast path.
  void InvalidateIncrementalFreeze() { dirty_overflow_ = true; }

  /// Monotone counter bumped by every mutation; a cached snapshot is
  /// current iff its version() equals this.
  uint64_t version() const { return version_; }

  /// Counter bumped only by node-section mutations (AddNode,
  /// mutable_attrs); edge updates leave it unchanged, which is what makes
  /// incremental re-freezing sound.
  uint64_t node_section_version() const { return node_section_version_; }

 private:
  /// Records that v's out- resp. in-adjacency changed since the last
  /// freeze. Falls back to "rebuild everything" when the dirty set grows
  /// past kMaxDirtyRows.
  void MarkEdgeDirty(NodeId out_node, NodeId in_node);

  static constexpr size_t kMaxDirtyRows = 1u << 16;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<std::vector<LabelId>> node_labels_;
  std::vector<AttributeSet> node_attrs_;
  size_t num_edges_ = 0;

  std::vector<std::string> label_names_;
  std::unordered_map<std::string, LabelId> label_ids_;
  std::vector<std::vector<NodeId>> label_index_;  // LabelId -> nodes
  std::vector<NodeId> empty_;

  /// Freeze bookkeeping (see Freeze()).
  uint64_t version_ = 0;
  uint64_t node_section_version_ = 0;
  std::vector<NodeId> dirty_out_;  // unsorted, may repeat
  std::vector<NodeId> dirty_in_;
  bool dirty_overflow_ = false;
  std::shared_ptr<const GraphSnapshot> frozen_;
};

}  // namespace gpmv

#endif  // GPMV_GRAPH_GRAPH_H_
