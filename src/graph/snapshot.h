/// \file snapshot.h
/// \brief Frozen, read-only CSR snapshots of a data graph.
///
/// The mutable `Graph` keeps per-node adjacency vectors so the maintenance
/// layer can insert and delete edges cheaply; the matching fixpoints, in
/// contrast, only ever *read* adjacency, and they read it millions of times
/// per query. `GraphSnapshot` freezes one version of a graph into dense,
/// index-addressed arrays (Galois-style CSR):
///
///  * out/in adjacency as offset + flat target arrays (each row sorted, so
///    `HasEdge` is a binary search over a cache-resident span);
///  * the label index (label -> nodes) and per-node label sets as two more
///    CSR structures, plus copies of the label table and node attributes, so
///    candidate enumeration and predicate evaluation never touch the
///    mutable graph;
///  * a version number identifying which graph state was frozen.
///
/// Snapshots are immutable after construction and are shared via
/// `shared_ptr`, which is what lets the concurrent query engine hand one
/// snapshot to any number of in-flight queries while an update batch builds
/// the next version. Edge updates never change the node section (labels,
/// label index, attributes), so re-freezing after an edge batch shares it
/// with the previous snapshot and only rewrites adjacency — and only the
/// rows of nodes the batch actually touched (`Graph::Freeze()` tracks the
/// dirty rows and copies unchanged spans wholesale).
///
/// Freeze/refreeze + version contract (what callers may rely on):
///
///  * `version()` identifies the exact graph state frozen: it equals
///    `Graph::version()` at freeze time, and two snapshots with equal
///    versions of the same graph are interchangeable. Snapshot versions
///    are strictly increasing along a graph's mutation history — they are
///    the system-wide consistency token (the engine keys its view-install
///    race detection, the sharded slices, and the full-result cache on
///    them; see docs/ARCHITECTURE.md).
///  * `Graph::Freeze()` is idempotent between mutations (returns the
///    cached snapshot) and incremental across edge-only mutations (shares
///    the node section, rebuilds only dirty adjacency rows). It must be
///    externally serialized against mutations and itself; the engine does
///    so under its exclusive registry lock.
///  * Everything on a built snapshot is a const read: any number of
///    threads may query one snapshot concurrently with no synchronization,
///    including while `Freeze()` builds a *newer* snapshot of the same
///    graph (the builder never mutates published snapshots).
///  * `Rebuild` requires `prev` to describe the same node set — callers go
///    through `Graph::Freeze()`, which proves this via
///    `node_section_version()` before taking the incremental path.

#ifndef GPMV_GRAPH_SNAPSHOT_H_
#define GPMV_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace gpmv {

/// Non-owning view over a contiguous range of values in a CSR flat array.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* begin, const T* end) : begin_(begin), end_(end) {}

  const T* begin() const { return begin_; }
  const T* end() const { return end_; }
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  const T& operator[](size_t i) const { return begin_[i]; }
  const T& front() const { return *begin_; }
  const T& back() const { return *(end_ - 1); }

 private:
  const T* begin_ = nullptr;
  const T* end_ = nullptr;
};

using NodeSpan = Span<NodeId>;
using LabelSpan = Span<LabelId>;

/// See file comment.
class GraphSnapshot {
 public:
  /// Freezes the current state of `g` as version `version`. Prefer
  /// `Graph::Freeze()`, which caches the snapshot and re-freezes
  /// incrementally; `Build` is the const-safe full rebuild.
  static std::shared_ptr<const GraphSnapshot> Build(const Graph& g,
                                                    uint64_t version);

  /// Delta-aware re-freeze: rebuilds only the adjacency rows listed in
  /// `out_dirty` / `in_dirty` (out- resp. in-rows whose edges changed since
  /// `prev` was built), copying every other row — and the whole node
  /// section — from `prev`. Requires `prev` to describe the same node set
  /// (same node count, labels and attributes); `Graph::Freeze()` checks
  /// this via the node-section version before calling.
  static std::shared_ptr<const GraphSnapshot> Rebuild(
      const Graph& g, uint64_t version, const GraphSnapshot& prev,
      const std::vector<NodeId>& out_dirty,
      const std::vector<NodeId>& in_dirty);

  uint64_t version() const { return version_; }
  size_t num_nodes() const { return out_offsets_.size() - 1; }
  size_t num_edges() const { return out_targets_.size(); }
  size_t Size() const { return num_nodes() + num_edges(); }

  NodeSpan out_neighbors(NodeId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  NodeSpan in_neighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }
  size_t out_degree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t in_degree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Binary search in the (sorted) CSR out-row of `u`.
  bool HasEdge(NodeId u, NodeId v) const;

  LabelSpan labels(NodeId v) const {
    const auto& n = *nodes_;
    return {n.label_flat.data() + n.label_offsets[v],
            n.label_flat.data() + n.label_offsets[v + 1]};
  }
  bool HasLabel(NodeId v, LabelId label) const;
  const AttributeSet& attrs(NodeId v) const { return nodes_->attrs[v]; }

  size_t num_labels() const { return nodes_->label_names.size(); }
  const std::string& LabelName(LabelId id) const {
    return nodes_->label_names[id];
  }
  LabelId FindLabel(const std::string& name) const;

  /// All nodes carrying `label`, ascending (empty for unknown labels).
  NodeSpan NodesWithLabel(LabelId label) const;

  /// Version of the node section this snapshot froze; re-freezes that share
  /// the node section report the same value.
  uint64_t node_section_version() const { return nodes_->node_version; }

  /// True iff this snapshot shares its node section with `other` (i.e. one
  /// was re-frozen from the other across edge-only updates).
  bool SharesNodeSection(const GraphSnapshot& other) const {
    return nodes_ == other.nodes_;
  }

  /// Rough memory footprint of the CSR arrays in bytes (adjacency + label
  /// structures; attribute payloads excluded).
  size_t ApproxBytes() const;

 private:
  /// Everything edge updates cannot change, shared across re-freezes.
  struct NodeSection {
    std::vector<uint32_t> label_offsets;  // node -> labels CSR
    std::vector<LabelId> label_flat;
    std::vector<uint32_t> index_offsets;  // label -> nodes CSR
    std::vector<NodeId> index_flat;
    std::vector<std::string> label_names;
    std::unordered_map<std::string, LabelId> label_ids;
    std::vector<AttributeSet> attrs;
    uint64_t node_version = 0;
  };

  static std::shared_ptr<const NodeSection> BuildNodeSection(const Graph& g);

  uint64_t version_ = 0;
  std::vector<uint32_t> out_offsets_;  // |V| + 1
  std::vector<uint32_t> in_offsets_;   // |V| + 1
  std::vector<NodeId> out_targets_;    // |E|, rows sorted ascending
  std::vector<NodeId> in_sources_;     // |E|, rows sorted ascending
  std::shared_ptr<const NodeSection> nodes_;
};

}  // namespace gpmv

#endif  // GPMV_GRAPH_SNAPSHOT_H_
