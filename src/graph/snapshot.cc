#include "graph/snapshot.h"

#include <algorithm>

namespace gpmv {

namespace {

/// Prefix-sums per-node sizes into a CSR offset array.
void OffsetsFromSizes(const std::vector<uint32_t>& sizes,
                      std::vector<uint32_t>* offsets) {
  offsets->resize(sizes.size() + 1);
  uint32_t total = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    (*offsets)[i] = total;
    total += sizes[i];
  }
  (*offsets)[sizes.size()] = total;
}

}  // namespace

std::shared_ptr<const GraphSnapshot::NodeSection>
GraphSnapshot::BuildNodeSection(const Graph& g) {
  auto section = std::make_shared<NodeSection>();
  const size_t n = g.num_nodes();

  std::vector<uint32_t> sizes(n);
  for (NodeId v = 0; v < n; ++v) {
    sizes[v] = static_cast<uint32_t>(g.labels(v).size());
  }
  OffsetsFromSizes(sizes, &section->label_offsets);
  section->label_flat.reserve(section->label_offsets.back());
  section->attrs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<LabelId>& ls = g.labels(v);
    section->label_flat.insert(section->label_flat.end(), ls.begin(),
                               ls.end());
    section->attrs.push_back(g.attrs(v));
  }

  const size_t nl = g.num_labels();
  sizes.assign(nl, 0);
  section->label_names.reserve(nl);
  for (LabelId l = 0; l < nl; ++l) {
    sizes[l] = static_cast<uint32_t>(g.NodesWithLabel(l).size());
    section->label_names.push_back(g.LabelName(l));
    section->label_ids.emplace(g.LabelName(l), l);
  }
  OffsetsFromSizes(sizes, &section->index_offsets);
  section->index_flat.reserve(section->index_offsets.back());
  for (LabelId l = 0; l < nl; ++l) {
    const std::vector<NodeId>& vs = g.NodesWithLabel(l);
    section->index_flat.insert(section->index_flat.end(), vs.begin(),
                               vs.end());
  }
  section->node_version = g.node_section_version();
  return section;
}

std::shared_ptr<const GraphSnapshot> GraphSnapshot::Build(const Graph& g,
                                                          uint64_t version) {
  auto snap = std::make_shared<GraphSnapshot>();
  snap->version_ = version;
  const size_t n = g.num_nodes();

  std::vector<uint32_t> sizes(n);
  for (NodeId v = 0; v < n; ++v) {
    sizes[v] = static_cast<uint32_t>(g.out_degree(v));
  }
  OffsetsFromSizes(sizes, &snap->out_offsets_);
  snap->out_targets_.reserve(snap->out_offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId>& row = g.out_neighbors(v);
    snap->out_targets_.insert(snap->out_targets_.end(), row.begin(),
                              row.end());
  }

  for (NodeId v = 0; v < n; ++v) {
    sizes[v] = static_cast<uint32_t>(g.in_degree(v));
  }
  OffsetsFromSizes(sizes, &snap->in_offsets_);
  snap->in_sources_.reserve(snap->in_offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    const std::vector<NodeId>& row = g.in_neighbors(v);
    snap->in_sources_.insert(snap->in_sources_.end(), row.begin(), row.end());
  }

  snap->nodes_ = BuildNodeSection(g);
  return snap;
}

namespace {

/// Rebuilds one CSR side, copying unchanged row spans from `prev_offsets` /
/// `prev_flat` wholesale and re-reading only the rows in sorted `dirty`.
template <typename RowFn>
void RebuildSide(size_t n, const std::vector<NodeId>& dirty, RowFn row_of,
                 const std::vector<uint32_t>& prev_offsets,
                 const std::vector<NodeId>& prev_flat,
                 std::vector<uint32_t>* offsets, std::vector<NodeId>* flat) {
  offsets->resize(n + 1);
  uint32_t total = 0;
  size_t d = 0;
  for (NodeId v = 0; v < n; ++v) {
    (*offsets)[v] = total;
    while (d < dirty.size() && dirty[d] < v) ++d;
    const bool is_dirty = d < dirty.size() && dirty[d] == v;
    total += is_dirty
                 ? static_cast<uint32_t>(row_of(v).size())
                 : prev_offsets[v + 1] - prev_offsets[v];
  }
  (*offsets)[n] = total;

  flat->resize(total);
  d = 0;
  NodeId span_start = 0;  // first node of the current clean span
  auto flush_clean = [&](NodeId end) {
    if (span_start >= end) return;
    std::copy(prev_flat.begin() + prev_offsets[span_start],
              prev_flat.begin() + prev_offsets[end],
              flat->begin() + (*offsets)[span_start]);
  };
  for (NodeId v : dirty) {
    if (v >= n) break;
    flush_clean(v);
    const auto& row = row_of(v);
    std::copy(row.begin(), row.end(), flat->begin() + (*offsets)[v]);
    span_start = v + 1;
  }
  flush_clean(static_cast<NodeId>(n));
}

}  // namespace

std::shared_ptr<const GraphSnapshot> GraphSnapshot::Rebuild(
    const Graph& g, uint64_t version, const GraphSnapshot& prev,
    const std::vector<NodeId>& out_dirty,
    const std::vector<NodeId>& in_dirty) {
  GPMV_DCHECK(g.num_nodes() == prev.num_nodes());
  auto snap = std::make_shared<GraphSnapshot>();
  snap->version_ = version;
  const size_t n = g.num_nodes();
  RebuildSide(
      n, out_dirty, [&](NodeId v) -> const std::vector<NodeId>& {
        return g.out_neighbors(v);
      },
      prev.out_offsets_, prev.out_targets_, &snap->out_offsets_,
      &snap->out_targets_);
  RebuildSide(
      n, in_dirty, [&](NodeId v) -> const std::vector<NodeId>& {
        return g.in_neighbors(v);
      },
      prev.in_offsets_, prev.in_sources_, &snap->in_offsets_,
      &snap->in_sources_);
  snap->nodes_ = prev.nodes_;  // edge updates never touch the node section
  return snap;
}

bool GraphSnapshot::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  NodeSpan row = out_neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

bool GraphSnapshot::HasLabel(NodeId v, LabelId label) const {
  LabelSpan ls = labels(v);
  return std::binary_search(ls.begin(), ls.end(), label);
}

LabelId GraphSnapshot::FindLabel(const std::string& name) const {
  auto it = nodes_->label_ids.find(name);
  return it == nodes_->label_ids.end() ? kInvalidLabel : it->second;
}

NodeSpan GraphSnapshot::NodesWithLabel(LabelId label) const {
  const auto& n = *nodes_;
  if (label >= n.index_offsets.size() - 1) return {};
  return {n.index_flat.data() + n.index_offsets[label],
          n.index_flat.data() + n.index_offsets[label + 1]};
}

size_t GraphSnapshot::ApproxBytes() const {
  size_t bytes = (out_offsets_.size() + in_offsets_.size()) * sizeof(uint32_t);
  bytes += (out_targets_.size() + in_sources_.size()) * sizeof(NodeId);
  bytes += nodes_->label_offsets.size() * sizeof(uint32_t);
  bytes += nodes_->label_flat.size() * sizeof(LabelId);
  bytes += nodes_->index_offsets.size() * sizeof(uint32_t);
  bytes += nodes_->index_flat.size() * sizeof(NodeId);
  return bytes;
}

}  // namespace gpmv
