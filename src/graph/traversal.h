/// \file traversal.h
/// \brief Bounded breadth-first traversals used by bounded simulation
/// (Section VI) and by view materialization.
///
/// Bounded simulation needs two primitives:
///  * multi-source *reverse* bounded BFS — "which nodes can reach the set T
///    within k hops?" (used to prune candidate matches), and
///  * single-source *forward* bounded BFS — "which nodes does v reach within
///    k hops, and at what distance?" (used to extract match sets and the
///    distance index I(V)).
///
/// `kUnbounded` encodes the paper's `*` bound (reachability at any length).
/// The scratch object reuses its O(|V|) buffers across calls so that the
/// fixpoint loops do not reallocate.

#ifndef GPMV_GRAPH_TRAVERSAL_H_
#define GPMV_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "graph/snapshot.h"

namespace gpmv {

/// Hop bound; kUnbounded represents the paper's `*`.
inline constexpr uint32_t kUnbounded = std::numeric_limits<uint32_t>::max();

/// Reusable BFS workspace bound to one graph size.
class BfsScratch {
 public:
  explicit BfsScratch(size_t num_nodes) : dist_(num_nodes, kNotSeen) {}

  /// Distance of `v` from the sources of the last traversal; kNotSeen if
  /// unreached.
  uint32_t dist(NodeId v) const { return dist_[v]; }
  bool Reached(NodeId v) const { return dist_[v] != kNotSeen; }

  /// Nodes reached by the last traversal, in BFS order (sources first,
  /// distance 0 included).
  const std::vector<NodeId>& reached() const { return reached_; }

  /// Multi-source BFS following `forward` (out-edges) or reverse (in-edges)
  /// direction, stopping at distance `bound` (kUnbounded = no limit).
  void Run(const Graph& g, const std::vector<NodeId>& sources, uint32_t bound,
           bool forward);

  /// CSR-snapshot variants (the hot path of bounded simulation): identical
  /// semantics, adjacency read from the frozen arrays.
  void Run(const GraphSnapshot& g, const std::vector<NodeId>& sources,
           uint32_t bound, bool forward);
  void Run(const GraphSnapshot& g, NodeSpan sources, uint32_t bound,
           bool forward);

  /// Single-source variant.
  void RunSingle(const Graph& g, NodeId source, uint32_t bound, bool forward);
  void RunSingle(const GraphSnapshot& g, NodeId source, uint32_t bound,
                 bool forward);

  static constexpr uint32_t kNotSeen = std::numeric_limits<uint32_t>::max();

 private:
  void Clear();

  std::vector<uint32_t> dist_;
  std::vector<NodeId> reached_;
  std::vector<NodeId> queue_;
};

}  // namespace gpmv

#endif  // GPMV_GRAPH_TRAVERSAL_H_
