#include "graph/traversal.h"

namespace gpmv {

void BfsScratch::Clear() {
  for (NodeId v : reached_) dist_[v] = kNotSeen;
  reached_.clear();
  queue_.clear();
}

namespace {

/// One BFS loop shared by the Graph and GraphSnapshot paths; `GraphT` only
/// needs num_nodes() and out_/in_neighbors() returning an iterable range.
template <typename GraphT, typename Sources>
void RunImpl(const GraphT& g, const Sources& sources, uint32_t bound,
             bool forward, std::vector<uint32_t>* dist,
             std::vector<NodeId>* reached, std::vector<NodeId>* queue) {
  if (dist->size() < g.num_nodes()) dist->resize(g.num_nodes(), BfsScratch::kNotSeen);
  for (NodeId s : sources) {
    if ((*dist)[s] == BfsScratch::kNotSeen) {
      (*dist)[s] = 0;
      queue->push_back(s);
      reached->push_back(s);
    }
  }
  size_t head = 0;
  while (head < queue->size()) {
    NodeId v = (*queue)[head++];
    uint32_t d = (*dist)[v];
    if (bound != kUnbounded && d >= bound) continue;
    const auto& nbrs = forward ? g.out_neighbors(v) : g.in_neighbors(v);
    for (NodeId w : nbrs) {
      if ((*dist)[w] == BfsScratch::kNotSeen) {
        (*dist)[w] = d + 1;
        queue->push_back(w);
        reached->push_back(w);
      }
    }
  }
}

}  // namespace

void BfsScratch::Run(const Graph& g, const std::vector<NodeId>& sources,
                     uint32_t bound, bool forward) {
  Clear();
  RunImpl(g, sources, bound, forward, &dist_, &reached_, &queue_);
}

void BfsScratch::Run(const GraphSnapshot& g,
                     const std::vector<NodeId>& sources, uint32_t bound,
                     bool forward) {
  Clear();
  RunImpl(g, sources, bound, forward, &dist_, &reached_, &queue_);
}

void BfsScratch::Run(const GraphSnapshot& g, NodeSpan sources, uint32_t bound,
                     bool forward) {
  Clear();
  RunImpl(g, sources, bound, forward, &dist_, &reached_, &queue_);
}

void BfsScratch::RunSingle(const Graph& g, NodeId source, uint32_t bound,
                           bool forward) {
  Run(g, std::vector<NodeId>{source}, bound, forward);
}

void BfsScratch::RunSingle(const GraphSnapshot& g, NodeId source,
                           uint32_t bound, bool forward) {
  Run(g, std::vector<NodeId>{source}, bound, forward);
}

}  // namespace gpmv
