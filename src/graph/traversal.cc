#include "graph/traversal.h"

namespace gpmv {

void BfsScratch::Clear() {
  for (NodeId v : reached_) dist_[v] = kNotSeen;
  reached_.clear();
  queue_.clear();
}

void BfsScratch::Run(const Graph& g, const std::vector<NodeId>& sources,
                     uint32_t bound, bool forward) {
  Clear();
  if (dist_.size() < g.num_nodes()) dist_.resize(g.num_nodes(), kNotSeen);
  for (NodeId s : sources) {
    if (dist_[s] == kNotSeen) {
      dist_[s] = 0;
      queue_.push_back(s);
      reached_.push_back(s);
    }
  }
  size_t head = 0;
  while (head < queue_.size()) {
    NodeId v = queue_[head++];
    uint32_t d = dist_[v];
    if (bound != kUnbounded && d >= bound) continue;
    const auto& nbrs = forward ? g.out_neighbors(v) : g.in_neighbors(v);
    for (NodeId w : nbrs) {
      if (dist_[w] == kNotSeen) {
        dist_[w] = d + 1;
        queue_.push_back(w);
        reached_.push_back(w);
      }
    }
  }
}

void BfsScratch::RunSingle(const Graph& g, NodeId source, uint32_t bound,
                           bool forward) {
  Run(g, std::vector<NodeId>{source}, bound, forward);
}

}  // namespace gpmv
