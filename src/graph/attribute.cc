#include "graph/attribute.h"

#include <algorithm>
#include <cstdio>

namespace gpmv {

std::optional<int> AttrValue::Compare(const AttrValue& other) const {
  if (is_string() != other.is_string()) return std::nullopt;
  if (is_string()) {
    int c = as_string().compare(other.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_int() && other.is_int()) {
    int64_t a = as_int(), b = other.as_int();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = ToDouble(), b = other.ToDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string AttrValue::ToString() const {
  if (is_string()) return "\"" + as_string() + "\"";
  if (is_int()) return std::to_string(as_int());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", as_double());
  return buf;
}

void AttributeSet::Set(const std::string& name, AttrValue value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    it->second = std::move(value);
  } else {
    entries_.insert(it, {name, std::move(value)});
  }
}

const AttrValue* AttributeSet::Get(const std::string& name) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) return &it->second;
  return nullptr;
}

bool AttributeSet::operator==(const AttributeSet& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first != other.entries_[i].first) return false;
    if (!(entries_[i].second == other.entries_[i].second)) return false;
  }
  return true;
}

std::string AttributeSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) out += ", ";
    out += entries_[i].first + "=" + entries_[i].second.ToString();
  }
  out += "}";
  return out;
}

}  // namespace gpmv
