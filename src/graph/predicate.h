/// \file predicate.h
/// \brief Boolean search conditions on pattern nodes.
///
/// The paper's pattern nodes carry a label; Section II notes that `fv` "can
/// be readily extended to specify search conditions in terms of Boolean
/// predicates" and the YouTube views (Fig. 7) use conditions such as
/// `R >= 4 && V >= 10K`. We implement conjunctions of atomic comparisons
/// `attr op constant`.
///
/// Two operations matter:
///  * `Eval(attrs)`   — does a data node satisfy the condition? (matching)
///  * `Implies(q)`    — does satisfying *this* guarantee satisfying `q`?
///    This is what "view node matches query node" means when computing view
///    matches over a pattern treated as a data graph: every data node that
///    can match the query node must also match the view node, i.e. the query
///    condition must imply the view condition. `Implies` is conservative
///    (may return false on implications it cannot prove) which keeps
///    containment checking sound.

#ifndef GPMV_GRAPH_PREDICATE_H_
#define GPMV_GRAPH_PREDICATE_H_

#include <string>
#include <vector>

#include "graph/attribute.h"

namespace gpmv {

/// Comparison operator of an atomic condition.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// One atomic condition `attr op value`.
struct PredicateAtom {
  std::string attr;
  CmpOp op;
  AttrValue value;

  /// Evaluates the atom against a concrete value.
  bool Holds(const AttrValue& v) const;

  std::string ToString() const;
};

/// A conjunction of atomic conditions. The empty predicate is `true`.
class Predicate {
 public:
  Predicate() = default;

  /// Fluent atom constructors, e.g. Predicate().Ge("rate", 4).Eq("cat", "Music").
  Predicate& Eq(const std::string& attr, AttrValue v) { return Add(attr, CmpOp::kEq, std::move(v)); }
  Predicate& Ne(const std::string& attr, AttrValue v) { return Add(attr, CmpOp::kNe, std::move(v)); }
  Predicate& Lt(const std::string& attr, AttrValue v) { return Add(attr, CmpOp::kLt, std::move(v)); }
  Predicate& Le(const std::string& attr, AttrValue v) { return Add(attr, CmpOp::kLe, std::move(v)); }
  Predicate& Gt(const std::string& attr, AttrValue v) { return Add(attr, CmpOp::kGt, std::move(v)); }
  Predicate& Ge(const std::string& attr, AttrValue v) { return Add(attr, CmpOp::kGe, std::move(v)); }
  Predicate& Add(const std::string& attr, CmpOp op, AttrValue v);

  /// True if the predicate has no atoms (matches everything).
  bool IsTrivial() const { return atoms_.empty(); }

  const std::vector<PredicateAtom>& atoms() const { return atoms_; }

  /// Does `attrs` satisfy every atom? Missing attributes fail their atoms.
  bool Eval(const AttributeSet& attrs) const;

  /// Sound, conservative implication check: returns true only if every
  /// attribute assignment satisfying *this* also satisfies `q`.
  bool Implies(const Predicate& q) const;

  bool operator==(const Predicate& other) const;

  std::string ToString() const;

 private:
  std::vector<PredicateAtom> atoms_;
};

}  // namespace gpmv

#endif  // GPMV_GRAPH_PREDICATE_H_
