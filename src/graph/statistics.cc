#include "graph/statistics.h"

#include <algorithm>
#include <cstdio>

#include "graph/snapshot.h"

namespace gpmv {

namespace {

/// One statistics pass shared by the Graph and GraphSnapshot entry points;
/// `GraphT` provides degrees, HasEdge and the label index.
template <typename GraphT>
GraphStatistics ComputeStatisticsImpl(const GraphT& g) {
  GraphStatistics s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  if (g.num_nodes() == 0) return s;

  size_t bucket_count = 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t out = g.out_degree(v);
    size_t in = g.in_degree(v);
    s.max_out_degree = std::max(s.max_out_degree, out);
    s.max_in_degree = std::max(s.max_in_degree, in);
    s.source_nodes += (in == 0);
    s.sink_nodes += (out == 0);
    s.self_loops += g.HasEdge(v, v) ? 1 : 0;
    size_t bucket = 0;
    for (size_t d = out; d >= 2; d /= 2) ++bucket;
    bucket_count = std::max(bucket_count, bucket + 1);
  }
  s.avg_out_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);

  s.out_degree_buckets.assign(bucket_count, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    size_t bucket = 0;
    for (size_t d = g.out_degree(v); d >= 2; d /= 2) ++bucket;
    ++s.out_degree_buckets[bucket];
  }

  for (LabelId l = 0; l < g.num_labels(); ++l) {
    s.label_histogram.emplace_back(g.LabelName(l), g.NodesWithLabel(l).size());
  }
  std::sort(s.label_histogram.begin(), s.label_histogram.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  return s;
}

}  // namespace

GraphStatistics ComputeStatistics(const Graph& g) {
  return ComputeStatisticsImpl(g);
}

GraphStatistics ComputeStatistics(const GraphSnapshot& g) {
  return ComputeStatisticsImpl(g);
}

std::string GraphStatistics::ToString() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "nodes: %zu  edges: %zu  avg out-degree: %.2f\n", num_nodes,
                num_edges, avg_out_degree);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "max out-degree: %zu  max in-degree: %zu  sources: %zu  "
                "sinks: %zu  self-loops: %zu\n",
                max_out_degree, max_in_degree, source_nodes, sink_nodes,
                self_loops);
  out += buf;
  out += "labels:";
  size_t shown = 0;
  for (const auto& [name, count] : label_histogram) {
    if (++shown > 12) {
      out += " ...";
      break;
    }
    std::snprintf(buf, sizeof(buf), " %s=%zu", name.c_str(), count);
    out += buf;
  }
  out += "\nout-degree buckets (0-1, 2-3, 4-7, ...):";
  for (size_t b : out_degree_buckets) {
    std::snprintf(buf, sizeof(buf), " %zu", b);
    out += buf;
  }
  out += "\n";
  return out;
}

}  // namespace gpmv
