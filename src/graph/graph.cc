#include "graph/graph.h"

#include <algorithm>

#include "graph/snapshot.h"

namespace gpmv {

NodeId Graph::AddNode(const std::vector<std::string>& labels,
                      AttributeSet attrs) {
  ++version_;
  ++node_section_version_;
  NodeId id = static_cast<NodeId>(out_.size());
  out_.emplace_back();
  in_.emplace_back();
  node_attrs_.push_back(std::move(attrs));
  std::vector<LabelId> lids;
  lids.reserve(labels.size());
  for (const std::string& name : labels) {
    LabelId lid = InternLabel(name);
    if (std::find(lids.begin(), lids.end(), lid) == lids.end()) {
      lids.push_back(lid);
      label_index_[lid].push_back(id);
    }
  }
  std::sort(lids.begin(), lids.end());
  node_labels_.push_back(std::move(lids));
  return id;
}

NodeId Graph::AddNode(const std::string& label, AttributeSet attrs) {
  return AddNode(std::vector<std::string>{label}, std::move(attrs));
}

namespace {
bool SortedInsert(std::vector<NodeId>* vec, NodeId v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it != vec->end() && *it == v) return false;
  vec->insert(it, v);
  return true;
}

bool SortedErase(std::vector<NodeId>* vec, NodeId v) {
  auto it = std::lower_bound(vec->begin(), vec->end(), v);
  if (it == vec->end() || *it != v) return false;
  vec->erase(it);
  return true;
}

bool SortedContains(const std::vector<NodeId>& vec, NodeId v) {
  return std::binary_search(vec.begin(), vec.end(), v);
}
}  // namespace

Status Graph::AddEdge(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!SortedInsert(&out_[u], v)) {
    return Status::AlreadyExists("duplicate edge");
  }
  SortedInsert(&in_[v], u);
  ++num_edges_;
  MarkEdgeDirty(u, v);
  return Status::OK();
}

bool Graph::AddEdgeIfAbsent(NodeId u, NodeId v) {
  GPMV_DCHECK(u < num_nodes() && v < num_nodes());
  if (!SortedInsert(&out_[u], v)) return false;
  SortedInsert(&in_[v], u);
  ++num_edges_;
  MarkEdgeDirty(u, v);
  return true;
}

Status Graph::RemoveEdge(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (!SortedErase(&out_[u], v)) {
    return Status::NotFound("edge not present");
  }
  SortedErase(&in_[v], u);
  --num_edges_;
  MarkEdgeDirty(u, v);
  return Status::OK();
}

void Graph::MarkEdgeDirty(NodeId out_node, NodeId in_node) {
  ++version_;
  if (dirty_overflow_) return;
  if (dirty_out_.size() >= kMaxDirtyRows || dirty_in_.size() >= kMaxDirtyRows) {
    dirty_overflow_ = true;
    dirty_out_.clear();
    dirty_in_.clear();
    return;
  }
  dirty_out_.push_back(out_node);
  dirty_in_.push_back(in_node);
}

std::shared_ptr<const GraphSnapshot> Graph::Freeze() {
  if (frozen_ != nullptr && frozen_->version() == version_) return frozen_;
  const bool node_section_reusable =
      frozen_ != nullptr && !dirty_overflow_ &&
      frozen_->node_section_version() == node_section_version_ &&
      frozen_->num_nodes() == num_nodes();
  if (node_section_reusable) {
    auto canonicalize = [](std::vector<NodeId>* dirty) {
      std::sort(dirty->begin(), dirty->end());
      dirty->erase(std::unique(dirty->begin(), dirty->end()), dirty->end());
    };
    canonicalize(&dirty_out_);
    canonicalize(&dirty_in_);
    frozen_ = GraphSnapshot::Rebuild(*this, version_, *frozen_, dirty_out_,
                                     dirty_in_);
  } else {
    frozen_ = GraphSnapshot::Build(*this, version_);
  }
  dirty_out_.clear();
  dirty_in_.clear();
  dirty_overflow_ = false;
  return frozen_;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  return SortedContains(out_[u], v);
}

bool Graph::HasLabel(NodeId v, LabelId label) const {
  const auto& ls = node_labels_[v];
  return std::binary_search(ls.begin(), ls.end(), label);
}

LabelId Graph::InternLabel(const std::string& name) {
  auto [it, inserted] = label_ids_.try_emplace(
      name, static_cast<LabelId>(label_names_.size()));
  if (inserted) {
    label_names_.push_back(name);
    label_index_.emplace_back();
  }
  return it->second;
}

LabelId Graph::FindLabel(const std::string& name) const {
  auto it = label_ids_.find(name);
  return it == label_ids_.end() ? kInvalidLabel : it->second;
}

const std::vector<NodeId>& Graph::NodesWithLabel(LabelId label) const {
  if (label >= label_index_.size()) return empty_;
  return label_index_[label];
}

std::string Graph::DescribeNode(NodeId v) const {
  std::string out = std::to_string(v);
  if (!node_labels_[v].empty()) {
    out += "(" + label_names_[node_labels_[v][0]];
    for (size_t i = 1; i < node_labels_[v].size(); ++i) {
      out += "," + label_names_[node_labels_[v][i]];
    }
    out += ")";
  }
  return out;
}

}  // namespace gpmv
