/// \file attribute.h
/// \brief Typed node attributes.
///
/// Data-graph nodes carry, besides their labels, a set of named attributes
/// (e.g. a YouTube video's `rate`, `visits`, `category`). Pattern nodes
/// constrain attributes with Boolean predicates (predicate.h). Attribute
/// values are int64, double or string.

#ifndef GPMV_GRAPH_ATTRIBUTE_H_
#define GPMV_GRAPH_ATTRIBUTE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace gpmv {

/// A single attribute value.
class AttrValue {
 public:
  AttrValue() : value_(int64_t{0}) {}
  AttrValue(int64_t v) : value_(v) {}            // NOLINT: implicit by design
  AttrValue(int v) : value_(int64_t{v}) {}       // NOLINT
  AttrValue(double v) : value_(v) {}             // NOLINT
  AttrValue(std::string v) : value_(std::move(v)) {}  // NOLINT
  AttrValue(const char* v) : value_(std::string(v)) {}  // NOLINT

  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t as_int() const { return std::get<int64_t>(value_); }
  double as_double() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }

  /// Numeric value widened to double (ints convert exactly up to 2^53).
  double ToDouble() const { return is_int() ? static_cast<double>(as_int()) : as_double(); }

  /// Three-way comparison between comparable values. Numeric values compare
  /// numerically regardless of int/double representation; strings compare
  /// lexicographically. Returns nullopt for numeric-vs-string.
  std::optional<int> Compare(const AttrValue& other) const;

  bool operator==(const AttrValue& other) const {
    auto c = Compare(other);
    return c.has_value() && *c == 0;
  }

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> value_;
};

/// A set of named attributes on one node, stored sorted by name.
class AttributeSet {
 public:
  AttributeSet() = default;

  /// Sets (or overwrites) attribute `name`.
  void Set(const std::string& name, AttrValue value);

  /// Looks up attribute `name`; nullptr if absent.
  const AttrValue* Get(const std::string& name) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  const std::vector<std::pair<std::string, AttrValue>>& entries() const {
    return entries_;
  }

  bool operator==(const AttributeSet& other) const;

  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, AttrValue>> entries_;
};

}  // namespace gpmv

#endif  // GPMV_GRAPH_ATTRIBUTE_H_
