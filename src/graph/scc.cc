#include "graph/scc.h"

#include <algorithm>

#include "common/status.h"

namespace gpmv {

SccResult ComputeScc(const std::vector<std::vector<uint32_t>>& adj) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  SccResult result;
  result.component.assign(n, static_cast<uint32_t>(-1));

  std::vector<uint32_t> index(n, static_cast<uint32_t>(-1));
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;           // Tarjan stack
  uint32_t next_index = 0;

  // Explicit DFS stack: (node, next child position).
  struct Frame {
    uint32_t node;
    size_t child;
  };
  std::vector<Frame> dfs;

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != static_cast<uint32_t>(-1)) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      uint32_t v = f.node;
      if (f.child < adj[v].size()) {
        uint32_t w = adj[v][f.child++];
        if (index[w] == static_cast<uint32_t>(-1)) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          uint32_t comp = result.num_components++;
          result.component_size.push_back(0);
          for (;;) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = comp;
            ++result.component_size[comp];
            if (w == v) break;
          }
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          uint32_t parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

std::vector<uint32_t> ComputeSccRanks(
    const std::vector<std::vector<uint32_t>>& adj) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  SccResult scc = ComputeScc(adj);

  // Condensation out-edges, deduplicated.
  std::vector<std::vector<uint32_t>> comp_out(scc.num_components);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : adj[u]) {
      uint32_t cu = scc.component[u];
      uint32_t cv = scc.component[v];
      if (cu != cv) comp_out[cu].push_back(cv);
    }
  }
  for (auto& outs : comp_out) {
    std::sort(outs.begin(), outs.end());
    outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
  }

  // Tarjan numbers components in reverse topological order: every edge
  // cu -> cv (cu != cv) has cu > cv, so processing components in ascending
  // id order sees all successors before each component.
  std::vector<uint32_t> comp_rank(scc.num_components, 0);
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    uint32_t rank = 0;
    for (uint32_t succ : comp_out[c]) {
      GPMV_DCHECK(succ < c);
      rank = std::max(rank, comp_rank[succ] + 1);
    }
    comp_rank[c] = rank;  // leaves (no successors) keep rank 0
  }

  std::vector<uint32_t> node_rank(n, 0);
  for (uint32_t u = 0; u < n; ++u) node_rank[u] = comp_rank[scc.component[u]];
  return node_rank;
}

}  // namespace gpmv
