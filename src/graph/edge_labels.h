/// \file edge_labels.h
/// \brief Edge-labeled graphs via the paper's reduction (Section II,
/// Remark (2)): "an edge-labeled graph can be transformed to a node-labeled
/// graph: for each edge e, add a 'dummy' node carrying the edge label of e,
/// along with two unlabeled edges."
///
/// `EdgeLabeledGraphBuilder` collects labeled nodes and labeled edges, then
/// lowers them: an edge u -[rel]-> v becomes u -> d -> v where d is a fresh
/// node labeled `rel` (prefixed to avoid clashing with node labels).
/// `LowerEdgeLabeledPattern` applies the same rewriting to a pattern whose
/// edges carry labels, doubling bounded edges' budgets appropriately: a
/// labeled pattern edge with bound k maps to u -> d (bound 1) and d -> v
/// (bound 2k-1), so a k-step labeled path (k relation hops = 2k lowered
/// hops) stays expressible. All matching, containment and MatchJoin
/// machinery then applies unchanged — the reduction is what the paper
/// appeals to, made executable.

#ifndef GPMV_GRAPH_EDGE_LABELS_H_
#define GPMV_GRAPH_EDGE_LABELS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Prefix applied to relation labels on dummy nodes, keeping the relation
/// namespace disjoint from node labels.
inline constexpr const char* kEdgeLabelPrefix = "rel:";

/// Builder for a graph with labeled edges; Lower() emits the node-labeled
/// encoding.
class EdgeLabeledGraphBuilder {
 public:
  /// Adds a node with the given labels/attributes; returns its id in the
  /// *source* numbering (which Lower() preserves for original nodes).
  NodeId AddNode(const std::vector<std::string>& labels,
                 AttributeSet attrs = {});
  NodeId AddNode(const std::string& label, AttributeSet attrs = {});

  /// Adds edge u -[rel]-> v. Parallel edges with distinct relations are
  /// allowed (each lowers through its own dummy node).
  Status AddEdge(NodeId u, NodeId v, const std::string& rel);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Produces the node-labeled graph: original nodes keep their ids
  /// (0..num_nodes-1); edge i's dummy node gets id num_nodes + i.
  Graph Lower() const;

  /// Id the dummy node of edge `edge_index` will receive in Lower().
  NodeId DummyNodeOf(size_t edge_index) const {
    return static_cast<NodeId>(nodes_.size() + edge_index);
  }

 private:
  struct NodeRec {
    std::vector<std::string> labels;
    AttributeSet attrs;
  };
  struct EdgeRec {
    NodeId src;
    NodeId dst;
    std::string rel;
  };
  std::vector<NodeRec> nodes_;
  std::vector<EdgeRec> edges_;
};

/// A pattern edge with a relation label (bound semantics as in Pattern).
struct LabeledPatternEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  std::string rel;
  uint32_t bound = 1;
};

/// Lowers a pattern given as nodes + labeled edges into the node-labeled
/// encoding matching EdgeLabeledGraphBuilder::Lower(). Pattern node u keeps
/// index u; labeled edge i's dummy pattern node gets index
/// nodes.size() + i.
Result<Pattern> LowerEdgeLabeledPattern(
    const std::vector<PatternNode>& nodes,
    const std::vector<LabeledPatternEdge>& edges);

}  // namespace gpmv

#endif  // GPMV_GRAPH_EDGE_LABELS_H_
