/// \file graph_io.h
/// \brief Plain-text serialization of data graphs.
///
/// Format (one record per line, '#' starts a comment):
///
///     v <id> <label[,label...]|-> [attr=value ...]
///     e <src> <dst>
///
/// `v` lines must appear in id order starting from 0; `-` means "no labels".
/// Attribute values parse as int64 first, then double, else string; double
/// quotes force a string and allow empty values. The writer always quotes
/// strings. Values must not contain whitespace (IDs and enumeration-style
/// attributes, which is all the workloads need).

#ifndef GPMV_GRAPH_GRAPH_IO_H_
#define GPMV_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace gpmv {

/// Writes `g` in the text format above.
Status WriteGraph(const Graph& g, std::ostream* out);

/// Parses a graph from the text format above.
Result<Graph> ReadGraph(std::istream* in);

/// Convenience: serialize to / parse from a string.
std::string GraphToString(const Graph& g);
Result<Graph> GraphFromString(const std::string& text);

/// File helpers.
Status WriteGraphFile(const Graph& g, const std::string& path);
Result<Graph> ReadGraphFile(const std::string& path);

}  // namespace gpmv

#endif  // GPMV_GRAPH_GRAPH_IO_H_
