#include "graph/predicate.h"

#include <algorithm>
#include <optional>

#include "common/status.h"

namespace gpmv {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

bool PredicateAtom::Holds(const AttrValue& v) const {
  std::optional<int> c = v.Compare(value);
  if (!c.has_value()) return false;  // incomparable types never match
  switch (op) {
    case CmpOp::kEq: return *c == 0;
    case CmpOp::kNe: return *c != 0;
    case CmpOp::kLt: return *c < 0;
    case CmpOp::kLe: return *c <= 0;
    case CmpOp::kGt: return *c > 0;
    case CmpOp::kGe: return *c >= 0;
  }
  return false;
}

std::string PredicateAtom::ToString() const {
  return attr + CmpOpName(op) + value.ToString();
}

Predicate& Predicate::Add(const std::string& attr, CmpOp op, AttrValue v) {
  atoms_.push_back(PredicateAtom{attr, op, std::move(v)});
  return *this;
}

bool Predicate::Eval(const AttributeSet& attrs) const {
  for (const PredicateAtom& atom : atoms_) {
    const AttrValue* v = attrs.Get(atom.attr);
    if (v == nullptr || !atom.Holds(*v)) return false;
  }
  return true;
}

namespace {

/// Normalized constraint that a conjunction places on one attribute:
/// an optional lower/upper bound (each possibly strict), an optional pinned
/// equality, and a set of excluded values.
struct AttrConstraint {
  std::optional<AttrValue> lower;
  bool lower_strict = false;
  std::optional<AttrValue> upper;
  bool upper_strict = false;
  std::optional<AttrValue> eq;
  std::vector<AttrValue> ne;
  bool malformed = false;  // incomparable mix; treat conservatively

  void Tighten(const PredicateAtom& atom) {
    switch (atom.op) {
      case CmpOp::kEq:
        if (eq.has_value() && !(*eq == atom.value)) malformed = true;
        eq = atom.value;
        break;
      case CmpOp::kNe:
        ne.push_back(atom.value);
        break;
      case CmpOp::kGt:
      case CmpOp::kGe: {
        bool strict = atom.op == CmpOp::kGt;
        if (!lower.has_value()) {
          lower = atom.value;
          lower_strict = strict;
        } else {
          auto c = atom.value.Compare(*lower);
          if (!c.has_value()) { malformed = true; break; }
          if (*c > 0 || (*c == 0 && strict)) {
            lower = atom.value;
            lower_strict = strict;
          }
        }
        break;
      }
      case CmpOp::kLt:
      case CmpOp::kLe: {
        bool strict = atom.op == CmpOp::kLt;
        if (!upper.has_value()) {
          upper = atom.value;
          upper_strict = strict;
        } else {
          auto c = atom.value.Compare(*upper);
          if (!c.has_value()) { malformed = true; break; }
          if (*c < 0 || (*c == 0 && strict)) {
            upper = atom.value;
            upper_strict = strict;
          }
        }
        break;
      }
    }
  }

  /// Does every value satisfying this constraint satisfy `atom`?
  /// Conservative: false when unsure.
  bool Implies(const PredicateAtom& atom) const {
    if (malformed) return false;
    if (eq.has_value()) return atom.Holds(*eq);
    auto cmp_lower = [&](const AttrValue& c) { return lower ? lower->Compare(c) : std::nullopt; };
    auto cmp_upper = [&](const AttrValue& c) { return upper ? upper->Compare(c) : std::nullopt; };
    switch (atom.op) {
      case CmpOp::kGe: {
        auto c = cmp_lower(atom.value);
        return c.has_value() && *c >= 0;
      }
      case CmpOp::kGt: {
        auto c = cmp_lower(atom.value);
        return c.has_value() && (*c > 0 || (*c == 0 && lower_strict));
      }
      case CmpOp::kLe: {
        auto c = cmp_upper(atom.value);
        return c.has_value() && *c <= 0;
      }
      case CmpOp::kLt: {
        auto c = cmp_upper(atom.value);
        return c.has_value() && (*c < 0 || (*c == 0 && upper_strict));
      }
      case CmpOp::kEq: {
        // Only provable when bounds pin a single point [c, c].
        auto cl = cmp_lower(atom.value);
        auto cu = cmp_upper(atom.value);
        return cl.has_value() && cu.has_value() && *cl == 0 && *cu == 0 &&
               !lower_strict && !upper_strict;
      }
      case CmpOp::kNe: {
        auto cl = cmp_lower(atom.value);
        if (cl.has_value() && (*cl > 0 || (*cl == 0 && lower_strict))) return true;
        auto cu = cmp_upper(atom.value);
        if (cu.has_value() && (*cu < 0 || (*cu == 0 && upper_strict))) return true;
        for (const AttrValue& v : ne) {
          if (v == atom.value) return true;
        }
        return false;
      }
    }
    return false;
  }
};

}  // namespace

bool Predicate::Implies(const Predicate& q) const {
  if (q.IsTrivial()) return true;
  for (const PredicateAtom& target : q.atoms()) {
    AttrConstraint c;
    for (const PredicateAtom& atom : atoms_) {
      if (atom.attr == target.attr) c.Tighten(atom);
    }
    if (!c.Implies(target)) return false;
  }
  return true;
}

bool Predicate::operator==(const Predicate& other) const {
  if (atoms_.size() != other.atoms_.size()) return false;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    const auto& a = atoms_[i];
    const auto& b = other.atoms_[i];
    if (a.attr != b.attr || a.op != b.op || !(a.value == b.value)) return false;
  }
  return true;
}

std::string Predicate::ToString() const {
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i) out += " && ";
    out += atoms_[i].ToString();
  }
  return out;
}

}  // namespace gpmv
