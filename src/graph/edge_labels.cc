#include "graph/edge_labels.h"

namespace gpmv {

NodeId EdgeLabeledGraphBuilder::AddNode(const std::vector<std::string>& labels,
                                        AttributeSet attrs) {
  nodes_.push_back(NodeRec{labels, std::move(attrs)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId EdgeLabeledGraphBuilder::AddNode(const std::string& label,
                                        AttributeSet attrs) {
  return AddNode(std::vector<std::string>{label}, std::move(attrs));
}

Status EdgeLabeledGraphBuilder::AddEdge(NodeId u, NodeId v,
                                        const std::string& rel) {
  if (u >= nodes_.size() || v >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (rel.empty()) {
    return Status::InvalidArgument("edge label must be nonempty");
  }
  for (const EdgeRec& e : edges_) {
    if (e.src == u && e.dst == v && e.rel == rel) {
      return Status::AlreadyExists("duplicate labeled edge");
    }
  }
  edges_.push_back(EdgeRec{u, v, rel});
  return Status::OK();
}

Graph EdgeLabeledGraphBuilder::Lower() const {
  Graph g;
  for (const NodeRec& n : nodes_) {
    g.AddNode(n.labels, n.attrs);
  }
  for (const EdgeRec& e : edges_) {
    NodeId dummy = g.AddNode(kEdgeLabelPrefix + e.rel);
    (void)g.AddEdge(e.src, dummy);
    (void)g.AddEdge(dummy, e.dst);
  }
  return g;
}

Result<Pattern> LowerEdgeLabeledPattern(
    const std::vector<PatternNode>& nodes,
    const std::vector<LabeledPatternEdge>& edges) {
  Pattern p;
  for (const PatternNode& n : nodes) {
    p.AddNode(n.label, n.pred, n.name);
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    const LabeledPatternEdge& e = edges[i];
    if (e.src >= nodes.size() || e.dst >= nodes.size()) {
      return Status::InvalidArgument("pattern edge endpoint out of range");
    }
    if (e.rel.empty()) {
      return Status::InvalidArgument("pattern edge label must be nonempty");
    }
    uint32_t dummy =
        p.AddNode(kEdgeLabelPrefix + e.rel, Predicate(),
                  nodes[e.src].name + "-" + e.rel + "->" + nodes[e.dst].name);
    // A relation path of k labeled hops is 2k lowered hops alternating
    // through dummies; the first hop into "some" dummy is exact (bound 1),
    // the remainder has 2k-1 lowered hops.
    uint32_t tail_bound =
        e.bound == kUnbounded ? kUnbounded : 2 * e.bound - 1;
    GPMV_RETURN_NOT_OK(p.AddEdge(e.src, dummy, 1));
    GPMV_RETURN_NOT_OK(p.AddEdge(dummy, e.dst, tail_bound));
  }
  return p;
}

}  // namespace gpmv
