#include "graph/mvcc.h"

#include <algorithm>
#include <sstream>

namespace gpmv {

// ---------------------------------------------------------------------------
// VersionVector

bool VersionVector::CoveredBy(const VersionVector& other) const {
  if (w_.size() != other.w_.size()) return false;
  for (size_t i = 0; i < w_.size(); ++i) {
    if (w_[i] > other.w_[i]) return false;
  }
  return true;
}

VersionVector VersionVector::Merge(const VersionVector& a,
                                   const VersionVector& b) {
  GPMV_DCHECK(a.num_slices() == b.num_slices());
  VersionVector out(a.num_slices());
  for (size_t i = 0; i < a.num_slices(); ++i) {
    out.w_[i] = std::max(a.w_[i], b.w_[i]);
  }
  return out;
}

uint64_t VersionVector::MinSlice() const {
  if (w_.empty()) return 0;
  return *std::min_element(w_.begin(), w_.end());
}

uint64_t VersionVector::MaxSlice() const {
  if (w_.empty()) return 0;
  return *std::max_element(w_.begin(), w_.end());
}

std::string VersionVector::ToString() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < w_.size(); ++i) {
    if (i) os << ", ";
    os << w_[i];
  }
  os << ']';
  return os.str();
}

// ---------------------------------------------------------------------------
// SnapshotRef

SnapshotRef::SnapshotRef(SnapshotRef&& o) noexcept
    : chain_(o.chain_), cut_(std::move(o.cut_)) {
  o.chain_ = nullptr;
  o.cut_ = nullptr;
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& o) noexcept {
  if (this != &o) {
    Release();
    chain_ = o.chain_;
    cut_ = std::move(o.cut_);
    o.chain_ = nullptr;
    o.cut_ = nullptr;
  }
  return *this;
}

SnapshotRef::~SnapshotRef() { Release(); }

void SnapshotRef::Release() {
  if (chain_ != nullptr && cut_ != nullptr) {
    chain_->Unpin(cut_.get());
  }
  chain_ = nullptr;
  cut_ = nullptr;
}

// ---------------------------------------------------------------------------
// SnapshotChain

void SnapshotChain::Publish(SnapshotCut cut) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!chain_.empty()) {
    const SnapshotCut& head = *chain_.back();
    if (cut.version < head.version) return;  // late heartbeat, lost the race
    if (cut.version == head.version) {
      // Watermark-only republish of the same commit: keep whichever cut
      // advanced further. Replacing the head is safe — pins hold their own
      // shared_ptr, and a pin count keyed by version survives the swap.
      if (cut.watermark <= head.watermark) return;
      chain_.back() = std::make_shared<const SnapshotCut>(std::move(cut));
      return;
    }
  }
  chain_.push_back(std::make_shared<const SnapshotCut>(std::move(cut)));
  CollectLocked();
}

SnapshotRef SnapshotChain::PinHead() {
  std::lock_guard<std::mutex> lk(mu_);
  if (chain_.empty()) return SnapshotRef();
  std::shared_ptr<const SnapshotCut> cut = chain_.back();
  auto it = std::find_if(pins_.begin(), pins_.end(),
                         [&](const auto& p) { return p.first == cut->version; });
  if (it == pins_.end()) {
    pins_.emplace_back(cut->version, 1);
  } else {
    ++it->second;
  }
  return SnapshotRef(this, std::move(cut));
}

Result<SnapshotRef> SnapshotChain::PinAsOf(uint64_t ts) {
  std::lock_guard<std::mutex> lk(mu_);
  // Newest retained prefix-consistent cut with watermark <= ts.
  for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
    const auto& cut = *it;
    if (!cut->prefix_consistent() || cut->watermark > ts) continue;
    auto pit =
        std::find_if(pins_.begin(), pins_.end(),
                     [&](const auto& p) { return p.first == cut->version; });
    if (pit == pins_.end()) {
      pins_.emplace_back(cut->version, 1);
    } else {
      ++pit->second;
    }
    return SnapshotRef(this, cut);
  }
  return Status::NotFound(
      "AS OF " + std::to_string(ts) +
      ": no retained prefix-consistent cut at or before that timestamp");
}

uint64_t SnapshotChain::head_version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chain_.empty() ? 0 : chain_.back()->version;
}

uint64_t SnapshotChain::head_watermark() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chain_.empty() ? 0 : chain_.back()->watermark;
}

size_t SnapshotChain::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return chain_.size();
}

size_t SnapshotChain::pinned_cuts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pins_.size();
}

uint64_t SnapshotChain::gc_collected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return gc_collected_;
}

void SnapshotChain::Unpin(const SnapshotCut* cut) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = std::find_if(pins_.begin(), pins_.end(),
                         [&](const auto& p) { return p.first == cut->version; });
  GPMV_DCHECK(it != pins_.end() && it->second > 0);
  if (it != pins_.end() && --it->second == 0) {
    pins_.erase(it);
    CollectLocked();
  }
}

void SnapshotChain::CollectLocked() {
  // Keep the head and the newest `retain` historical cuts unconditionally;
  // older cuts survive only while pinned.
  if (chain_.size() <= opts_.retain + 1) return;
  const size_t keep_from = chain_.size() - (opts_.retain + 1);
  std::deque<std::shared_ptr<const SnapshotCut>> kept;
  for (size_t i = 0; i < chain_.size(); ++i) {
    const auto& cut = chain_[i];
    if (i >= keep_from) {
      kept.push_back(cut);
      continue;
    }
    const bool pinned =
        std::any_of(pins_.begin(), pins_.end(),
                    [&](const auto& p) { return p.first == cut->version; });
    if (pinned) {
      kept.push_back(cut);
    } else {
      ++gc_collected_;
    }
  }
  chain_.swap(kept);
}

// ---------------------------------------------------------------------------
// SliceClock

void SliceClock::Reset(size_t num_slices) {
  std::lock_guard<std::mutex> lk(mu_);
  w_ = VersionVector(num_slices);
}

uint64_t SliceClock::Advance(size_t s, uint64_t ts) {
  std::lock_guard<std::mutex> lk(mu_);
  GPMV_DCHECK(s < w_.num_slices());
  if (s < w_.num_slices() && ts > w_.slice(s)) w_.set_slice(s, ts);
  return w_.MinSlice();
}

size_t SliceClock::num_slices() const {
  std::lock_guard<std::mutex> lk(mu_);
  return w_.num_slices();
}

VersionVector SliceClock::Current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return w_;
}

uint64_t SliceClock::Watermark() const {
  std::lock_guard<std::mutex> lk(mu_);
  return w_.MinSlice();
}

uint64_t SliceClock::MaxApplied() const {
  std::lock_guard<std::mutex> lk(mu_);
  return w_.MaxSlice();
}

}  // namespace gpmv
