/// \file pattern_builder.h
/// \brief Fluent construction of patterns by node name.
///
/// The paper's figures name pattern nodes like "DBA1", "PRG2" where the
/// label is the name minus the trailing index. The builder lets fixtures and
/// examples mirror the figures exactly:
///
///     Pattern qs = PatternBuilder()
///         .Node("PM")
///         .Node("DBA1", "DBA").Node("PRG1", "PRG")
///         .Edge("PM", "DBA1")
///         .Edge("DBA1", "PRG1", 2)      // bound 2
///         .Build();
///
/// Builder methods abort on misuse (duplicate names, unknown endpoints) —
/// they are developer-facing construction errors, not runtime data errors.

#ifndef GPMV_PATTERN_PATTERN_BUILDER_H_
#define GPMV_PATTERN_PATTERN_BUILDER_H_

#include <string>
#include <unordered_map>

#include "pattern/pattern.h"

namespace gpmv {

/// Builds a Pattern incrementally, addressing nodes by unique name.
class PatternBuilder {
 public:
  /// Adds a node whose label equals its name.
  PatternBuilder& Node(const std::string& name);

  /// Adds a node with an explicit label.
  PatternBuilder& Node(const std::string& name, const std::string& label);

  /// Adds a node with label and predicate.
  PatternBuilder& Node(const std::string& name, const std::string& label,
                       Predicate pred);

  /// Adds an edge between named nodes with the given bound
  /// (1 = simulation edge; kUnbounded = `*`).
  PatternBuilder& Edge(const std::string& src, const std::string& dst,
                       uint32_t bound = 1);

  /// Returns the built pattern; the builder must not be reused afterwards.
  Pattern Build();

 private:
  uint32_t Lookup(const std::string& name) const;

  Pattern pattern_;
  std::unordered_map<std::string, uint32_t> ids_;
};

}  // namespace gpmv

#endif  // GPMV_PATTERN_PATTERN_BUILDER_H_
