/// \file pattern.h
/// \brief Graph pattern queries (paper Sections II and VI).
///
/// One class covers both flavors of queries:
///  * a *pattern query* Qs = (Vp, Ep, fv): every edge has bound 1 and is
///    matched to a single data edge under graph simulation;
///  * a *bounded pattern query* Qb = (Vp, Ep, fv, fe): each edge carries a
///    bound fe(e) ∈ {1, 2, ..., *} and is matched to a nonempty path of
///    length ≤ fe(e) under bounded simulation (`kUnbounded` encodes `*`).
///
/// Pattern nodes carry a label (empty string = wildcard) plus an optional
/// Boolean predicate over node attributes, and an optional display name so
/// the paper's figures ("DBA1", "PRG2") can be reproduced verbatim.

#ifndef GPMV_PATTERN_PATTERN_H_
#define GPMV_PATTERN_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/predicate.h"
#include "graph/traversal.h"  // kUnbounded

namespace gpmv {

class GraphSnapshot;

/// A pattern node: search condition = label + predicate.
struct PatternNode {
  std::string label;   ///< required node label; "" matches any label
  Predicate pred;      ///< Boolean condition on node attributes
  std::string name;    ///< display name (defaults to label)

  /// Does data node `v` of `g` satisfy this node's search condition?
  /// `label_id` must be g.FindLabel(label) (or kInvalidLabel for wildcard),
  /// hoisted out so matchers resolve it once.
  bool MatchesData(const Graph& g, NodeId v, LabelId label_id) const;

  /// Same condition evaluated against a frozen snapshot.
  bool MatchesData(const GraphSnapshot& g, NodeId v, LabelId label_id) const;
};

/// A pattern edge with bound fe(e); bound 1 = plain simulation edge,
/// kUnbounded = the paper's `*`.
struct PatternEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  uint32_t bound = 1;
};

/// Distance value for weighted pattern distances (see WeightedDistances).
inline constexpr uint64_t kInfDistance = static_cast<uint64_t>(-1);

/// A (bounded) graph pattern query.
class Pattern {
 public:
  Pattern() = default;

  /// Adds a node; returns its index.
  uint32_t AddNode(const std::string& label, Predicate pred = {},
                   const std::string& name = "");

  /// Adds edge u -> v with bound `bound` (>= 1 or kUnbounded).
  Status AddEdge(uint32_t u, uint32_t v, uint32_t bound = 1);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// |Q| = number of nodes plus edges (Table I).
  size_t Size() const { return num_nodes() + num_edges(); }

  const PatternNode& node(uint32_t u) const { return nodes_[u]; }
  const PatternEdge& edge(uint32_t e) const { return edges_[e]; }
  const std::vector<PatternEdge>& edges() const { return edges_; }

  /// Indices of edges leaving / entering node u.
  const std::vector<uint32_t>& out_edges(uint32_t u) const { return out_[u]; }
  const std::vector<uint32_t>& in_edges(uint32_t u) const { return in_[u]; }

  /// True iff every edge has bound exactly 1 (a plain simulation pattern).
  bool IsSimulationPattern() const;

  /// True iff the pattern has no directed cycle.
  bool IsDag() const;

  /// True iff no node is isolated (paper assumes connected patterns; only
  /// isolation actually breaks the edge-coverage machinery).
  bool HasNoIsolatedNode() const;

  /// Node-level adjacency (parallel structure for SCC/rank computation).
  std::vector<std::vector<uint32_t>> Adjacency() const;

  /// All-pairs weighted shortest-path distances where each edge costs its
  /// bound (a `*` edge costs infinity). Used by bounded view matching:
  /// dist(u,u') is the tightest hop budget that traversing the pattern from
  /// u to u' certifies (Section VI-B). dist[u][u] = 0.
  std::vector<std::vector<uint64_t>> WeightedDistances() const;

  /// Longest finite weighted distance between any two connected nodes, used
  /// as the ball radius of strong simulation. Returns 0 for single nodes.
  uint64_t WeightedDiameter() const;

  /// Index of the first node whose name (or label, if unnamed) equals
  /// `name`; kInvalidNode if absent.
  uint32_t NodeByName(const std::string& name) const;

  /// Index of the edge from the node named `src` to the node named `dst`;
  /// kInvalidNode if absent.
  uint32_t EdgeByName(const std::string& src, const std::string& dst) const;

  /// Human-readable multi-line description.
  std::string ToString() const;

 private:
  std::vector<PatternNode> nodes_;
  std::vector<PatternEdge> edges_;
  std::vector<std::vector<uint32_t>> out_;  // node -> edge indices
  std::vector<std::vector<uint32_t>> in_;
};

}  // namespace gpmv

#endif  // GPMV_PATTERN_PATTERN_H_
