#include "pattern/pattern_builder.h"

#include <cstdio>
#include <cstdlib>

namespace gpmv {

namespace {
[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "PatternBuilder misuse: %s\n", msg.c_str());
  std::abort();
}
}  // namespace

PatternBuilder& PatternBuilder::Node(const std::string& name) {
  return Node(name, name, Predicate());
}

PatternBuilder& PatternBuilder::Node(const std::string& name,
                                     const std::string& label) {
  return Node(name, label, Predicate());
}

PatternBuilder& PatternBuilder::Node(const std::string& name,
                                     const std::string& label,
                                     Predicate pred) {
  if (ids_.count(name) != 0) Die("duplicate node name '" + name + "'");
  ids_[name] = pattern_.AddNode(label, std::move(pred), name);
  return *this;
}

PatternBuilder& PatternBuilder::Edge(const std::string& src,
                                     const std::string& dst, uint32_t bound) {
  Status st = pattern_.AddEdge(Lookup(src), Lookup(dst), bound);
  if (!st.ok()) Die(st.ToString());
  return *this;
}

Pattern PatternBuilder::Build() { return std::move(pattern_); }

uint32_t PatternBuilder::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) Die("unknown node name '" + name + "'");
  return it->second;
}

}  // namespace gpmv
