/// \file pattern_io.h
/// \brief Plain-text serialization of patterns and view sets.
///
/// Pattern format (one record per line; '#' starts a comment at line start
/// or after whitespace — a '#' inside a token belongs to the token, so
/// names like "L8#0" round-trip):
///
///     node <name> [label=<label>] [where <attr><op><value> [&& ...]]
///     edge <src> <dst> [bound=<k>|*]
///
/// Unlabeled nodes (wildcards) omit `label=`. Example:
///
///     # team pattern
///     node PM   label=PM
///     node DBA1 label=DBA where rank<=20000
///     edge PM DBA1
///     edge DBA1 PM bound=2
///
/// View-set format: patterns separated by `view <name>` headers.
/// Values parse as int64, then double, else string; quoted strings allowed.

#ifndef GPMV_PATTERN_PATTERN_IO_H_
#define GPMV_PATTERN_PATTERN_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "pattern/pattern.h"

namespace gpmv {

/// Serializes a pattern in the text format above.
std::string PatternToText(const Pattern& p);

/// Parses a pattern from the text format above.
Result<Pattern> PatternFromText(const std::string& text);

/// File helpers.
Status WritePatternFile(const Pattern& p, const std::string& path);
Result<Pattern> ReadPatternFile(const std::string& path);

}  // namespace gpmv

#endif  // GPMV_PATTERN_PATTERN_IO_H_
