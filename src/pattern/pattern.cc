#include "pattern/pattern.h"

#include <algorithm>

#include "graph/scc.h"
#include "graph/snapshot.h"

namespace gpmv {

bool PatternNode::MatchesData(const Graph& g, NodeId v,
                              LabelId label_id) const {
  if (!label.empty()) {
    if (label_id == kInvalidLabel) return false;  // label unknown to graph
    if (!g.HasLabel(v, label_id)) return false;
  }
  if (!pred.IsTrivial() && !pred.Eval(g.attrs(v))) return false;
  return true;
}

bool PatternNode::MatchesData(const GraphSnapshot& g, NodeId v,
                              LabelId label_id) const {
  if (!label.empty()) {
    if (label_id == kInvalidLabel) return false;  // label unknown to graph
    if (!g.HasLabel(v, label_id)) return false;
  }
  if (!pred.IsTrivial() && !pred.Eval(g.attrs(v))) return false;
  return true;
}

uint32_t Pattern::AddNode(const std::string& label, Predicate pred,
                          const std::string& name) {
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(
      PatternNode{label, std::move(pred), name.empty() ? label : name});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

Status Pattern::AddEdge(uint32_t u, uint32_t v, uint32_t bound) {
  if (u >= nodes_.size() || v >= nodes_.size()) {
    return Status::InvalidArgument("pattern edge endpoint out of range");
  }
  if (bound == 0) {
    return Status::InvalidArgument("pattern edge bound must be >= 1 or *");
  }
  for (uint32_t e : out_[u]) {
    if (edges_[e].dst == v) {
      return Status::AlreadyExists("duplicate pattern edge");
    }
  }
  uint32_t id = static_cast<uint32_t>(edges_.size());
  edges_.push_back(PatternEdge{u, v, bound});
  out_[u].push_back(id);
  in_[v].push_back(id);
  return Status::OK();
}

bool Pattern::IsSimulationPattern() const {
  return std::all_of(edges_.begin(), edges_.end(),
                     [](const PatternEdge& e) { return e.bound == 1; });
}

bool Pattern::IsDag() const {
  SccResult scc = ComputeScc(Adjacency());
  for (uint32_t size : scc.component_size) {
    if (size > 1) return false;
  }
  // Single-node SCCs may still carry self loops.
  for (const PatternEdge& e : edges_) {
    if (e.src == e.dst) return false;
  }
  return true;
}

bool Pattern::HasNoIsolatedNode() const {
  for (uint32_t u = 0; u < nodes_.size(); ++u) {
    if (out_[u].empty() && in_[u].empty()) return false;
  }
  return !nodes_.empty();
}

std::vector<std::vector<uint32_t>> Pattern::Adjacency() const {
  std::vector<std::vector<uint32_t>> adj(nodes_.size());
  for (const PatternEdge& e : edges_) adj[e.src].push_back(e.dst);
  return adj;
}

std::vector<std::vector<uint64_t>> Pattern::WeightedDistances() const {
  const size_t n = nodes_.size();
  std::vector<std::vector<uint64_t>> dist(
      n, std::vector<uint64_t>(n, kInfDistance));
  for (size_t u = 0; u < n; ++u) dist[u][u] = 0;
  for (const PatternEdge& e : edges_) {
    uint64_t w = (e.bound == kUnbounded) ? kInfDistance : e.bound;
    if (w < dist[e.src][e.dst]) dist[e.src][e.dst] = w;
  }
  // Floyd-Warshall; patterns are tiny (tens of nodes).
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInfDistance) continue;
      for (size_t j = 0; j < n; ++j) {
        if (dist[k][j] == kInfDistance) continue;
        uint64_t via = dist[i][k] + dist[k][j];
        if (via < dist[i][j]) dist[i][j] = via;
      }
    }
  }
  return dist;
}

uint64_t Pattern::WeightedDiameter() const {
  uint64_t diameter = 0;
  for (const auto& row : WeightedDistances()) {
    for (uint64_t d : row) {
      if (d != kInfDistance) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

uint32_t Pattern::NodeByName(const std::string& name) const {
  for (uint32_t u = 0; u < nodes_.size(); ++u) {
    if (nodes_[u].name == name || (nodes_[u].name.empty() && nodes_[u].label == name)) {
      return u;
    }
  }
  return kInvalidNode;
}

uint32_t Pattern::EdgeByName(const std::string& src,
                             const std::string& dst) const {
  uint32_t u = NodeByName(src);
  uint32_t v = NodeByName(dst);
  if (u == kInvalidNode || v == kInvalidNode) return kInvalidNode;
  for (uint32_t e : out_[u]) {
    if (edges_[e].dst == v) return e;
  }
  return kInvalidNode;
}

std::string Pattern::ToString() const {
  std::string out = "pattern(" + std::to_string(num_nodes()) + " nodes, " +
                    std::to_string(num_edges()) + " edges)\n";
  for (uint32_t u = 0; u < nodes_.size(); ++u) {
    out += "  [" + std::to_string(u) + "] " + nodes_[u].name;
    if (nodes_[u].label != nodes_[u].name) out += ":" + nodes_[u].label;
    if (!nodes_[u].pred.IsTrivial()) out += " if " + nodes_[u].pred.ToString();
    out += "\n";
  }
  for (const PatternEdge& e : edges_) {
    out += "  " + nodes_[e.src].name + " -> " + nodes_[e.dst].name;
    if (e.bound == kUnbounded) {
      out += " (*)";
    } else if (e.bound != 1) {
      out += " (<=" + std::to_string(e.bound) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace gpmv
