#include "pattern/pattern_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace gpmv {

namespace {

std::string EncodeValue(const AttrValue& v) {
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  if (v.is_int()) return std::to_string(v.as_int());
  std::ostringstream os;
  os << v.as_double();
  std::string s = os.str();
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) {
    s += ".0";
  }
  return s;
}

AttrValue DecodeValue(const std::string& token) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    return AttrValue(token.substr(1, token.size() - 2));
  }
  errno = 0;
  char* end = nullptr;
  long long iv = std::strtoll(token.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0' && !token.empty()) {
    return AttrValue(static_cast<int64_t>(iv));
  }
  errno = 0;
  double dv = std::strtod(token.c_str(), &end);
  if (errno == 0 && end != nullptr && *end == '\0' && !token.empty()) {
    return AttrValue(dv);
  }
  return AttrValue(token);
}

struct OpToken {
  const char* text;
  CmpOp op;
};
// Two-character operators must be tried first.
constexpr OpToken kOps[] = {{"<=", CmpOp::kLe}, {">=", CmpOp::kGe},
                            {"==", CmpOp::kEq}, {"!=", CmpOp::kNe},
                            {"<", CmpOp::kLt},  {">", CmpOp::kGt}};

Status ParseAtom(const std::string& atom, Predicate* pred) {
  for (const OpToken& op : kOps) {
    size_t pos = atom.find(op.text);
    if (pos == std::string::npos || pos == 0) continue;
    std::string attr = atom.substr(0, pos);
    std::string value = atom.substr(pos + std::strlen(op.text));
    if (value.empty()) break;
    pred->Add(attr, op.op, DecodeValue(value));
    return Status::OK();
  }
  return Status::Corruption("cannot parse condition '" + atom + "'");
}

Status ParseWhere(const std::string& clause, Predicate* pred) {
  size_t start = 0;
  while (start < clause.size()) {
    size_t amp = clause.find("&&", start);
    std::string atom = clause.substr(
        start, amp == std::string::npos ? std::string::npos : amp - start);
    // Trim whitespace.
    size_t b = atom.find_first_not_of(" \t");
    size_t e = atom.find_last_not_of(" \t");
    if (b == std::string::npos) {
      return Status::Corruption("empty condition in where clause");
    }
    GPMV_RETURN_NOT_OK(ParseAtom(atom.substr(b, e - b + 1), pred));
    if (amp == std::string::npos) break;
    start = amp + 2;
  }
  return Status::OK();
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

std::string PatternToText(const Pattern& p) {
  std::ostringstream os;
  os << "# gpmv pattern: " << p.num_nodes() << " nodes, " << p.num_edges()
     << " edges\n";
  for (uint32_t u = 0; u < p.num_nodes(); ++u) {
    const PatternNode& n = p.node(u);
    os << "node " << n.name;
    if (!n.label.empty()) os << " label=" << n.label;
    if (!n.pred.IsTrivial()) {
      os << " where ";
      const auto& atoms = n.pred.atoms();
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (i) os << " && ";
        os << atoms[i].attr << CmpOpName(atoms[i].op)
           << EncodeValue(atoms[i].value);
      }
    }
    os << '\n';
  }
  for (const PatternEdge& e : p.edges()) {
    os << "edge " << p.node(e.src).name << ' ' << p.node(e.dst).name;
    if (e.bound == kUnbounded) {
      os << " bound=*";
    } else if (e.bound != 1) {
      os << " bound=" << e.bound;
    }
    os << '\n';
  }
  return os.str();
}

Result<Pattern> PatternFromText(const std::string& text) {
  Pattern p;
  std::unordered_map<std::string, uint32_t> ids;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto fail = [&](const std::string& msg) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " + msg);
    };
    // A '#' opens a comment only at line start or after whitespace: node
    // names may legitimately contain '#' (the workload generator emits
    // "L8#0"), and truncating mid-token silently corrupted every
    // PatternToText round trip of such a pattern.
    for (size_t hash = line.find('#'); hash != std::string::npos;
         hash = line.find('#', hash + 1)) {
      if (hash == 0 || line[hash - 1] == ' ' || line[hash - 1] == '\t') {
        line.resize(hash);
        break;
      }
    }
    std::vector<std::string> tok = SplitWs(line);
    if (tok.empty()) continue;

    if (tok[0] == "node") {
      if (tok.size() < 2) return fail("node needs a name");
      const std::string& name = tok[1];
      if (ids.count(name) != 0) return fail("duplicate node '" + name + "'");
      std::string label;
      size_t i = 2;
      if (i < tok.size() && tok[i].rfind("label=", 0) == 0) {
        label = tok[i].substr(6);
        ++i;
      }
      Predicate pred;
      if (i < tok.size()) {
        if (tok[i] != "where") return fail("expected 'where', got '" + tok[i] + "'");
        std::string clause;
        for (++i; i < tok.size(); ++i) {
          if (!clause.empty()) clause += ' ';
          clause += tok[i];
        }
        GPMV_RETURN_NOT_OK(ParseWhere(clause, &pred));
      }
      ids[name] = p.AddNode(label, std::move(pred), name);
    } else if (tok[0] == "edge") {
      if (tok.size() < 3) return fail("edge needs two endpoints");
      auto src = ids.find(tok[1]);
      auto dst = ids.find(tok[2]);
      if (src == ids.end()) return fail("unknown node '" + tok[1] + "'");
      if (dst == ids.end()) return fail("unknown node '" + tok[2] + "'");
      uint32_t bound = 1;
      if (tok.size() > 3) {
        if (tok[3].rfind("bound=", 0) != 0) {
          return fail("expected bound=..., got '" + tok[3] + "'");
        }
        std::string b = tok[3].substr(6);
        if (b == "*") {
          bound = kUnbounded;
        } else {
          char* end = nullptr;
          unsigned long k = std::strtoul(b.c_str(), &end, 10);
          if (*end != '\0' || k == 0) return fail("bad bound '" + b + "'");
          bound = static_cast<uint32_t>(k);
        }
      }
      Status st = p.AddEdge(src->second, dst->second, bound);
      if (!st.ok()) return fail(st.ToString());
    } else {
      return fail("unknown record '" + tok[0] + "'");
    }
  }
  return p;
}

Status WritePatternFile(const Pattern& p, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open " + path);
  f << PatternToText(p);
  if (!f.good()) return Status::IOError("write failed");
  return Status::OK();
}

Result<Pattern> ReadPatternFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return PatternFromText(buf.str());
}

}  // namespace gpmv
