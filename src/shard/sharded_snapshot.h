/// \file sharded_snapshot.h
/// \brief Per-shard CSR slices of a frozen `GraphSnapshot` — the scale-out
/// substrate of the query engine.
///
/// A `ShardedSnapshot` partitions the node set of one frozen graph version
/// into K shards (edge-cut, Galois-style: every node has exactly one owner)
/// and materializes one compact `ShardSlice` per shard:
///
///  * the *full* out/in CSR rows of every owned node (neighbor ids stay
///    global), so a shard-local fixpoint can count supporters among all
///    neighbors of its nodes — and compute, at the owner, exactly which
///    decrements to route to which other shard (shard_sim.h) — without
///    touching the parent arrays;
///  * a *boundary replica table*: the sorted set of non-owned nodes the
///    owned rows reference — the shard's cross-coupling surface. Its size
///    bounds the fixpoint's cross-shard message volume, the bench and CLI
///    report it as the partitioning-quality metric, and it is why an edge
///    batch invalidates exactly the slices owning an endpoint;
///  * the partition parameters, so ownership tests are O(1) (hash) or
///    O(log K) (range).
///
/// Consistency contract: a `ShardedSnapshot` is immutable and stamped with
/// its parent snapshot's `version()` — the slices of one `ShardedSnapshot`
/// always describe one frozen graph version, so a query that fans out
/// across shards reads one consistent graph no matter how many update
/// batches land meanwhile. After an edge batch, `Rebuild` re-slices only
/// the shards owning a touched endpoint (every copy of an edge (u, v)
/// lives in the slices of owner(u) and owner(v)) and shares the remaining
/// slices with the previous `ShardedSnapshot` — the sharded analogue of
/// `GraphSnapshot::Rebuild`'s dirty-row re-freeze. Each slice additionally
/// carries the parent version it was (re)built against (`slice_version`),
/// so the assembly is itself a version vector: reused slices keep their
/// older build stamp while the consistency token (`version()`) still names
/// the one frozen parent every slice describes — a reused slice's rows are
/// bit-identical under both versions, which is exactly what makes the
/// sharing sound, and what the parity suite checks against the MVCC chain
/// head (graph/mvcc.h).
///
/// Partitioning: `kRange` cuts node ids into K contiguous intervals
/// balanced by degree sum (good locality, contiguous candidate-rank
/// ranges); `kHash` assigns owner(v) = v mod K (robust to id-correlated
/// hot spots). Both are stable across `Rebuild`, which is what makes slice
/// reuse and the engine's slice-granular invalidation sound.

#ifndef GPMV_SHARD_SHARDED_SNAPSHOT_H_
#define GPMV_SHARD_SHARDED_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/mvcc.h"  // VersionVector
#include "graph/snapshot.h"
#include "simulation/match_result.h"  // NodePair

namespace gpmv {

class ThreadPool;

/// Partitioning knobs for `ShardedSnapshot::Build`.
struct ShardingOptions {
  /// Number of shards K; 0 and 1 both mean "one shard" (useful as the
  /// fan-out baseline — a single slice replicating the whole graph).
  uint32_t num_shards = 1;
  enum class Partition {
    kRange,  ///< contiguous node-id intervals balanced by degree sum
    kHash,   ///< owner(v) = v mod K
  };
  Partition partition = Partition::kRange;
};

/// One shard's immutable CSR slice; see file comment. Obtained from
/// `ShardedSnapshot::slice`; neighbor ids are global `NodeId`s.
class ShardSlice {
 public:
  static constexpr uint32_t kNoReplica = static_cast<uint32_t>(-1);

  /// Builds shard `shard`'s slice of `parent` under `opts` with the given
  /// range boundaries (ignored for kHash). Exposed so the engine can
  /// rebuild affected slices in parallel; prefer ShardedSnapshot::Build.
  static std::shared_ptr<const ShardSlice> Build(
      const GraphSnapshot& parent, const ShardingOptions& opts,
      const std::vector<NodeId>& range_bounds, uint32_t shard);

  uint32_t shard() const { return shard_; }

  /// Parent snapshot version this slice was (re)built against. A slice
  /// reused across `ShardedSnapshot::Rebuild` keeps its original stamp —
  /// valid because reuse implies its owned rows are unchanged between the
  /// two versions.
  uint64_t built_version() const { return built_version_; }

  /// Owned nodes, exposed as local indices 0..num_owned()-1 in ascending
  /// global node id order.
  uint32_t num_owned() const { return num_owned_; }
  NodeId owned_node(uint32_t local) const {
    return partition_ == ShardingOptions::Partition::kRange
               ? node_begin_ + local
               : shard_ + local * num_shards_;
  }
  bool Owns(NodeId v) const {
    return partition_ == ShardingOptions::Partition::kRange
               ? (v >= node_begin_ && v < node_end_)
               : (v % num_shards_ == shard_);
  }
  /// Local index of an owned node; precondition: Owns(v).
  uint32_t OwnedIndex(NodeId v) const {
    return partition_ == ShardingOptions::Partition::kRange
               ? v - node_begin_
               : v / num_shards_;
  }

  /// Full adjacency rows of an owned node (all neighbors, global ids,
  /// ascending). Precondition: Owns(v).
  NodeSpan out_neighbors(NodeId v) const {
    const uint32_t i = OwnedIndex(v);
    return {out_targets_.data() + out_offsets_[i],
            out_targets_.data() + out_offsets_[i + 1]};
  }
  NodeSpan in_neighbors(NodeId v) const {
    const uint32_t i = OwnedIndex(v);
    return {in_sources_.data() + in_offsets_[i],
            in_sources_.data() + in_offsets_[i + 1]};
  }

  /// Boundary replica table: non-owned nodes referenced by owned rows,
  /// sorted ascending by global id.
  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  NodeId replica(uint32_t i) const { return replicas_[i]; }
  /// Index of `v` in the replica table; kNoReplica when `v` is not
  /// referenced by this shard. O(log replicas).
  uint32_t FindReplica(NodeId v) const;

  /// Edge slots stored in the owned rows (each owned-incident edge counted
  /// once per direction it is stored in).
  size_t num_local_edges() const {
    return out_targets_.size() + in_sources_.size();
  }
  /// Rough memory footprint of the slice arrays in bytes.
  size_t ApproxBytes() const;

 private:
  uint32_t shard_ = 0;
  uint64_t built_version_ = 0;
  uint32_t num_shards_ = 1;
  ShardingOptions::Partition partition_ = ShardingOptions::Partition::kRange;
  NodeId node_begin_ = 0;  ///< kRange only
  NodeId node_end_ = 0;    ///< kRange only
  uint32_t num_owned_ = 0;

  std::vector<uint32_t> out_offsets_;  ///< num_owned + 1
  std::vector<NodeId> out_targets_;
  std::vector<uint32_t> in_offsets_;
  std::vector<NodeId> in_sources_;

  std::vector<NodeId> replicas_;  ///< sorted ascending
};

/// See file comment.
class ShardedSnapshot {
 public:
  /// Slices `parent` into opts.num_shards shards. Slice construction fans
  /// out on `pool` when given (nullptr builds serially).
  static std::shared_ptr<const ShardedSnapshot> Build(
      std::shared_ptr<const GraphSnapshot> parent, ShardingOptions opts,
      ThreadPool* pool = nullptr);

  /// Incremental re-slice after an edge batch: rebuilds only the shards in
  /// `affected` (ascending, deduplicated — see AffectedShards) against the
  /// new `parent` and shares every other slice with `prev`. The partition
  /// (mode, K, range boundaries) is carried over unchanged so ownership is
  /// stable. Falls back to a full Build when the node set changed.
  static std::shared_ptr<const ShardedSnapshot> Rebuild(
      std::shared_ptr<const GraphSnapshot> parent, const ShardedSnapshot& prev,
      const std::vector<uint32_t>& affected, ThreadPool* pool = nullptr);

  /// The consistency token: the parent snapshot's version. Every slice
  /// describes exactly this frozen graph state.
  uint64_t version() const { return parent_->version(); }
  const GraphSnapshot& parent() const { return *parent_; }
  const std::shared_ptr<const GraphSnapshot>& parent_ptr() const {
    return parent_;
  }

  uint32_t num_shards() const {
    return static_cast<uint32_t>(slices_.size());
  }
  const ShardSlice& slice(uint32_t s) const { return *slices_[s]; }
  /// Build stamp of slice `s` (<= version(); strictly older for slices
  /// Rebuild shared from a previous assembly).
  uint64_t slice_version(uint32_t s) const {
    return slices_[s]->built_version();
  }
  /// All build stamps as a per-slice version vector; the parity suite
  /// checks max(slice_versions) == version() against the MVCC chain head.
  VersionVector slice_versions() const;
  const std::shared_ptr<const ShardSlice>& slice_ptr(uint32_t s) const {
    return slices_[s];
  }

  /// Owning shard of `v`: O(1) for kHash, O(log K) for kRange.
  uint32_t owner(NodeId v) const;

  /// Shards owning at least one endpoint of `touched` (ascending, unique) —
  /// exactly the slices an edge batch over those endpoint pairs invalidates.
  /// Slice contents depend only on the adjacency rows of owned nodes, so an
  /// update batch's *affected area* (the nodes whose rows changed — for the
  /// delta-insert maintenance path, the touched edge endpoints; membership
  /// changes of cached view relations never live in slices) intersects a
  /// slice iff its owner appears here. The node-list overload is the raw
  /// form for callers that already flattened their endpoints.
  std::vector<uint32_t> AffectedShards(
      const std::vector<NodePair>& touched) const;
  std::vector<uint32_t> AffectedShards(const std::vector<NodeId>& nodes) const;

  const ShardingOptions& options() const { return opts_; }
  size_t total_replicas() const;
  size_t ApproxBytes() const;

 private:
  std::shared_ptr<const GraphSnapshot> parent_;
  ShardingOptions opts_;
  /// kRange: K+1 ascending cut points (bounds_[s] .. bounds_[s+1] is shard
  /// s's interval). Empty for kHash.
  std::vector<NodeId> bounds_;
  std::vector<std::shared_ptr<const ShardSlice>> slices_;
};

}  // namespace gpmv

#endif  // GPMV_SHARD_SHARDED_SNAPSHOT_H_
