#include "shard/shard_sim.h"

#include <deque>
#include <functional>
#include <utility>

#include "common/bitset.h"
#include "common/exec_context.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "engine/executor.h"     // ParallelInvoke
#include "simulation/bounded.h"  // ComputeCandidateSet
#include "simulation/refinement.h"

namespace gpmv {

namespace {

/// One owned-candidate deletion, queued for local cascading.
struct Removal {
  uint32_t u = 0;     ///< pattern node
  uint32_t rank = 0;  ///< global candidate rank in cand(u)
};

/// One targeted support decrement routed to the owner of the affected
/// candidate at a round barrier. The *origin* shard computes it while
/// walking the removed node's full rows (the same walk that decrements its
/// own counters), so the receiver applies it in O(1) — no replica lookup,
/// no re-walk, and shards never scan messages that do not concern them.
struct Decrement {
  uint32_t er = 0;    ///< pattern edge << 1 | (1 = parent/pred condition)
  uint32_t rank = 0;  ///< global rank of the candidate losing a supporter
};

/// Per-shard private fixpoint state. Counters and bitsets span the *global*
/// rank domain (only owned entries are initialized/meaningful; `owned_mask`
/// guards every local decrement), which keeps indexing uniform across range
/// and hash partitioning at the cost of K× word storage — fine for the rank
/// counts real queries produce.
struct ShardState {
  const ShardSlice* slice = nullptr;
  std::vector<std::vector<uint32_t>> owned_ranks;  ///< u -> ascending ranks
  std::vector<DenseBitset> owned_mask;             ///< u -> rank owned here
  std::vector<DenseBitset> alive;  ///< u -> owned rank still in sim
  std::vector<std::vector<uint32_t>> succ;  ///< e -> src-rank support
  std::vector<std::vector<uint32_t>> pred;  ///< e -> dst-rank support (dual)
  std::deque<Removal> worklist;             ///< local cascade queue
  /// Outgoing decrements per destination shard, flushed at the barrier.
  std::vector<std::vector<Decrement>> outbox;
  /// Owned removals this phase, per pattern node — the barrier's
  /// global-emptiness accounting.
  std::vector<uint32_t> phase_removed;
};

class ShardSim {
 public:
  ShardSim(const Pattern& q, const ShardedSnapshot& ss,
           const CandidateSpace& space, bool dual)
      : q_(q), ss_(ss), space_(space), dual_(dual) {}

  /// Runs the sharded fixpoint. Returns false when some pattern node ran
  /// out of candidates (all-empty result); on true, the owner-merged
  /// `final_alive()` bitsets hold the exact maximum relation.
  bool Run(ThreadPool* pool, ShardSimStats* stats);

  /// Per-shard edge-match extraction into `pairs[s][e]` (owned sources
  /// only); caller stitches shards together.
  void ExtractShardMatches(
      ThreadPool* pool,
      std::vector<std::vector<std::vector<NodePair>>>* pairs) const;

  /// Sorted sim sets from the owner-merged relation.
  void CollectSim(std::vector<std::vector<NodeId>>* sim) const;

  /// Why Run returned false: OK for the ordinary all-empty result, or the
  /// abort that fired at a merge-round barrier (deadline checkpoint or the
  /// `shard.merge_round` fault point). Callers must propagate a non-OK
  /// status instead of reporting an empty relation.
  const Status& run_status() const { return run_status_; }

 private:
  void InitShard(uint32_t s);
  void ProcessInbox(uint32_t s, const std::vector<Decrement>& inbox);
  void RemoveLocal(ShardState& st, uint32_t u, uint32_t rank);
  void Propagate(ShardState& st, uint32_t u2, NodeId w);
  void Drain(ShardState& st);
  /// Owner-authoritative merge of every shard's owned alive bits.
  void BuildFinalAlive();

  const Pattern& q_;
  const ShardedSnapshot& ss_;
  const CandidateSpace& space_;
  const bool dual_;
  std::vector<ShardState> states_;
  std::vector<DenseBitset> final_alive_;  ///< u -> rank, after Run
  Status run_status_;
};

/// Barrier-point abort check shared by the sharded engines: the round
/// barriers are the natural cooperative-cancellation checkpoints (the
/// parallel phase between two barriers is bounded work), and the
/// `shard.merge_round` fault point models a round that dies mid-exchange.
/// The caller abandons the partial fixpoint — per-shard state is private
/// and dropped wholesale, so an aborted round can never leak into results.
Status MergeRoundAbortCheck() {
  GPMV_RETURN_NOT_OK(exec::CheckDeadline());
  if (GPMV_FAULT_POINT(exec::CurrentFault(), "shard.merge_round")) {
    return FaultInjector::InjectedFault("shard.merge_round");
  }
  return Status::OK();
}

void ShardSim::RemoveLocal(ShardState& st, uint32_t u, uint32_t rank) {
  if (!st.alive[u].test(rank)) return;
  st.alive[u].reset(rank);
  st.worklist.push_back(Removal{u, rank});
  ++st.phase_removed[u];
}

void ShardSim::Propagate(ShardState& st, uint32_t u2, NodeId w) {
  // Owner-side propagation: walk w's full slice rows once; owned
  // candidates' counters decrement in place (cascading locally), foreign
  // candidates' decrements are routed to their owner for the next round.
  const NodeSpan sources = st.slice->in_neighbors(w);
  // Child condition: every candidate predecessor of w loses one supporting
  // successor on each pattern edge into u2.
  for (uint32_t e : q_.in_edges(u2)) {
    const uint32_t u = q_.edge(e).src;
    std::vector<uint32_t>& sc = st.succ[e];
    for (NodeId v : sources) {
      const uint32_t r = space_.rank(u, v);
      if (r == CandidateSpace::kNoRank) continue;
      if (st.owned_mask[u].test(r)) {
        if (--sc[r] == 0 && st.alive[u].test(r)) RemoveLocal(st, u, r);
      } else {
        st.outbox[ss_.owner(v)].push_back(Decrement{e << 1, r});
      }
    }
  }
  if (!dual_) return;
  // Parent condition: every candidate successor of w loses one supporting
  // predecessor on each pattern edge out of u2.
  const NodeSpan targets = st.slice->out_neighbors(w);
  for (uint32_t e : q_.out_edges(u2)) {
    const uint32_t u3 = q_.edge(e).dst;
    std::vector<uint32_t>& pc = st.pred[e];
    for (NodeId x : targets) {
      const uint32_t r3 = space_.rank(u3, x);
      if (r3 == CandidateSpace::kNoRank) continue;
      if (st.owned_mask[u3].test(r3)) {
        if (--pc[r3] == 0 && st.alive[u3].test(r3)) RemoveLocal(st, u3, r3);
      } else {
        st.outbox[ss_.owner(x)].push_back(Decrement{(e << 1) | 1u, r3});
      }
    }
  }
}

void ShardSim::Drain(ShardState& st) {
  while (!st.worklist.empty()) {
    const Removal rm = st.worklist.front();
    st.worklist.pop_front();
    Propagate(st, rm.u, space_.node(rm.u, rm.rank));
  }
}

void ShardSim::InitShard(uint32_t s) {
  ShardState& st = states_[s];
  st.slice = &ss_.slice(s);
  const size_t np = q_.num_nodes();
  const size_t ne = q_.num_edges();
  st.owned_ranks.resize(np);
  st.owned_mask.resize(np);
  st.alive.resize(np);
  st.phase_removed.assign(np, 0);
  st.outbox.resize(ss_.num_shards());
  for (uint32_t u = 0; u < np; ++u) {
    const uint32_t c = space_.size(u);
    st.alive[u].Reset(c, /*value=*/true);
    st.owned_mask[u].Reset(c);
    std::vector<uint32_t>& mine = st.owned_ranks[u];
    mine.reserve(c / ss_.num_shards() + 8);
    for (uint32_t r = 0; r < c; ++r) {
      if (st.slice->Owns(space_.node(u, r))) {
        mine.push_back(r);
        st.owned_mask[u].set(r);
      }
    }
  }
  // Initial support counters over owned candidates, from the slice's full
  // owned rows (neighbors of any ownership count — the conditions are
  // global, only the *state* is partitioned).
  st.succ.resize(ne);
  if (dual_) st.pred.resize(ne);
  for (uint32_t e = 0; e < ne; ++e) {
    const uint32_t u = q_.edge(e).src;
    const uint32_t u2 = q_.edge(e).dst;
    std::vector<uint32_t>& sc = st.succ[e];
    sc.assign(space_.size(u), 0);
    for (uint32_t r : st.owned_ranks[u]) {
      for (NodeId w : st.slice->out_neighbors(space_.node(u, r))) {
        if (space_.rank(u2, w) != CandidateSpace::kNoRank) ++sc[r];
      }
    }
    if (dual_) {
      std::vector<uint32_t>& pc = st.pred[e];
      pc.assign(space_.size(u2), 0);
      for (uint32_t r2 : st.owned_ranks[u2]) {
        for (NodeId v : st.slice->in_neighbors(space_.node(u2, r2))) {
          if (space_.rank(u, v) != CandidateSpace::kNoRank) ++pc[r2];
        }
      }
    }
  }
  // Queue initially violating owned candidates and cascade locally.
  for (uint32_t e = 0; e < ne; ++e) {
    const uint32_t u = q_.edge(e).src;
    const uint32_t u2 = q_.edge(e).dst;
    for (uint32_t r : st.owned_ranks[u]) {
      if (st.succ[e][r] == 0) RemoveLocal(st, u, r);
    }
    if (dual_) {
      for (uint32_t r2 : st.owned_ranks[u2]) {
        if (st.pred[e][r2] == 0) RemoveLocal(st, u2, r2);
      }
    }
  }
  Drain(st);
}

void ShardSim::ProcessInbox(uint32_t s, const std::vector<Decrement>& inbox) {
  ShardState& st = states_[s];
  for (const Decrement& d : inbox) {
    const uint32_t e = d.er >> 1;
    const bool parent_cond = (d.er & 1u) != 0;
    const uint32_t u = parent_cond ? q_.edge(e).dst : q_.edge(e).src;
    std::vector<uint32_t>& c = parent_cond ? st.pred[e] : st.succ[e];
    if (--c[d.rank] == 0 && st.alive[u].test(d.rank)) {
      RemoveLocal(st, u, d.rank);
    }
  }
  Drain(st);
}

bool ShardSim::Run(ThreadPool* pool, ShardSimStats* stats) {
  const uint32_t k = ss_.num_shards();
  const size_t np = q_.num_nodes();
  states_.assign(k, ShardState{});
  if (stats != nullptr) stats->shards = k;

  // Remaining candidates per pattern node, settled at the barrier so an
  // emptied sim set short-circuits the remaining rounds.
  std::vector<size_t> global_alive(np);
  for (uint32_t u = 0; u < np; ++u) global_alive[u] = space_.size(u);

  // Per-shard wall times: distinct slots, so the parallel tasks never race.
  std::vector<double> shard_ms(k, 0.0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([this, s, &shard_ms] {
      Stopwatch sw;
      InitShard(s);
      shard_ms[s] = sw.ElapsedMillis();
    });
  }
  Stopwatch phase_sw;
  ParallelInvoke(pool, std::move(tasks));
  if (stats != nullptr) {
    ++stats->rounds;
    stats->round_ms.push_back(phase_sw.ElapsedMillis());
    stats->shard_ms = std::move(shard_ms);
  }

  std::vector<std::vector<Decrement>> inbox(k);
  for (;;) {
    // Each round barrier is a cancellation checkpoint: the deadline and the
    // `shard.merge_round` fault point are only consulted here, where no
    // shard task is in flight and the partial state can be dropped whole.
    run_status_ = MergeRoundAbortCheck();
    if (!run_status_.ok()) return false;
    // Barrier: settle the emptiness accounting and route every shard's
    // outgoing decrements to their destination inboxes.
    for (uint32_t s = 0; s < k; ++s) {
      std::vector<uint32_t>& removed = states_[s].phase_removed;
      for (uint32_t u = 0; u < np; ++u) {
        if (removed[u] == 0) continue;
        if (stats != nullptr) stats->removals += removed[u];
        if (global_alive[u] <= removed[u]) return false;  // all-empty
        global_alive[u] -= removed[u];
        removed[u] = 0;
      }
    }
    size_t routed = 0;
    for (uint32_t t = 0; t < k; ++t) {
      inbox[t].clear();
      for (uint32_t s = 0; s < k; ++s) {
        std::vector<Decrement>& out = states_[s].outbox[t];
        inbox[t].insert(inbox[t].end(), out.begin(), out.end());
        out.clear();
      }
      routed += inbox[t].size();
    }
    if (routed == 0) {
      BuildFinalAlive();
      return true;
    }
    if (stats != nullptr) stats->messages += routed;
    std::vector<std::function<void()>> round;
    round.reserve(k);
    for (uint32_t s = 0; s < k; ++s) {
      round.push_back([this, s, &inbox] { ProcessInbox(s, inbox[s]); });
    }
    phase_sw.Restart();
    ParallelInvoke(pool, std::move(round));
    if (stats != nullptr) {
      ++stats->rounds;
      stats->round_ms.push_back(phase_sw.ElapsedMillis());
    }
  }
}

void ShardSim::BuildFinalAlive() {
  const size_t np = q_.num_nodes();
  final_alive_.resize(np);
  for (uint32_t u = 0; u < np; ++u) {
    final_alive_[u].Reset(space_.size(u));
    for (const ShardState& st : states_) {
      for (uint32_t r : st.owned_ranks[u]) {
        if (st.alive[u].test(r)) final_alive_[u].set(r);
      }
    }
  }
}

void ShardSim::CollectSim(std::vector<std::vector<NodeId>>* sim) const {
  const size_t np = q_.num_nodes();
  sim->assign(np, {});
  for (uint32_t u = 0; u < np; ++u) {
    std::vector<NodeId>& su = (*sim)[u];
    for (uint32_t r = 0; r < space_.size(u); ++r) {
      if (final_alive_[u].test(r)) su.push_back(space_.node(u, r));
    }
  }
}

void ShardSim::ExtractShardMatches(
    ThreadPool* pool,
    std::vector<std::vector<std::vector<NodePair>>>* pairs) const {
  const uint32_t k = ss_.num_shards();
  const size_t ne = q_.num_edges();
  pairs->assign(k, std::vector<std::vector<NodePair>>(ne));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([this, s, pairs] {
      const ShardState& st = states_[s];
      for (uint32_t e = 0; e < q_.num_edges(); ++e) {
        const uint32_t src = q_.edge(e).src;
        const uint32_t dst = q_.edge(e).dst;
        std::vector<NodePair>& out = (*pairs)[s][e];
        for (uint32_t r : st.owned_ranks[src]) {
          if (!final_alive_[src].test(r)) continue;
          const NodeId v = space_.node(src, r);
          for (NodeId w : st.slice->out_neighbors(v)) {
            const uint32_t r2 = space_.rank(dst, w);
            if (r2 != CandidateSpace::kNoRank && final_alive_[dst].test(r2)) {
              out.emplace_back(v, w);
            }
          }
        }
      }
    });
  }
  ParallelInvoke(pool, std::move(tasks));
}

/// BuildCandidateSpace with the per-pattern-node work (label scan,
/// predicate checks, and the |V|-sized dense-inverse fill) fanned out on
/// `pool` — the construction is the serial prologue of every sharded
/// query, so it shards by pattern node the way the fixpoint shards by data
/// node. Produces exactly the space BuildCandidateSpace builds.
Status BuildCandidateSpaceFanOut(const Pattern& q, const GraphSnapshot& g,
                                 const std::vector<std::vector<NodeId>>* seed,
                                 ThreadPool* pool, CandidateSpace* space) {
  const size_t np = q.num_nodes();
  if (np == 0) return Status::InvalidArgument("empty pattern");
  if (seed != nullptr && seed->size() != np) {
    return Status::InvalidArgument("seed relation shape mismatch");
  }
  space->ResetForConcurrentAssign(np, g.num_nodes());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(np);
  for (uint32_t u = 0; u < np; ++u) {
    tasks.push_back([&, u] {
      std::vector<NodeId> cu;
      if (seed != nullptr) {
        // External seeds: sort defensively and deduplicate, as Assign does.
        cu = (*seed)[u];
        std::sort(cu.begin(), cu.end());
        cu.erase(std::unique(cu.begin(), cu.end()), cu.end());
      } else {
        // Candidate sets come out ascending and unique; rank = position.
        ComputeCandidateSet(q, u, g, &cu);
      }
      space->AssignPrerankedConcurrent(u, std::move(cu));
    });
  }
  ParallelInvoke(pool, std::move(tasks));
  space->FinishConcurrentAssign();
  return Status::OK();
}

}  // namespace

Status ShardedRefineSimulation(const Pattern& q, const ShardedSnapshot& ss,
                               const CandidateSpace& space, bool dual,
                               ThreadPool* pool,
                               std::vector<std::vector<NodeId>>* sim,
                               ShardSimStats* stats) {
  const size_t np = q.num_nodes();
  if (np == 0) return Status::InvalidArgument("empty pattern");
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument(
        "sharded refinement requires unit edge bounds");
  }
  sim->assign(np, {});
  for (uint32_t u = 0; u < np; ++u) {
    if (space.size(u) == 0) return Status::OK();  // all-empty result
  }
  ShardSim engine(q, ss, space, dual);
  if (!engine.Run(pool, stats)) {
    GPMV_RETURN_NOT_OK(engine.run_status());
    return Status::OK();  // ordinary all-empty result
  }
  engine.CollectSim(sim);
  return Status::OK();
}

Result<MatchResult> ShardedMatchSimulation(
    const Pattern& q, const ShardedSnapshot& ss, ThreadPool* pool, bool dual,
    const std::vector<std::vector<NodeId>>* seed, ShardSimStats* stats) {
  if (q.num_nodes() == 0) return Status::InvalidArgument("empty pattern");
  if (!q.IsSimulationPattern()) {
    return Status::InvalidArgument(
        "sharded evaluation requires unit edge bounds");
  }
  CandidateSpace space;
  GPMV_RETURN_NOT_OK(
      BuildCandidateSpaceFanOut(q, ss.parent(), seed, pool, &space));
  MatchResult result = MatchResult::Empty(q);
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    if (space.size(u) == 0) return result;
  }
  ShardSim engine(q, ss, space, dual);
  if (!engine.Run(pool, stats)) {
    GPMV_RETURN_NOT_OK(engine.run_status());
    return result;  // ordinary all-empty result
  }

  // Stitch per-shard owned-source matches; shards partition the sources,
  // so concatenation is duplicate-free and Normalize() canonicalizes the
  // order regardless of partitioning mode.
  std::vector<std::vector<std::vector<NodePair>>> pairs;
  engine.ExtractShardMatches(pool, &pairs);
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    std::vector<NodePair>* se = result.mutable_edge_matches(e);
    size_t total = 0;
    for (uint32_t s = 0; s < ss.num_shards(); ++s) total += pairs[s][e].size();
    se->reserve(total);
    for (uint32_t s = 0; s < ss.num_shards(); ++s) {
      se->insert(se->end(), pairs[s][e].begin(), pairs[s][e].end());
    }
    // The maximum relation guarantees non-empty match sets, but mirror the
    // unsharded extraction's guard.
    if (se->empty()) return MatchResult::Empty(q);
    // Shards partition the sources, so the stitched set is duplicate-free;
    // range partitioning even concatenates in ascending order (each shard
    // emits ascending sources over sorted CSR rows), making this sort a
    // no-op check. Together this equals Normalize() on the same set.
    if (!std::is_sorted(se->begin(), se->end())) {
      std::sort(se->begin(), se->end());
    }
  }
  result.set_matched(true);
  result.DeriveNodeMatches(q);
  return result;
}

namespace {

/// BFS hop budget certifying a nonempty path of length <= bound via an
/// out-neighbor (mirrors bounded.cc).
uint32_t BoundedInnerBound(uint32_t bound) {
  return bound == kUnbounded ? kUnbounded : bound - 1;
}

/// Level-synchronized multi-source BFS over a ShardedSnapshot — the
/// frontier hand-off that carries distance-bounded reachability across
/// edge-cut boundaries. Every distance label is written only by the node's
/// owner: during a level each shard expands the frontier nodes it owns
/// through its slice's full rows, labels owned discoveries in place, and
/// routes foreign discoveries to their owner's inbox; the level barrier
/// applies inbox arrivals serially (deduplicated against the labels), so
/// parallel phases never touch another shard's labels. The reached set and
/// distances equal an unsharded BfsScratch::Run over the parent snapshot
/// for any shard count/partitioning. Buffers are reused across Run calls.
class ShardedBoundedBfs {
 public:
  ShardedBoundedBfs(const ShardedSnapshot& ss, ThreadPool* pool)
      : ss_(ss),
        pool_(pool),
        dist_(ss.parent().num_nodes(), BfsScratch::kNotSeen),
        frontier_(ss.num_shards()),
        next_local_(ss.num_shards()),
        outbox_(static_cast<size_t>(ss.num_shards()) * ss.num_shards()) {}

  /// Multi-source BFS following `forward` (out-edges) or reverse (in-edges)
  /// direction, stopping at distance `bound` (kUnbounded = no limit).
  /// Counts parallel levels into stats->rounds and handed-off frontier
  /// entries into stats->frontier_msgs.
  void Run(const std::vector<NodeId>& sources, uint32_t bound, bool forward,
           ShardSimStats* stats) {
    const uint32_t k = ss_.num_shards();
    for (NodeId v : touched_) dist_[v] = BfsScratch::kNotSeen;
    touched_.clear();
    for (auto& f : frontier_) f.clear();
    for (NodeId v : sources) {
      if (dist_[v] != BfsScratch::kNotSeen) continue;
      dist_[v] = 0;
      touched_.push_back(v);
      frontier_[ss_.owner(v)].push_back(v);
    }
    size_t handed_off = 0;
    for (uint32_t level = 0; level < bound; ++level) {
      bool any = false;
      for (const auto& f : frontier_) any = any || !f.empty();
      if (!any) break;
      std::vector<std::function<void()>> tasks;
      tasks.reserve(k);
      for (uint32_t s = 0; s < k; ++s) {
        tasks.push_back([this, s, k, level, forward] {
          const ShardSlice& slice = ss_.slice(s);
          std::vector<NodeId>& next = next_local_[s];
          next.clear();
          for (NodeId v : frontier_[s]) {
            const NodeSpan nbrs =
                forward ? slice.out_neighbors(v) : slice.in_neighbors(v);
            for (NodeId w : nbrs) {
              const uint32_t o = ss_.owner(w);
              if (o == s) {
                if (dist_[w] == BfsScratch::kNotSeen) {
                  dist_[w] = level + 1;
                  next.push_back(w);
                }
              } else {
                outbox_[static_cast<size_t>(s) * k + o].push_back(w);
              }
            }
          }
        });
      }
      ParallelInvoke(pool_, std::move(tasks));
      if (stats != nullptr) ++stats->rounds;
      // Barrier: owned discoveries become the next frontier; routed
      // arrivals are applied serially by (conceptual) owner, deduplicated
      // against the labels they own.
      for (uint32_t t = 0; t < k; ++t) {
        frontier_[t].swap(next_local_[t]);
        touched_.insert(touched_.end(), frontier_[t].begin(),
                        frontier_[t].end());
        for (uint32_t s = 0; s < k; ++s) {
          std::vector<NodeId>& out = outbox_[static_cast<size_t>(s) * k + t];
          handed_off += out.size();
          for (NodeId w : out) {
            if (dist_[w] == BfsScratch::kNotSeen) {
              dist_[w] = level + 1;
              touched_.push_back(w);
              frontier_[t].push_back(w);
            }
          }
          out.clear();
        }
      }
    }
    if (stats != nullptr) stats->frontier_msgs += handed_off;
  }

  bool Reached(NodeId v) const { return dist_[v] != BfsScratch::kNotSeen; }

 private:
  const ShardedSnapshot& ss_;
  ThreadPool* pool_;
  std::vector<uint32_t> dist_;
  std::vector<NodeId> touched_;
  std::vector<std::vector<NodeId>> frontier_;    ///< per owner shard
  std::vector<std::vector<NodeId>> next_local_;  ///< per shard, owned finds
  std::vector<std::vector<NodeId>> outbox_;      ///< [origin * K + owner]
};

/// Sharded mirror of ComputeBoundedSimulationRelation: identical edge
/// order and filter predicate, with the reverse bounded BFS replaced by
/// the frontier hand-off and the per-candidate filter fanned out over
/// owning shards — the fixpoint (and therefore the relation) is
/// bit-identical to the unsharded computation.
Status ShardedComputeBoundedRelation(const Pattern& qb,
                                     const ShardedSnapshot& ss,
                                     ThreadPool* pool,
                                     const std::vector<std::vector<NodeId>>* seed,
                                     std::vector<std::vector<NodeId>>* sim,
                                     ShardSimStats* stats) {
  const size_t np = qb.num_nodes();
  const GraphSnapshot& g = ss.parent();
  if (seed != nullptr) {
    if (seed->size() != np) {
      return Status::InvalidArgument("seed relation shape mismatch");
    }
    *sim = *seed;
  } else {
    sim->assign(np, {});
    std::vector<std::function<void()>> tasks;
    tasks.reserve(np);
    for (uint32_t u = 0; u < np; ++u) {
      tasks.push_back([&, u] { ComputeCandidateSet(qb, u, g, &(*sim)[u]); });
    }
    ParallelInvoke(pool, std::move(tasks));
  }
  for (uint32_t u = 0; u < np; ++u) {
    if ((*sim)[u].empty()) {
      sim->assign(np, {});
      return Status::OK();
    }
  }

  const uint32_t k = ss.num_shards();
  ShardedBoundedBfs bfs(ss, pool);
  // Survivor marks are bytes, not bits: shards of a hash partition own
  // interleaved node ids, and byte stores from different threads never
  // tear (a shared bitset word would).
  std::vector<uint8_t> keep(g.num_nodes(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < qb.num_edges(); ++e) {
      // Per-edge pass = one merge round here: BFS + fan-out filter between
      // two serial points, same checkpoint granularity as ShardSim::Run.
      GPMV_RETURN_NOT_OK(MergeRoundAbortCheck());
      const PatternEdge& pe = qb.edge(e);
      auto& su = (*sim)[pe.src];
      const auto& st = (*sim)[pe.dst];
      // Which nodes reach sim(dst) by a nonempty path of length <= bound?
      bfs.Run(st, BoundedInnerBound(pe.bound), /*forward=*/false, stats);
      for (NodeId v : su) keep[v] = 0;
      std::vector<std::function<void()>> tasks;
      tasks.reserve(k);
      for (uint32_t s = 0; s < k; ++s) {
        tasks.push_back([&, s] {
          const ShardSlice& slice = ss.slice(s);
          for (NodeId v : su) {
            if (!slice.Owns(v)) continue;
            for (NodeId w : slice.out_neighbors(v)) {
              if (bfs.Reached(w)) {
                keep[v] = 1;
                break;
              }
            }
          }
        });
      }
      ParallelInvoke(pool, std::move(tasks));
      if (stats != nullptr) ++stats->rounds;
      size_t kept = 0;
      for (NodeId v : su) {
        if (keep[v] != 0) su[kept++] = v;
      }
      if (kept != su.size()) {
        if (stats != nullptr) stats->removals += su.size() - kept;
        su.resize(kept);
        changed = true;
        if (su.empty()) {
          sim->assign(np, {});
          return Status::OK();
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<MatchResult> ShardedMatchBoundedSimulation(
    const Pattern& qb, const ShardedSnapshot& ss, ThreadPool* pool,
    const std::vector<std::vector<NodeId>>* seed, ShardSimStats* stats) {
  if (qb.num_nodes() == 0) return Status::InvalidArgument("empty pattern");
  if (qb.IsSimulationPattern()) {
    // Unit bounds: the decrement-exchange engine is strictly cheaper.
    return ShardedMatchSimulation(qb, ss, pool, /*dual=*/false, seed, stats);
  }
  const uint32_t k = ss.num_shards();
  if (stats != nullptr) stats->shards = k;
  std::vector<std::vector<NodeId>> sim;
  GPMV_RETURN_NOT_OK(
      ShardedComputeBoundedRelation(qb, ss, pool, seed, &sim, stats));
  MatchResult result = MatchResult::Empty(qb);
  bool all_nonempty = !sim.empty();
  for (const auto& su : sim) all_nonempty = all_nonempty && !su.empty();
  if (!all_nonempty) return result;

  const GraphSnapshot& g = ss.parent();
  std::vector<DenseBitset> in_sim(qb.num_nodes());
  for (uint32_t u = 0; u < qb.num_nodes(); ++u) {
    in_sim[u].Reset(g.num_nodes());
    for (NodeId v : sim[u]) in_sim[u].set(v);
  }

  // Per-shard extraction over owned sources: the same per-candidate
  // forward bounded BFS as ExtractBoundedMatches, run on the parent
  // snapshot (paths cross shard boundaries freely); shards partition the
  // sources, so stitching + sorting reproduces the canonical order.
  std::vector<std::vector<std::vector<NodePair>>> pairs(
      k, std::vector<std::vector<NodePair>>(qb.num_edges()));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    tasks.push_back([&, s] {
      const ShardSlice& slice = ss.slice(s);
      BfsScratch scratch(g.num_nodes());
      for (uint32_t e = 0; e < qb.num_edges(); ++e) {
        const PatternEdge& pe = qb.edge(e);
        std::vector<NodePair>& out = pairs[s][e];
        for (NodeId v : sim[pe.src]) {
          if (!slice.Owns(v)) continue;
          scratch.Run(g, g.out_neighbors(v), BoundedInnerBound(pe.bound),
                      /*forward=*/true);
          for (NodeId x : scratch.reached()) {
            if (in_sim[pe.dst].test(x)) out.emplace_back(v, x);
          }
        }
      }
    });
  }
  ParallelInvoke(pool, std::move(tasks));

  for (uint32_t e = 0; e < qb.num_edges(); ++e) {
    std::vector<NodePair>* se = result.mutable_edge_matches(e);
    size_t total = 0;
    for (uint32_t s = 0; s < k; ++s) total += pairs[s][e].size();
    se->reserve(total);
    for (uint32_t s = 0; s < k; ++s) {
      se->insert(se->end(), pairs[s][e].begin(), pairs[s][e].end());
    }
    if (se->empty()) return MatchResult::Empty(qb);
    if (!std::is_sorted(se->begin(), se->end())) {
      std::sort(se->begin(), se->end());
    }
  }
  result.set_matched(true);
  result.DeriveNodeMatches(qb);
  return result;
}

}  // namespace gpmv
