/// \file shard_sim.h
/// \brief Sharded (dual-)simulation: per-shard candidate-rank fixpoints plus
/// a cross-shard merge fixpoint for boundary nodes.
///
/// The single-snapshot refinement engine (simulation/refinement.h) deletes
/// violating (pattern node, candidate) pairs until stable. This engine runs
/// the same deletion fixpoint *partitioned by data-node ownership* over a
/// `ShardedSnapshot`:
///
///  1. *Local fixpoint* (one task per shard, fanned out on a thread pool):
///     each shard initializes support counters for the candidates it owns
///     by walking its slice's full owned rows, removes zero-support owned
///     candidates, and cascades removals through owned neighbors with the
///     usual counter-decrement worklist. Candidates owned by other shards
///     are assumed alive — an over-approximation, so nothing valid is ever
///     deleted.
///  2. *Cross-shard merge rounds*: when a removal's propagation walk (the
///     removed node's full slice rows) reaches a candidate another shard
///     owns, the origin emits a targeted (pattern edge, rank) support
///     decrement to that owner instead of decrementing; decrements are
///     routed at a barrier and applied in O(1) each, cascading locally
///     again. Rounds repeat until no shard emits anything. Routing work is
///     exactly the cross-shard share of the decrement work an unsharded
///     refinement does locally — shards never scan traffic that does not
///     concern them.
///
/// Because the state only ever shrinks and every genuine violation is
/// eventually witnessed by the owner of the violating candidate, the rounds
/// converge to the unique maximum (dual-)simulation relation — *bit
/// identical* to RefineSimulation on the parent snapshot, for every shard
/// count and partitioning (the shard parity property tests assert this).
/// Per-shard work is deterministic, so counters and results do not depend
/// on thread scheduling.
///
/// Wall-clock: counter initialization and cascade work — the bulk of a
/// direct evaluation — split K ways and run concurrently; the serial
/// residue is candidate-set construction plus the per-round exchange
/// (proportional to removals crossing shard boundaries). `bench/
/// shard_scaling.cc` measures the resulting fan-out speedup on the
/// 1k-query workload.

#ifndef GPMV_SHARD_SHARD_SIM_H_
#define GPMV_SHARD_SHARD_SIM_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/status.h"
#include "pattern/pattern.h"
#include "shard/sharded_snapshot.h"
#include "simulation/candidate_space.h"
#include "simulation/match_result.h"

namespace gpmv {

class ThreadPool;

/// Observability counters for one sharded evaluation (aggregated into
/// EngineStats.shard by the query engine). Deterministic for a given
/// (pattern, sharded snapshot, seed) triple.
struct ShardSimStats {
  size_t shards = 0;    ///< fan-out width K
  size_t rounds = 0;    ///< parallel phases run (1 = no cross-shard work)
  size_t removals = 0;  ///< candidate deletions across all shards
  /// Owner-computed support decrements routed across shard boundaries at
  /// round barriers — the communication volume of the merge fixpoint
  /// (equals the cross-shard portion of the work an unsharded refinement
  /// would do locally).
  size_t messages = 0;
  /// Frontier entries handed across shard boundaries by the bounded
  /// evaluation's level-synchronized BFS (one entry per cross-shard edge
  /// whose head was expanded) — the bounded analogue of `messages`.
  size_t frontier_msgs = 0;

  /// Per-call detail for trace spans (obs/trace.h), NOT aggregated by
  /// Merge: wall time of each parallel phase (index 0 is the local-fixpoint
  /// fan-out, the rest are merge rounds) and of each shard's local fixpoint
  /// within that first phase.
  std::vector<double> round_ms;
  std::vector<double> shard_ms;

  /// Field-wise aggregate (max for `shards`), mirroring MatchJoinStats.
  /// Per-call timing vectors are left untouched — they only describe a
  /// single evaluation.
  void Merge(const ShardSimStats& other) {
    shards = std::max(shards, other.shards);
    rounds += other.rounds;
    removals += other.removals;
    messages += other.messages;
    frontier_msgs += other.frontier_msgs;
  }
};

/// Refines `space` to the maximum (dual-)simulation relation of `q` over
/// the sharded snapshot's graph version, fanning out per shard on `pool`
/// (serial when nullptr). Writes per-pattern-node sim sets (sorted; all
/// empty signals "no match") exactly as RefineSimulation does. Requires a
/// unit-bound pattern; `space` must have been built with a dense inverse
/// over the parent snapshot's node universe.
Status ShardedRefineSimulation(const Pattern& q, const ShardedSnapshot& ss,
                               const CandidateSpace& space, bool dual,
                               ThreadPool* pool,
                               std::vector<std::vector<NodeId>>* sim,
                               ShardSimStats* stats = nullptr);

/// Computes Q(G) under (dual-)simulation by sharded fan-out: candidate
/// space from the parent snapshot (restricted to `seed` when non-null —
/// the engine's partial-views path), sharded refinement, then per-shard
/// edge-match extraction stitched into one normalized MatchResult. For
/// unit-bound patterns the result equals MatchBoundedSimulation /
/// MatchDualSimulation on the parent snapshot; non-unit bounds are
/// rejected here — they fan out through ShardedMatchBoundedSimulation
/// below, whose BFS frontier hand-off carries distance-bounded
/// reachability across edge-cuts.
Result<MatchResult> ShardedMatchSimulation(
    const Pattern& q, const ShardedSnapshot& ss, ThreadPool* pool,
    bool dual = false, const std::vector<std::vector<NodeId>>* seed = nullptr,
    ShardSimStats* stats = nullptr);

/// Computes Qb(G) under *bounded* simulation by sharded fan-out. The
/// decrement exchange of the unit-bound engine generalizes to a
/// level-synchronized multi-source BFS with merge-round *frontier
/// hand-off*: each level, every shard expands the frontier nodes it owns
/// through its slice's full rows; discoveries it owns advance locally,
/// discoveries owned elsewhere are routed to their owner at the level
/// barrier (counted in ShardSimStats::frontier_msgs) and deduplicated
/// against the owner's distance labels — so distance-bounded reachability
/// crosses edge-cut boundaries exactly level by level. The relation
/// fixpoint mirrors ComputeBoundedSimulationRelation edge for edge (same
/// order, same filter), and per-shard forward-BFS extraction over owned
/// sources stitches into the same canonical MatchResult: the output is
/// bit-identical to MatchBoundedSimulation on the parent snapshot for
/// every shard count and partitioning (shard_parity_test asserts this).
/// Plain patterns delegate to ShardedMatchSimulation (non-dual), making
/// this the engine's one sharded direct/partial entry point.
Result<MatchResult> ShardedMatchBoundedSimulation(
    const Pattern& qb, const ShardedSnapshot& ss, ThreadPool* pool,
    const std::vector<std::vector<NodeId>>* seed = nullptr,
    ShardSimStats* stats = nullptr);

}  // namespace gpmv

#endif  // GPMV_SHARD_SHARD_SIM_H_
