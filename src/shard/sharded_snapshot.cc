#include "shard/sharded_snapshot.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "engine/executor.h"  // ParallelInvoke

namespace gpmv {

namespace {

/// Degree-balanced contiguous cut points: walks nodes accumulating
/// (out + in + 1) weight and cuts when the running sum crosses the next
/// K-quantile. The +1 keeps isolated-node tails from collapsing into one
/// shard. Deterministic in the snapshot contents.
std::vector<NodeId> ComputeRangeBounds(const GraphSnapshot& parent,
                                       uint32_t num_shards) {
  const size_t n = parent.num_nodes();
  std::vector<NodeId> bounds(num_shards + 1, static_cast<NodeId>(n));
  bounds[0] = 0;
  const uint64_t total = 2 * static_cast<uint64_t>(parent.num_edges()) +
                         static_cast<uint64_t>(n);
  uint64_t acc = 0;
  uint32_t next_cut = 1;
  for (NodeId v = 0; v < n && next_cut < num_shards; ++v) {
    acc += parent.out_degree(v) + parent.in_degree(v) + 1;
    while (next_cut < num_shards &&
           acc * num_shards >= total * next_cut) {
      bounds[next_cut++] = v + 1;
    }
  }
  return bounds;
}

}  // namespace

std::shared_ptr<const ShardSlice> ShardSlice::Build(
    const GraphSnapshot& parent, const ShardingOptions& opts,
    const std::vector<NodeId>& range_bounds, uint32_t shard) {
  auto slice = std::make_shared<ShardSlice>();
  const uint32_t k = std::max<uint32_t>(1, opts.num_shards);
  slice->shard_ = shard;
  slice->built_version_ = parent.version();
  slice->num_shards_ = k;
  slice->partition_ = opts.partition;

  const size_t n = parent.num_nodes();
  if (opts.partition == ShardingOptions::Partition::kRange) {
    slice->node_begin_ = range_bounds[shard];
    slice->node_end_ = range_bounds[shard + 1];
    slice->num_owned_ = slice->node_end_ - slice->node_begin_;
  } else {
    slice->num_owned_ =
        shard < n ? static_cast<uint32_t>((n - shard + k - 1) / k) : 0;
  }
  const uint32_t owned = slice->num_owned_;

  // Pass 1: copy the full rows of every owned node and collect boundary
  // references.
  slice->out_offsets_.assign(owned + 1, 0);
  slice->in_offsets_.assign(owned + 1, 0);
  std::vector<NodeId> boundary;
  for (uint32_t i = 0; i < owned; ++i) {
    const NodeId v = slice->owned_node(i);
    slice->out_offsets_[i + 1] =
        slice->out_offsets_[i] + static_cast<uint32_t>(parent.out_degree(v));
    slice->in_offsets_[i + 1] =
        slice->in_offsets_[i] + static_cast<uint32_t>(parent.in_degree(v));
  }
  slice->out_targets_.reserve(slice->out_offsets_[owned]);
  slice->in_sources_.reserve(slice->in_offsets_[owned]);
  for (uint32_t i = 0; i < owned; ++i) {
    const NodeId v = slice->owned_node(i);
    for (NodeId w : parent.out_neighbors(v)) {
      slice->out_targets_.push_back(w);
      if (!slice->Owns(w)) boundary.push_back(w);
    }
    for (NodeId w : parent.in_neighbors(v)) {
      slice->in_sources_.push_back(w);
      if (!slice->Owns(w)) boundary.push_back(w);
    }
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  slice->replicas_ = std::move(boundary);
  return slice;
}

uint32_t ShardSlice::FindReplica(NodeId v) const {
  auto it = std::lower_bound(replicas_.begin(), replicas_.end(), v);
  return (it != replicas_.end() && *it == v)
             ? static_cast<uint32_t>(it - replicas_.begin())
             : kNoReplica;
}

size_t ShardSlice::ApproxBytes() const {
  return (out_offsets_.size() + in_offsets_.size()) * sizeof(uint32_t) +
         (out_targets_.size() + in_sources_.size() + replicas_.size()) *
             sizeof(NodeId);
}

std::shared_ptr<const ShardedSnapshot> ShardedSnapshot::Build(
    std::shared_ptr<const GraphSnapshot> parent, ShardingOptions opts,
    ThreadPool* pool) {
  opts.num_shards = std::max<uint32_t>(1, opts.num_shards);
  auto out = std::make_shared<ShardedSnapshot>();
  out->parent_ = std::move(parent);
  out->opts_ = opts;
  if (opts.partition == ShardingOptions::Partition::kRange) {
    out->bounds_ = ComputeRangeBounds(*out->parent_, opts.num_shards);
  }
  out->slices_.resize(opts.num_shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(opts.num_shards);
  for (uint32_t s = 0; s < opts.num_shards; ++s) {
    tasks.push_back([&, s] {
      out->slices_[s] =
          ShardSlice::Build(*out->parent_, opts, out->bounds_, s);
    });
  }
  ParallelInvoke(pool, std::move(tasks));
  return out;
}

std::shared_ptr<const ShardedSnapshot> ShardedSnapshot::Rebuild(
    std::shared_ptr<const GraphSnapshot> parent, const ShardedSnapshot& prev,
    const std::vector<uint32_t>& affected, ThreadPool* pool) {
  // Ownership is defined over the node set; a changed node count (or a
  // snapshot that no longer shares its node section lineage) invalidates
  // the partition wholesale.
  if (parent->num_nodes() != prev.parent().num_nodes()) {
    return Build(std::move(parent), prev.opts_, pool);
  }
  auto out = std::make_shared<ShardedSnapshot>();
  out->parent_ = std::move(parent);
  out->opts_ = prev.opts_;
  out->bounds_ = prev.bounds_;
  out->slices_ = prev.slices_;  // share untouched slices
  std::vector<std::function<void()>> tasks;
  tasks.reserve(affected.size());
  for (uint32_t s : affected) {
    tasks.push_back([&, s] {
      out->slices_[s] =
          ShardSlice::Build(*out->parent_, out->opts_, out->bounds_, s);
    });
  }
  ParallelInvoke(pool, std::move(tasks));
  return out;
}

VersionVector ShardedSnapshot::slice_versions() const {
  VersionVector vv(slices_.size());
  for (size_t s = 0; s < slices_.size(); ++s) {
    vv.set_slice(s, slices_[s]->built_version());
  }
  return vv;
}

uint32_t ShardedSnapshot::owner(NodeId v) const {
  if (opts_.partition == ShardingOptions::Partition::kHash) {
    return v % opts_.num_shards;
  }
  // First cut point strictly greater than v, minus one interval.
  auto it = std::upper_bound(bounds_.begin() + 1, bounds_.end(), v);
  return static_cast<uint32_t>(it - (bounds_.begin() + 1));
}

std::vector<uint32_t> ShardedSnapshot::AffectedShards(
    const std::vector<NodePair>& touched) const {
  std::vector<NodeId> nodes;
  nodes.reserve(touched.size() * 2);
  for (const NodePair& e : touched) {
    nodes.push_back(e.first);
    nodes.push_back(e.second);
  }
  return AffectedShards(nodes);
}

std::vector<uint32_t> ShardedSnapshot::AffectedShards(
    const std::vector<NodeId>& nodes) const {
  std::vector<uint32_t> shards;
  shards.reserve(nodes.size());
  for (NodeId v : nodes) shards.push_back(owner(v));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

size_t ShardedSnapshot::total_replicas() const {
  size_t total = 0;
  for (const auto& s : slices_) total += s->num_replicas();
  return total;
}

size_t ShardedSnapshot::ApproxBytes() const {
  size_t total = bounds_.size() * sizeof(NodeId);
  for (const auto& s : slices_) total += s->ApproxBytes();
  return total;
}

}  // namespace gpmv
