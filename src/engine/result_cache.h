/// \file result_cache.h
/// \brief Full-result memoization in front of the view cache: Q(G) keyed by
/// (minimized-query key, graph snapshot version).
///
/// The workloads the engine serves repeat a few query shapes many times
/// (engine_throughput submits 1k queries over ~10 patterns); between update
/// batches the graph version is constant, so a repeated query's full result
/// is simply the previous one. This cache stores the *minimized-shape*
/// MatchResult under the minimized pattern's canonical text — two queries
/// that minimize to the same pattern share one entry, and each caller
/// expands the hit back through its own edge_map — so a hit skips view
/// pinning, materialization, and the fixpoint entirely.
///
/// Invalidation is a version compare: entries are stamped with the
/// `GraphSnapshot::version()` they were computed against (the engine bumps
/// it per update batch), and a lookup that finds a stale version drops the
/// entry and reports a miss. Entries are byte-accounted and evicted LRU
/// under a small budget; `budget_bytes == 0` disables the cache.
///
/// Thread safety: all methods are safe from any number of threads (one
/// internal mutex; the engine calls Lookup/Insert under its *shared*
/// registry lock). Entries hold their result behind a shared_ptr so the
/// mutex guards only pointer/LRU traffic — the hit's copy into the caller
/// happens outside the critical section.

#ifndef GPMV_ENGINE_RESULT_CACHE_H_
#define GPMV_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "simulation/match_result.h"

namespace gpmv {

/// Sizing knobs.
struct ResultCacheOptions {
  /// Byte budget for cached results; 0 disables the cache entirely.
  size_t budget_bytes = 8u << 20;
};

/// Observability counters; bytes/entries reflect the current state, the
/// rest are monotone totals.
struct ResultCacheStats {
  size_t hits = 0;
  size_t misses = 0;          ///< includes stale-version lookups
  size_t stale_drops = 0;     ///< entries dropped on a version mismatch
  size_t inserts = 0;
  size_t evictions = 0;       ///< LRU evictions under the byte budget
  size_t bytes_cached = 0;
  size_t entries = 0;
};

/// See file comment.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions opts = {});

  bool enabled() const { return opts_.budget_bytes > 0; }

  /// Copies the cached result for `key` at `version` into `out` and
  /// returns true. A stale entry (any other version) is dropped and
  /// counted; absent or stale lookups count a miss and return false.
  bool Lookup(const std::string& key, uint64_t version, MatchResult* out);

  /// Installs (replacing any previous entry for `key`) and evicts LRU
  /// entries over budget. Results larger than the whole budget are not
  /// cached — rejected by size *before* the copy is made, so oversized
  /// results cost nothing per miss. No-op when disabled.
  void Insert(const std::string& key, uint64_t version,
              const MatchResult& result);

  ResultCacheStats stats() const;

 private:
  struct Entry {
    uint64_t version = 0;
    /// Shared so a hit only copies the pointer under the mutex.
    std::shared_ptr<const MatchResult> result;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  static size_t ResultBytes(const std::string& key, const MatchResult& r);

  /// Caller holds mu_; drops `it`'s entry and its LRU link.
  void EraseLocked(std::unordered_map<std::string, Entry>::iterator it);

  ResultCacheOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< most recently used at the front
  ResultCacheStats stats_;
};

}  // namespace gpmv

#endif  // GPMV_ENGINE_RESULT_CACHE_H_
