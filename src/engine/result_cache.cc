#include "engine/result_cache.h"

namespace gpmv {

ResultCache::ResultCache(ResultCacheOptions opts) : opts_(opts) {}

size_t ResultCache::ResultBytes(const std::string& key,
                                const MatchResult& r) {
  size_t bytes = key.size() + sizeof(Entry);
  for (uint32_t e = 0; e < r.num_pattern_edges(); ++e) {
    bytes += r.edge_matches(e).size() * sizeof(NodePair);
  }
  // Node matches are derived from (and bounded by) the edge matches.
  bytes += r.TotalMatches() * sizeof(NodeId);
  return bytes;
}

void ResultCache::EraseLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  stats_.bytes_cached -= it->second.bytes;
  --stats_.entries;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
}

bool ResultCache::Lookup(const std::string& key, uint64_t version,
                         MatchResult* out) {
  if (!enabled()) return false;
  std::shared_ptr<const MatchResult> hit;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return false;
    }
    if (it->second.version != version) {
      // The graph moved on; the entry can never be valid again (versions
      // are strictly increasing), so drop it now rather than waiting for
      // LRU.
      ++stats_.stale_drops;
      EraseLocked(it);
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    hit = it->second.result;
  }
  // Deep-copy outside the mutex: an eviction may free the entry meanwhile,
  // but the shared_ptr keeps this result alive.
  *out = *hit;
  return true;
}

void ResultCache::Insert(const std::string& key, uint64_t version,
                         const MatchResult& result) {
  if (!enabled()) return;
  const size_t bytes = ResultBytes(key, result);
  if (bytes > opts_.budget_bytes) return;  // would evict everything else
  // Copy only after the size check (and outside the mutex).
  auto shared = std::make_shared<const MatchResult>(result);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) EraseLocked(it);  // replace (e.g. stale version)
  lru_.push_front(key);
  Entry& e = map_[key];
  e.version = version;
  e.result = std::move(shared);
  e.bytes = bytes;
  e.lru_pos = lru_.begin();
  stats_.bytes_cached += bytes;
  ++stats_.entries;
  ++stats_.inserts;
  while (stats_.bytes_cached > opts_.budget_bytes && !lru_.empty()) {
    auto victim = map_.find(lru_.back());
    EraseLocked(victim);
    ++stats_.evictions;
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace gpmv
