#include "engine/view_cache.h"

#include <utility>

#include "core/maintenance.h"

namespace gpmv {

ViewCache::ViewCache(ViewCacheOptions opts) : opts_(opts) {}

uint32_t ViewCache::Register(ViewDefinition def) {
  uint32_t id = static_cast<uint32_t>(views_.card());
  views_.Add(std::move(def));
  exts_.emplace_back();
  std::lock_guard<std::mutex> lk(meta_mu_);
  entries_.emplace_back();
  ++stats_.registered;
  return id;
}

bool ViewCache::TryPinMaterialized(uint32_t v) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  Entry& e = entries_[v];
  if (!e.materialized) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  ++e.pin_count;
  lru_.splice(lru_.begin(), lru_, e.lru_pos);  // mark most recently used
  return true;
}

void ViewCache::Unpin(uint32_t v) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  Entry& e = entries_[v];
  GPMV_DCHECK(e.pin_count > 0);
  --e.pin_count;
}

bool ViewCache::Install(uint32_t v, ViewExtension ext,
                        std::vector<std::vector<NodeId>> relation, bool pin) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  Entry& e = entries_[v];
  if (e.materialized) {
    // A concurrent query materialized this view while we computed; keep the
    // installed copy (it is at least as fresh — installs and refreshes both
    // happen under the exclusive registry lock).
    ++stats_.duplicate_installs;
    if (pin) {
      ++e.pin_count;
      lru_.splice(lru_.begin(), lru_, e.lru_pos);
    }
    return false;
  }
  exts_[v] = std::move(ext);
  e.relation = std::move(relation);
  e.bytes = EntryBytes(exts_[v], e.relation);
  e.materialized = true;
  IndexBoundedExtensionLocked(v);
  if (pin) ++e.pin_count;
  lru_.push_front(v);
  e.lru_pos = lru_.begin();
  stats_.bytes_cached += e.bytes;
  ++stats_.materialized;
  ++stats_.installs;
  EnforceBudgetLocked();
  if (stats_.bytes_cached > opts_.budget_bytes) ++stats_.over_budget;
  return true;
}

bool ViewCache::Evict(uint32_t v) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  Entry& e = entries_[v];
  if (!e.materialized || e.pin_count > 0) return false;
  lru_.erase(e.lru_pos);
  EvictLocked(v);
  return true;
}

size_t ViewCache::EnforceBudget() {
  std::lock_guard<std::mutex> lk(meta_mu_);
  return EnforceBudgetLocked();
}

size_t ViewCache::EnforceBudgetLocked() {
  size_t evicted = 0;
  // Walk from the least-recently-used end, skipping pinned entries.
  auto it = lru_.end();
  while (stats_.bytes_cached > opts_.budget_bytes && it != lru_.begin()) {
    --it;
    uint32_t v = *it;
    if (entries_[v].pin_count > 0) continue;
    it = lru_.erase(it);  // next candidate is the element before this slot
    EvictLocked(v);
    ++evicted;
  }
  return evicted;
}

/// Caller holds meta_mu_ and has already unlinked `v` from lru_.
void ViewCache::EvictLocked(uint32_t v) {
  Entry& e = entries_[v];
  GPMV_DCHECK(e.materialized && e.pin_count == 0);
  stats_.bytes_cached -= e.bytes;
  e.bytes = 0;
  e.materialized = false;
  exts_[v] = ViewExtension();
  e.relation.clear();
  e.relation.shrink_to_fit();
  --stats_.materialized;
  ++stats_.evictions;
}

Status ViewCache::RefreshForUpdates(const GraphSnapshot* after_deletions,
                                    const GraphSnapshot& final_snap,
                                    const std::vector<NodePair>& deleted,
                                    const std::vector<NodePair>& inserted,
                                    const InsertMaintenanceOptions& opts,
                                    InsertMaintenanceStats* delta_stats) {
  std::lock_guard<std::mutex> lk(meta_mu_);
  // Deletions can only lengthen indexed distances: dirty the tracked
  // sources inside the post-delete balls now, repair against the final
  // snapshot once the sweep is done (the entries stay untouched meanwhile,
  // so the per-view refreshes below never read through them).
  if (!deleted.empty()) {
    dindex_.InvalidateForDeletions(
        after_deletions != nullptr ? *after_deletions : final_snap, deleted);
  }
  // Insertions can only shorten them: min-update every tracked entry whose
  // shortest path improved through an inserted edge.
  if (!inserted.empty()) {
    stats_.distance_shortened += dindex_.ApplyInsertions(final_snap, inserted);
  }
  for (uint32_t v = 0; v < entries_.size(); ++v) {
    Entry& e = entries_[v];
    if (!e.materialized) continue;
    const ViewDefinition& def = views_.view(v);
    const size_t bytes_before = e.bytes;
    bool touched = false;
    bool deletion_skipped = false;

    // A view the insert phase will re-materialize anyway (delta disabled)
    // does so once, against the final snapshot — its deletion refresh
    // would be wasted. Bounded views now take the delta path too.
    const bool insert_rematerializes = !inserted.empty() && !opts.enable_delta;

    if (!deleted.empty() && !insert_rematerializes) {
      bool affected = false;
      for (const NodePair& p : deleted) {
        if (DeletionMayAffectView(def, e.relation, p.first, p.second)) {
          affected = true;
          break;
        }
      }
      if (affected) {
        // Decremental: seeded from the cached relation, against the
        // post-deletion snapshot (insertions are not in the graph yet from
        // this phase's point of view).
        GPMV_RETURN_NOT_OK(RefreshViewExtension(
            def, after_deletions != nullptr ? *after_deletions : final_snap,
            /*seeded=*/true, &exts_[v], &e.relation));
        touched = true;
      } else {
        deletion_skipped = true;
      }
    }
    if (!inserted.empty()) {
      // Track whether this view's insert phase fell back to a full
      // re-materialization: the bounded merge (which feeds the distance
      // index in lockstep) never ran then, so the fresh extension's pairs
      // are re-indexed wholesale below.
      InsertMaintenanceStats view_stats;
      GPMV_RETURN_NOT_OK(RefreshViewExtensionInserted(
          def, final_snap, inserted, opts, &exts_[v], &e.relation,
          &view_stats, &dindex_));
      if (delta_stats != nullptr) delta_stats->Merge(view_stats);
      if (view_stats.rematerialize_fallbacks > 0) {
        IndexBoundedExtensionLocked(v);
      }
      touched = true;
    }
    if (touched) {
      stats_.bytes_cached -= bytes_before;
      e.bytes = EntryBytes(exts_[v], e.relation);
      stats_.bytes_cached += e.bytes;
      ++stats_.refreshes;
    } else if (deletion_skipped) {
      // Only count a skip when the *whole batch* left the view untouched —
      // a prescreen skip followed by an insert-phase refresh is a refresh.
      ++stats_.refreshes_skipped;
    }
  }
  // On-demand repair: one forward BFS per dirty source against the final
  // snapshot restores the exact-or-absent contract before the new graph
  // version becomes queryable.
  dindex_.RepairDirty(final_snap);
  EnforceBudgetLocked();
  return Status::OK();
}

bool ViewCache::IsMaterialized(uint32_t v) const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  return entries_[v].materialized;
}

std::vector<uint8_t> ViewCache::MaterializedSnapshot() const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  std::vector<uint8_t> flags(entries_.size());
  for (uint32_t v = 0; v < entries_.size(); ++v) {
    flags[v] = entries_[v].materialized ? 1 : 0;
  }
  return flags;
}

bool ViewCache::CheckConsistency(bool expect_unpinned) const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  size_t bytes = 0;
  size_t materialized = 0;
  for (uint32_t v = 0; v < entries_.size(); ++v) {
    const Entry& e = entries_[v];
    if (expect_unpinned && e.pin_count != 0) return false;
    if (!e.materialized) {
      if (e.bytes != 0) return false;
      continue;
    }
    ++materialized;
    if (e.bytes != EntryBytes(exts_[v], e.relation)) return false;
    bytes += e.bytes;
  }
  if (bytes != stats_.bytes_cached) return false;
  if (materialized != stats_.materialized) return false;
  if (lru_.size() != materialized) return false;
  for (uint32_t v : lru_) {
    if (!entries_[v].materialized) return false;
  }
  return stats_.installs - stats_.evictions == stats_.materialized;
}

ViewCacheStats ViewCache::stats() const {
  std::lock_guard<std::mutex> lk(meta_mu_);
  ViewCacheStats out = stats_;
  out.distance_entries = dindex_.size();
  out.distance_repairs = dindex_.repairs();
  return out;
}

void ViewCache::IndexBoundedExtensionLocked(uint32_t v) {
  if (views_.view(v).pattern.IsSimulationPattern()) return;
  const ViewExtension& ext = exts_[v];
  for (uint32_t e = 0; e < ext.num_view_edges(); ++e) {
    const ViewEdgeExtension& vee = ext.edge(e);
    for (size_t i = 0; i < vee.pairs.size(); ++i) {
      dindex_.AddOrShorten(vee.pairs[i].first, vee.pairs[i].second,
                           vee.distances[i]);
    }
  }
}

size_t ViewCache::EntryBytes(const ViewExtension& ext,
                             const std::vector<std::vector<NodeId>>& relation) {
  size_t bytes = ext.ApproxBytes();
  for (const auto& s : relation) bytes += s.size() * sizeof(NodeId);
  return bytes;
}

}  // namespace gpmv
