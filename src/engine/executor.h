/// \file executor.h
/// \brief Fixed-size thread pool with a bounded task queue — the execution
/// substrate of the query engine (see query_engine.h).
///
/// Workers pull tasks from a single FIFO queue. `Submit` blocks the caller
/// while the queue is at capacity (backpressure instead of unbounded memory
/// growth under heavy traffic), and fails once the pool is shut down.
/// `Shutdown` drains every task that was accepted before returning, so a
/// caller that joined the pool has seen all its side effects.

#ifndef GPMV_ENGINE_EXECUTOR_H_
#define GPMV_ENGINE_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace gpmv {

/// Optional metric hooks the pool records into (obs/metrics.h handles,
/// resolved by the owner). Null members are simply not recorded — the
/// per-task cost with hooks set is two relaxed atomic adds per histogram,
/// taken *outside* the queue mutex. These are ungrouped updates: a snapshot
/// may miss an in-flight record, which is fine (no cross-metric invariant).
struct ThreadPoolObs {
  obs::Histogram* queue_wait_us = nullptr;  ///< Submit-to-dequeue delay
  obs::Histogram* run_us = nullptr;         ///< task body wall time
};

/// Pool sizing knobs.
struct ThreadPoolOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency() (min 1).
  size_t num_threads = 0;
  /// Maximum queued (not yet running) tasks before Submit blocks.
  size_t queue_capacity = 1024;
  /// Admission control: with true, a Submit that finds the queue at
  /// capacity fast-fails with kResourceExhausted (counted in
  /// ThreadPoolStats::rejected) instead of blocking — overload shedding
  /// for latency-sensitive callers. ParallelInvoke degrades rejected
  /// fan-out tasks to inline execution, so shedding the fan-out pool only
  /// costs parallelism, never correctness.
  bool shed_when_saturated = false;
  /// Fault injection (common/fault.h): the `executor.task` point rejects a
  /// submission with kResourceExhausted as if the queue were saturated.
  /// Null disables.
  FaultInjector* fault = nullptr;
  /// Metric hooks (all-null by default: zero overhead).
  ThreadPoolObs obs;
};

/// Observability counters; a consistent snapshot as of the call.
struct ThreadPoolStats {
  size_t submitted = 0;        ///< tasks accepted by Submit
  size_t executed = 0;  ///< tasks dequeued and run; counted before the task
                        ///< body starts, so any result derived from a task
                        ///< (e.g. a future it completes) observes the count
  size_t rejected = 0;  ///< Submit calls refused (shutdown, shedding, or an
                        ///< injected executor.task fault)
  size_t max_queue_depth = 0;  ///< high-water mark of the queue
};

/// Fixed worker pool + bounded FIFO queue.
class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions opts = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; blocks while the queue is full (or, with
  /// shed_when_saturated, fast-fails with kResourceExhausted instead).
  /// Fails with InvalidArgument after Shutdown. Tasks must not throw.
  Status Submit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, joins all workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  /// Configured worker count. Immutable after construction (Shutdown joins
  /// and clears workers_, so reading workers_.size() would race a
  /// concurrent shutdown — this stays safe from any thread, any time).
  size_t num_threads() const { return num_threads_; }
  ThreadPoolStats stats() const;

 private:
  void WorkerLoop();

  /// A queued task plus its enqueue timestamp (for the queue-wait metric;
  /// only stamped when obs_.queue_wait_us is set).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> workers_;
  size_t num_threads_ = 0;
  size_t queue_capacity_;
  bool shed_when_saturated_ = false;
  FaultInjector* fault_ = nullptr;
  bool shutdown_ = false;
  ThreadPoolStats stats_;
  ThreadPoolObs obs_;
};

/// Structured fork-join fan-out: runs every task in `tasks` and blocks until
/// all of them finished. With a pool, tasks are submitted to it (a task the
/// pool rejects — e.g. after Shutdown — runs inline in the caller); with
/// `pool == nullptr`, tasks run serially in the caller. Tasks must not
/// throw. Safe to call from a worker of a *different* pool; calling it with
/// the pool the caller runs on can deadlock once every worker is blocked in
/// a ParallelInvoke (the sharded query path therefore uses a dedicated
/// fan-out pool — see query_engine.h).
void ParallelInvoke(ThreadPool* pool, std::vector<std::function<void()>> tasks);

}  // namespace gpmv

#endif  // GPMV_ENGINE_EXECUTOR_H_
