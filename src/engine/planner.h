/// \file planner.h
/// \brief Query planning for the view-cache engine: decide per query whether
/// to answer from materialized views (MatchJoin, Section III / VI-A), from
/// partial views plus a seeded fallback on G (maximally contained rewriting,
/// Section VIII), or directly on G ((bounded) simulation), using cost
/// estimates derived from graph/statistics.
///
/// Planning pipeline:
///  1. minimize the query via the similarity quotient (minimization.h) —
///     every downstream step works on the smaller equivalent query, and the
///     engine expands match sets back through edge_map;
///  2. run minimum containment against the registered view definitions;
///  3. contained -> compare the estimated MatchJoin cost (merged view pairs,
///     plus materialization for cold views) against the estimated direct
///     cost (label-index candidates x degree, scaled by edge bounds);
///     pick kMatchJoin or kDirect;
///  4. not contained -> if some query edges are covered, pick kPartialViews:
///     the engine merges the covering view pairs into per-node candidate
///     seeds and runs direct evaluation restricted to them (sound: dropping
///     pattern edges only grows match sets, so view-derived candidates
///     over-approximate the true relation); otherwise kDirect.
///
/// The planner never touches extension *contents* — only whether a view is
/// materialized (for the cold-materialization cost term) — so it runs under
/// the engine's shared registry lock.

#ifndef GPMV_ENGINE_PLANNER_H_
#define GPMV_ENGINE_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/containment.h"
#include "core/minimization.h"
#include "core/view.h"
#include "graph/statistics.h"
#include "pattern/pattern.h"

namespace gpmv {

/// How a query will be evaluated.
enum class PlanKind {
  kMatchJoin,     ///< Q ⊑ V: answer from view extensions only
  kPartialViews,  ///< partial cover: view-seeded direct evaluation
  kDirect,        ///< (bounded) simulation on G
};

const char* PlanKindName(PlanKind kind);

/// Planner knobs.
struct PlannerOptions {
  /// Collapse similar pattern nodes before planning.
  bool enable_minimization = true;
  /// Choose a view plan when est_view_cost <= advantage * est_direct_cost.
  /// > 1 biases toward views (they also spare G's memory bandwidth);
  /// 0 disables view plans entirely (cost-model kill switch).
  double view_cost_advantage = 4.0;
  /// Cap on the BFS depth bounded edges contribute to direct cost (`*`
  /// bounds count as the cap). Each bounded edge is charged a geometric
  /// ball of that depth over the average out-degree, clamped to |E|.
  uint32_t bounded_cost_cap = 8;
  /// Mark graph-walking plans for sharded fan-out (set by the engine when
  /// it runs with a ShardedSnapshot). The planner flags kDirect and
  /// kPartialViews plans — the plans whose cost is the G-walk that shard
  /// slices split K ways: unit-bound patterns through the decrement
  /// exchange, bounded patterns through the BFS frontier hand-off
  /// (shard/shard_sim.h). kMatchJoin never touches G, so it stays global.
  bool shard_fanout = false;
  /// Plan for a *historical* (`AS OF`) cut: the query still minimizes (the
  /// quotient is state-independent), but containment/view plans and the
  /// sharded fan-out are skipped — materialized extensions and shard
  /// slices describe only the head, so a time-travel query always walks
  /// its pinned snapshot directly (kDirect, no fan-out).
  bool historical = false;
  /// Live (v, v') pairs tracked by the engine's distance index I(V)
  /// (ViewCacheStats::distance_entries; set by the engine per plan call).
  /// Bounded view edges re-verify tracked pairs through O(1) index lookups
  /// instead of fresh ball walks, so index coverage — entries relative to
  /// the node universe — discounts the estimated bounded view cost. 0
  /// means no index and no discount.
  size_t distance_index_entries = 0;
};

/// The chosen plan plus everything the engine needs to execute it.
struct QueryPlan {
  PlanKind kind = PlanKind::kDirect;
  /// Quotiented query; execution runs on minimized.pattern and results are
  /// expanded back through minimized.edge_map.
  MinimizedPattern minimized;
  /// kMatchJoin: the contained mapping driving MatchJoin.
  ContainmentMapping mapping;
  /// kPartialViews: per minimized-query edge, the covering view edges
  /// (empty for uncovered edges). Unused otherwise.
  std::vector<std::vector<ViewEdgeRef>> partial_lambda;
  /// Distinct views the plan reads, ascending (empty for kDirect).
  std::vector<uint32_t> views_needed;
  /// Execute the plan's graph walk as a per-shard fan-out (see
  /// PlannerOptions::shard_fanout). The engine still falls back to the
  /// global snapshot when its sharded snapshot is mid-rebuild.
  bool shard_fanout = false;
  /// Cost estimates (abstract units; comparable within one plan call).
  double est_direct_cost = 0.0;
  double est_view_cost = 0.0;
};

/// Estimated cost of evaluating `q` directly on a graph with statistics
/// `gs`: per-edge candidate-set x degree work, scaled by the edge-bound BFS
/// factor. Exposed for tests and the throughput bench.
double EstimateDirectCost(const Pattern& q, const GraphStatistics& gs,
                          uint32_t bounded_cost_cap);

/// Plans `q` against the registered `views`. `exts` must be parallel to
/// `views` (the engine's extension vector). `materialized` (parallel to
/// `views` when given) says which extensions are live in the cache; cold
/// views get their materialization cost charged to the view plan. Without
/// it, an extension with no view edges is treated as cold — which cannot
/// tell a cached view that matched nothing from a truly cold one, so pass
/// the flags when a cache is involved.
Result<QueryPlan> PlanQuery(const Pattern& q, const ViewSet& views,
                            const std::vector<ViewExtension>& exts,
                            const GraphStatistics& gs,
                            const PlannerOptions& opts = {},
                            const std::vector<uint8_t>* materialized = nullptr);

}  // namespace gpmv

#endif  // GPMV_ENGINE_PLANNER_H_
