/// \file view_cache.h
/// \brief The materialized-view cache of the query engine: a registry of
/// view definitions whose extensions V(G) are materialized lazily, kept
/// fresh by incremental maintenance, and evicted LRU under a byte budget.
///
/// Concurrency contract — the cache is a passive structure governed by the
/// engine's registry lock (a shared_mutex owned by QueryEngine):
///
///  * methods marked [shared] are called with the registry lock held in
///    shared mode; several query threads run them concurrently, so the
///    recency list, pin counts, and counters they touch are protected by an
///    internal metadata mutex;
///  * methods marked [exclusive] mutate extension payloads (install, evict,
///    refresh, register) and require the registry lock in exclusive mode —
///    no reader can be inside extensions() data while they run.
///
/// A *pinned* entry (pin_count > 0) is in use by an in-flight query and is
/// never evicted; queries pin every view their plan reads and unpin on
/// completion, which is what makes "evict under budget" safe next to
/// concurrent MatchJoin runs. Eviction resets the extension to an empty
/// placeholder (the vector stays parallel to the definitions, which is the
/// shape MatchJoin consumes) and the accounting counters stay consistent:
/// bytes_cached always equals the sum of ApproxBytes over materialized
/// entries plus their cached relations.

#ifndef GPMV_ENGINE_VIEW_CACHE_H_
#define GPMV_ENGINE_VIEW_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/maintenance.h"
#include "core/view.h"
#include "graph/graph.h"

namespace gpmv {

/// Cache sizing knobs.
struct ViewCacheOptions {
  /// Byte budget for materialized extensions (+ cached relations).
  size_t budget_bytes = 64u << 20;
};

/// Observability counters; bytes/materialized reflect the current state,
/// the rest are monotone totals.
struct ViewCacheStats {
  size_t hits = 0;        ///< TryPinMaterialized found a live extension
  size_t misses = 0;      ///< TryPinMaterialized found none
  size_t evictions = 0;   ///< entries reset by EnforceBudget/Evict
  size_t installs = 0;    ///< extensions installed (first materialization too)
  size_t duplicate_installs = 0;  ///< lost install races (work discarded)
  size_t refreshes = 0;           ///< maintenance refreshes applied
  size_t refreshes_skipped = 0;   ///< deletion prescreen skipped a refresh
  size_t bytes_cached = 0;        ///< current footprint
  size_t materialized = 0;        ///< currently live extensions
  size_t registered = 0;          ///< view definitions in the registry
  size_t over_budget = 0;         ///< installs that left pinned bytes > budget

  /// Distance-index I(V) health (see distance_index()):
  size_t distance_entries = 0;    ///< tracked (v, v') pairs
  size_t distance_repairs = 0;    ///< dirty sources repaired after deletions
  size_t distance_shortened = 0;  ///< entries shortened by insert maintenance
};

/// Registry of view definitions + LRU-evicted materialized extensions.
class ViewCache {
 public:
  explicit ViewCache(ViewCacheOptions opts = {});

  /// [exclusive] Registers a definition; returns its dense view id.
  uint32_t Register(ViewDefinition def);

  /// [shared] The registered definitions (ids are indices).
  const ViewSet& views() const { return views_; }

  /// [shared] Extensions parallel to views(); evicted/cold entries are empty
  /// placeholders. Stable reference while the registry lock is held.
  const std::vector<ViewExtension>& extensions() const { return exts_; }

  /// [shared] If view `v` is materialized: pin it, mark it recently used,
  /// count a hit, return true. Otherwise count a miss and return false.
  bool TryPinMaterialized(uint32_t v);

  /// [shared] Drops one pin acquired by TryPinMaterialized / Install(pin).
  void Unpin(uint32_t v);

  /// [exclusive] Installs a freshly materialized extension (and the node
  /// relation that seeds decremental maintenance). Returns true on install;
  /// false when the view is already materialized (a concurrent query won the
  /// race — the argument is discarded and only counted). When `pin`, the
  /// entry is pinned either way. Runs EnforceBudget internally.
  bool Install(uint32_t v, ViewExtension ext,
               std::vector<std::vector<NodeId>> relation, bool pin);

  /// [exclusive] Evicts view `v` now if materialized and unpinned.
  bool Evict(uint32_t v);

  /// [exclusive] Evicts least-recently-used unpinned entries until
  /// bytes_cached <= budget; returns the number evicted.
  size_t EnforceBudget();

  /// [exclusive] Maintenance sweep after a graph-update batch, two-phased
  /// per materialized view (core/maintenance.h):
  ///
  ///  * deletions (against `after_deletions`, the snapshot frozen after the
  ///    batch's deletions and before its insertions; null when the batch
  ///    deleted nothing): decremental seeded refresh, with the
  ///    constant-time prescreen skipping plain simulation views untouched
  ///    by every edge of `deleted`;
  ///  * insertions (against `final_snap`, the batch's final snapshot):
  ///    localized delta-insert — plain views via DeltaSimulationInsert,
  ///    bounded views via DeltaBoundedInsert + the bounded ball merge —
  ///    re-materializing only on fallback. A view the insert phase would
  ///    re-materialize anyway (delta disabled) skips its deletion refresh
  ///    and re-materializes once against `final_snap`.
  ///
  /// The distance index rides along: deletions dirty the affected-ball
  /// sources (repaired against `final_snap` at the end of the sweep),
  /// insertions min-update tracked entries and absorb the bounded merges'
  /// fresh pairs. Byte accounting is rebuilt per entry; `delta_stats`
  /// (optional) accumulates the insert-path counters.
  Status RefreshForUpdates(const GraphSnapshot* after_deletions,
                           const GraphSnapshot& final_snap,
                           const std::vector<NodePair>& deleted,
                           const std::vector<NodePair>& inserted,
                           const InsertMaintenanceOptions& opts,
                           InsertMaintenanceStats* delta_stats = nullptr);

  /// [shared] Is `v` currently materialized? (Racy snapshot — use
  /// TryPinMaterialized to act on the answer.)
  bool IsMaterialized(uint32_t v) const;

  /// [shared] Materialization flag per registered view (one consistent
  /// snapshot; advisory, as above — feeds the planner's cost model).
  std::vector<uint8_t> MaterializedSnapshot() const;

  ViewCacheStats stats() const;
  size_t budget_bytes() const { return opts_.budget_bytes; }

  /// [exclusive] The paper's distance index I(V) over every bounded pair
  /// ever materialized, maintained incrementally by Install +
  /// RefreshForUpdates (core/distance_index.h). Contract: a superset of
  /// the live bounded extensions' pairs, each entry an exact shortest
  /// nonempty distance in the current graph — eviction never prunes it
  /// (extra exact entries are harmless to BMatchJoin's lenient check).
  const DistanceIndex& distance_index() const { return dindex_; }

  /// [exclusive] Test/debug invariant check: bytes_cached equals the
  /// recomputed footprint of the materialized entries, the LRU list holds
  /// exactly the materialized views, stats_.materialized matches, and —
  /// when `expect_unpinned` — every pin has been released.
  bool CheckConsistency(bool expect_unpinned) const;

 private:
  struct Entry {
    bool materialized = false;
    uint32_t pin_count = 0;
    size_t bytes = 0;
    /// Node relation at materialization time; seeds decremental refresh.
    std::vector<std::vector<NodeId>> relation;
    /// Position in lru_ when materialized.
    std::list<uint32_t>::iterator lru_pos;
  };

  static size_t EntryBytes(const ViewExtension& ext,
                           const std::vector<std::vector<NodeId>>& relation);

  /// Callers hold meta_mu_; EvictLocked additionally expects `v` already
  /// unlinked from lru_.
  void EvictLocked(uint32_t v);
  size_t EnforceBudgetLocked();
  /// Feeds every (pair, distance) of bounded view `v`'s extension into the
  /// distance index. Caller holds meta_mu_.
  void IndexBoundedExtensionLocked(uint32_t v);

  ViewCacheOptions opts_;
  ViewSet views_;
  std::vector<ViewExtension> exts_;
  DistanceIndex dindex_;

  mutable std::mutex meta_mu_;
  std::vector<Entry> entries_;
  std::list<uint32_t> lru_;  ///< most-recently-used at the front
  ViewCacheStats stats_;
};

}  // namespace gpmv

#endif  // GPMV_ENGINE_VIEW_CACHE_H_
