#include "engine/query_engine.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "core/maintenance.h"
#include "core/match_join.h"
#include "core/view_selection.h"
#include "pattern/pattern_io.h"
#include "simulation/bounded.h"

namespace gpmv {

namespace {

/// Retries of the compute-then-install dance before giving up; only
/// concurrent update batches landing mid-materialization consume attempts.
constexpr int kMaxInstallRetries = 8;

/// Sorted intersection helper for candidate seeding.
std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

QueryEngine::QueryEngine(Graph g, EngineOptions opts)
    : opts_(opts),
      graph_(std::move(g)),
      gstats_(ComputeStatistics(graph_)),
      snapshot_(graph_.Freeze()),
      cache_(opts.cache),
      result_cache_(opts.result_cache),
      pool_(opts.pool) {
  if (opts_.sharding.num_shards > 1) {
    // Let the planner mark fan-out-eligible plans (it cannot see the
    // engine's sharded state otherwise).
    opts_.planner.shard_fanout = true;
    ThreadPoolOptions po;
    po.num_threads = opts_.shard_pool_threads != 0
                         ? opts_.shard_pool_threads
                         : opts_.sharding.num_shards;
    shard_pool_ = std::make_unique<ThreadPool>(po);
    sharded_ =
        ShardedSnapshot::Build(snapshot_, opts_.sharding, shard_pool_.get());
    shard_parent_ = snapshot_;
  }
}

QueryEngine::~QueryEngine() {
  pool_.Shutdown();
  if (shard_pool_ != nullptr) shard_pool_->Shutdown();
}

Result<uint32_t> QueryEngine::RegisterView(const std::string& name,
                                           Pattern pattern) {
  if (pattern.num_edges() == 0) {
    return Status::InvalidArgument("view pattern has no edges");
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.Register(ViewDefinition{name, std::move(pattern)});
}

Status QueryEngine::WarmViews() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  for (uint32_t v = 0; v < cache_.views().card(); ++v) {
    if (cache_.IsMaterialized(v)) continue;
    ViewExtension ext;
    std::vector<std::vector<NodeId>> relation;
    GPMV_RETURN_NOT_OK(RefreshViewExtension(cache_.views().view(v),
                                            *snapshot_,
                                            /*seeded=*/false, &ext,
                                            &relation));
    cache_.Install(v, std::move(ext), std::move(relation), /*pin=*/false);
  }
  return Status::OK();
}

QueryResponse QueryEngine::Query(const Pattern& q) { return Execute(q); }

Result<std::future<QueryResponse>> QueryEngine::Submit(Pattern q) {
  auto task = std::make_shared<std::packaged_task<QueryResponse()>>(
      [this, query = std::move(q)] { return Execute(query); });
  std::future<QueryResponse> fut = task->get_future();
  GPMV_RETURN_NOT_OK(pool_.Submit([task] { (*task)(); }));
  return fut;
}

QueryResponse QueryEngine::Execute(const Pattern& q) {
  RecordWorkload(q);
  QueryResponse resp;
  MatchJoinStats join_stats;
  ShardSimStats shard_stats;
  bool shard_fallback = false;

  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    Stopwatch sw;
    const std::vector<uint8_t> live = cache_.MaterializedSnapshot();
    Result<QueryPlan> planned = PlanQuery(q, cache_.views(),
                                          cache_.extensions(), gstats_,
                                          opts_.planner, &live);
    if (!planned.ok()) {
      resp.status = planned.status();
    } else {
      QueryPlan plan = std::move(planned).value();
      resp.plan = plan.kind;
      resp.views_used = plan.views_needed;
      resp.plan_ms = sw.ElapsedMillis();
      sw.Restart();

      // The version pair the response reports: re-read below if pinning
      // dropped the lock across an update batch.
      resp.snapshot_version = snapshot_->version();
      resp.applied_through_ts = applied_through_ts();

      // Full-result cache: a repeat of the same minimized query against the
      // same graph version skips pinning, materialization and the fixpoint.
      // The cache stores the *minimized-shape* result, so queries sharing a
      // minimized form share one entry and expand through their own map.
      std::string rc_key;
      if (result_cache_.enabled()) {
        rc_key = PatternToText(plan.minimized.pattern);
        MatchResult cached;
        if (result_cache_.Lookup(rc_key, snapshot_->version(), &cached)) {
          resp.result_cached = true;
          resp.result = ExpandMinimized(plan.minimized, q, std::move(cached));
        }
      }

      std::vector<uint32_t> pinned;
      bool warm = true;
      Status st = resp.result_cached
                      ? Status::OK()
                      : PinOrMaterialize(plan.views_needed, lk, &pinned, &warm);
      if (resp.result_cached) {
        // Served from the memo above; nothing to pin or evaluate.
      } else if (st.ok()) {
        resp.warm = warm && plan.kind != PlanKind::kDirect;
        // Every plan kind reads the same frozen snapshot: queries never walk
        // the mutable adjacency vectors, even while other workers run.
        const GraphSnapshot& snap = *snapshot_;
        resp.snapshot_version = snap.version();
        resp.applied_through_ts = applied_through_ts();
        // Fan-out-marked plans run per shard when the published slice set
        // matches the registry's version; mid-rebuild they fall back to the
        // (already current) global snapshot rather than mixing versions.
        std::shared_ptr<const ShardedSnapshot> ss;
        if (plan.shard_fanout && shard_pool_ != nullptr) {
          {
            std::lock_guard<std::mutex> slk(sharded_mu_);
            ss = sharded_;
          }
          if (ss != nullptr && ss->version() != snap.version()) {
            ss.reset();
            shard_fallback = true;
          }
        }
        resp.sharded = ss != nullptr;
        // Evaluate in the minimized shape; the memo stores that shape (so
        // all queries with the same quotient share it) and expansion back
        // to q's shape happens once at the end.
        Result<MatchResult> r = [&]() -> Result<MatchResult> {
          switch (plan.kind) {
            case PlanKind::kMatchJoin:
              return MatchJoin(plan.minimized.pattern, cache_.views(),
                               cache_.extensions(), plan.mapping, {},
                               &join_stats);
            case PlanKind::kPartialViews:
              return ExecutePartial(plan, snap, ss.get(), &shard_stats);
            case PlanKind::kDirect:
              break;
          }
          return ss != nullptr
                     ? ShardedMatchSimulation(plan.minimized.pattern, *ss,
                                              shard_pool_.get(),
                                              /*dual=*/false,
                                              /*seed=*/nullptr, &shard_stats)
                     : MatchBoundedSimulation(plan.minimized.pattern, snap);
        }();
        if (r.ok()) {
          if (result_cache_.enabled()) {
            // snap is the state actually read (re-read after pinning, which
            // may have dropped the lock across an update batch).
            result_cache_.Insert(rc_key, snap.version(), *r);
          }
          resp.result = ExpandMinimized(plan.minimized, q, std::move(r).value());
        } else {
          resp.status = r.status();
        }
      } else {
        resp.status = st;
      }
      for (uint32_t v : pinned) cache_.Unpin(v);
      resp.exec_ms = sw.ElapsedMillis();
    }
  }

  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    counters_.join.Merge(join_stats);
    ++counters_.queries;
    if (!resp.status.ok()) ++counters_.failed_queries;
    if (resp.warm) ++counters_.warm_queries;
    if (resp.sharded) {
      ++counters_.sharded_queries;
      counters_.shard.Merge(shard_stats);
    }
    if (shard_fallback) ++counters_.shard_fallbacks;
    switch (resp.plan) {
      case PlanKind::kMatchJoin:
        ++counters_.plans_match_join;
        break;
      case PlanKind::kPartialViews:
        ++counters_.plans_partial;
        break;
      case PlanKind::kDirect:
        ++counters_.plans_direct;
        break;
    }
  }
  return resp;
}

Status QueryEngine::PinOrMaterialize(const std::vector<uint32_t>& needed,
                                     std::shared_lock<std::shared_mutex>& lk,
                                     std::vector<uint32_t>* pinned,
                                     bool* warm) {
  for (uint32_t v : needed) {
    if (cache_.TryPinMaterialized(v)) {
      pinned->push_back(v);
      continue;
    }
    *warm = false;
    bool installed = false;
    for (int attempt = 0; attempt < kMaxInstallRetries && !installed;
         ++attempt) {
      // Materialize under the shared lock from the frozen snapshot, so
      // other queries keep running meanwhile.
      const uint64_t version = graph_version_;
      ViewExtension ext;
      std::vector<std::vector<NodeId>> relation;
      GPMV_RETURN_NOT_OK(RefreshViewExtension(cache_.views().view(v),
                                              *snapshot_,
                                              /*seeded=*/false, &ext,
                                              &relation));
      lk.unlock();
      {
        std::unique_lock<std::shared_mutex> ul(mu_);
        if (graph_version_ == version) {
          // Install (or lose the race to a concurrent query — either way
          // the view is live) and pin before anyone can evict it.
          cache_.Install(v, std::move(ext), std::move(relation),
                         /*pin=*/true);
          pinned->push_back(v);
          installed = true;
        }
        // else: an update batch landed while we computed; recompute from
        // the fresh graph.
      }
      lk.lock();
    }
    if (!installed) {
      return Status::Internal(
          "view materialization kept racing update batches");
    }
  }
  return Status::OK();
}

Result<MatchResult> QueryEngine::ExecutePartial(const QueryPlan& plan,
                                                const GraphSnapshot& snap,
                                                const ShardedSnapshot* sharded,
                                                ShardSimStats* shard_stats) {
  const Pattern& mq = plan.minimized.pattern;
  std::vector<std::vector<NodeId>> seed;
  GPMV_RETURN_NOT_OK(ComputeCandidateSets(mq, snap, &seed));
  const std::vector<ViewExtension>& exts = cache_.extensions();

  // Tighten each node's candidates with the merged sources of every covered
  // out-edge: a node in the maximum relation must witness all its out-edges,
  // and view pairs over-approximate each witness set (distance-filtered to
  // the query's own bound). In-edges stay unconstrained — forward simulation
  // does not force relation members to appear as targets.
  for (uint32_t u = 0; u < mq.num_nodes(); ++u) {
    for (uint32_t e : mq.out_edges(u)) {
      if (plan.partial_lambda[e].empty()) continue;
      const PatternEdge& pe = mq.edge(e);
      std::vector<NodeId> sources;
      for (const ViewEdgeRef& ref : plan.partial_lambda[e]) {
        const ViewEdgeExtension& vee = exts[ref.view].edge(ref.edge);
        for (size_t i = 0; i < vee.pairs.size(); ++i) {
          if (pe.bound != kUnbounded && vee.distances[i] > pe.bound) continue;
          sources.push_back(vee.pairs[i].first);
        }
      }
      std::sort(sources.begin(), sources.end());
      sources.erase(std::unique(sources.begin(), sources.end()),
                    sources.end());
      seed[u] = Intersect(seed[u], sources);
    }
  }
  if (sharded != nullptr) {
    // Same seeds, same fixpoint — just partitioned by data-node ownership;
    // the parity property tests pin the results to the unsharded path.
    return ShardedMatchSimulation(mq, *sharded, shard_pool_.get(),
                                  /*dual=*/false, &seed, shard_stats);
  }
  return MatchBoundedSimulation(mq, snap, /*distances=*/nullptr, &seed);
}

MatchResult QueryEngine::ExpandMinimized(const MinimizedPattern& min,
                                         const Pattern& original,
                                         MatchResult result) {
  if (!min.changed) {
    result.Normalize();
    return result;
  }
  MatchResult out = MatchResult::Empty(original);
  if (!result.matched()) return out;
  for (uint32_t e = 0; e < original.num_edges(); ++e) {
    *out.mutable_edge_matches(e) = result.edge_matches(min.edge_map[e]);
  }
  out.set_matched(true);
  out.Normalize();
  out.DeriveNodeMatches(original);
  return out;
}

Status QueryEngine::ApplyUpdates(const std::vector<EdgeUpdate>& batch) {
  return ApplyUpdatesInternal(batch, /*through_ts=*/0);
}

Status QueryEngine::ApplyStreamBatch(const std::vector<EdgeUpdate>& batch,
                                     uint64_t through_ts) {
  return ApplyUpdatesInternal(batch, through_ts);
}

void QueryEngine::MergeStreamStats(const StreamStats& delta) {
  std::lock_guard<std::mutex> lk(agg_mu_);
  counters_.stream.Merge(delta);
}

Status QueryEngine::ApplyUpdatesInternal(const std::vector<EdgeUpdate>& batch,
                                         uint64_t through_ts) {
  size_t inserted_count = 0;
  size_t deleted_count = 0;
  InsertMaintenanceStats delta_stats;
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    for (const EdgeUpdate& up : batch) {
      if (up.u >= graph_.num_nodes() || up.v >= graph_.num_nodes()) {
        return Status::InvalidArgument("update references unknown node");
      }
    }
    // Phase 1 — deletions (batches have set semantics: all deletions land
    // before any insertion; see the header contract). The intermediate
    // freeze gives the decremental refresh a snapshot that contains none
    // of the batch's insertions; it is never published to queries.
    std::vector<NodePair> deleted;
    std::vector<NodePair> inserted;
    std::vector<NodePair> touched;
    for (const EdgeUpdate& up : batch) {
      if (up.kind != EdgeUpdate::Kind::kDelete) continue;
      Status st = graph_.RemoveEdge(up.u, up.v);
      if (st.ok()) {
        deleted.emplace_back(up.u, up.v);
        ++deleted_count;
        touched.emplace_back(up.u, up.v);
      } else if (st.code() != Status::Code::kNotFound) {
        return st;
      }
    }
    std::shared_ptr<const GraphSnapshot> after_deletions;
    if (!deleted.empty()) after_deletions = graph_.Freeze();
    // Phase 2 — insertions.
    for (const EdgeUpdate& up : batch) {
      if (up.kind != EdgeUpdate::Kind::kInsert) continue;
      if (graph_.AddEdgeIfAbsent(up.u, up.v)) {
        inserted.emplace_back(up.u, up.v);
        ++inserted_count;
        touched.emplace_back(up.u, up.v);
      }
    }
    ++graph_version_;
    // Re-freeze (incrementally — the graph tracked which adjacency rows the
    // batch touched) and publish the new snapshot version to queries before
    // refreshing cached extensions from it.
    snapshot_ = graph_.Freeze();
    if (shard_pool_ != nullptr) {
      // Hand the endpoints (of both phases) and the frozen parent to the
      // slice-rebuild phase; it runs after this exclusive section so
      // queries are not blocked on slice re-freezing (they fall back to
      // the global snapshot until the new ShardedSnapshot publishes).
      std::lock_guard<std::mutex> slk(shard_pending_mu_);
      shard_pending_.insert(shard_pending_.end(), touched.begin(),
                            touched.end());
      shard_parent_ = snapshot_;
    }
    GPMV_RETURN_NOT_OK(cache_.RefreshForUpdates(after_deletions.get(),
                                                *snapshot_, deleted, inserted,
                                                opts_.maintenance,
                                                &delta_stats));
    // Edge updates change neither node count nor label histogram, so the
    // fields the planner reads stay exact in O(1); the degree-profile
    // details are recomputed lazily by graph_statistics().
    gstats_.num_edges = graph_.num_edges();
    gstats_.avg_out_degree =
        graph_.num_nodes() == 0
            ? 0.0
            : static_cast<double>(graph_.num_edges()) /
                  static_cast<double>(graph_.num_nodes());
    stats_dirty_ = true;
    if (through_ts != 0) {
      // Streamed batch: stamp the published snapshot's applied-through
      // watermark — only now, after the whole batch (including extension
      // maintenance above) succeeded, so a failed batch never advances the
      // watermark past ops its caller will report as dropped. max()
      // because a manual ApplyUpdates interleaved between stream batches
      // must not regress it (the applier's timestamps are monotone).
      uint64_t prev = applied_through_ts_.load(std::memory_order_relaxed);
      if (through_ts > prev) {
        applied_through_ts_.store(through_ts, std::memory_order_release);
      }
    }
  }
  if (shard_pool_ != nullptr) RefreshSharded();
  std::lock_guard<std::mutex> lk(agg_mu_);
  ++counters_.update_batches;
  counters_.edges_inserted += inserted_count;
  counters_.edges_deleted += deleted_count;
  counters_.delta.Merge(delta_stats);
  return Status::OK();
}

void QueryEngine::RefreshSharded() {
  std::lock_guard<std::mutex> phase(shard_rebuild_mu_);
  std::vector<NodePair> pending;
  std::shared_ptr<const GraphSnapshot> parent;
  {
    std::lock_guard<std::mutex> plk(shard_pending_mu_);
    pending.swap(shard_pending_);
    parent = shard_parent_;
  }
  std::shared_ptr<const ShardedSnapshot> base;
  {
    std::lock_guard<std::mutex> slk(sharded_mu_);
    base = sharded_;
  }
  if (parent == nullptr || base->version() == parent->version()) {
    return;  // a concurrent batch's phase already covered our endpoints
  }
  std::vector<uint32_t> affected;
  if (parent->num_nodes() != base->parent().num_nodes()) {
    for (uint32_t s = 0; s < base->num_shards(); ++s) affected.push_back(s);
  } else {
    affected = base->AffectedShards(pending);
  }
  // Only the affected slices rebuild (in parallel on the fan-out pool);
  // the rest stay shared with `base` untouched.
  std::shared_ptr<const ShardedSnapshot> next =
      ShardedSnapshot::Rebuild(parent, *base, affected, shard_pool_.get());
  {
    std::lock_guard<std::mutex> slk(sharded_mu_);
    sharded_ = next;
  }
  std::lock_guard<std::mutex> lk(agg_mu_);
  counters_.slices_rebuilt += affected.size();
  counters_.slices_reused += base->num_shards() - affected.size();
}

std::shared_ptr<const ShardedSnapshot> QueryEngine::sharded_snapshot() const {
  std::lock_guard<std::mutex> lk(sharded_mu_);
  return sharded_;
}

Result<size_t> QueryEngine::AdmitFromWorkload(size_t max_views) {
  std::vector<Pattern> history;
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    history.assign(workload_.begin(), workload_.end());
  }
  if (history.empty() || max_views == 0) return size_t{0};

  ViewSet candidates = CandidateViewsFromWorkload(history);
  if (candidates.card() == 0) return size_t{0};
  ViewSelectionOptions sel_opts;
  sel_opts.max_views = max_views;
  Result<ViewSelectionResult> sel =
      SelectViews(history, candidates, sel_opts);
  GPMV_RETURN_NOT_OK(sel.status());

  std::unique_lock<std::shared_mutex> lk(mu_);
  std::unordered_set<std::string> existing;
  for (const ViewDefinition& def : cache_.views().views()) {
    existing.insert(PatternToText(def.pattern));
  }
  size_t added = 0;
  for (uint32_t ci : sel->selected) {
    const ViewDefinition& cand = candidates.view(ci);
    std::string text = PatternToText(cand.pattern);
    if (!existing.insert(std::move(text)).second) continue;
    cache_.Register(ViewDefinition{
        "auto_" + std::to_string(cache_.views().card()), cand.pattern});
    ++added;
  }
  return added;
}

void QueryEngine::RecordWorkload(const Pattern& q) {
  if (opts_.workload_history_limit == 0) return;
  std::lock_guard<std::mutex> lk(agg_mu_);
  workload_.push_back(q);
  while (workload_.size() > opts_.workload_history_limit) {
    workload_.pop_front();
  }
}

bool QueryEngine::CheckCacheConsistency(bool expect_unpinned) const {
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.CheckConsistency(expect_unpinned);
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    out = counters_;
  }
  out.cache = cache_.stats();
  out.pool = pool_.stats();
  out.result_cache = result_cache_.stats();
  return out;
}

GraphStatistics QueryEngine::graph_statistics() const {
  if (stats_dirty_.load(std::memory_order_acquire)) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    if (stats_dirty_.load(std::memory_order_relaxed)) {
      gstats_ = ComputeStatistics(graph_);
      stats_dirty_.store(false, std::memory_order_release);
    }
    return gstats_;
  }
  std::shared_lock<std::shared_mutex> lk(mu_);
  return gstats_;
}

size_t QueryEngine::num_views() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return cache_.views().card();
}

size_t QueryEngine::num_graph_nodes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return graph_.num_nodes();
}

size_t QueryEngine::num_graph_edges() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return graph_.num_edges();
}

}  // namespace gpmv
