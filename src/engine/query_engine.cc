#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/exec_context.h"
#include "common/stopwatch.h"
#include "core/maintenance.h"
#include "core/match_join.h"
#include "core/view_selection.h"
#include "pattern/pattern_io.h"
#include "simulation/bounded.h"

namespace gpmv {

namespace {

/// Retries of the compute-then-install dance before giving up; only
/// concurrent update batches landing mid-materialization consume attempts.
constexpr int kMaxInstallRetries = 8;

/// Sorted intersection helper for candidate seeding.
std::vector<NodeId> Intersect(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Query-pool options with the per-task executor histograms wired in (the
/// pool is constructed in the init list, before InitMetrics runs).
ThreadPoolOptions QueryPoolOptions(const EngineOptions& opts,
                                   obs::MetricsRegistry* metrics) {
  ThreadPoolOptions po = opts.pool;
  po.fault = opts.fault;
  if (opts.obs.enabled) {
    po.obs.queue_wait_us = metrics->FindOrCreateHistogram("exec.queue_wait_us");
    po.obs.run_us = metrics->FindOrCreateHistogram("exec.run_us");
  }
  return po;
}

uint64_t ToMicros(double ms) {
  return ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1000.0);
}

}  // namespace

QueryEngine::QueryEngine(Graph g, EngineOptions opts)
    : opts_(opts),
      graph_(std::move(g)),
      gstats_(ComputeStatistics(graph_)),
      chain_(opts.mvcc),
      snapshot_(graph_.Freeze()),
      cache_(opts.cache),
      result_cache_(opts.result_cache),
      pool_(QueryPoolOptions(opts, &metrics_)) {
  InitMetrics();
  // Seed the chain with the initial frozen state so AS OF before the first
  // streamed op (watermark 0) pins the pre-stream graph.
  SnapshotCut cut;
  cut.version = snapshot_->version();
  cut.slices = slice_clock_.Current();
  cut.watermark = 0;
  cut.max_applied_ts = 0;
  cut.snapshot = snapshot_;
  chain_.Publish(std::move(cut));
  if (opts_.sharding.num_shards > 1) {
    // Let the planner mark fan-out-eligible plans (it cannot see the
    // engine's sharded state otherwise).
    opts_.planner.shard_fanout = true;
    ThreadPoolOptions po;
    po.fault = opts_.fault;
    po.num_threads = opts_.shard_pool_threads != 0
                         ? opts_.shard_pool_threads
                         : opts_.sharding.num_shards;
    if (opts_.obs.enabled) {
      po.obs.queue_wait_us =
          metrics_.FindOrCreateHistogram("shard_exec.queue_wait_us");
      po.obs.run_us = metrics_.FindOrCreateHistogram("shard_exec.run_us");
    }
    shard_pool_ = std::make_unique<ThreadPool>(po);
    sharded_ =
        ShardedSnapshot::Build(snapshot_, opts_.sharding, shard_pool_.get());
    shard_parent_ = snapshot_;
  }
}

void QueryEngine::InitMetrics() {
  obs::MetricsRegistry& m = metrics_;
  h_.queries = m.FindOrCreateCounter("engine.queries");
  h_.queries_failed = m.FindOrCreateCounter("engine.queries_failed");
  h_.queries_warm = m.FindOrCreateCounter("engine.queries_warm");
  h_.queries_sharded = m.FindOrCreateCounter("engine.queries_sharded");
  h_.shard_fallbacks = m.FindOrCreateCounter("engine.shard_fallbacks");
  h_.plans_match_join = m.FindOrCreateCounter("engine.plans.match_join");
  h_.plans_partial = m.FindOrCreateCounter("engine.plans.partial");
  h_.plans_direct = m.FindOrCreateCounter("engine.plans.direct");
  h_.update_batches = m.FindOrCreateCounter("engine.update_batches");
  h_.edges_inserted = m.FindOrCreateCounter("engine.edges_inserted");
  h_.edges_deleted = m.FindOrCreateCounter("engine.edges_deleted");
  h_.slices_rebuilt = m.FindOrCreateCounter("engine.slices_rebuilt");
  h_.slices_reused = m.FindOrCreateCounter("engine.slices_reused");
  h_.slow_queries = m.FindOrCreateCounter("engine.slow_queries");
  h_.join_initial_pairs = m.FindOrCreateCounter("join.initial_pairs");
  h_.join_removed_pairs = m.FindOrCreateCounter("join.removed_pairs");
  h_.join_match_set_visits = m.FindOrCreateCounter("join.match_set_visits");
  h_.join_filtered_by_condition =
      m.FindOrCreateCounter("join.filtered_by_condition");
  h_.join_filtered_by_distance =
      m.FindOrCreateCounter("join.filtered_by_distance");
  h_.join_fixpoint_iterations =
      m.FindOrCreateCounter("join.fixpoint_iterations");
  h_.join_counters_zeroed = m.FindOrCreateCounter("join.counters_zeroed");
  h_.join_candidate_ranks = m.FindOrCreateCounter("join.candidate_ranks");
  h_.shard_rounds = m.FindOrCreateCounter("shard.rounds");
  h_.shard_removals = m.FindOrCreateCounter("shard.removals");
  h_.shard_messages = m.FindOrCreateCounter("shard.messages");
  h_.shard_frontier_msgs = m.FindOrCreateCounter("shard.frontier_msgs");
  h_.shard_fanout_width = m.FindOrCreateGauge("shard.fanout_width");
  h_.delta_refreshes = m.FindOrCreateCounter("delta.refreshes");
  h_.delta_fallbacks = m.FindOrCreateCounter("delta.fallbacks");
  h_.delta_affected_nodes = m.FindOrCreateCounter("delta.affected_nodes");
  h_.delta_relation_added = m.FindOrCreateCounter("delta.relation_added");
  h_.delta_matches_added = m.FindOrCreateCounter("delta.matches_added");
  h_.delta_bounded_refreshes =
      m.FindOrCreateCounter("delta.bounded_refreshes");
  h_.delta_bounded_matches_added =
      m.FindOrCreateCounter("delta.bounded_matches_added");
  h_.delta_fallback_not_simulation =
      m.FindOrCreateCounter("delta.fallback_not_simulation");
  h_.delta_fallback_unmatched =
      m.FindOrCreateCounter("delta.fallback_unmatched");
  h_.delta_fallback_area_too_large =
      m.FindOrCreateCounter("delta.fallback_area_too_large");
  h_.delta_fallback_disabled =
      m.FindOrCreateCounter("delta.fallback_disabled");
  h_.stream_ops_ingested = m.FindOrCreateCounter("stream.ops_ingested");
  h_.stream_ops_applied = m.FindOrCreateCounter("stream.ops_applied");
  h_.stream_ops_coalesced = m.FindOrCreateCounter("stream.ops_coalesced");
  h_.stream_ops_dropped = m.FindOrCreateCounter("stream.ops_dropped");
  h_.stream_batches_applied = m.FindOrCreateCounter("stream.batches_applied");
  h_.stream_apply_failures = m.FindOrCreateCounter("stream.apply_failures");
  h_.stream_flushes = m.FindOrCreateCounter("stream.flushes");
  h_.stream_retries = m.FindOrCreateCounter("stream.retries");
  h_.stream_quarantines = m.FindOrCreateCounter("stream.quarantines");
  h_.stream_revives = m.FindOrCreateCounter("stream.revives");
  h_.stream_redo_depth = m.FindOrCreateGauge("stream.redo_depth");
  h_.stream_queue_depth = m.FindOrCreateGauge("stream.queue_depth");
  h_.stream_queue_depth_max = m.FindOrCreateGauge("stream.queue_depth_max");
  h_.stream_max_batch_size = m.FindOrCreateGauge("stream.max_batch_size");
  h_.stream_publish_lag_max =
      m.FindOrCreateGauge("stream.publish_lag_ms_max");
  h_.stream_publish_lag_total =
      m.FindOrCreateGauge("stream.publish_lag_ms_total");
  h_.stream_applied_through =
      m.FindOrCreateGauge("stream.applied_through_ts");
  h_.stream_appliers = m.FindOrCreateGauge("stream.appliers");
  h_.stream_appliers->Set(1.0);
  h_.stream_batch_size = m.FindOrCreateHistogram("stream.batch_size");
  h_.mvcc_asof_queries = m.FindOrCreateCounter("mvcc.asof_queries");
  h_.mvcc_asof_misses = m.FindOrCreateCounter("mvcc.asof_misses");
  h_.mvcc_ryw_waits = m.FindOrCreateCounter("mvcc.ryw_waits");
  h_.mvcc_ryw_timeouts = m.FindOrCreateCounter("mvcc.ryw_timeouts");
  h_.deadline_exceeded = m.FindOrCreateCounter("engine.deadline_exceeded");
  h_.shed_queries = m.FindOrCreateCounter("engine.shed_queries");
  h_.degraded_queries = m.FindOrCreateCounter("engine.degraded_queries");
  h_.query_latency_us = m.FindOrCreateHistogram("query.latency_us");
  h_.query_plan_us = m.FindOrCreateHistogram("query.plan_us");
  h_.query_exec_us = m.FindOrCreateHistogram("query.exec_us");
  h_.query_queue_wait_us = m.FindOrCreateHistogram("query.queue_wait_us");
  h_.update_apply_us = m.FindOrCreateHistogram("update.apply_us");
  h_.update_delete_phase_us =
      m.FindOrCreateHistogram("update.delete_phase_us");
  h_.update_insert_phase_us =
      m.FindOrCreateHistogram("update.insert_phase_us");

  // net.* (src/net/server.h) is registered up front like everything else
  // so the names are present — and schema-pinnable — in every exporter
  // artifact, socket-served or file-driven; the server resolves the same
  // handles by name at Start.
  for (const char* name :
       {"net.connections_accepted", "net.connections_closed",
        "net.frames_received", "net.frames_sent", "net.queries",
        "net.updates", "net.protocol_errors", "net.errors_sent",
        "net.backpressure_parks", "net.backpressure_deadline",
        "net.bytes_read", "net.bytes_written", "net.flushes"}) {
    m.FindOrCreateCounter(name);
  }
  m.FindOrCreateGauge("net.open_connections");
  m.FindOrCreateHistogram("net.request_us");
  m.FindOrCreateHistogram("net.flush_bytes");
  // The file exporter's constructor also registers this, but a socket-only
  // run has no exporter — pre-register so stats frames served over the
  // wire validate against the same required_metrics pins.
  m.FindOrCreateCounter("obs.export_failures");

  // Component-owned stats (each guarded by its component's own lock)
  // surface as derived gauges in every snapshot. Running inside the gate
  // puts them in the same consistent cut as the raw metrics; none of the
  // component locks is ever held while a writer takes the gate, so the
  // ordering cannot deadlock.
  metrics_.AddCollector([this](obs::MetricsSnapshot* s) {
    const ViewCacheStats cs = cache_.stats();
    s->AddGauge("cache.hits", static_cast<double>(cs.hits));
    s->AddGauge("cache.misses", static_cast<double>(cs.misses));
    s->AddGauge("cache.evictions", static_cast<double>(cs.evictions));
    s->AddGauge("cache.installs", static_cast<double>(cs.installs));
    s->AddGauge("cache.duplicate_installs",
                static_cast<double>(cs.duplicate_installs));
    s->AddGauge("cache.refreshes", static_cast<double>(cs.refreshes));
    s->AddGauge("cache.refreshes_skipped",
                static_cast<double>(cs.refreshes_skipped));
    s->AddGauge("cache.bytes_cached", static_cast<double>(cs.bytes_cached));
    s->AddGauge("cache.materialized", static_cast<double>(cs.materialized));
    s->AddGauge("cache.registered", static_cast<double>(cs.registered));
    const double cache_lookups = static_cast<double>(cs.hits + cs.misses);
    s->AddGauge("cache.hit_rate",
                cache_lookups == 0.0 ? 0.0 : cs.hits / cache_lookups);
    s->AddGauge("distance_index.entries",
                static_cast<double>(cs.distance_entries));
    s->AddGauge("distance_index.repairs",
                static_cast<double>(cs.distance_repairs));
    s->AddGauge("distance_index.shortened",
                static_cast<double>(cs.distance_shortened));
    const ResultCacheStats rs = result_cache_.stats();
    s->AddGauge("result_cache.hits", static_cast<double>(rs.hits));
    s->AddGauge("result_cache.misses", static_cast<double>(rs.misses));
    s->AddGauge("result_cache.stale_drops",
                static_cast<double>(rs.stale_drops));
    s->AddGauge("result_cache.inserts", static_cast<double>(rs.inserts));
    s->AddGauge("result_cache.evictions", static_cast<double>(rs.evictions));
    s->AddGauge("result_cache.bytes_cached",
                static_cast<double>(rs.bytes_cached));
    s->AddGauge("result_cache.entries", static_cast<double>(rs.entries));
    const double rc_lookups = static_cast<double>(rs.hits + rs.misses);
    s->AddGauge("result_cache.hit_rate",
                rc_lookups == 0.0 ? 0.0 : rs.hits / rc_lookups);
    // MVCC chain state (its own mutex; never held while taking the gate).
    s->AddGauge("mvcc.chain_depth", static_cast<double>(chain_.depth()));
    s->AddGauge("mvcc.pinned_cuts", static_cast<double>(chain_.pinned_cuts()));
    s->AddGauge("mvcc.gc_collected",
                static_cast<double>(chain_.gc_collected()));
    const ThreadPoolStats ps = pool_.stats();
    s->AddGauge("pool.submitted", static_cast<double>(ps.submitted));
    s->AddGauge("pool.executed", static_cast<double>(ps.executed));
    s->AddGauge("pool.rejected", static_cast<double>(ps.rejected));
    s->AddGauge("pool.max_queue_depth",
                static_cast<double>(ps.max_queue_depth));
  });

  if (opts_.obs.enabled &&
      (opts_.obs.slow_query_ms > 0.0 &&
       (!opts_.obs.slow_query_path.empty() || opts_.obs.slow_query_sink))) {
    obs::SlowQueryLog::Options so;
    so.threshold_ms = opts_.obs.slow_query_ms;
    so.path = opts_.obs.slow_query_path;
    so.sink = opts_.obs.slow_query_sink;
    slow_log_ = std::make_unique<obs::SlowQueryLog>(std::move(so));
  }
}

QueryEngine::~QueryEngine() {
  pool_.Shutdown();
  if (shard_pool_ != nullptr) shard_pool_->Shutdown();
}

Result<uint32_t> QueryEngine::RegisterView(const std::string& name,
                                           Pattern pattern) {
  if (pattern.num_edges() == 0) {
    return Status::InvalidArgument("view pattern has no edges");
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.Register(ViewDefinition{name, std::move(pattern)});
}

Status QueryEngine::WarmViews() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  for (uint32_t v = 0; v < cache_.views().card(); ++v) {
    if (cache_.IsMaterialized(v)) continue;
    ViewExtension ext;
    std::vector<std::vector<NodeId>> relation;
    GPMV_RETURN_NOT_OK(RefreshViewExtension(cache_.views().view(v),
                                            *snapshot_,
                                            /*seeded=*/false, &ext,
                                            &relation));
    cache_.Install(v, std::move(ext), std::move(relation), /*pin=*/false);
  }
  return Status::OK();
}

QueryResponse QueryEngine::Query(const Pattern& q, const QueryOptions& qopts) {
  return Execute(q, qopts);
}

Result<std::future<QueryResponse>> QueryEngine::Submit(Pattern q,
                                                       QueryOptions qopts) {
  // The stopwatch rides into the task by value: when a worker picks the
  // task up, its elapsed time *is* the queue wait.
  Stopwatch queued;
  auto task = std::make_shared<std::packaged_task<QueryResponse()>>(
      [this, query = std::move(q), qopts, queued] {
        return Execute(query, qopts, queued.ElapsedMillis());
      });
  std::future<QueryResponse> fut = task->get_future();
  Status st = pool_.Submit([task] { (*task)(); });
  if (!st.ok()) {
    // Admission control (ThreadPoolOptions::shed_when_saturated) surfaces
    // as kResourceExhausted: the query was shed, not executed — count it
    // so overload is visible even though no QueryResponse exists for it.
    if (opts_.obs.enabled &&
        st.code() == Status::Code::kResourceExhausted) {
      h_.shed_queries->Add(1);
    }
    return st;
  }
  return fut;
}

Status QueryEngine::WaitForWatermark(uint64_t ts, double timeout_ms) {
  if (applied_through_ts() >= ts) return Status::OK();
  std::unique_lock<std::mutex> lk(watermark_mu_);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(timeout_ms * 1000.0));
  const bool covered = watermark_cv_.wait_until(
      lk, deadline, [&] { return applied_through_ts() >= ts; });
  if (covered) return Status::OK();
  return Status::DeadlineExceeded(
      "read-your-writes wait: watermark " +
      std::to_string(applied_through_ts()) + " never reached ts " +
      std::to_string(ts));
}

QueryResponse QueryEngine::Execute(const Pattern& q, const QueryOptions& qopts,
                                   double queue_wait_ms) {
  // Thread-local execution context for this query: the deadline the
  // cooperative checkpoints (here, the fixpoints, the shard merge rounds)
  // test, and the fault injector. Works without plumbing because the
  // unsharded fixpoints run on this thread and the sharded path's merge-
  // round barriers serialize back onto it.
  exec::Scope exec_scope(qopts.deadline_ms, opts_.fault);
  bool degraded = false;
  // Read-your-writes floor: block (bounded) until the published cut covers
  // the caller's last submitted op, before any lock is taken.
  if (qopts.min_applied_ts != 0 &&
      applied_through_ts() < qopts.min_applied_ts) {
    if (quarantined_slices() > 0 && opts_.degraded_serving) {
      // Degraded serving: a quarantined slice pins the watermark, so the
      // floor may simply never be reached — answer from the newest
      // published cut now, explicitly marked, instead of burning the
      // timeout against a watermark that will not move. (A healthy-but-
      // slow applier does not trigger this: the wait below still covers
      // the ordinary lag case.)
      degraded = true;
      if (opts_.obs.enabled) h_.degraded_queries->Add(1);
    } else {
      if (opts_.obs.enabled) h_.mvcc_ryw_waits->Add(1);
      // The wait honors whichever bound is tighter: the RYW timeout or
      // the query deadline.
      double timeout_ms = qopts.ryw_timeout_ms;
      bool deadline_bound = false;
      if (exec::DeadlineActive()) {
        const double remaining = exec::DeadlineRemainingMs();
        if (remaining < timeout_ms) {
          timeout_ms = remaining;
          deadline_bound = true;
        }
      }
      Status wait = WaitForWatermark(qopts.min_applied_ts, timeout_ms);
      if (!wait.ok()) {
        if (opts_.obs.enabled) {
          if (deadline_bound) {
            h_.deadline_exceeded->Add(1);
          } else {
            h_.mvcc_ryw_timeouts->Add(1);
          }
        }
        QueryResponse resp;
        resp.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
        resp.status = deadline_bound
                          ? Status::DeadlineExceeded("query deadline exceeded "
                                                     "during read-your-writes "
                                                     "wait")
                          : wait;
        resp.degraded = quarantined_slices() > 0;
        return resp;
      }
    }
  }
  if (qopts.as_of_ts != 0) return ExecuteAsOf(q, qopts, queue_wait_ms);
  RecordWorkload(q);
  QueryResponse resp;
  resp.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  MatchJoinStats join_stats;
  ShardSimStats shard_stats;
  bool shard_fallback = false;

  // Tracing is on when asked for explicitly or when the slow-query log
  // might need the span tree; the trace is private to this thread until
  // Finish() publishes it immutable.
  const bool tracing =
      opts_.obs.enabled &&
      (opts_.obs.trace || (slow_log_ != nullptr && slow_log_->enabled()));
  std::unique_ptr<obs::Trace> trace;
  if (tracing) {
    trace = std::make_unique<obs::Trace>(resp.trace_id, "query");
  }
  obs::Trace* tr = trace.get();
  if (tr != nullptr && queue_wait_ms >= 0.0) {
    obs::SpanScope wait(tr, "queue.wait");
    wait.Attr("wait_ms", queue_wait_ms);
  }
  Stopwatch total_sw;

  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    Stopwatch sw;
    obs::SpanScope plan_span(tr, "plan");
    const std::vector<uint8_t> live = cache_.MaterializedSnapshot();
    // The distance index's current size feeds the bounded-view cost
    // discount (tracked pairs re-verify via I(V) instead of ball walks).
    PlannerOptions popts = opts_.planner;
    popts.distance_index_entries = cache_.stats().distance_entries;
    Result<QueryPlan> planned = PlanQuery(q, cache_.views(),
                                          cache_.extensions(), gstats_,
                                          popts, &live);
    if (!planned.ok()) {
      resp.status = planned.status();
      plan_span.AttrBool("ok", false);
    } else {
      QueryPlan plan = std::move(planned).value();
      resp.plan = plan.kind;
      resp.views_used = plan.views_needed;
      resp.plan_ms = sw.ElapsedMillis();
      sw.Restart();
      plan_span.Attr("kind", std::string(PlanKindName(plan.kind)));
      plan_span.Attr("views_needed",
                     static_cast<uint64_t>(plan.views_needed.size()));
      plan_span.AttrBool("shard_fanout", plan.shard_fanout);
      plan_span.Close();

      // The version pair the response reports: re-read below if pinning
      // dropped the lock across an update batch.
      resp.snapshot_version = snapshot_->version();
      resp.applied_through_ts = applied_through_ts();

      // Full-result cache: a repeat of the same minimized query against the
      // same graph version skips pinning, materialization and the fixpoint.
      // The cache stores the *minimized-shape* result, so queries sharing a
      // minimized form share one entry and expand through their own map.
      std::string rc_key;
      if (result_cache_.enabled()) {
        obs::SpanScope rc_span(tr, "result_cache.lookup");
        rc_key = PatternToText(plan.minimized.pattern);
        MatchResult cached;
        if (result_cache_.Lookup(rc_key, snapshot_->version(), &cached)) {
          resp.result_cached = true;
          resp.result = ExpandMinimized(plan.minimized, q, std::move(cached));
        }
        rc_span.AttrBool("hit", resp.result_cached);
      }

      std::vector<uint32_t> pinned;
      bool warm = true;
      // Cooperative deadline checkpoints: post-plan (nothing pinned yet),
      // post-pin (the unconditional unwind below releases the pins), and
      // the post-fixpoint conversion — a deadline failure is always clean:
      // pins released, nothing partial memoized, caches undisturbed. A
      // memo hit above still serves (the cached answer is complete).
      Status st = exec::CheckDeadline();
      if (st.ok() && !resp.result_cached) {
        obs::SpanScope pin_span(tr, "view_cache.pin");
        st = PinOrMaterialize(plan.views_needed, lk, &pinned, &warm);
        pin_span.Attr("views", static_cast<uint64_t>(pinned.size()));
        pin_span.AttrBool("warm", warm);
        if (st.ok()) st = exec::CheckDeadline();
      }
      if (resp.result_cached) {
        // Served from the memo above; nothing to pin or evaluate.
      } else if (st.ok()) {
        resp.warm = warm && plan.kind != PlanKind::kDirect;
        // Every plan kind reads the same frozen snapshot: queries never walk
        // the mutable adjacency vectors, even while other workers run.
        const GraphSnapshot& snap = *snapshot_;
        resp.snapshot_version = snap.version();
        resp.applied_through_ts = applied_through_ts();
        // Fan-out-marked plans run per shard when the published slice set
        // matches the registry's version; mid-rebuild they fall back to the
        // (already current) global snapshot rather than mixing versions.
        std::shared_ptr<const ShardedSnapshot> ss;
        if (plan.shard_fanout && shard_pool_ != nullptr) {
          {
            std::lock_guard<std::mutex> slk(sharded_mu_);
            ss = sharded_;
          }
          if (ss != nullptr && ss->version() != snap.version()) {
            ss.reset();
            shard_fallback = true;
          }
        }
        resp.sharded = ss != nullptr;
        obs::SpanScope fix_span(tr, "fixpoint");
        fix_span.AttrBool("sharded", resp.sharded);
        // Evaluate in the minimized shape; the memo stores that shape (so
        // all queries with the same quotient share it) and expansion back
        // to q's shape happens once at the end.
        Result<MatchResult> r = [&]() -> Result<MatchResult> {
          switch (plan.kind) {
            case PlanKind::kMatchJoin:
              return MatchJoin(plan.minimized.pattern, cache_.views(),
                               cache_.extensions(), plan.mapping, {},
                               &join_stats);
            case PlanKind::kPartialViews:
              return ExecutePartial(plan, snap, ss.get(), &shard_stats);
            case PlanKind::kDirect:
              break;
          }
          // ShardedMatchBoundedSimulation routes unit-bound patterns to the
          // decrement-exchange engine and bounded ones to the BFS frontier
          // hand-off; both are bit-identical to the unsharded path.
          return ss != nullptr
                     ? ShardedMatchBoundedSimulation(plan.minimized.pattern,
                                                     *ss, shard_pool_.get(),
                                                     /*seed=*/nullptr,
                                                     &shard_stats)
                     : MatchBoundedSimulation(plan.minimized.pattern, snap);
        }();
        if (!r.ok() && resp.sharded &&
            r.status().code() != Status::Code::kDeadlineExceeded) {
          // Failure-domain failover: a merge round that died (e.g. the
          // `shard.merge_round` fault point) retries unsharded on the
          // global snapshot this query already holds — same answer,
          // smaller blast radius. A deadline failure propagates instead:
          // re-running an expired query would only overshoot further.
          shard_fallback = true;
          resp.sharded = false;
          if (plan.kind == PlanKind::kPartialViews) {
            r = ExecutePartial(plan, snap, nullptr, &shard_stats);
          } else {
            r = MatchBoundedSimulation(plan.minimized.pattern, snap);
          }
        }
        if (r.ok()) {
          // The fixpoints exit early on advisory expiry; whatever they
          // returned is then incomplete — convert it here, at the edge.
          Status dl = exec::CheckDeadline();
          if (!dl.ok()) r = dl;
        }
        if (plan.kind == PlanKind::kMatchJoin) {
          fix_span.Attr("iterations",
                        static_cast<uint64_t>(join_stats.fixpoint_iterations));
          fix_span.Attr("candidate_ranks",
                        static_cast<uint64_t>(join_stats.candidate_ranks));
        }
        if (tr != nullptr && resp.sharded) {
          // The shard sim reports its per-phase timings through the stats
          // struct; synthesize the fan-out subtree from them so the slow-
          // query log shows where a sharded query spent its time.
          obs::SpanScope fan(tr, "shard.fanout");
          fan.Attr("shards", static_cast<uint64_t>(shard_stats.shards));
          fan.Attr("rounds", static_cast<uint64_t>(shard_stats.rounds));
          fan.Attr("messages", static_cast<uint64_t>(shard_stats.messages));
          fan.Attr("frontier_msgs",
                   static_cast<uint64_t>(shard_stats.frontier_msgs));
          for (size_t i = 0; i < shard_stats.shard_ms.size(); ++i) {
            obs::SpanScope s(tr, ("shard." + std::to_string(i)).c_str());
            s.Attr("fixpoint_ms", shard_stats.shard_ms[i]);
          }
          for (size_t j = 1; j < shard_stats.round_ms.size(); ++j) {
            obs::SpanScope s(tr,
                             ("merge_round." + std::to_string(j)).c_str());
            s.Attr("phase_ms", shard_stats.round_ms[j]);
          }
        }
        fix_span.Close();
        if (r.ok()) {
          if (result_cache_.enabled()) {
            // snap is the state actually read (re-read after pinning, which
            // may have dropped the lock across an update batch).
            result_cache_.Insert(rc_key, snap.version(), *r);
          }
          resp.result = ExpandMinimized(plan.minimized, q, std::move(r).value());
        } else {
          resp.status = r.status();
        }
      } else {
        resp.status = st;
      }
      for (uint32_t v : pinned) cache_.Unpin(v);
      resp.exec_ms = sw.ElapsedMillis();
    }
  }
  // Degraded marker: set whenever a quarantine was active at read time —
  // both when the RYW wait was skipped above and for plain head reads,
  // whose answer may be missing the quarantined slice's retained ops.
  resp.degraded = degraded || quarantined_slices() > 0;

  if (opts_.obs.enabled) {
    // The counter tail updates as one group under the snapshot gate
    // (shared mode — concurrent queries never block each other here), so a
    // racing stats() snapshot sees a query's counters all-or-nothing.
    auto group = metrics_.Group();
    h_.queries->Add(1);
    if (!resp.status.ok()) h_.queries_failed->Add(1);
    if (resp.status.code() == Status::Code::kDeadlineExceeded) {
      h_.deadline_exceeded->Add(1);
    }
    if (resp.warm) h_.queries_warm->Add(1);
    if (resp.sharded) {
      h_.queries_sharded->Add(1);
      h_.shard_rounds->Add(shard_stats.rounds);
      h_.shard_removals->Add(shard_stats.removals);
      h_.shard_messages->Add(shard_stats.messages);
      h_.shard_frontier_msgs->Add(shard_stats.frontier_msgs);
      h_.shard_fanout_width->SetMax(static_cast<double>(shard_stats.shards));
    }
    if (shard_fallback) h_.shard_fallbacks->Add(1);
    switch (resp.plan) {
      case PlanKind::kMatchJoin:
        h_.plans_match_join->Add(1);
        break;
      case PlanKind::kPartialViews:
        h_.plans_partial->Add(1);
        break;
      case PlanKind::kDirect:
        h_.plans_direct->Add(1);
        break;
    }
    h_.join_initial_pairs->Add(join_stats.initial_pairs);
    h_.join_removed_pairs->Add(join_stats.removed_pairs);
    h_.join_match_set_visits->Add(join_stats.match_set_visits);
    h_.join_filtered_by_condition->Add(join_stats.filtered_by_condition);
    h_.join_filtered_by_distance->Add(join_stats.filtered_by_distance);
    h_.join_fixpoint_iterations->Add(join_stats.fixpoint_iterations);
    h_.join_counters_zeroed->Add(join_stats.counters_zeroed);
    h_.join_candidate_ranks->Add(join_stats.candidate_ranks);
    h_.query_plan_us->Record(ToMicros(resp.plan_ms));
    h_.query_exec_us->Record(ToMicros(resp.exec_ms));
    h_.query_latency_us->Record(ToMicros(total_sw.ElapsedMillis()));
    if (queue_wait_ms >= 0.0) {
      h_.query_queue_wait_us->Record(ToMicros(queue_wait_ms));
    }
  }
  if (tr != nullptr) FinishTrace(tr, &resp);
  return resp;
}

QueryResponse QueryEngine::ExecuteAsOf(const Pattern& q,
                                       const QueryOptions& qopts,
                                       double queue_wait_ms) {
  (void)queue_wait_ms;
  RecordWorkload(q);
  QueryResponse resp;
  resp.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  resp.as_of = true;
  Stopwatch total_sw;

  // Pin the newest retained prefix-consistent cut at or before as_of_ts;
  // the pin keeps GC away until this query returns.
  Result<SnapshotRef> pinned = chain_.PinAsOf(qopts.as_of_ts);
  if (!pinned.ok()) {
    if (opts_.obs.enabled) {
      auto group = metrics_.Group();
      h_.queries->Add(1);
      h_.queries_failed->Add(1);
      h_.mvcc_asof_queries->Add(1);
      h_.mvcc_asof_misses->Add(1);
    }
    resp.status = pinned.status();
    return resp;
  }
  SnapshotRef ref = std::move(pinned).value();
  const SnapshotCut& cut = ref.cut();
  resp.snapshot_version = cut.version;
  resp.applied_through_ts = cut.watermark;

  // Plan in historical mode under the shared lock (the planner reads the
  // view registry and statistics); the plan is always kDirect, so nothing
  // else below needs the registry — evaluation runs lock-free against the
  // pinned immutable cut.
  Stopwatch sw;
  Result<QueryPlan> planned = [&]() {
    std::shared_lock<std::shared_mutex> lk(mu_);
    PlannerOptions popts = opts_.planner;
    popts.historical = true;
    const std::vector<uint8_t> live = cache_.MaterializedSnapshot();
    return PlanQuery(q, cache_.views(), cache_.extensions(), gstats_, popts,
                     &live);
  }();
  if (!planned.ok()) {
    resp.status = planned.status();
  } else {
    QueryPlan plan = std::move(planned).value();
    resp.plan = plan.kind;
    resp.plan_ms = sw.ElapsedMillis();
    sw.Restart();
    // Memoize under the historical cut's version, in an AS OF-segregated
    // key: the memo's version-compare invalidation would otherwise let a
    // historical probe stale-drop the head's entry (and vice versa).
    std::string rc_key;
    if (result_cache_.enabled()) {
      rc_key = PatternToText(plan.minimized.pattern) + "\n#asof";
      MatchResult cached;
      if (result_cache_.Lookup(rc_key, cut.version, &cached)) {
        resp.result_cached = true;
        resp.result = ExpandMinimized(plan.minimized, q, std::move(cached));
      }
    }
    if (!resp.result_cached) {
      Result<MatchResult> r = [&]() -> Result<MatchResult> {
        GPMV_RETURN_NOT_OK(exec::CheckDeadline());
        return MatchBoundedSimulation(plan.minimized.pattern, *cut.snapshot);
      }();
      if (r.ok()) {
        // Same edge conversion as Execute: an advisory mid-fixpoint expiry
        // means the result is incomplete — fail clean, memoize nothing.
        Status dl = exec::CheckDeadline();
        if (!dl.ok()) r = dl;
      }
      if (r.ok()) {
        if (result_cache_.enabled()) {
          result_cache_.Insert(rc_key, cut.version, *r);
        }
        resp.result = ExpandMinimized(plan.minimized, q, std::move(r).value());
      } else {
        resp.status = r.status();
      }
    }
    resp.exec_ms = sw.ElapsedMillis();
  }
  ref.Release();

  if (opts_.obs.enabled) {
    auto group = metrics_.Group();
    h_.queries->Add(1);
    h_.mvcc_asof_queries->Add(1);
    if (!resp.status.ok()) h_.queries_failed->Add(1);
    if (resp.status.code() == Status::Code::kDeadlineExceeded) {
      h_.deadline_exceeded->Add(1);
    }
    h_.plans_direct->Add(1);
    h_.query_plan_us->Record(ToMicros(resp.plan_ms));
    h_.query_exec_us->Record(ToMicros(resp.exec_ms));
    h_.query_latency_us->Record(ToMicros(total_sw.ElapsedMillis()));
  }
  return resp;
}

void QueryEngine::FinishTrace(obs::Trace* trace, QueryResponse* resp) {
  obs::TraceSpan* root = trace->root();
  root->Attr("plan", std::string(PlanKindName(resp->plan)));
  root->Attr("snapshot_version", resp->snapshot_version);
  root->AttrBool("ok", resp->status.ok());
  root->AttrBool("warm", resp->warm);
  root->AttrBool("sharded", resp->sharded);
  root->AttrBool("result_cached", resp->result_cached);
  const double total_ms = trace->ElapsedMs();
  std::shared_ptr<const obs::TraceSpan> tree = trace->Finish();
  if (opts_.obs.trace) resp->trace = tree;
  if (slow_log_ != nullptr && slow_log_->enabled() &&
      total_ms >= slow_log_->threshold_ms()) {
    slow_log_->Log(obs::TraceToJsonLine(trace->id(), total_ms, *tree));
    h_.slow_queries->Add(1);
  }
}

Status QueryEngine::PinOrMaterialize(const std::vector<uint32_t>& needed,
                                     std::shared_lock<std::shared_mutex>& lk,
                                     std::vector<uint32_t>* pinned,
                                     bool* warm) {
  for (uint32_t v : needed) {
    if (cache_.TryPinMaterialized(v)) {
      pinned->push_back(v);
      continue;
    }
    *warm = false;
    bool installed = false;
    for (int attempt = 0; attempt < kMaxInstallRetries && !installed;
         ++attempt) {
      // Materialize under the shared lock from the frozen snapshot, so
      // other queries keep running meanwhile.
      const uint64_t version = graph_version_;
      ViewExtension ext;
      std::vector<std::vector<NodeId>> relation;
      GPMV_RETURN_NOT_OK(RefreshViewExtension(cache_.views().view(v),
                                              *snapshot_,
                                              /*seeded=*/false, &ext,
                                              &relation));
      lk.unlock();
      {
        std::unique_lock<std::shared_mutex> ul(mu_);
        if (graph_version_ == version) {
          // Install (or lose the race to a concurrent query — either way
          // the view is live) and pin before anyone can evict it.
          cache_.Install(v, std::move(ext), std::move(relation),
                         /*pin=*/true);
          pinned->push_back(v);
          installed = true;
        }
        // else: an update batch landed while we computed; recompute from
        // the fresh graph.
      }
      lk.lock();
    }
    if (!installed) {
      return Status::Internal(
          "view materialization kept racing update batches");
    }
  }
  return Status::OK();
}

Result<MatchResult> QueryEngine::ExecutePartial(const QueryPlan& plan,
                                                const GraphSnapshot& snap,
                                                const ShardedSnapshot* sharded,
                                                ShardSimStats* shard_stats) {
  const Pattern& mq = plan.minimized.pattern;
  std::vector<std::vector<NodeId>> seed;
  GPMV_RETURN_NOT_OK(ComputeCandidateSets(mq, snap, &seed));
  const std::vector<ViewExtension>& exts = cache_.extensions();

  // Tighten each node's candidates with the merged sources of every covered
  // out-edge: a node in the maximum relation must witness all its out-edges,
  // and view pairs over-approximate each witness set (distance-filtered to
  // the query's own bound). In-edges stay unconstrained — forward simulation
  // does not force relation members to appear as targets.
  for (uint32_t u = 0; u < mq.num_nodes(); ++u) {
    for (uint32_t e : mq.out_edges(u)) {
      if (plan.partial_lambda[e].empty()) continue;
      const PatternEdge& pe = mq.edge(e);
      std::vector<NodeId> sources;
      for (const ViewEdgeRef& ref : plan.partial_lambda[e]) {
        const ViewEdgeExtension& vee = exts[ref.view].edge(ref.edge);
        for (size_t i = 0; i < vee.pairs.size(); ++i) {
          if (pe.bound != kUnbounded && vee.distances[i] > pe.bound) continue;
          sources.push_back(vee.pairs[i].first);
        }
      }
      std::sort(sources.begin(), sources.end());
      sources.erase(std::unique(sources.begin(), sources.end()),
                    sources.end());
      seed[u] = Intersect(seed[u], sources);
    }
  }
  if (sharded != nullptr) {
    // Same seeds, same fixpoint — just partitioned by data-node ownership;
    // the parity property tests pin the results to the unsharded path.
    // Bounded seeds take the frontier hand-off engine, unit-bound ones the
    // decrement exchange (routed inside ShardedMatchBoundedSimulation).
    return ShardedMatchBoundedSimulation(mq, *sharded, shard_pool_.get(),
                                         &seed, shard_stats);
  }
  return MatchBoundedSimulation(mq, snap, /*distances=*/nullptr, &seed);
}

MatchResult QueryEngine::ExpandMinimized(const MinimizedPattern& min,
                                         const Pattern& original,
                                         MatchResult result) {
  if (!min.changed) {
    result.Normalize();
    return result;
  }
  MatchResult out = MatchResult::Empty(original);
  if (!result.matched()) return out;
  for (uint32_t e = 0; e < original.num_edges(); ++e) {
    *out.mutable_edge_matches(e) = result.edge_matches(min.edge_map[e]);
  }
  out.set_matched(true);
  out.Normalize();
  out.DeriveNodeMatches(original);
  return out;
}

Status QueryEngine::ApplyUpdates(const std::vector<EdgeUpdate>& batch) {
  return ApplyUpdatesInternal(batch, /*through_ts=*/0);
}

Status QueryEngine::ApplyStreamBatch(const std::vector<EdgeUpdate>& batch,
                                     uint64_t through_ts) {
  return ApplyUpdatesInternal(batch, through_ts, /*slice=*/0);
}

Status QueryEngine::ApplyStreamBatchSlice(const std::vector<EdgeUpdate>& batch,
                                          uint64_t through_ts, size_t slice) {
  if (slice >= slice_clock_.num_slices()) {
    return Status::InvalidArgument(
        "stream slice " + std::to_string(slice) +
        " out of range; call ConfigureStreamSlices first");
  }
  return ApplyUpdatesInternal(batch, through_ts, slice);
}

void QueryEngine::ConfigureStreamSlices(size_t num_slices) {
  const size_t n = std::max<size_t>(1, num_slices);
  slice_clock_.Reset(n);
  // Seed every fresh slice clock from the already-published watermark:
  // applied_through_ts_ never regresses, so zeroed clocks on an engine
  // with prior streamed history would leave the stale watermark standing
  // while a new ApplierPool hands out tickets from 1 — min_applied_ts
  // waits for those tickets would be satisfied by history instead of by
  // the ops they name. Seeding keeps min-over-slices == published
  // watermark, and the pool resumes its ticket source from the same value.
  const uint64_t wm = applied_through_ts();
  for (size_t i = 0; wm > 0 && i < n; ++i) slice_clock_.Advance(i, wm);
  if (opts_.obs.enabled) h_.stream_appliers->Set(static_cast<double>(n));
}

uint64_t QueryEngine::PublishCut() {
  // Caller holds mu_ at least shared, so snapshot_ is stable. Derive the
  // watermark as the min over slice clocks and advance the atomic
  // monotonically (CAS loop: concurrent heartbeats under the shared lock
  // may race here; max semantics make every interleaving correct).
  const VersionVector vv = slice_clock_.Current();
  const uint64_t min_wm = vv.MinSlice();
  uint64_t prev = applied_through_ts_.load(std::memory_order_relaxed);
  bool advanced = false;
  while (min_wm > prev) {
    if (applied_through_ts_.compare_exchange_weak(prev, min_wm,
                                                  std::memory_order_release,
                                                  std::memory_order_relaxed)) {
      advanced = true;
      break;
    }
  }
  const uint64_t wm = std::max(min_wm, prev);
  SnapshotCut cut;
  cut.version = snapshot_->version();
  cut.slices = vv;
  cut.watermark = wm;
  cut.max_applied_ts = vv.MaxSlice();
  cut.snapshot = snapshot_;
  chain_.Publish(std::move(cut));
  if (advanced) {
    // Empty-critical-section handshake: a waiter that sampled the old
    // watermark is guaranteed to be inside wait() before the notify.
    { std::lock_guard<std::mutex> wlk(watermark_mu_); }
    watermark_cv_.notify_all();
  }
  return wm;
}

void QueryEngine::SetSliceQuarantined(size_t slice, bool quarantined) {
  (void)slice;  // the count is what serving decisions need
  if (quarantined) {
    quarantined_slices_.fetch_add(1, std::memory_order_acq_rel);
  } else {
    quarantined_slices_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void QueryEngine::AdvanceStreamSlice(size_t slice, uint64_t ts) {
  if (slice >= slice_clock_.num_slices()) return;
  slice_clock_.Advance(slice, ts);
  // Republish the head's watermark against the (unchanged) snapshot; the
  // chain resolves races with a concurrent real commit by version.
  std::shared_lock<std::shared_mutex> lk(mu_);
  PublishCut();
}

void QueryEngine::MergeStreamStats(const StreamStats& delta) {
  if (!opts_.obs.enabled) return;
  // One shared-gate group per micro-batch delta: a racing stats() reader
  // (exclusive on the gate) sees the whole batch or none of it, which is
  // what keeps invariants like ops_ingested == applied + coalesced +
  // dropped and Σ batch_size_hist == batches_applied true in every
  // snapshot (the TSan suite asserts them while racing the applier).
  auto group = metrics_.Group();
  h_.stream_ops_ingested->Add(delta.ops_ingested);
  h_.stream_ops_applied->Add(delta.ops_applied);
  h_.stream_ops_coalesced->Add(delta.ops_coalesced);
  h_.stream_ops_dropped->Add(delta.ops_dropped);
  h_.stream_batches_applied->Add(delta.batches_applied);
  h_.stream_apply_failures->Add(delta.apply_failures);
  h_.stream_retries->Add(delta.retries);
  h_.stream_quarantines->Add(delta.quarantines);
  h_.stream_revives->Add(delta.revives);
  h_.stream_flushes->Add(delta.flushes);
  h_.stream_queue_depth_max->SetMax(
      static_cast<double>(delta.max_queue_depth));
  h_.stream_max_batch_size->SetMax(
      static_cast<double>(delta.max_batch_size));
  h_.stream_publish_lag_max->SetMax(delta.publish_lag_ms_max);
  h_.stream_publish_lag_total->Add(delta.publish_lag_ms_total);
  h_.stream_applied_through->SetMax(
      static_cast<double>(delta.applied_through_ts));
  for (size_t b = 0; b < kStreamBatchBuckets; ++b) {
    // Re-record each bucketed batch at its bucket's lower bound: the
    // registry histogram's BucketFor maps 2^b back to bucket b, so the
    // 12-bucket delta folds losslessly into the low buckets of the
    // 40-bucket metric (deltas are per-batch, so counts are almost
    // always 0 or 1).
    const uint64_t representative = b == 0 ? 1 : (uint64_t{1} << b);
    for (size_t n = 0; n < delta.batch_size_hist[b]; ++n) {
      h_.stream_batch_size->Record(representative);
    }
  }
}

Status QueryEngine::ApplyUpdatesInternal(const std::vector<EdgeUpdate>& batch,
                                         uint64_t through_ts, size_t slice) {
  // `stream.apply` fault point: fail a streamed commit *before* any
  // mutation or lock — the batch is untouched, so the applier's in-place
  // retry (stream_applier.h) is sound by construction.
  if (through_ts != 0 && GPMV_FAULT_POINT(opts_.fault, "stream.apply")) {
    return FaultInjector::InjectedFault("stream.apply");
  }
  size_t inserted_count = 0;
  size_t deleted_count = 0;
  InsertMaintenanceStats delta_stats;
  double delete_phase_ms = 0.0;
  double insert_phase_ms = 0.0;
  Stopwatch apply_sw;
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    Stopwatch phase_sw;
    for (const EdgeUpdate& up : batch) {
      if (up.u >= graph_.num_nodes() || up.v >= graph_.num_nodes()) {
        return Status::InvalidArgument("update references unknown node");
      }
    }
    // Phase 1 — deletions (batches have set semantics: all deletions land
    // before any insertion; see the header contract). The intermediate
    // freeze gives the decremental refresh a snapshot that contains none
    // of the batch's insertions; it is never published to queries.
    std::vector<NodePair> deleted;
    std::vector<NodePair> inserted;
    std::vector<NodePair> touched;
    for (const EdgeUpdate& up : batch) {
      if (up.kind != EdgeUpdate::Kind::kDelete) continue;
      Status st = graph_.RemoveEdge(up.u, up.v);
      if (st.ok()) {
        deleted.emplace_back(up.u, up.v);
        ++deleted_count;
        touched.emplace_back(up.u, up.v);
      } else if (st.code() != Status::Code::kNotFound) {
        return st;
      }
    }
    std::shared_ptr<const GraphSnapshot> after_deletions;
    if (!deleted.empty()) after_deletions = graph_.Freeze();
    delete_phase_ms = phase_sw.ElapsedMillis();
    phase_sw.Restart();
    // Phase 2 — insertions.
    for (const EdgeUpdate& up : batch) {
      if (up.kind != EdgeUpdate::Kind::kInsert) continue;
      if (graph_.AddEdgeIfAbsent(up.u, up.v)) {
        inserted.emplace_back(up.u, up.v);
        ++inserted_count;
        touched.emplace_back(up.u, up.v);
      }
    }
    ++graph_version_;
    // `snapshot.refreeze` fault point: losing the incremental-freeze fast
    // path degrades this freeze to a full row rebuild — identical snapshot,
    // just slower — so refreeze faults can never corrupt what queries read.
    if (GPMV_FAULT_POINT(opts_.fault, "snapshot.refreeze")) {
      graph_.InvalidateIncrementalFreeze();
    }
    // Re-freeze (incrementally — the graph tracked which adjacency rows the
    // batch touched) and publish the new snapshot version to queries before
    // refreshing cached extensions from it.
    snapshot_ = graph_.Freeze();
    if (shard_pool_ != nullptr) {
      // Hand the endpoints (of both phases) and the frozen parent to the
      // slice-rebuild phase; it runs after this exclusive section so
      // queries are not blocked on slice re-freezing (they fall back to
      // the global snapshot until the new ShardedSnapshot publishes).
      std::lock_guard<std::mutex> slk(shard_pending_mu_);
      shard_pending_.insert(shard_pending_.end(), touched.begin(),
                            touched.end());
      shard_parent_ = snapshot_;
    }
    GPMV_RETURN_NOT_OK(cache_.RefreshForUpdates(after_deletions.get(),
                                                *snapshot_, deleted, inserted,
                                                opts_.maintenance,
                                                &delta_stats));
    // Edge updates change neither node count nor label histogram, so the
    // fields the planner reads stay exact in O(1); the degree-profile
    // details are recomputed lazily by graph_statistics().
    insert_phase_ms = phase_sw.ElapsedMillis();
    gstats_.num_edges = graph_.num_edges();
    gstats_.avg_out_degree =
        graph_.num_nodes() == 0
            ? 0.0
            : static_cast<double>(graph_.num_edges()) /
                  static_cast<double>(graph_.num_nodes());
    stats_dirty_ = true;
    if (through_ts != 0) {
      // Streamed batch: advance this slice's clock — only now, after the
      // whole batch (including extension maintenance above) succeeded, so
      // a failed batch never advances the watermark past ops its caller
      // will report as dropped. The *global* watermark is re-derived in
      // PublishCut as the min over slice clocks: with one slice this is
      // exactly the old single-atomic behavior, with N appliers a lagging
      // slice holds it back instead of letting a faster one publish a
      // hole. Monotone per slice, and never regressed by a manual
      // ApplyUpdates interleaved between stream batches.
      slice_clock_.Advance(slice, through_ts);
    }
    // Every commit (streamed or not) appends a cut to the snapshot chain;
    // heartbeat republish races resolve by version inside the chain.
    PublishCut();
  }
  if (shard_pool_ != nullptr) RefreshSharded();
  if (opts_.obs.enabled) {
    auto group = metrics_.Group();
    h_.update_batches->Add(1);
    h_.edges_inserted->Add(inserted_count);
    h_.edges_deleted->Add(deleted_count);
    h_.delta_refreshes->Add(delta_stats.delta_refreshes);
    h_.delta_fallbacks->Add(delta_stats.rematerialize_fallbacks);
    h_.delta_affected_nodes->Add(delta_stats.affected_nodes);
    h_.delta_relation_added->Add(delta_stats.delta_relation_added);
    h_.delta_matches_added->Add(delta_stats.delta_matches_added);
    h_.delta_bounded_refreshes->Add(delta_stats.bounded_delta_refreshes);
    h_.delta_bounded_matches_added->Add(delta_stats.bounded_matches_added);
    h_.delta_fallback_not_simulation->Add(
        delta_stats.fallback_not_simulation);
    h_.delta_fallback_unmatched->Add(delta_stats.fallback_unmatched);
    h_.delta_fallback_area_too_large->Add(
        delta_stats.fallback_area_too_large);
    h_.delta_fallback_disabled->Add(delta_stats.fallback_disabled);
    h_.update_apply_us->Record(ToMicros(apply_sw.ElapsedMillis()));
    h_.update_delete_phase_us->Record(ToMicros(delete_phase_ms));
    h_.update_insert_phase_us->Record(ToMicros(insert_phase_ms));
  }
  return Status::OK();
}

void QueryEngine::RefreshSharded() {
  std::lock_guard<std::mutex> phase(shard_rebuild_mu_);
  std::vector<NodePair> pending;
  std::shared_ptr<const GraphSnapshot> parent;
  {
    std::lock_guard<std::mutex> plk(shard_pending_mu_);
    pending.swap(shard_pending_);
    parent = shard_parent_;
  }
  std::shared_ptr<const ShardedSnapshot> base;
  {
    std::lock_guard<std::mutex> slk(sharded_mu_);
    base = sharded_;
  }
  if (parent == nullptr || base->version() == parent->version()) {
    return;  // a concurrent batch's phase already covered our endpoints
  }
  std::vector<uint32_t> affected;
  if (parent->num_nodes() != base->parent().num_nodes()) {
    for (uint32_t s = 0; s < base->num_shards(); ++s) affected.push_back(s);
  } else {
    affected = base->AffectedShards(pending);
  }
  // Only the affected slices rebuild (in parallel on the fan-out pool);
  // the rest stay shared with `base` untouched.
  std::shared_ptr<const ShardedSnapshot> next =
      ShardedSnapshot::Rebuild(parent, *base, affected, shard_pool_.get());
  {
    std::lock_guard<std::mutex> slk(sharded_mu_);
    sharded_ = next;
  }
  if (opts_.obs.enabled) {
    auto group = metrics_.Group();
    h_.slices_rebuilt->Add(affected.size());
    h_.slices_reused->Add(base->num_shards() - affected.size());
  }
}

std::shared_ptr<const ShardedSnapshot> QueryEngine::sharded_snapshot() const {
  std::lock_guard<std::mutex> lk(sharded_mu_);
  return sharded_;
}

Result<size_t> QueryEngine::AdmitFromWorkload(size_t max_views) {
  std::vector<Pattern> history;
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    history.assign(workload_.begin(), workload_.end());
  }
  if (history.empty() || max_views == 0) return size_t{0};

  ViewSet candidates = CandidateViewsFromWorkload(history);
  if (candidates.card() == 0) return size_t{0};
  ViewSelectionOptions sel_opts;
  sel_opts.max_views = max_views;
  Result<ViewSelectionResult> sel =
      SelectViews(history, candidates, sel_opts);
  GPMV_RETURN_NOT_OK(sel.status());

  std::unique_lock<std::shared_mutex> lk(mu_);
  std::unordered_set<std::string> existing;
  for (const ViewDefinition& def : cache_.views().views()) {
    existing.insert(PatternToText(def.pattern));
  }
  size_t added = 0;
  for (uint32_t ci : sel->selected) {
    const ViewDefinition& cand = candidates.view(ci);
    std::string text = PatternToText(cand.pattern);
    if (!existing.insert(std::move(text)).second) continue;
    cache_.Register(ViewDefinition{
        "auto_" + std::to_string(cache_.views().card()), cand.pattern});
    ++added;
  }
  return added;
}

void QueryEngine::RecordWorkload(const Pattern& q) {
  if (opts_.workload_history_limit == 0) return;
  std::lock_guard<std::mutex> lk(agg_mu_);
  workload_.push_back(q);
  while (workload_.size() > opts_.workload_history_limit) {
    workload_.pop_front();
  }
}

bool QueryEngine::CheckCacheConsistency(bool expect_unpinned) const {
  std::unique_lock<std::shared_mutex> lk(mu_);
  return cache_.CheckConsistency(expect_unpinned);
}

EngineStats QueryEngine::stats() const {
  EngineStats out;
  if (opts_.obs.enabled) {
    // Exclusive on the snapshot gate: every grouped writer (query counter
    // tails, stream-batch merges, update tails) is either fully before or
    // fully after this read, so the reconstructed struct preserves the
    // same cross-counter invariants the old single-mutex aggregate did.
    auto gate = metrics_.ReadGate();
    out.queries = h_.queries->Value();
    out.failed_queries = h_.queries_failed->Value();
    out.warm_queries = h_.queries_warm->Value();
    out.sharded_queries = h_.queries_sharded->Value();
    out.shard_fallbacks = h_.shard_fallbacks->Value();
    out.plans_match_join = h_.plans_match_join->Value();
    out.plans_partial = h_.plans_partial->Value();
    out.plans_direct = h_.plans_direct->Value();
    out.update_batches = h_.update_batches->Value();
    out.edges_inserted = h_.edges_inserted->Value();
    out.edges_deleted = h_.edges_deleted->Value();
    out.slices_rebuilt = h_.slices_rebuilt->Value();
    out.slices_reused = h_.slices_reused->Value();
    out.join.initial_pairs = h_.join_initial_pairs->Value();
    out.join.removed_pairs = h_.join_removed_pairs->Value();
    out.join.match_set_visits = h_.join_match_set_visits->Value();
    out.join.filtered_by_condition = h_.join_filtered_by_condition->Value();
    out.join.filtered_by_distance = h_.join_filtered_by_distance->Value();
    out.join.fixpoint_iterations = h_.join_fixpoint_iterations->Value();
    out.join.counters_zeroed = h_.join_counters_zeroed->Value();
    out.join.candidate_ranks = h_.join_candidate_ranks->Value();
    out.shard.shards =
        static_cast<size_t>(h_.shard_fanout_width->Value());
    out.shard.rounds = h_.shard_rounds->Value();
    out.shard.removals = h_.shard_removals->Value();
    out.shard.messages = h_.shard_messages->Value();
    out.shard.frontier_msgs = h_.shard_frontier_msgs->Value();
    out.delta.delta_refreshes = h_.delta_refreshes->Value();
    out.delta.rematerialize_fallbacks = h_.delta_fallbacks->Value();
    out.delta.affected_nodes = h_.delta_affected_nodes->Value();
    out.delta.delta_relation_added = h_.delta_relation_added->Value();
    out.delta.delta_matches_added = h_.delta_matches_added->Value();
    out.delta.bounded_delta_refreshes = h_.delta_bounded_refreshes->Value();
    out.delta.bounded_matches_added =
        h_.delta_bounded_matches_added->Value();
    out.delta.fallback_not_simulation =
        h_.delta_fallback_not_simulation->Value();
    out.delta.fallback_unmatched = h_.delta_fallback_unmatched->Value();
    out.delta.fallback_area_too_large =
        h_.delta_fallback_area_too_large->Value();
    out.delta.fallback_disabled = h_.delta_fallback_disabled->Value();
    out.stream.ops_ingested = h_.stream_ops_ingested->Value();
    out.stream.ops_applied = h_.stream_ops_applied->Value();
    out.stream.ops_coalesced = h_.stream_ops_coalesced->Value();
    out.stream.ops_dropped = h_.stream_ops_dropped->Value();
    out.stream.batches_applied = h_.stream_batches_applied->Value();
    out.stream.apply_failures = h_.stream_apply_failures->Value();
    out.stream.retries = h_.stream_retries->Value();
    out.stream.quarantines = h_.stream_quarantines->Value();
    out.stream.revives = h_.stream_revives->Value();
    out.stream.flushes = h_.stream_flushes->Value();
    out.stream.max_queue_depth =
        static_cast<size_t>(h_.stream_queue_depth_max->Value());
    out.stream.max_batch_size =
        static_cast<size_t>(h_.stream_max_batch_size->Value());
    out.stream.publish_lag_ms_max = h_.stream_publish_lag_max->Value();
    out.stream.publish_lag_ms_total = h_.stream_publish_lag_total->Value();
    out.stream.applied_through_ts =
        static_cast<uint64_t>(h_.stream_applied_through->Value());
    out.mvcc_asof_queries = h_.mvcc_asof_queries->Value();
    out.mvcc_asof_misses = h_.mvcc_asof_misses->Value();
    out.mvcc_ryw_waits = h_.mvcc_ryw_waits->Value();
    out.mvcc_ryw_timeouts = h_.mvcc_ryw_timeouts->Value();
    out.deadline_exceeded = h_.deadline_exceeded->Value();
    out.shed_queries = h_.shed_queries->Value();
    out.degraded_queries = h_.degraded_queries->Value();
    out.stream_appliers = static_cast<size_t>(h_.stream_appliers->Value());
    // 40-bucket registry histogram -> the struct's 12 buckets: identical
    // power-of-two boundaries below the fold, everything >= the last
    // stream bucket folds into it (MergeStreamStats only records
    // representatives <= 2^11, so the fold is exact).
    for (size_t b = 0; b < kStreamBatchBuckets - 1; ++b) {
      out.stream.batch_size_hist[b] = h_.stream_batch_size->BucketCount(b);
    }
    for (size_t b = kStreamBatchBuckets - 1; b < obs::kHistogramBuckets;
         ++b) {
      out.stream.batch_size_hist[kStreamBatchBuckets - 1] +=
          h_.stream_batch_size->BucketCount(b);
    }
  }
  out.cache = cache_.stats();
  out.pool = pool_.stats();
  out.result_cache = result_cache_.stats();
  out.mvcc_chain_depth = chain_.depth();
  out.mvcc_pinned_cuts = chain_.pinned_cuts();
  out.mvcc_gc_collected = chain_.gc_collected();
  return out;
}

GraphStatistics QueryEngine::graph_statistics() const {
  if (stats_dirty_.load(std::memory_order_acquire)) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    if (stats_dirty_.load(std::memory_order_relaxed)) {
      gstats_ = ComputeStatistics(graph_);
      stats_dirty_.store(false, std::memory_order_release);
    }
    return gstats_;
  }
  std::shared_lock<std::shared_mutex> lk(mu_);
  return gstats_;
}

size_t QueryEngine::num_views() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return cache_.views().card();
}

size_t QueryEngine::num_graph_nodes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return graph_.num_nodes();
}

size_t QueryEngine::num_graph_edges() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return graph_.num_edges();
}

}  // namespace gpmv
