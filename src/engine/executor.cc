#include "engine/executor.h"

#include <algorithm>
#include <utility>

namespace gpmv {

ThreadPool::ThreadPool(ThreadPoolOptions opts)
    : queue_capacity_(std::max<size_t>(1, opts.queue_capacity)),
      shed_when_saturated_(opts.shed_when_saturated),
      fault_(opts.fault),
      obs_(opts.obs) {
  size_t n = opts.num_threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = n;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (GPMV_FAULT_POINT(fault_, "executor.task")) {
      ++stats_.rejected;
      return Status::ResourceExhausted("injected fault: executor.task");
    }
    if (shed_when_saturated_ && !shutdown_ &&
        queue_.size() >= queue_capacity_) {
      // Admission control: reject now rather than park the caller behind a
      // saturated queue — the caller sheds (or degrades inline) instead.
      ++stats_.rejected;
      return Status::ResourceExhausted("task queue saturated");
    }
    not_full_.wait(lk,
                   [this] { return shutdown_ || queue_.size() < queue_capacity_; });
    if (shutdown_) {
      ++stats_.rejected;
      return Status::InvalidArgument("submit after shutdown");
    }
    QueuedTask qt;
    qt.fn = std::move(task);
    if (obs_.queue_wait_us != nullptr) {
      qt.enqueued = std::chrono::steady_clock::now();
    }
    queue_.push_back(std::move(qt));
    ++stats_.submitted;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  not_empty_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ParallelInvoke(ThreadPool* pool, std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (pool == nullptr || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = tasks.size() - 1;  // tasks[0] runs inline below
  auto finish_one = [&] {
    std::lock_guard<std::mutex> lk(mu);
    if (--remaining == 0) done.notify_one();
  };
  for (size_t i = 1; i < tasks.size(); ++i) {
    Status st = pool->Submit([&t = tasks[i], &finish_one] {
      t();
      finish_one();
    });
    if (!st.ok()) {
      // Pool shut down underneath us: degrade to inline execution rather
      // than losing the task (callers treat ParallelInvoke as infallible).
      tasks[i]();
      finish_one();
    }
  }
  // The caller is a worker too: it runs the first task instead of
  // sleeping, which saves a wakeup and keeps small fan-outs cheap.
  tasks[0]();
  std::unique_lock<std::mutex> lk(mu);
  done.wait(lk, [&] { return remaining == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      // Count before running: anyone synchronizing on the task's result
      // (a future, a latch) must observe the counter it contributed.
      ++stats_.executed;
    }
    not_full_.notify_one();
    if (obs_.queue_wait_us != nullptr) {
      const auto waited = std::chrono::steady_clock::now() - task.enqueued;
      obs_.queue_wait_us->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(waited)
              .count()));
    }
    if (obs_.run_us != nullptr) {
      const auto begin = std::chrono::steady_clock::now();
      task.fn();
      const auto ran = std::chrono::steady_clock::now() - begin;
      obs_.run_us->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(ran)
              .count()));
    } else {
      task.fn();
    }
  }
}

}  // namespace gpmv
