#include "engine/planner.h"

#include <algorithm>
#include <unordered_map>

#include "graph/traversal.h"  // kUnbounded

namespace gpmv {

namespace {

/// Cost charged per merged view pair (merge + fixpoint rescans).
constexpr double kJoinPairFactor = 2.0;

/// Edges one candidate's bounded BFS ball may scan: the geometric series
/// sum_{i=1..d} max(deg, 1)^i at depth d = min(bound, cap) (`*` bounds
/// count as the cap), clamped to |E| — no walk scans more than the whole
/// graph. The first layer absorbs the old flat degree term, and on sparse
/// graphs (deg <= 1) the series degenerates to the depth itself, keeping
/// the estimate strictly monotone in the bound.
double BallEdges(uint32_t bound, uint32_t cap, const GraphStatistics& gs) {
  const uint32_t depth = bound == kUnbounded ? cap : std::min(bound, cap);
  const double deg = std::max(1.0, gs.avg_out_degree);
  double sum = 0.0;
  double layer = 1.0;
  for (uint32_t i = 0; i < depth; ++i) {
    layer *= deg;
    sum += layer;
    if (sum >= static_cast<double>(gs.num_edges) && deg > 1.0) break;
  }
  const double whole_graph =
      std::max(static_cast<double>(depth), static_cast<double>(gs.num_edges));
  return std::max(1.0, std::min(sum, whole_graph));
}

using LabelCounts = std::unordered_map<std::string, size_t>;

LabelCounts BuildLabelCounts(const GraphStatistics& gs) {
  LabelCounts counts;
  counts.reserve(gs.label_histogram.size());
  for (const auto& [label, count] : gs.label_histogram) {
    counts.emplace(label, count);
  }
  return counts;
}

/// Per-pattern-node candidate-set size estimates from the label histogram.
std::vector<double> EstimateCandidates(const Pattern& q,
                                       const GraphStatistics& gs,
                                       const LabelCounts& label_count) {
  std::vector<double> cand(q.num_nodes());
  for (uint32_t u = 0; u < q.num_nodes(); ++u) {
    const PatternNode& pn = q.node(u);
    if (pn.label.empty()) {
      cand[u] = static_cast<double>(gs.num_nodes);
    } else {
      auto it = label_count.find(pn.label);
      cand[u] = it == label_count.end() ? 0.0 : static_cast<double>(it->second);
    }
  }
  return cand;
}

double EstimateDirectCostWithCounts(const Pattern& q,
                                    const GraphStatistics& gs,
                                    const LabelCounts& label_count,
                                    uint32_t bounded_cost_cap) {
  std::vector<double> cand = EstimateCandidates(q, gs, label_count);
  double cost = 0.0;
  for (uint32_t u = 0; u < q.num_nodes(); ++u) cost += cand[u];
  for (uint32_t e = 0; e < q.num_edges(); ++e) {
    const PatternEdge& pe = q.edge(e);
    cost += cand[pe.src] * BallEdges(pe.bound, bounded_cost_cap, gs);
  }
  return cost;
}

/// Estimated pairs a cold view edge materializes: candidate sources times
/// the per-candidate ball size, never more than |E| for unit bounds. For
/// bounded edges, distance-index coverage discounts the estimate: pairs
/// whose exact distance I(V) already tracks re-verify in O(1) lookups
/// instead of fresh ball walks, so the more entries the index holds
/// relative to the node universe, the cheaper the bounded view plan —
/// never below the one-unit-per-candidate merge floor.
double EstimateViewEdgePairs(const Pattern& view, uint32_t e,
                             const std::vector<double>& cand,
                             const GraphStatistics& gs, uint32_t cap,
                             size_t dindex_entries) {
  const PatternEdge& pe = view.edge(e);
  double pairs = cand[pe.src] * BallEdges(pe.bound, cap, gs);
  if (pe.bound == 1) {
    pairs = std::min(pairs, static_cast<double>(gs.num_edges));
  } else if (dindex_entries > 0) {
    const double coverage =
        std::min(1.0, static_cast<double>(dindex_entries) /
                          std::max(1.0, static_cast<double>(gs.num_nodes)));
    pairs = std::max(cand[pe.src], pairs * (1.0 - 0.5 * coverage));
  }
  return pairs;
}

MinimizedPattern IdentityMinimization(const Pattern& q) {
  MinimizedPattern m;
  m.pattern = q;
  m.node_map.resize(q.num_nodes());
  for (uint32_t u = 0; u < q.num_nodes(); ++u) m.node_map[u] = u;
  m.edge_map.resize(q.num_edges());
  for (uint32_t e = 0; e < q.num_edges(); ++e) m.edge_map[e] = e;
  m.changed = false;
  return m;
}

}  // namespace

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kMatchJoin:
      return "match_join";
    case PlanKind::kPartialViews:
      return "partial_views";
    case PlanKind::kDirect:
      return "direct";
  }
  return "unknown";
}

double EstimateDirectCost(const Pattern& q, const GraphStatistics& gs,
                          uint32_t bounded_cost_cap) {
  return EstimateDirectCostWithCounts(q, gs, BuildLabelCounts(gs),
                                      bounded_cost_cap);
}

namespace {

Result<QueryPlan> PlanQueryImpl(const Pattern& q, const ViewSet& views,
                                const std::vector<ViewExtension>& exts,
                                const GraphStatistics& gs,
                                const PlannerOptions& opts,
                                const std::vector<uint8_t>* materialized);

}  // namespace

Result<QueryPlan> PlanQuery(const Pattern& q, const ViewSet& views,
                            const std::vector<ViewExtension>& exts,
                            const GraphStatistics& gs,
                            const PlannerOptions& opts,
                            const std::vector<uint8_t>* materialized) {
  Result<QueryPlan> planned =
      PlanQueryImpl(q, views, exts, gs, opts, materialized);
  GPMV_RETURN_NOT_OK(planned.status());
  QueryPlan plan = std::move(planned).value();
  const Pattern& mq = plan.minimized.pattern;
  plan.shard_fanout = opts.shard_fanout && !opts.historical &&
                      plan.kind != PlanKind::kMatchJoin && mq.num_edges() > 0;
  return plan;
}

namespace {

Result<QueryPlan> PlanQueryImpl(const Pattern& q, const ViewSet& views,
                                const std::vector<ViewExtension>& exts,
                                const GraphStatistics& gs,
                                const PlannerOptions& opts,
                                const std::vector<uint8_t>* materialized) {
  if (exts.size() != views.card()) {
    return Status::InvalidArgument("one extension slot per view required");
  }
  if (materialized != nullptr && materialized->size() != views.card()) {
    return Status::InvalidArgument("one materialized flag per view required");
  }
  QueryPlan plan;
  if (opts.enable_minimization && q.num_edges() > 0) {
    Result<MinimizedPattern> min = MinimizePattern(q);
    GPMV_RETURN_NOT_OK(min.status());
    plan.minimized = std::move(min).value();
  } else {
    plan.minimized = IdentityMinimization(q);
  }
  const Pattern& mq = plan.minimized.pattern;
  const LabelCounts label_count = BuildLabelCounts(gs);
  plan.est_direct_cost = EstimateDirectCostWithCounts(mq, gs, label_count,
                                                      opts.bounded_cost_cap);

  // Degenerate queries (no edges, isolated nodes) and a disabled cost
  // advantage always evaluate directly; so do an empty registry and
  // historical (AS OF) plans, whose views describe the wrong cut.
  if (opts.historical || mq.num_edges() == 0 || !mq.HasNoIsolatedNode() ||
      opts.view_cost_advantage <= 0.0 || views.card() == 0) {
    plan.kind = PlanKind::kDirect;
    return plan;
  }

  // Is view `v`'s extension live in the cache? With explicit flags this
  // also recognizes a cached view that matched nothing; the structural
  // fallback cannot, and treats it as cold.
  auto is_live = [&](uint32_t v) {
    return materialized != nullptr ? (*materialized)[v] != 0
                                   : exts[v].num_view_edges() > 0;
  };
  auto cold_view_cost = [&](uint32_t v) {
    return EstimateDirectCostWithCounts(views.view(v).pattern, gs,
                                        label_count, opts.bounded_cost_cap);
  };
  auto view_edge_pairs = [&](const ViewEdgeRef& ref) {
    if (is_live(ref.view)) {
      return static_cast<double>(exts[ref.view].edge(ref.edge).pairs.size());
    }
    const Pattern& vp = views.view(ref.view).pattern;
    std::vector<double> cand = EstimateCandidates(vp, gs, label_count);
    return EstimateViewEdgePairs(vp, ref.edge, cand, gs,
                                 opts.bounded_cost_cap,
                                 opts.distance_index_entries);
  };

  Result<ContainmentMapping> mapping = MinimumContainment(mq, views);
  GPMV_RETURN_NOT_OK(mapping.status());

  if (mapping->contained) {
    double est = 0.0;
    for (uint32_t v : mapping->selected) {
      if (!is_live(v)) est += cold_view_cost(v);
    }
    for (const auto& refs : mapping->lambda) {
      for (const ViewEdgeRef& ref : refs) {
        est += kJoinPairFactor * view_edge_pairs(ref);
      }
    }
    plan.est_view_cost = est;
    if (est <= opts.view_cost_advantage * plan.est_direct_cost) {
      plan.kind = PlanKind::kMatchJoin;
      plan.mapping = std::move(mapping).value();
      plan.views_needed = plan.mapping.selected;
      return plan;
    }
    plan.kind = PlanKind::kDirect;
    return plan;
  }

  // Not contained: can a subset of edges still be served from views?
  Result<std::vector<ViewMatchResult>> vms = ComputeAllViewMatches(mq, views);
  GPMV_RETURN_NOT_OK(vms.status());
  plan.partial_lambda.assign(mq.num_edges(), {});
  for (uint32_t v = 0; v < views.card(); ++v) {
    const ViewMatchResult& vm = (*vms)[v];
    for (uint32_t ev = 0; ev < vm.per_view_edge.size(); ++ev) {
      for (uint32_t qe : vm.per_view_edge[ev]) {
        plan.partial_lambda[qe].push_back(ViewEdgeRef{v, ev});
      }
    }
  }
  size_t covered = 0;
  double est = 0.0;
  std::vector<uint32_t> needed;
  for (uint32_t e = 0; e < mq.num_edges(); ++e) {
    if (plan.partial_lambda[e].empty()) continue;
    ++covered;
    for (const ViewEdgeRef& ref : plan.partial_lambda[e]) {
      est += view_edge_pairs(ref);
      needed.push_back(ref.view);
    }
  }
  if (covered == 0) {
    plan.kind = PlanKind::kDirect;
    plan.partial_lambda.clear();
    return plan;
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  for (uint32_t v : needed) {
    if (!is_live(v)) est += cold_view_cost(v);
  }
  // The fallback still walks G, but only from view-restricted candidates;
  // charge it the direct cost scaled by the uncovered fraction.
  est += plan.est_direct_cost *
         static_cast<double>(mq.num_edges() - covered + 1) /
         static_cast<double>(mq.num_edges() + 1);
  plan.est_view_cost = est;
  if (est <= opts.view_cost_advantage * plan.est_direct_cost) {
    plan.kind = PlanKind::kPartialViews;
    plan.views_needed = std::move(needed);
  } else {
    plan.kind = PlanKind::kDirect;
    plan.partial_lambda.clear();
  }
  return plan;
}

}  // namespace

}  // namespace gpmv
