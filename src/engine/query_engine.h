/// \file query_engine.h
/// \brief The concurrent view-cache query engine: owns a graph snapshot, a
/// registry of view definitions with lazily materialized extensions, and
/// answers pattern queries end-to-end the way the paper envisions views
/// being used — as a cache layer serving a query stream without touching G
/// whenever containment allows it.
///
/// Components:
///  * planner.h      — per-query choice of MatchJoin / partial-views /
///                     direct, with cost estimates from graph/statistics;
///  * view_cache.h   — byte-accounted LRU cache of materialized extensions
///                     with pinning and hit/miss/eviction counters;
///  * executor.h     — fixed worker pool + bounded queue behind Submit();
///  * result_cache.h — full-result memo per (minimized query, graph
///                     version), consulted before any view is pinned;
///  * core/maintenance — ApplyUpdates() routes edge insert/delete batches
///                     through incremental maintenance so cached extensions
///                     stay fresh instead of being invalidated: deletions
///                     re-refine decrementally (seeded + prescreen), and
///                     insertions run the localized delta-simulation path
///                     (simulation/delta.h), re-materializing only when
///                     the affected area outgrows the locality threshold.
///
/// Concurrency model: one shared_mutex (the *registry lock*) protects the
/// graph and every extension payload. Query execution — planning, MatchJoin,
/// direct simulation, and even cold-view materialization (a pure read of G)
/// — runs under the lock in *shared* mode, so independent queries proceed
/// concurrently; installing a computed extension, evicting, registering
/// views, and update batches take it *exclusively*. Queries pin every view
/// their plan reads, which keeps LRU eviction from pulling extensions out
/// from under a running MatchJoin. A graph version counter detects the
/// race where an update batch lands between computing a cold extension and
/// installing it; the install is discarded and recomputed.
///
/// MVCC snapshot chain (graph/mvcc.h): commits no longer overwrite a single
/// published-snapshot slot — every commit appends an immutable `SnapshotCut`
/// (frozen graph + per-slice version vector + min-derived watermark) to a
/// retained `SnapshotChain`. Head queries read the chain head (the
/// `snapshot_` shared_ptr *is* the head cut's graph; copying it under the
/// shared lock is the implicit head pin); `AS OF ts` queries pin the newest
/// retained prefix-consistent cut with watermark <= ts via `SnapshotRef`
/// and evaluate it entirely *outside* the registry lock (historical cuts
/// are immutable). A pinned old cut survives GC until its last pin drops;
/// unpinned cuts age out of the retained window on publish. Streamed
/// commits are slice-aware: N concurrent `StreamApplier`s (stream/
/// applier_pool.h) commit disjoint slice sets independently — each slice's
/// clock advances monotonically at its chain-head commit, and the global
/// `applied_through_ts` derives from the *minimum* over slice clocks, so a
/// lagging applier can never publish a watermark hole. Read-your-writes:
/// `QueryOptions::min_applied_ts` blocks the query (bounded by
/// `ryw_timeout_ms`) until the published watermark covers the caller's last
/// submitted op.
///
/// Sharded execution (EngineOptions::sharding, shard/sharded_snapshot.h):
/// with K > 1 shards the engine additionally keeps a `ShardedSnapshot` —
/// per-shard CSR slices of the current frozen version — and a dedicated
/// fan-out pool. The planner marks graph-walking plans (kDirect /
/// kPartialViews) for fan-out, and Execute runs them as per-shard tasks
/// with cross-shard merge rounds (shard/shard_sim.h): unit-bound patterns
/// through the decrement exchange, bounded patterns through the BFS
/// frontier hand-off; results are bit-identical to the unsharded path. Slice
/// maintenance is per-shard at the *data* granularity, not the exclusive
/// registry lock: an update batch rebuilds only the slices owning a
/// touched endpoint (in parallel on the fan-out pool), shares the rest
/// with the previous ShardedSnapshot, and runs *outside* the exclusive
/// registry section — queries keep executing against the last published
/// slice set while the rebuild runs, and the snapshot-version consistency
/// token makes any mid-rebuild query fall back to the (already current)
/// global snapshot instead of mixing versions. Rebuild phases of racing
/// batches are serialized on one rebuild mutex and coalesce through a
/// pending-endpoint hand-off; each rebuilt slice is stamped with the
/// parent version it was built against, so the published assembly is a
/// per-slice version vector whose consistency the parity suite checks
/// against the chain head.

#ifndef GPMV_ENGINE_QUERY_ENGINE_H_
#define GPMV_ENGINE_QUERY_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "core/maintenance.h"
#include "core/match_join.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "engine/result_cache.h"
#include "engine/view_cache.h"
#include "graph/graph.h"
#include "graph/mvcc.h"
#include "graph/snapshot.h"
#include "graph/statistics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern.h"
#include "shard/shard_sim.h"
#include "shard/sharded_snapshot.h"
#include "simulation/match_result.h"
#include "stream/stream_stats.h"

namespace gpmv {

/// One edge mutation of an update batch.
struct EdgeUpdate {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  NodeId u = 0;
  NodeId v = 0;

  static EdgeUpdate Insert(NodeId u, NodeId v) {
    return EdgeUpdate{Kind::kInsert, u, v};
  }
  static EdgeUpdate Delete(NodeId u, NodeId v) {
    return EdgeUpdate{Kind::kDelete, u, v};
  }
};

/// Observability knobs (src/obs/). The engine always owns a
/// MetricsRegistry; `enabled` only controls whether the hot paths record
/// into it (the `--no-metrics` overhead baseline of bench/engine_throughput
/// — with it false, stats() returns only component-owned stats).
struct ObsOptions {
  bool enabled = true;
  /// Attach the finished span tree to every QueryResponse (`--trace`).
  bool trace = false;
  /// Queries slower than this (total wall ms) serialize their span tree to
  /// the slow-query log; <= 0 disables the log.
  double slow_query_ms = 0.0;
  /// Slow-query JSON-lines file (appended); empty = no file sink.
  std::string slow_query_path;
  /// Extra slow-query sink (tests, CLI echo); receives each JSON line.
  std::function<void(const std::string&)> slow_query_sink;
};

/// Engine configuration.
struct EngineOptions {
  ThreadPoolOptions pool;
  ViewCacheOptions cache;
  PlannerOptions planner;
  /// Ring buffer of observed queries feeding AdmitFromWorkload (0 disables).
  size_t workload_history_limit = 256;
  /// Snapshot sharding; num_shards > 1 enables per-shard query fan-out and
  /// per-shard slice maintenance (see file comment).
  ShardingOptions sharding;
  /// Workers of the dedicated fan-out pool (0 = one per shard). Separate
  /// from `pool` so a sharded query running on a query worker never waits
  /// on its own pool for shard tasks.
  size_t shard_pool_threads = 0;
  /// Insert-path maintenance knobs (delta kill switch + affected-area
  /// fallback threshold); see core/maintenance.h.
  InsertMaintenanceOptions maintenance;
  /// Full-result memoization (result_cache.h); budget_bytes 0 disables.
  ResultCacheOptions result_cache;
  /// Observability: tracing, slow-query log, metrics kill switch.
  ObsOptions obs;
  /// Snapshot-chain retention (graph/mvcc.h): how many historical cuts
  /// stay pinnable for `AS OF` behind the head.
  SnapshotChainOptions mvcc;
  /// Fault injector threaded through every failure domain (common/fault.h):
  /// streamed applies (`stream.apply`), incremental re-freeze
  /// (`snapshot.refreeze`), shard merge rounds (`shard.merge_round`) and —
  /// propagated into both pools — task admission (`executor.task`). Not
  /// owned; nullptr (the default) compiles the checks down to a null test.
  FaultInjector* fault = nullptr;
  /// Degraded-mode serving (docs/ROBUSTNESS.md): while any stream slice is
  /// quarantined, a read-your-writes floor that the pinned watermark cannot
  /// reach is answered from the newest published cut immediately — marked
  /// `QueryResponse::degraded` — instead of riding out ryw_timeout_ms
  /// against a watermark that will not move. False restores strict waits.
  bool degraded_serving = true;
};

/// Per-query consistency knobs; default-constructed = "read the head".
struct QueryOptions {
  /// Read-your-writes: block until the published watermark covers this
  /// stream timestamp (0 = no wait). A client that pushed an op with ts T
  /// passes T here and is guaranteed to read a state containing it.
  uint64_t min_applied_ts = 0;
  /// Upper bound on the read-your-writes wait; exceeding it fails the
  /// query with kDeadlineExceeded instead of blocking forever behind a
  /// stalled applier.
  double ryw_timeout_ms = 2000.0;
  /// Time-travel: answer against the newest retained prefix-consistent cut
  /// whose watermark is <= as_of_ts (0 = head). Historical queries plan
  /// direct (views and the sharded fan-out reflect only the head), read
  /// the pinned immutable cut outside the registry lock, and memoize under
  /// the historical cut's version.
  uint64_t as_of_ts = 0;
  /// Query deadline (0 = none): cooperative cancellation checkpoints in the
  /// read-your-writes wait, the planner hand-off, the fixpoint loops and
  /// the shard merge rounds fail the query with a *clean* kDeadlineExceeded
  /// — pins unwound, nothing partial memoized, caches undisturbed. The
  /// expiry is advisory inside the loops; Execute converts it at the edge,
  /// so a result returned OK is always complete.
  double deadline_ms = 0.0;
};

/// Outcome of one query.
struct QueryResponse {
  Status status;        ///< evaluation outcome; result is valid only when ok
  MatchResult result;   ///< Q(G), normalized to the original (unminimized) Q
  PlanKind plan = PlanKind::kDirect;
  std::vector<uint32_t> views_used;  ///< view ids the plan read
  bool warm = false;    ///< view plan with every needed extension cached
  bool sharded = false;  ///< executed as a per-shard fan-out
  bool result_cached = false;  ///< answered from the full-result cache
  bool as_of = false;  ///< answered against a pinned historical cut
  /// A stream slice was quarantined when this query read: the answer comes
  /// from the newest published cut, which may permanently miss the
  /// quarantined slice's retained ops (EngineOptions::degraded_serving).
  bool degraded = false;
  /// Version of the frozen snapshot the query read end-to-end. Monotone
  /// across queries (the concurrency stress suite asserts it): updates only
  /// ever advance the published snapshot.
  uint64_t snapshot_version = 0;
  /// Stream timestamp the snapshot had applied through when the query read
  /// it (0 when no streamed op was applied yet) — the bounded-staleness
  /// handle: a reader that pushed op ts and sees applied_through_ts >= ts
  /// has read-your-writes.
  uint64_t applied_through_ts = 0;
  double plan_ms = 0.0;
  double exec_ms = 0.0;
  /// Monotone per-engine trace id, assigned to every query (cheap: one
  /// relaxed fetch_add) whether or not tracing is on — so a slow-query log
  /// line is joinable to the response that produced it.
  uint64_t trace_id = 0;
  /// The finished span tree (ObsOptions::trace only; nullptr otherwise).
  std::shared_ptr<const obs::TraceSpan> trace;
};

/// Aggregate engine counters. Since the unified metrics registry landed
/// (src/obs/metrics.h) this struct is a *view*: stats() reconstructs it
/// from the engine's registry under the snapshot gate (plus the component
/// stats the subsystems own), so existing consumers keep working while the
/// exporters read the same numbers by metric name.
struct EngineStats {
  ViewCacheStats cache;
  ThreadPoolStats pool;
  /// MatchJoin fixpoint counters summed over every view-served query —
  /// iteration counts and counter saturation make warm-path perf
  /// regressions diagnosable from CI logs (engine_throughput prints them).
  MatchJoinStats join;
  /// Sharded fan-out counters summed over every sharded query (rounds,
  /// removals, cross-shard broadcasts); `shards` is the fan-out width.
  ShardSimStats shard;
  /// Insert-path maintenance counters summed over every update batch:
  /// delta refreshes vs. re-materialization fallbacks, affected-area sizes,
  /// relation members and match pairs added by the delta.
  InsertMaintenanceStats delta;
  /// Full-result cache counters (hits skip planning's downstream cost:
  /// no pinning, no materialization, no fixpoint).
  ResultCacheStats result_cache;
  /// Streaming ingestion counters (stream/stream_stats.h): queue depth
  /// high-water, micro-batch size histogram, publish lag, applied-through
  /// watermark. Merged once per micro-batch by the StreamApplier, as a
  /// single unit under the registry's snapshot gate — a concurrent stats()
  /// reader (which takes the gate exclusively) never observes a torn
  /// batch, so cross-counter invariants hold in every snapshot.
  StreamStats stream;
  size_t queries = 0;
  size_t plans_match_join = 0;
  size_t plans_partial = 0;
  size_t plans_direct = 0;
  size_t warm_queries = 0;
  size_t failed_queries = 0;
  size_t sharded_queries = 0;  ///< queries executed as per-shard fan-outs
  /// Plans marked for fan-out that ran on the global snapshot because the
  /// sharded snapshot was mid-rebuild (version mismatch).
  size_t shard_fallbacks = 0;
  size_t update_batches = 0;
  size_t edges_inserted = 0;
  size_t edges_deleted = 0;
  size_t slices_rebuilt = 0;  ///< shard slices re-frozen by update batches
  size_t slices_reused = 0;   ///< slices shared across an update unchanged
  /// MVCC snapshot chain (graph/mvcc.h): retained depth / live pins are
  /// instantaneous, the rest are lifetime counters.
  size_t mvcc_chain_depth = 0;
  size_t mvcc_pinned_cuts = 0;
  size_t mvcc_gc_collected = 0;
  size_t mvcc_asof_queries = 0;   ///< AS OF queries answered from a pinned cut
  size_t mvcc_asof_misses = 0;    ///< AS OF targets outside the retained window
  size_t mvcc_ryw_waits = 0;      ///< queries that blocked on min_applied_ts
  size_t mvcc_ryw_timeouts = 0;   ///< read-your-writes waits that timed out
  size_t stream_appliers = 0;     ///< configured stream slices (applier pool width)
  /// Failure-domain counters (docs/ROBUSTNESS.md).
  size_t deadline_exceeded = 0;  ///< queries failed by their deadline_ms
  size_t shed_queries = 0;       ///< Submits fast-failed by admission control
  size_t degraded_queries = 0;   ///< RYW floors served degraded past a quarantine
};

/// See file comment.
class QueryEngine {
 public:
  explicit QueryEngine(Graph g, EngineOptions opts = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers a view definition; extensions materialize lazily on first
  /// use (or eagerly via WarmViews). Returns the dense view id.
  Result<uint32_t> RegisterView(const std::string& name, Pattern pattern);

  /// Materializes every registered view that is currently cold, subject to
  /// the cache budget (LRU applies if they do not all fit).
  Status WarmViews();

  /// Answers `q` synchronously in the calling thread. Safe to call from any
  /// number of threads concurrently, and concurrently with Submit,
  /// ApplyUpdates, RegisterView and WarmViews: the query holds the registry
  /// lock in shared mode and reads one frozen snapshot version end-to-end.
  /// `qopts` adds per-query consistency: a read-your-writes floor
  /// (min_applied_ts) and/or a historical cut (as_of_ts).
  QueryResponse Query(const Pattern& q, const QueryOptions& qopts = {});

  /// Answers `q` on the worker pool; blocks only when the task queue is
  /// full (backpressure) and fails only once the pool is shut down. Safe
  /// from any thread. The returned future is satisfied by a worker; a
  /// query observes the graph version current when its *execution* starts,
  /// not when it was submitted — updates applied while it sat queued are
  /// visible to it.
  Result<std::future<QueryResponse>> Submit(Pattern q,
                                            QueryOptions qopts = {});

  /// Applies an edge insert/delete batch to the graph, then routes every
  /// materialized extension through incremental maintenance in two phases:
  /// *deletions first* (decremental seeded refresh with the constant-time
  /// prescreen, against a snapshot frozen after the deletions), *then the
  /// insertions* (localized delta-simulation — affected-area fixpoint +
  /// extension merge, simulation/delta.h — against the final snapshot,
  /// re-materializing only on a delta fallback). A batch therefore has
  /// *set semantics*: its deletions are applied before its insertions
  /// regardless of interleaving, so deleting and re-inserting the same
  /// edge in one batch leaves the edge present. Unknown node ids fail the
  /// batch up front; deleting an absent edge is a no-op.
  ///
  /// Thread safety: callable from any thread, concurrently with queries
  /// and other ApplyUpdates calls. The batch is atomic from a query's
  /// perspective — the graph mutation, version bump, incremental re-freezes
  /// and extension maintenance happen under the exclusive registry lock, so
  /// every query sees either the whole batch or none of it (the mid-batch
  /// post-deletion snapshot is never published). In sharded mode, only the
  /// slices owning a touched endpoint re-freeze, *after* the exclusive
  /// section; until the new ShardedSnapshot publishes, fan-out plans fall
  /// back to the (already updated) global snapshot.
  Status ApplyUpdates(const std::vector<EdgeUpdate>& batch);

  /// Streaming (non-stop-the-world) update entry point, called by the
  /// StreamApplier once per drained micro-batch: identical two-phase apply
  /// to ApplyUpdates — micro-batches keep the exclusive section short, so
  /// Submit/Query never stall behind a bulk ingest — plus the published
  /// snapshot is stamped as applied-through `through_ts` (monotone; see
  /// QueryResponse::applied_through_ts). The batch must already be
  /// coalesced to at most one op per edge (UpdateStream::Coalesce) for the
  /// engine's batch set-semantics to coincide with stream order. Commits
  /// as stream slice 0 — the single-applier form of ApplyStreamBatchSlice.
  Status ApplyStreamBatch(const std::vector<EdgeUpdate>& batch,
                          uint64_t through_ts);

  /// Slice-aware streaming commit, called by each applier of an
  /// ApplierPool: identical apply path, but the watermark bookkeeping is
  /// per-slice — `slice`'s clock advances to `through_ts` (monotone; slice
  /// commits serialize at the chain head), and the *global*
  /// applied_through_ts derives from the minimum over all slice clocks, so
  /// a lagging applier can never publish a hole: the watermark waits at
  /// its oldest unapplied op.
  Status ApplyStreamBatchSlice(const std::vector<EdgeUpdate>& batch,
                               uint64_t through_ts, size_t slice);

  /// Declares the stream slice topology (ApplierPool startup): resets the
  /// slice clock to `num_slices` slices, each seeded to the currently
  /// published watermark — so min-over-slices stays equal to it, and a new
  /// pool's ticket source (which resumes from the watermark) can't have
  /// its read-your-writes waits satisfied by stale history. Only valid
  /// while no streamed ops are in flight; the published watermark itself
  /// never regresses.
  void ConfigureStreamSlices(size_t num_slices);

  /// Heartbeat: record that slice `slice` can never again receive an op
  /// with ts <= `ts` (its router proved the queue empty past that point),
  /// without applying a batch. Advances the slice clock, possibly the
  /// min-derived watermark, and republishes the chain head's watermark —
  /// this is what keeps an *idle* slice from pinning the global watermark
  /// at its last commit forever.
  void AdvanceStreamSlice(size_t slice, uint64_t ts);

  /// Per-slice applied-through clock snapshot (tests assert monotonicity
  /// per component and min-derivation of the watermark).
  VersionVector stream_slice_versions() const {
    return slice_clock_.Current();
  }

  /// Blocks until applied_through_ts() >= ts (the read-your-writes wait).
  /// kDeadlineExceeded after `timeout_ms`.
  Status WaitForWatermark(uint64_t ts, double timeout_ms);

  /// Pins the chain head (RAII; see graph/mvcc.h). Mostly for tests — head
  /// queries pin implicitly by copying the snapshot shared_ptr.
  SnapshotRef PinSnapshot() { return chain_.PinHead(); }

  /// Pins the newest retained prefix-consistent cut with watermark <= ts —
  /// the `AS OF` target. NotFound when the retained window no longer
  /// covers ts.
  Result<SnapshotRef> PinSnapshotAsOf(uint64_t ts) {
    return chain_.PinAsOf(ts);
  }

  /// Retained chain depth / live pin count / lifetime GC total.
  size_t mvcc_chain_depth() const { return chain_.depth(); }
  size_t mvcc_pinned_cuts() const { return chain_.pinned_cuts(); }
  uint64_t mvcc_gc_collected() const { return chain_.gc_collected(); }

  /// Quarantine signal from a stream applier (stream/stream_applier.h):
  /// while any slice is flagged, queries report `degraded` and — with
  /// EngineOptions::degraded_serving — unreachable read-your-writes floors
  /// are served from the head cut instead of waiting out their timeout.
  /// Callers keep transitions balanced (flag on quarantine, clear on revive
  /// or on the quarantined applier's teardown).
  void SetSliceQuarantined(size_t slice, bool quarantined);

  /// Stream slices currently quarantined (0 = healthy). Lock-free.
  size_t quarantined_slices() const {
    return quarantined_slices_.load(std::memory_order_acquire);
  }

  /// Folds one applier-built StreamStats delta into the stream.* metrics
  /// while holding the registry's snapshot gate shared — one merge per
  /// micro-batch, as a unit, which is what keeps concurrently read stats
  /// snapshots un-torn (writers never block each other on the gate).
  void MergeStreamStats(const StreamStats& delta);

  /// Stream timestamp the *published* snapshot has applied through (0
  /// before any streamed batch). Monotone; readable lock-free from any
  /// thread.
  uint64_t applied_through_ts() const {
    return applied_through_ts_.load(std::memory_order_acquire);
  }

  /// Workload-driven admission (view_selection.h): derives candidate views
  /// from the observed query history, greedily selects at most `max_views`,
  /// and registers the ones not structurally present yet. Returns how many
  /// were registered; they materialize lazily (or via WarmViews).
  Result<size_t> AdmitFromWorkload(size_t max_views);

  /// Full cache-accounting audit under the exclusive registry lock; with
  /// `expect_unpinned`, also verifies every query released its pins.
  bool CheckCacheConsistency(bool expect_unpinned = true) const;

  EngineStats stats() const;

  /// The engine's metrics registry — exporters (obs/exporter.h), the CLI
  /// summary table and tests snapshot it directly. Valid for the engine's
  /// lifetime.
  obs::MetricsRegistry* metrics() { return &metrics_; }
  const obs::MetricsRegistry* metrics() const { return &metrics_; }

  /// Lines the slow-query log has written (0 when disabled).
  size_t slow_query_lines() const {
    return slow_log_ != nullptr ? slow_log_->lines_written() : 0;
  }

  GraphStatistics graph_statistics() const;
  size_t num_worker_threads() const { return pool_.num_threads(); }
  size_t num_views() const;
  size_t num_graph_nodes() const;
  size_t num_graph_edges() const;

  /// Fan-out width (1 = sharding disabled).
  uint32_t num_shards() const {
    return std::max<uint32_t>(1, opts_.sharding.num_shards);
  }
  /// The last published sharded snapshot (nullptr when sharding is
  /// disabled). May lag snapshot() by one in-flight update batch.
  std::shared_ptr<const ShardedSnapshot> sharded_snapshot() const;

 private:
  /// `queue_wait_ms >= 0` is the Submit-to-execution delay of a pooled
  /// query (recorded as query.queue_wait_us + a queue.wait span); direct
  /// Query() calls pass -1 (no queue involved).
  QueryResponse Execute(const Pattern& q, const QueryOptions& qopts = {},
                        double queue_wait_ms = -1.0);

  /// Time-travel execution: pins the AS OF cut, plans in historical mode
  /// (direct only — views/shards reflect the head), evaluates the pinned
  /// immutable snapshot *outside* the registry lock, and memoizes under
  /// the cut's version with an AS OF-segregated cache key (so historical
  /// probes never stale-drop the head's memo entry).
  QueryResponse ExecuteAsOf(const Pattern& q, const QueryOptions& qopts,
                            double queue_wait_ms);

  /// Shared body of ApplyUpdates / ApplyStreamBatch(Slice); `through_ts !=
  /// 0` advances `slice`'s clock and re-derives the min watermark with the
  /// published snapshot; every commit appends a SnapshotCut to the chain.
  Status ApplyUpdatesInternal(const std::vector<EdgeUpdate>& batch,
                              uint64_t through_ts, size_t slice = 0);

  /// Appends the current (snapshot_, slice clock) state as a SnapshotCut;
  /// caller holds the registry lock at least shared. Returns the new
  /// watermark. Notifies read-your-writes waiters when it advanced.
  uint64_t PublishCut();

  /// Pins every view in `needed`, materializing cold ones (may drop and
  /// reacquire `lk` around installs). Pinned ids accumulate in `pinned`
  /// even on failure so the caller can unwind; `warm` clears if any view
  /// had to be materialized.
  Status PinOrMaterialize(const std::vector<uint32_t>& needed,
                          std::shared_lock<std::shared_mutex>& lk,
                          std::vector<uint32_t>* pinned, bool* warm);

  /// kPartialViews execution: merge covering view pairs into per-node
  /// candidate seeds, then direct evaluation restricted to them — fanned
  /// out per shard when `sharded` is non-null (plans whose sharded
  /// snapshot matches the registry version; bounded seeds take the BFS
  /// frontier hand-off engine).
  Result<MatchResult> ExecutePartial(const QueryPlan& plan,
                                     const GraphSnapshot& snap,
                                     const ShardedSnapshot* sharded,
                                     ShardSimStats* shard_stats);

  /// Sharded-mode update tail: re-freezes the slices owning a touched
  /// endpoint (in parallel on the fan-out pool) against the newest frozen
  /// parent and publishes the assembled ShardedSnapshot. Runs *outside*
  /// the exclusive registry section; rebuild phases serialize on
  /// shard_rebuild_mu_ and drain shard_pending_, so racing batches
  /// coalesce instead of clobbering.
  void RefreshSharded();

  /// Maps a minimized-query result back to the original query's shape.
  static MatchResult ExpandMinimized(const MinimizedPattern& min,
                                     const Pattern& original,
                                     MatchResult result);

  void RecordWorkload(const Pattern& q);

  /// Resolves every metric handle from metrics_ (constructor) and
  /// registers the component-stats collectors.
  void InitMetrics();

  /// Builds + records the trace/slow-query tail of one Execute call.
  void FinishTrace(obs::Trace* trace, QueryResponse* resp);

  EngineOptions opts_;

  /// The unified metrics registry (obs/metrics.h). Declared before every
  /// component that records into it — in particular before the pools, whose
  /// workers may touch handles until their Shutdown() joins.
  obs::MetricsRegistry metrics_;

  /// Registry handles, resolved once at construction (see InitMetrics).
  /// Raw pointers into metrics_; never null after the constructor ran.
  struct MetricHandles {
    // engine scalars
    obs::Counter* queries;
    obs::Counter* queries_failed;
    obs::Counter* queries_warm;
    obs::Counter* queries_sharded;
    obs::Counter* shard_fallbacks;
    obs::Counter* plans_match_join;
    obs::Counter* plans_partial;
    obs::Counter* plans_direct;
    obs::Counter* update_batches;
    obs::Counter* edges_inserted;
    obs::Counter* edges_deleted;
    obs::Counter* slices_rebuilt;
    obs::Counter* slices_reused;
    obs::Counter* slow_queries;
    // MatchJoin fixpoint (EngineStats::join)
    obs::Counter* join_initial_pairs;
    obs::Counter* join_removed_pairs;
    obs::Counter* join_match_set_visits;
    obs::Counter* join_filtered_by_condition;
    obs::Counter* join_filtered_by_distance;
    obs::Counter* join_fixpoint_iterations;
    obs::Counter* join_counters_zeroed;
    obs::Counter* join_candidate_ranks;
    // sharded fan-out (EngineStats::shard)
    obs::Counter* shard_rounds;
    obs::Counter* shard_removals;
    obs::Counter* shard_messages;
    obs::Counter* shard_frontier_msgs;
    obs::Gauge* shard_fanout_width;  // SetMax
    // insert maintenance (EngineStats::delta)
    obs::Counter* delta_refreshes;
    obs::Counter* delta_fallbacks;
    obs::Counter* delta_affected_nodes;
    obs::Counter* delta_relation_added;
    obs::Counter* delta_matches_added;
    obs::Counter* delta_bounded_refreshes;
    obs::Counter* delta_bounded_matches_added;
    obs::Counter* delta_fallback_not_simulation;
    obs::Counter* delta_fallback_unmatched;
    obs::Counter* delta_fallback_area_too_large;
    obs::Counter* delta_fallback_disabled;
    // streaming ingestion (EngineStats::stream)
    obs::Counter* stream_ops_ingested;
    obs::Counter* stream_ops_applied;
    obs::Counter* stream_ops_coalesced;
    obs::Counter* stream_ops_dropped;
    obs::Counter* stream_batches_applied;
    obs::Counter* stream_apply_failures;
    obs::Counter* stream_flushes;
    obs::Gauge* stream_queue_depth;        // Set (live depth, applier)
    obs::Gauge* stream_queue_depth_max;    // SetMax
    obs::Gauge* stream_max_batch_size;     // SetMax
    obs::Gauge* stream_publish_lag_max;    // SetMax (ms)
    obs::Gauge* stream_publish_lag_total;  // Add (ms)
    obs::Gauge* stream_applied_through;    // SetMax (stream ts)
    obs::Gauge* stream_appliers;           // Set (configured slice count)
    obs::Histogram* stream_batch_size;
    // retry / quarantine / revive (stream/stream_applier.h)
    obs::Counter* stream_retries;
    obs::Counter* stream_quarantines;
    obs::Counter* stream_revives;
    obs::Gauge* stream_redo_depth;         // Set (live redo-log depth)
    // MVCC chain (graph/mvcc.h); chain depth / pins / GC total surface as
    // collector gauges read straight off the chain.
    obs::Counter* mvcc_asof_queries;
    obs::Counter* mvcc_asof_misses;
    obs::Counter* mvcc_ryw_waits;
    obs::Counter* mvcc_ryw_timeouts;
    // failure domains (docs/ROBUSTNESS.md)
    obs::Counter* deadline_exceeded;
    obs::Counter* shed_queries;
    obs::Counter* degraded_queries;
    // latency histograms (microseconds)
    obs::Histogram* query_latency_us;
    obs::Histogram* query_plan_us;
    obs::Histogram* query_exec_us;
    obs::Histogram* query_queue_wait_us;
    obs::Histogram* update_apply_us;
    obs::Histogram* update_delete_phase_us;
    obs::Histogram* update_insert_phase_us;
  };
  MetricHandles h_ = {};

  /// Monotone trace-id source (every query gets one; see QueryResponse).
  std::atomic<uint64_t> next_trace_id_{1};
  /// Threshold-gated slow-query sink; nullptr when disabled.
  std::unique_ptr<obs::SlowQueryLog> slow_log_;

  /// Registry lock; see file comment.
  mutable std::shared_mutex mu_;
  Graph graph_;
  /// Statistics snapshot for the planner. After an update batch only the
  /// planner-read fields (num_nodes/num_edges/avg_out_degree/
  /// label_histogram) are kept exact in O(1); degree-profile details go
  /// stale until graph_statistics() recomputes them (stats_dirty_).
  mutable GraphStatistics gstats_;
  mutable std::atomic<bool> stats_dirty_{false};
  uint64_t graph_version_ = 0;
  /// Streamed-op watermark of the published snapshot: the *minimum* over
  /// the per-slice clocks (slice_clock_), re-derived at every slice commit
  /// and heartbeat — a lagging applier holds it back instead of letting a
  /// faster slice publish a hole. Monotone; atomic so FlushAndWait-style
  /// pollers can read it without the registry lock. Advancing it notifies
  /// watermark_cv_ (read-your-writes waiters).
  std::atomic<uint64_t> applied_through_ts_{0};
  /// Stream slices currently quarantined (SetSliceQuarantined): queries
  /// read it lock-free to decide degraded serving / the degraded marker.
  std::atomic<size_t> quarantined_slices_{0};
  /// Per-slice applied-through clocks; see graph/mvcc.h. One slice until
  /// an ApplierPool calls ConfigureStreamSlices.
  SliceClock slice_clock_;
  /// Retained chain of committed cuts; every ApplyUpdatesInternal commit
  /// appends, heartbeats republish the head watermark, AS OF queries pin.
  SnapshotChain chain_;
  /// Read-your-writes wait channel: waiters block here until the watermark
  /// atomic covers their floor.
  std::mutex watermark_mu_;
  std::condition_variable watermark_cv_;
  /// The frozen CSR snapshot of `graph_` at `graph_version_`, shared by
  /// every in-flight query (reads happen under the shared lock; the update
  /// path re-freezes — incrementally, thanks to the graph's dirty-row
  /// tracking — under the exclusive lock). Concurrent queries therefore
  /// never re-walk mutable adjacency vectors.
  std::shared_ptr<const GraphSnapshot> snapshot_;
  ViewCache cache_;
  /// Full-result memo, consulted after planning and before any pin; keys
  /// carry the snapshot version, so updates invalidate by version compare.
  ResultCache result_cache_;

  /// Workload history (never held together with mu_). The aggregate
  /// counters that used to live here moved into metrics_.
  mutable std::mutex agg_mu_;
  std::deque<Pattern> workload_;

  /// --- Sharded-mode state (unused when sharding.num_shards <= 1) ---
  /// The last published consistent slice set; queries copy the pointer
  /// under sharded_mu_ and never lock again (slices are immutable).
  std::shared_ptr<const ShardedSnapshot> sharded_;
  mutable std::mutex sharded_mu_;
  /// Serializes rebuild phases so concurrent update batches compose (each
  /// phase rebuilds against the newest frozen parent with every pending
  /// endpoint accounted for; see the file comment on why phases are not
  /// concurrent per shard).
  std::mutex shard_rebuild_mu_;
  /// Pending hand-off from the exclusive registry section to the rebuild
  /// phase. Its own (tiny-critical-section) mutex, so an update batch
  /// holding the registry lock never waits behind a running rebuild.
  std::mutex shard_pending_mu_;
  std::vector<NodePair> shard_pending_;               // guarded by shard_pending_mu_
  std::shared_ptr<const GraphSnapshot> shard_parent_;  // guarded by shard_pending_mu_

  /// Dedicated fan-out pool (see EngineOptions::shard_pool_threads);
  /// declared before pool_ so query workers drain before it dies.
  std::unique_ptr<ThreadPool> shard_pool_;

  /// Last member: destroyed (and joined) first, while the rest is alive.
  ThreadPool pool_;
};

}  // namespace gpmv

#endif  // GPMV_ENGINE_QUERY_ENGINE_H_
