/// \file exporter.h
/// \brief Metrics egress: a background thread emitting periodic JSON-lines
/// snapshots (the `serve --metrics-out` artifact, schema-checked in CI by
/// tools/check_metrics_schema.py), a Prometheus-text-format writer (file
/// based for now — the socket endpoint lands with the ROADMAP net front
/// end), and the human-readable summary table the CLI prints at exit.
///
/// JSON-lines schema (tools/metrics_schema.json is the committed source of
/// truth):
///   {"seq": N,            // strictly increasing per exporter, from 1
///    "ts_ms": T,          // steady-clock ms since the exporter started
///    "counters": {"engine.queries": 12, ...},
///    "gauges": {"stream.queue_depth": 3.0, ...},
///    "histograms": {"query.latency_us":
///        {"count": 12, "sum": 3456, "avg": 288.0,
///         "p50": 180.2, "p95": 612.0, "p99": 1200.0,
///         "buckets": [0,0,1,...]}, ...}}
/// Timestamps are deliberately monotone-relative (steady_clock), never
/// wall-clock — see the clock-discipline lint (tools/check_clocks.py).

#ifndef GPMV_OBS_EXPORTER_H_
#define GPMV_OBS_EXPORTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace gpmv {

class FaultInjector;

namespace obs {

/// One snapshot as a schema-conformant JSON line (no trailing newline).
std::string SnapshotToJsonLine(const MetricsSnapshot& snap, uint64_t seq,
                               double ts_ms);

/// Writes the snapshot in Prometheus text exposition format (# TYPE
/// comments, gpmv_ prefix, dots mapped to underscores; histograms as
/// cumulative `le` buckets + _sum/_count). Returns false on I/O failure.
bool WritePrometheusText(const MetricsSnapshot& snap, const std::string& path);

/// Prints the aligned human-readable summary table (counters, gauges, and
/// per-histogram count/avg/p50/p95/p99 rows) the CLI shows at exit.
void PrintSummaryTable(std::FILE* out, const MetricsSnapshot& snap);

/// Background JSON-lines emitter: one snapshot every `interval_ms` while
/// the owner runs, plus a final snapshot on Stop() — so even a run shorter
/// than one interval leaves a non-empty, schema-valid artifact.
class MetricsExporter {
 public:
  struct Options {
    std::string path;          ///< JSON-lines output file (truncated)
    size_t interval_ms = 1000;  ///< emission period
    /// Optional injector consulted at the `exporter.write` fault point
    /// (common/fault.h); an injected fault behaves exactly like a real
    /// write error.
    FaultInjector* fault = nullptr;
  };

  MetricsExporter(MetricsRegistry* registry, Options opts);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Emits the final snapshot, flushes, and joins the thread. Idempotent.
  void Stop();

  bool ok() const { return file_ != nullptr; }
  size_t snapshots_written() const;

  /// Snapshots that failed to reach the output file (also exported as the
  /// pinned `obs.export_failures` counter). A failed write is dropped —
  /// the next interval emits a fresh snapshot (counters are cumulative, so
  /// nothing is lost but one sample) — and logged to stderr only once per
  /// exporter, not once per interval.
  size_t export_failures() const;

 private:
  void Loop();
  void Emit();

  MetricsRegistry* registry_;
  Options opts_;
  Counter* failures_counter_;  ///< obs.export_failures, registered eagerly
  bool failure_logged_ = false;  ///< emitter thread + Stop only
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  uint64_t seq_ = 0;
};

}  // namespace obs
}  // namespace gpmv

#endif  // GPMV_OBS_EXPORTER_H_
