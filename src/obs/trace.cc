#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace gpmv {
namespace obs {

namespace {

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

/// True when `s` can be emitted as a bare JSON token (number or bool).
bool IsJsonBare(const std::string& s) {
  if (s == "true" || s == "false") return true;
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void AppendNumber(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendSpan(std::string* out, const TraceSpan& span) {
  out->append("{\"name\":");
  AppendQuoted(out, span.name);
  out->append(",\"start_ms\":");
  AppendNumber(out, span.start_ms);
  out->append(",\"dur_ms\":");
  AppendNumber(out, span.dur_ms);
  if (!span.attrs.empty()) {
    out->append(",\"attrs\":{");
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i != 0) out->push_back(',');
      AppendQuoted(out, span.attrs[i].first);
      out->push_back(':');
      if (IsJsonBare(span.attrs[i].second)) {
        out->append(span.attrs[i].second);
      } else {
        AppendQuoted(out, span.attrs[i].second);
      }
    }
    out->push_back('}');
  }
  if (!span.children.empty()) {
    out->append(",\"children\":[");
    for (size_t i = 0; i < span.children.size(); ++i) {
      if (i != 0) out->push_back(',');
      AppendSpan(out, *span.children[i]);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

const TraceSpan* TraceSpan::Find(const std::string& span_name) const {
  if (name == span_name) return this;
  for (const auto& c : children) {
    if (const TraceSpan* hit = c->Find(span_name)) return hit;
  }
  return nullptr;
}

Trace::Trace(uint64_t id, std::string root_name)
    : start_(Clock::now()), id_(id), root_(std::make_shared<TraceSpan>()) {
  root_->name = std::move(root_name);
  open_.push_back(root_.get());
}

double Trace::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_)
      .count();
}

TraceSpan* Trace::Open(std::string name) {
  TraceSpan* parent = open_.back();
  parent->children.push_back(std::make_unique<TraceSpan>());
  TraceSpan* span = parent->children.back().get();
  span->name = std::move(name);
  span->start_ms = ElapsedMs();
  open_.push_back(span);
  return span;
}

void Trace::Close(TraceSpan* span) {
  const double now = ElapsedMs();
  // Close everything opened after `span` too (a forgotten inner scope must
  // not corrupt the stack), then `span` itself. The root never closes here.
  while (open_.size() > 1) {
    TraceSpan* top = open_.back();
    open_.pop_back();
    top->dur_ms = now - top->start_ms;
    if (top == span) break;
  }
}

std::shared_ptr<const TraceSpan> Trace::Finish() {
  const double now = ElapsedMs();
  while (!open_.empty()) {
    TraceSpan* top = open_.back();
    open_.pop_back();
    top->dur_ms = now - top->start_ms;
  }
  return root_;
}

std::string TraceToJsonLine(uint64_t trace_id, double total_ms,
                            const TraceSpan& root) {
  std::string out;
  out.reserve(256);
  out.append("{\"trace_id\":");
  out.append(std::to_string(trace_id));
  out.append(",\"total_ms\":");
  AppendNumber(&out, total_ms);
  out.append(",\"span\":");
  AppendSpan(&out, root);
  out.push_back('}');
  return out;
}

SlowQueryLog::SlowQueryLog(Options opts) : opts_(std::move(opts)) {
  if (opts_.threshold_ms > 0.0 && !opts_.path.empty()) {
    file_ = std::fopen(opts_.path.c_str(), "a");
    if (file_ == nullptr) {
      std::fprintf(stderr, "slow-query log: cannot open %s\n",
                   opts_.path.c_str());
    }
  }
}

SlowQueryLog::~SlowQueryLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void SlowQueryLog::Log(const std::string& json_line) {
  std::lock_guard<std::mutex> lk(mu_);
  ++lines_;
  if (file_ != nullptr) {
    std::fputs(json_line.c_str(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
  if (opts_.sink) opts_.sink(json_line);
}

size_t SlowQueryLog::lines_written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lines_;
}

}  // namespace obs
}  // namespace gpmv
