#include "obs/metrics.h"

#include <algorithm>

namespace gpmv {
namespace obs {

size_t ThreadCellIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Target rank in [1, count]; walk the cumulative distribution to the
  // straddling bucket and interpolate linearly inside it.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) < rank) continue;
    // Bucket bounds: b == 0 holds [0, 2); b >= 1 holds [2^b, 2^(b+1)).
    const double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
    const double hi = static_cast<double>(
        uint64_t{1} << std::min(b + 1, kHistogramBuckets));
    const double frac = (rank - static_cast<double>(prev)) /
                        static_cast<double>(buckets[b]);
    return lo + frac * (hi - lo);
  }
  return 0.0;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_storage_.emplace_back();
  return counters_.emplace(name, &counter_storage_.back()).first->second;
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  gauge_storage_.emplace_back();
  return gauges_.emplace(name, &gauge_storage_.back()).first->second;
}

Histogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  histogram_storage_.emplace_back();
  return histograms_.emplace(name, &histogram_storage_.back()).first->second;
}

void MetricsRegistry::AddCollector(std::function<void(MetricsSnapshot*)> fn) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  MetricsSnapshot out;
  // Lock order: registration mutex first, then the gate exclusively. No
  // writer holds both (handle updates take only the gate, registration
  // only reg_mu_), so the order cannot deadlock.
  std::lock_guard<std::mutex> reg(reg_mu_);
  std::unique_lock<std::shared_mutex> gate(gate_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->Value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.sum = h->Sum();
    hs.buckets.resize(kHistogramBuckets);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      hs.buckets[b] = h->BucketCount(b);
      hs.count += hs.buckets[b];
    }
    out.histograms.push_back(std::move(hs));
  }
  // Collectors run inside the gate: their derived gauges land in the same
  // consistent cut as the raw metrics.
  for (const auto& fn : collectors_) fn(&out);
  std::sort(out.counters.begin(), out.counters.end());
  std::sort(out.gauges.begin(), out.gauges.end());
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace obs
}  // namespace gpmv
