/// \file trace.h
/// \brief Per-query structured tracing: a span tree built while
/// QueryEngine::Execute runs, serialized as a JSON line when the query
/// crosses the slow-query threshold (or surfaced whole through
/// QueryResponse::trace when tracing is on).
///
/// A Trace is single-writer by construction — it is owned by the one
/// thread executing the query, so spans need no synchronization; the
/// finished tree is published through a shared_ptr<const TraceSpan> and
/// immutable from then on. Span times come from one steady-clock stopwatch
/// started at trace construction (start_ms offsets are all relative to it).
///
/// The span hierarchy the engine emits (docs/OBSERVABILITY.md):
///
///   query                      — root; plan kind, snapshot version, warm
///     queue.wait               — Submit-to-execution delay (Submit only)
///     plan                     — planner run; chosen kind, views, fanout
///     result_cache.lookup      — full-result memo probe; hit + bytes
///     view_cache.pin           — per-plan pin/materialize; hits, colds
///     fixpoint                 — the evaluation itself; iterations, ranks
///       shard.fanout           — sharded plans only; rounds, messages
///         shard.<i>            — per-shard fixpoint timing
///         merge_round.<j>      — per merge-round barrier timing
///
/// The slow-query log (SlowQueryLog below) appends one self-contained JSON
/// object per line: {"trace_id":N,"total_ms":..,"span":{...}} with spans
/// nested as {"name","start_ms","dur_ms","attrs","children"}.

#ifndef GPMV_OBS_TRACE_H_
#define GPMV_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gpmv {
namespace obs {

/// One node of the span tree. Children are heap-allocated so handles stay
/// stable while siblings are appended.
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;  ///< offset from trace start
  double dur_ms = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<TraceSpan>> children;

  void Attr(const std::string& key, std::string value) {
    attrs.emplace_back(key, std::move(value));
  }
  void Attr(const std::string& key, uint64_t value) {
    attrs.emplace_back(key, std::to_string(value));
  }
  void Attr(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    attrs.emplace_back(key, buf);
  }
  void AttrBool(const std::string& key, bool value) {
    attrs.emplace_back(key, value ? "true" : "false");
  }

  /// Depth-first lookup by name (tests + log readers).
  const TraceSpan* Find(const std::string& span_name) const;
};

/// Builder for one query's span tree (single-writer; see file comment).
class Trace {
 public:
  Trace(uint64_t id, std::string root_name);

  uint64_t id() const { return id_; }
  double ElapsedMs() const;

  /// Opens a child of the innermost open span. The returned pointer stays
  /// valid for the life of the trace.
  TraceSpan* Open(std::string name);
  /// Closes `span` (stamps dur_ms) and every span opened after it.
  void Close(TraceSpan* span);
  TraceSpan* root() { return root_.get(); }

  /// Closes every open span and releases the finished immutable tree.
  std::shared_ptr<const TraceSpan> Finish();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  uint64_t id_ = 0;
  std::shared_ptr<TraceSpan> root_;
  std::vector<TraceSpan*> open_;  ///< innermost last; root at front
};

/// RAII span helper, null-safe: with `trace == nullptr` every operation is
/// a no-op, so call sites read identically whether tracing is on or off.
class SpanScope {
 public:
  SpanScope(Trace* trace, const char* name)
      : trace_(trace),
        span_(trace != nullptr ? trace->Open(name) : nullptr) {}
  ~SpanScope() { Close(); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Explicit early close (idempotent).
  void Close() {
    if (trace_ != nullptr && span_ != nullptr) {
      trace_->Close(span_);
      span_ = nullptr;
    }
  }
  /// The underlying span; nullptr when tracing is off.
  TraceSpan* get() { return span_; }

  template <typename T>
  void Attr(const std::string& key, T value) {
    if (span_ != nullptr) span_->Attr(key, value);
  }
  void AttrBool(const std::string& key, bool value) {
    if (span_ != nullptr) span_->AttrBool(key, value);
  }

 private:
  Trace* trace_;
  TraceSpan* span_;
};

/// Serializes a finished span tree as one JSON line (no trailing newline):
/// {"trace_id":N,"total_ms":T,"span":{...}}. Attr values that parse as
/// numbers/bools are emitted unquoted so the log is typed.
std::string TraceToJsonLine(uint64_t trace_id, double total_ms,
                            const TraceSpan& root);

/// Threshold-gated slow-query sink: thread-safe line appender to a file
/// and/or a test-visible callback. The engine serializes the span tree of
/// any query slower than the threshold and hands the line here.
class SlowQueryLog {
 public:
  struct Options {
    double threshold_ms = 0.0;  ///< <= 0 disables the log entirely
    std::string path;           ///< appended to when non-empty
    /// Extra sink (tests, CLI echo); called with the serialized line.
    std::function<void(const std::string&)> sink;
  };

  explicit SlowQueryLog(Options opts);
  ~SlowQueryLog();
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const {
    return opts_.threshold_ms > 0.0 &&
           (file_ != nullptr || opts_.sink != nullptr);
  }
  double threshold_ms() const { return opts_.threshold_ms; }

  /// Appends one line (newline added for the file sink) and flushes, so a
  /// crash loses at most the line being written.
  void Log(const std::string& json_line);

  size_t lines_written() const;

 private:
  Options opts_;
  std::FILE* file_ = nullptr;
  mutable std::mutex mu_;
  size_t lines_ = 0;
};

}  // namespace obs
}  // namespace gpmv

#endif  // GPMV_OBS_TRACE_H_
