/// \file metrics.h
/// \brief The unified metrics registry: named counters, gauges and
/// log-bucketed latency histograms shared by every runtime layer (engine,
/// executor, stream, shard, maintenance) and read by the exporters
/// (obs/exporter.h), the CLI summary table, and the `EngineStats` view the
/// benches and tests consume.
///
/// Design:
///  * Handles are stable pointers. Callers resolve `Counter*`/`Gauge*`/
///    `Histogram*` once at init (FindOrCreate* takes a registration mutex)
///    and then update lock-free: a counter Add is one relaxed atomic add
///    into a striped per-thread cell, a histogram Record is two (bucket +
///    sum). Cells are cache-line padded and picked by a thread-local slot,
///    so hot paths never contend on one line.
///  * Untorn snapshots. Values are 64-bit atomics, so no read is ever torn
///    mid-word. Beyond that, writers that must keep *cross-metric*
///    invariants observable in every snapshot (e.g. stream.ops_ingested ==
///    ops_applied + ops_coalesced + ops_dropped, maintained per applied
///    micro-batch) wrap their update group in `GroupGuard` — a *shared*
///    lock on the snapshot gate — while TakeSnapshot (and the EngineStats
///    view) holds the gate exclusively. Grouped writers therefore never
///    block each other; a snapshot briefly excludes them and sees every
///    group entirely or not at all. Ungrouped updates (per-task executor
///    histograms) skip the gate: they carry no cross-metric invariant, and
///    a snapshot may miss an in-flight record (bounded, monotone error).
///    The concurrency suite (tests/obs_test.cc, TSan label) stress-tests
///    exactly this contract.
///  * Histograms are power-of-two bucketed, following the pattern proven
///    by stream_stats.h: bucket 0 counts values <= 1, bucket b >= 1 counts
///    [2^b, 2^(b+1)), the last bucket is open-ended. p50/p95/p99 come from
///    linear interpolation inside the straddling bucket. Latencies record
///    microseconds; size histograms record raw counts (the unit is part of
///    the metric name: `*_us`, `*_size`).
///
/// This header is dependency-free beyond the standard library (everything
/// under src/ may include it; nothing here includes anything under src/).

#ifndef GPMV_OBS_METRICS_H_
#define GPMV_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gpmv {
namespace obs {

/// Stripe width of counter/histogram cells. Power of two; 8 lines bound
/// the footprint while spreading writers of a hot metric across lines.
constexpr size_t kMetricCells = 8;

/// Histogram bucket count: 2^39 us =~ 6.4 days in the last closed bucket,
/// so no realistic latency lands in the open-ended tail.
constexpr size_t kHistogramBuckets = 40;

/// Thread-local stripe slot (stable per thread, assigned round-robin).
size_t ThreadCellIndex();

/// Monotone counter. Add is one relaxed atomic add into a striped cell;
/// Value sums the cells (so a concurrent reader may lag in-flight adds but
/// never reads a torn or decreasing value once writers quiesce).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[ThreadCellIndex() & (kMetricCells - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricCells];
};

/// Point-in-time value (double). Set overwrites; SetMax keeps the running
/// maximum (CAS loop); Add accumulates (CAS loop — gauges are not hot).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void SetMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram (see file comment). Record is two relaxed adds
/// (bucket count + value sum) into one striped cell; count is derived as
/// the bucket sum, so count and buckets always agree within a snapshot.
class Histogram {
 public:
  /// Bucket for `v`: 0 when v <= 1, else floor(log2(v)), capped at the
  /// open-ended last bucket. Matches stream_stats.h's BatchBucket.
  static size_t BucketFor(uint64_t v) {
    size_t b = 0;
    while (v > 1 && b + 1 < kHistogramBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  void Record(uint64_t value) {
    Cell& c = cells_[ThreadCellIndex() & (kMetricCells - 1)];
    c.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Sums one bucket across cells.
  uint64_t BucketCount(size_t b) const {
    uint64_t sum = 0;
    for (const Cell& c : cells_)
      sum += c.buckets[b].load(std::memory_order_relaxed);
    return sum;
  }
  uint64_t Sum() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.sum.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<uint64_t> sum{0};
  };
  Cell cells_[kMetricCells];
};

/// Read-only copy of one histogram with quantile estimation.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;  ///< in the recorded unit (us for latency histograms)
  std::vector<uint64_t> buckets;  ///< kHistogramBuckets entries

  double Average() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// straddling power-of-two bucket; exact to within one bucket's width.
  double Quantile(double q) const;
};

/// One untorn registry snapshot: every metric, name-sorted (deterministic
/// export order). Collectors may append derived gauges at snapshot time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Collector-facing append (sorted again by TakeSnapshot afterwards).
  void AddGauge(std::string name, double value) {
    gauges.emplace_back(std::move(name), value);
  }

  /// Lookup helpers; 0 / nullptr when absent.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// See file comment.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Handle resolution; stable pointers, same handle for the same name.
  /// A name must keep one kind (creating "x" as a counter and asking for
  /// gauge "x" returns a distinct metric namespaced by kind).
  Counter* FindOrCreateCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  Histogram* FindOrCreateHistogram(const std::string& name);

  /// Registers a snapshot-time callback that appends derived gauges (e.g.
  /// component stats guarded by their own locks) to every snapshot.
  void AddCollector(std::function<void(MetricsSnapshot*)> fn);

  /// Shared lock on the snapshot gate: wrap a multi-metric update group in
  /// one of these and every snapshot observes the group atomically.
  /// Writers holding GroupGuards never block each other.
  std::shared_lock<std::shared_mutex> Group() const {
    return std::shared_lock<std::shared_mutex>(gate_);
  }
  /// Exclusive lock on the gate, for callers assembling their own
  /// consistent multi-metric view (the EngineStats reconstruction).
  std::unique_lock<std::shared_mutex> ReadGate() const {
    return std::unique_lock<std::shared_mutex>(gate_);
  }

  /// Untorn snapshot of every metric + collector output (see file comment).
  MetricsSnapshot TakeSnapshot() const;

 private:
  mutable std::shared_mutex gate_;  ///< snapshot gate (see file comment)
  mutable std::mutex reg_mu_;       ///< guards the maps/storage/collectors
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::unordered_map<std::string, Counter*> counters_;
  std::unordered_map<std::string, Gauge*> gauges_;
  std::unordered_map<std::string, Histogram*> histograms_;
  std::vector<std::function<void(MetricsSnapshot*)>> collectors_;
};

}  // namespace obs
}  // namespace gpmv

#endif  // GPMV_OBS_METRICS_H_
