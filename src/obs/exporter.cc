#include "obs/exporter.h"

#include <algorithm>
#include <cinttypes>

#include "common/fault.h"

namespace gpmv {
namespace obs {

namespace {

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  // %.6g can emit "inf"/"nan" which is not JSON; clamp to 0.
  if (buf[0] != '-' && (buf[0] < '0' || buf[0] > '9')) {
    out->push_back('0');
    return;
  }
  if (buf[0] == '-' && (buf[1] < '0' || buf[1] > '9')) {
    out->push_back('0');
    return;
  }
  out->append(buf);
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to '_'.
std::string PromName(const std::string& name) {
  std::string out = "gpmv_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string SnapshotToJsonLine(const MetricsSnapshot& snap, uint64_t seq,
                               double ts_ms) {
  std::string out;
  out.reserve(1024);
  out.append("{\"seq\":");
  out.append(std::to_string(seq));
  out.append(",\"ts_ms\":");
  AppendDouble(&out, ts_ms);
  out.append(",\"counters\":{");
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendQuoted(&out, snap.counters[i].first);
    out.push_back(':');
    out.append(std::to_string(snap.counters[i].second));
  }
  out.append("},\"gauges\":{");
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out.push_back(',');
    AppendQuoted(&out, snap.gauges[i].first);
    out.push_back(':');
    AppendDouble(&out, snap.gauges[i].second);
  }
  out.append("},\"histograms\":{");
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    if (i != 0) out.push_back(',');
    AppendQuoted(&out, h.name);
    out.append(":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    out.append(std::to_string(h.sum));
    out.append(",\"avg\":");
    AppendDouble(&out, h.Average());
    out.append(",\"p50\":");
    AppendDouble(&out, h.Quantile(0.50));
    out.append(",\"p95\":");
    AppendDouble(&out, h.Quantile(0.95));
    out.append(",\"p99\":");
    AppendDouble(&out, h.Quantile(0.99));
    out.append(",\"buckets\":[");
    // Trailing zero buckets are truncated to keep lines compact; the
    // schema checker treats the array as right-padded with zeros.
    size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (size_t b = 0; b < last; ++b) {
      if (b != 0) out.push_back(',');
      out.append(std::to_string(h.buckets[b]));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

bool WritePrometheusText(const MetricsSnapshot& snap,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& [name, value] : snap.counters) {
    const std::string p = PromName(name);
    std::fprintf(f, "# TYPE %s counter\n%s %" PRIu64 "\n", p.c_str(),
                 p.c_str(), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = PromName(name);
    std::fprintf(f, "# TYPE %s gauge\n%s %.6g\n", p.c_str(), p.c_str(),
                 value);
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string p = PromName(h.name);
    std::fprintf(f, "# TYPE %s histogram\n", p.c_str());
    uint64_t cum = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      // Upper bound of bucket b: 1 for b == 0 (values <= 1), else
      // 2^(b+1) - 1 (the largest value BucketFor maps to b); the last
      // bucket is open-ended and merged into +Inf below.
      if (b + 1 == h.buckets.size()) break;
      const double le =
          b == 0 ? 1.0
                 : static_cast<double>((uint64_t{1} << (b + 1)) - 1);
      std::fprintf(f, "%s_bucket{le=\"%.0f\"} %" PRIu64 "\n", p.c_str(), le,
                   cum);
    }
    std::fprintf(f, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", p.c_str(),
                 h.count);
    std::fprintf(f, "%s_sum %" PRIu64 "\n", p.c_str(), h.sum);
    std::fprintf(f, "%s_count %" PRIu64 "\n", p.c_str(), h.count);
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

void PrintSummaryTable(std::FILE* out, const MetricsSnapshot& snap) {
  std::fprintf(out, "--- metrics summary ---\n");
  size_t width = 0;
  for (const auto& [name, _] : snap.counters)
    width = std::max(width, name.size());
  for (const auto& [name, _] : snap.gauges)
    width = std::max(width, name.size());
  for (const HistogramSnapshot& h : snap.histograms)
    width = std::max(width, h.name.size());
  const int w = static_cast<int>(width);
  if (!snap.counters.empty()) std::fprintf(out, "counters:\n");
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;  // keep the table to what actually happened
    std::fprintf(out, "  %-*s %12" PRIu64 "\n", w, name.c_str(), value);
  }
  if (!snap.gauges.empty()) std::fprintf(out, "gauges:\n");
  for (const auto& [name, value] : snap.gauges) {
    if (value == 0.0) continue;
    std::fprintf(out, "  %-*s %12.6g\n", w, name.c_str(), value);
  }
  if (!snap.histograms.empty()) {
    std::fprintf(out, "histograms:%*s        count          avg          p50          p95          p99\n",
                 w > 10 ? w - 10 : 0, "");
    for (const HistogramSnapshot& h : snap.histograms) {
      if (h.count == 0) continue;
      std::fprintf(out,
                   "  %-*s %12" PRIu64 " %12.6g %12.6g %12.6g %12.6g\n", w,
                   h.name.c_str(), h.count, h.Average(), h.Quantile(0.50),
                   h.Quantile(0.95), h.Quantile(0.99));
    }
  }
}

MetricsExporter::MetricsExporter(MetricsRegistry* registry, Options opts)
    : registry_(registry),
      opts_(std::move(opts)),
      // Registered in the ctor so the pinned metric appears (as 0) in every
      // snapshot, including the very first — the schema checker requires it.
      failures_counter_(registry->FindOrCreateCounter("obs.export_failures")) {
  if (opts_.interval_ms == 0) opts_.interval_ms = 1000;
  file_ = std::fopen(opts_.path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "metrics exporter: cannot open %s\n",
                 opts_.path.c_str());
    return;
  }
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread(&MetricsExporter::Loop, this);
}

MetricsExporter::~MetricsExporter() {
  Stop();
  if (file_ != nullptr) std::fclose(file_);
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  stopped_ = true;
}

size_t MetricsExporter::snapshots_written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_;
}

size_t MetricsExporter::export_failures() const {
  return static_cast<size_t>(failures_counter_->Value());
}

void MetricsExporter::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, std::chrono::milliseconds(opts_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lk.unlock();
    Emit();
    lk.lock();
  }
  lk.unlock();
  // Final snapshot so short runs still leave a complete artifact.
  Emit();
}

void MetricsExporter::Emit() {
  const double ts_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const MetricsSnapshot snap = registry_->TakeSnapshot();
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lk(mu_);
    seq = ++seq_;
  }
  const std::string line = SnapshotToJsonLine(snap, seq, ts_ms);
  // A failed write (injected via the `exporter.write` fault point or a real
  // I/O error) drops this sample only: counters are cumulative, so the next
  // interval's snapshot subsumes it. The failure is counted in the pinned
  // obs.export_failures metric — which rides along in that next snapshot —
  // and logged once per exporter rather than once per interval, so a dead
  // disk doesn't flood stderr.
  bool failed = GPMV_FAULT_POINT(opts_.fault, "exporter.write");
  if (!failed) {
    failed = std::fputs(line.c_str(), file_) < 0 ||
             std::fputc('\n', file_) == EOF || std::fflush(file_) != 0;
  }
  if (failed) {
    failures_counter_->Add(1);
    if (!failure_logged_) {
      failure_logged_ = true;
      std::fprintf(stderr,
                   "metrics exporter: write to %s failed; will keep retrying "
                   "each interval (logged once)\n",
                   opts_.path.c_str());
    }
    std::clearerr(file_);  // a later interval may succeed (e.g. disk freed)
  }
}

}  // namespace obs
}  // namespace gpmv
