/// \file engine_throughput.cc
/// \brief End-to-end throughput of the concurrent view-cache query engine:
/// a 1k-query mixed workload over a generated graph, evaluated twice —
///
///   cold: an engine with no registered views (every plan is direct
///         (bounded) simulation on G), and
///   warm: an engine whose covering views are materialized up front, so
///         queries answer from the cache via MatchJoin.
///
/// Both passes run the same queries on the same worker pool; the report
/// gives queries/sec for each, the warm/cold speedup, the cache hit rate,
/// and the eviction counters. A standalone harness (not google-benchmark)
/// because the interesting numbers are the engine's own counters.
///
///   ./build/bench/engine_throughput [queries] [threads] [--min-speedup X]
///
/// With --min-speedup the process exits non-zero when the warm pass is not
/// at least X times faster — the CI smoke gate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "engine/query_engine.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

struct PassResult {
  double seconds = 0.0;
  size_t matched = 0;
  size_t total_pairs = 0;
  EngineStats stats;
};

PassResult RunPass(QueryEngine& engine, const std::vector<Pattern>& patterns,
                   size_t num_queries) {
  PassResult out;
  Stopwatch wall;
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    Result<std::future<QueryResponse>> fut =
        engine.Submit(patterns[i % patterns.size()]);
    if (!fut.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   fut.status().ToString().c_str());
      std::exit(1);
    }
    futures.push_back(std::move(*fut));
  }
  for (auto& fut : futures) {
    QueryResponse resp = fut.get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
    if (resp.result.matched()) {
      ++out.matched;
      out.total_pairs += resp.result.TotalMatches();
    }
  }
  out.seconds = wall.ElapsedSeconds();
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries = 1000;
  size_t threads = 0;  // hardware concurrency
  double min_speedup = 0.0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0) {
      char* end = nullptr;
      if (i + 1 >= argc || (min_speedup = std::strtod(argv[++i], &end),
                            end == argv[i] || *end != '\0')) {
        std::fprintf(stderr, "--min-speedup requires a numeric value\n");
        return 2;
      }
    } else {
      char* end = nullptr;
      unsigned long long value = std::strtoull(argv[i], &end, 10);
      if (argv[i][0] == '-' || end == argv[i] || *end != '\0' ||
          positional >= 2) {
        std::fprintf(stderr,
                     "usage: engine_throughput [queries] [threads] "
                     "[--min-speedup X]\n");
        return 2;
      }
      (positional == 0 ? num_queries : threads) = value;
      ++positional;
    }
  }

  // A mid-size random graph and a mixed workload of recurring DAG patterns
  // — the shape a cache layer sees: many submissions, few distinct shapes.
  RandomGraphOptions go;
  go.num_nodes = 40000;
  go.num_edges = 120000;
  go.num_labels = 12;
  go.seed = 2026;
  Graph graph = GenerateRandomGraph(go);

  // Mixed workload: half plain simulation queries, half bounded queries
  // (bounds in [1, 3]) — the regime where views pay off most (Fig. 8(i-l)):
  // direct bounded evaluation runs BFS per candidate (label-blind
  // branching), MatchJoin reads the label-filtered materialized distance
  // pairs.
  std::vector<Pattern> patterns;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPatternOptions po;
    po.num_nodes = 3 + seed % 2;
    po.num_edges = po.num_nodes - 1 + seed % 2;
    po.label_pool = SyntheticLabels(go.num_labels);
    po.dag_only = true;
    po.max_bound = (seed % 2 == 0) ? 3 : 1;
    po.seed = seed;
    patterns.push_back(GenerateRandomPattern(po));
  }

  EngineOptions opts;
  opts.pool.num_threads = threads;

  std::printf("graph: %zu nodes, %zu edges, %zu labels; workload: %zu "
              "queries over %zu distinct patterns\n\n",
              graph.num_nodes(), graph.num_edges(), go.num_labels,
              num_queries, patterns.size());

  // Cold pass: no registered views, every query evaluates directly on G.
  PassResult cold;
  {
    QueryEngine engine(graph, opts);
    cold = RunPass(engine, patterns, num_queries);
  }

  // Warm pass: covering views registered and materialized up front; the
  // stream answers from the cache.
  PassResult warm;
  {
    QueryEngine engine(graph, opts);
    for (size_t i = 0; i < patterns.size(); ++i) {
      CoveringViewOptions co;
      co.edges_per_view = 2;
      co.num_distractors = 0;
      co.seed = 1000 + i;
      ViewSet cover = GenerateCoveringViews(patterns[i], co);
      for (const ViewDefinition& def : cover.views()) {
        Result<uint32_t> id = engine.RegisterView(
            def.name + "_q" + std::to_string(i), def.pattern);
        if (!id.ok()) {
          std::fprintf(stderr, "register failed: %s\n",
                       id.status().ToString().c_str());
          return 1;
        }
      }
    }
    Status st = engine.WarmViews();
    if (!st.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n", st.ToString().c_str());
      return 1;
    }
    warm = RunPass(engine, patterns, num_queries);
  }

  if (cold.matched != warm.matched || cold.total_pairs != warm.total_pairs) {
    std::fprintf(stderr,
                 "RESULT MISMATCH: cold matched=%zu pairs=%zu vs warm "
                 "matched=%zu pairs=%zu\n",
                 cold.matched, cold.total_pairs, warm.matched,
                 warm.total_pairs);
    return 1;
  }

  const double cold_qps =
      static_cast<double>(num_queries) / std::max(cold.seconds, 1e-9);
  const double warm_qps =
      static_cast<double>(num_queries) / std::max(warm.seconds, 1e-9);
  const double speedup = warm_qps / std::max(cold_qps, 1e-9);
  const size_t lookups = warm.stats.cache.hits + warm.stats.cache.misses;

  std::printf("cold (direct on G):   %8.2fs  %9.0f q/s  plans: direct=%zu\n",
              cold.seconds, cold_qps, cold.stats.plans_direct);
  std::printf("warm (view cache):    %8.2fs  %9.0f q/s  plans: "
              "match_join=%zu partial=%zu direct=%zu\n",
              warm.seconds, warm_qps, warm.stats.plans_match_join,
              warm.stats.plans_partial, warm.stats.plans_direct);
  std::printf("speedup (warm/cold):  %8.2fx\n", speedup);
  std::printf("matched queries: %zu/%zu, result pairs: %zu (passes agree)\n",
              warm.matched, num_queries, warm.total_pairs);
  std::printf("cache: hit_rate=%.1f%% (%zu/%zu)  evictions=%zu  "
              "installs=%zu  bytes=%zu  warm_queries=%zu\n",
              lookups == 0 ? 0.0
                           : 100.0 * static_cast<double>(warm.stats.cache.hits) /
                                 static_cast<double>(lookups),
              warm.stats.cache.hits, lookups, warm.stats.cache.evictions,
              warm.stats.cache.installs, warm.stats.cache.bytes_cached,
              warm.stats.warm_queries);
  // MatchJoin fixpoint telemetry (warm pass): iteration and saturation
  // counters make "the fixpoint got slower" diagnosable from CI logs even
  // when wall-clock numbers are noisy.
  const MatchJoinStats& js = warm.stats.join;
  std::printf("fixpoint: initial_pairs=%zu removed=%zu set_visits=%zu "
              "iterations=%zu counters_zeroed=%zu candidate_ranks=%zu "
              "dist_filtered=%zu cond_filtered=%zu\n",
              js.initial_pairs, js.removed_pairs, js.match_set_visits,
              js.fixpoint_iterations, js.counters_zeroed, js.candidate_ranks,
              js.filtered_by_distance, js.filtered_by_condition);

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
