/// \file engine_throughput.cc
/// \brief End-to-end throughput of the concurrent view-cache query engine:
/// a 1k-query mixed workload over a generated graph, evaluated twice —
///
///   cold: an engine with no registered views (every plan is direct
///         (bounded) simulation on G),
///   warm: an engine whose covering views are materialized up front, so
///         queries answer from the cache via MatchJoin, and
///   memo: the warm configuration plus the full-result cache
///         (engine/result_cache.h) — repeats of a (minimized) query at an
///         unchanged graph version return the memoized Q(G).
///
/// The result cache is disabled in the cold and warm passes so the gated
/// warm/cold ratio keeps measuring the *view* serving path. All passes run
/// the same queries on the same worker pool; the report gives queries/sec
/// for each, the warm/cold and memo/warm speedups, the cache hit rates,
/// and the eviction counters. A standalone harness (not google-benchmark)
/// because the interesting numbers are the engine's own counters.
///
/// A fourth section measures the observability tax: the warm pass re-run
/// with the metrics registry on vs off (EngineOptions::obs.enabled — the
/// serve `--no-metrics` baseline), best-of-3 each, interleaved. The hot
/// path per query is a handful of relaxed atomic adds under a shared gate
/// lock, so the ratio is gated tightly in CI.
///
///   ./build/bench/engine_throughput [queries] [threads] [--min-speedup X]
///                                    [--max-obs-overhead F] [--json path]
///
/// With --min-speedup the process exits non-zero when the warm pass is not
/// at least X times faster — the CI smoke gate. With --max-obs-overhead
/// the process exits non-zero when the instrumented warm pass is more than
/// a fraction F slower than the uninstrumented one (CI uses 0.03 = 3%).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/query_engine.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

struct PassResult {
  double seconds = 0.0;
  size_t matched = 0;
  size_t total_pairs = 0;
  EngineStats stats;
};

PassResult RunPass(QueryEngine& engine, const std::vector<Pattern>& patterns,
                   size_t num_queries) {
  PassResult out;
  Stopwatch wall;
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    Result<std::future<QueryResponse>> fut =
        engine.Submit(patterns[i % patterns.size()]);
    if (!fut.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   fut.status().ToString().c_str());
      std::exit(1);
    }
    futures.push_back(std::move(*fut));
  }
  for (auto& fut : futures) {
    QueryResponse resp = fut.get();
    if (!resp.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
    if (resp.result.matched()) {
      ++out.matched;
      out.total_pairs += resp.result.TotalMatches();
    }
  }
  out.seconds = wall.ElapsedSeconds();
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t positionals[2] = {1000, 0};  // queries, threads (0 = hw conc.)
  double min_speedup = 0.0;
  double max_obs_overhead = 0.0;
  std::string json_path;
  if (!gpmv::bench::TakeJsonFlag(&argc, argv, &json_path) ||
      !gpmv::bench::TakeMinSpeedupFlag(&argc, argv, &min_speedup) ||
      !gpmv::bench::TakeDoubleFlag(&argc, argv, "--max-obs-overhead",
                                   &max_obs_overhead) ||
      !gpmv::bench::ParsePositionals(
          argc, argv,
          "engine_throughput [queries] [threads] [--min-speedup X] "
          "[--max-obs-overhead F] [--json path]",
          positionals, 2)) {
    return 2;
  }
  const size_t num_queries = positionals[0];
  const size_t threads = positionals[1];

  // A mid-size random graph and a mixed workload of recurring DAG patterns
  // — the shape a cache layer sees: many submissions, few distinct shapes.
  RandomGraphOptions go;
  go.num_nodes = 40000;
  go.num_edges = 120000;
  go.num_labels = 12;
  go.seed = 2026;
  Graph graph = GenerateRandomGraph(go);

  // Mixed workload: half plain simulation queries, half bounded queries
  // (bounds in [1, 3]) — the regime where views pay off most (Fig. 8(i-l)):
  // direct bounded evaluation runs BFS per candidate (label-blind
  // branching), MatchJoin reads the label-filtered materialized distance
  // pairs.
  std::vector<Pattern> patterns;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPatternOptions po;
    po.num_nodes = 3 + seed % 2;
    po.num_edges = po.num_nodes - 1 + seed % 2;
    po.label_pool = SyntheticLabels(go.num_labels);
    po.dag_only = true;
    po.max_bound = (seed % 2 == 0) ? 3 : 1;
    po.seed = seed;
    patterns.push_back(GenerateRandomPattern(po));
  }

  EngineOptions opts;
  opts.pool.num_threads = threads;
  // Cold/warm measure the view path; the memo pass re-enables the default
  // result cache below.
  opts.result_cache.budget_bytes = 0;

  std::printf("graph: %zu nodes, %zu edges, %zu labels; workload: %zu "
              "queries over %zu distinct patterns\n\n",
              graph.num_nodes(), graph.num_edges(), go.num_labels,
              num_queries, patterns.size());

  // Cold pass: no registered views, every query evaluates directly on G.
  PassResult cold;
  {
    QueryEngine engine(graph, opts);
    cold = RunPass(engine, patterns, num_queries);
  }

  // Warm/memo passes: covering views registered and materialized up front;
  // the stream answers from the cache (and, for memo, the result memo).
  auto run_view_pass = [&](const EngineOptions& pass_opts, PassResult* out) {
    QueryEngine engine(graph, pass_opts);
    for (size_t i = 0; i < patterns.size(); ++i) {
      CoveringViewOptions co;
      co.edges_per_view = 2;
      co.num_distractors = 0;
      co.seed = 1000 + i;
      ViewSet cover = GenerateCoveringViews(patterns[i], co);
      for (const ViewDefinition& def : cover.views()) {
        Result<uint32_t> id = engine.RegisterView(
            def.name + "_q" + std::to_string(i), def.pattern);
        if (!id.ok()) {
          std::fprintf(stderr, "register failed: %s\n",
                       id.status().ToString().c_str());
          std::exit(1);
        }
      }
    }
    Status st = engine.WarmViews();
    if (!st.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    *out = RunPass(engine, patterns, num_queries);
  };
  PassResult warm;
  run_view_pass(opts, &warm);
  PassResult memo;
  {
    EngineOptions memo_opts = opts;
    memo_opts.result_cache = ResultCacheOptions{};  // back to the default
    run_view_pass(memo_opts, &memo);
  }

  if (cold.matched != warm.matched || cold.total_pairs != warm.total_pairs ||
      memo.matched != warm.matched || memo.total_pairs != warm.total_pairs) {
    std::fprintf(stderr,
                 "RESULT MISMATCH: cold matched=%zu pairs=%zu vs warm "
                 "matched=%zu pairs=%zu vs memo matched=%zu pairs=%zu\n",
                 cold.matched, cold.total_pairs, warm.matched,
                 warm.total_pairs, memo.matched, memo.total_pairs);
    return 1;
  }

  const double cold_qps =
      static_cast<double>(num_queries) / std::max(cold.seconds, 1e-9);
  const double warm_qps =
      static_cast<double>(num_queries) / std::max(warm.seconds, 1e-9);
  const double speedup = warm_qps / std::max(cold_qps, 1e-9);
  const size_t lookups = warm.stats.cache.hits + warm.stats.cache.misses;

  std::printf("cold (direct on G):   %8.2fs  %9.0f q/s  plans: direct=%zu\n",
              cold.seconds, cold_qps, cold.stats.plans_direct);
  std::printf("warm (view cache):    %8.2fs  %9.0f q/s  plans: "
              "match_join=%zu partial=%zu direct=%zu\n",
              warm.seconds, warm_qps, warm.stats.plans_match_join,
              warm.stats.plans_partial, warm.stats.plans_direct);
  const double memo_qps =
      static_cast<double>(num_queries) / std::max(memo.seconds, 1e-9);
  std::printf("memo (+result cache): %8.2fs  %9.0f q/s  result_cache: "
              "hits=%zu stale_drops=%zu bytes=%zu\n",
              memo.seconds, memo_qps, memo.stats.result_cache.hits,
              memo.stats.result_cache.stale_drops,
              memo.stats.result_cache.bytes_cached);
  std::printf("speedup (warm/cold):  %8.2fx   (memo/warm: %.2fx)\n", speedup,
              memo_qps / std::max(warm_qps, 1e-9));
  std::printf("matched queries: %zu/%zu, result pairs: %zu (passes agree)\n",
              warm.matched, num_queries, warm.total_pairs);
  std::printf("cache: hit_rate=%.1f%% (%zu/%zu)  evictions=%zu  "
              "installs=%zu  bytes=%zu  warm_queries=%zu\n",
              lookups == 0 ? 0.0
                           : 100.0 * static_cast<double>(warm.stats.cache.hits) /
                                 static_cast<double>(lookups),
              warm.stats.cache.hits, lookups, warm.stats.cache.evictions,
              warm.stats.cache.installs, warm.stats.cache.bytes_cached,
              warm.stats.warm_queries);
  // MatchJoin fixpoint telemetry (warm pass): iteration and saturation
  // counters make "the fixpoint got slower" diagnosable from CI logs even
  // when wall-clock numbers are noisy.
  const MatchJoinStats& js = warm.stats.join;
  std::printf("fixpoint: initial_pairs=%zu removed=%zu set_visits=%zu "
              "iterations=%zu counters_zeroed=%zu candidate_ranks=%zu "
              "dist_filtered=%zu cond_filtered=%zu\n",
              js.initial_pairs, js.removed_pairs, js.match_set_visits,
              js.fixpoint_iterations, js.counters_zeroed, js.candidate_ranks,
              js.filtered_by_distance, js.filtered_by_condition);

  // Observability tax: the warm pass with the metrics registry on vs off.
  // Each rep runs the two configurations back to back and takes their
  // ratio — adjacent runs see the same machine state, so drift cancels
  // inside a pair — and the gate uses the median rep (single-rep minima
  // still carry several percent of scheduler noise).
  std::vector<double> obs_ratios;
  double obs_on_s = std::numeric_limits<double>::infinity();
  double obs_off_s = std::numeric_limits<double>::infinity();
  {
    EngineOptions off_opts = opts;
    off_opts.obs.enabled = false;
    for (int rep = 0; rep < 5; ++rep) {
      PassResult on, off;
      run_view_pass(opts, &on);
      run_view_pass(off_opts, &off);
      obs_ratios.push_back(on.seconds / std::max(off.seconds, 1e-9));
      obs_on_s = std::min(obs_on_s, on.seconds);
      obs_off_s = std::min(obs_off_s, off.seconds);
    }
  }
  std::sort(obs_ratios.begin(), obs_ratios.end());
  const double obs_overhead = obs_ratios[obs_ratios.size() / 2] - 1.0;
  std::printf("observability: instrumented %.3fs vs --no-metrics %.3fs "
              "(median overhead %+.2f%%)\n",
              obs_on_s, obs_off_s, 100.0 * obs_overhead);

  gpmv::bench::JsonReport jr("engine_throughput");
  jr.Meta("queries", static_cast<double>(num_queries));
  jr.Add("cold", {{"seconds", cold.seconds}, {"queries_per_sec", cold_qps}});
  jr.Add("warm",
         {{"seconds", warm.seconds},
          {"queries_per_sec", warm_qps},
          {"speedup", speedup},
          {"cache_hit_rate",
           lookups == 0 ? 0.0
                        : static_cast<double>(warm.stats.cache.hits) /
                              static_cast<double>(lookups)}});
  jr.Add("memo",
         {{"seconds", memo.seconds},
          {"queries_per_sec", memo_qps},
          {"speedup_vs_warm", memo_qps / std::max(warm_qps, 1e-9)},
          {"result_cache_hits",
           static_cast<double>(memo.stats.result_cache.hits)}});
  jr.Add("observability", {{"instrumented_seconds", obs_on_s},
                           {"no_metrics_seconds", obs_off_s},
                           {"overhead_fraction", obs_overhead}});
  if (!jr.WriteTo(json_path)) return 1;

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  if (max_obs_overhead > 0.0 && obs_overhead > max_obs_overhead) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% above allowed %.2f%%\n",
                 100.0 * obs_overhead, 100.0 * max_obs_overhead);
    return 1;
  }
  return 0;
}
