/// Fig. 8(e): impact of pattern size on MatchJoin_min's scalability —
/// four query families Q1..Q4 with (|Vp|,|Ep|) from (4,8) to (7,14),
/// |Ep| = 2|Vp|, over the same |G| sweep as Fig. 8(d). Expected shape:
/// larger queries cost more (more views needed to cover them), growth in
/// |G| stays gentle.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

Pattern QueryFor(int64_t vp) {
  RandomPatternOptions po;
  po.num_nodes = static_cast<uint32_t>(vp);
  po.num_edges = static_cast<uint32_t>(2 * vp);
  po.label_pool = SyntheticLabels(10);
  po.seed = 41 + static_cast<uint64_t>(vp);
  return GenerateRandomPattern(po);
}

Fixture BuildSynthetic(const std::string& key) {
  // key = "<num_nodes>/<vp>"
  size_t slash = key.find('/');
  size_t num_nodes = std::stoull(key.substr(0, slash));
  int64_t vp = std::stoll(key.substr(slash + 1));
  RandomGraphOptions go;
  go.num_nodes = num_nodes;
  go.num_edges = 2 * num_nodes;
  go.num_labels = 10;
  go.seed = 17;
  Pattern q = QueryFor(vp);
  CoveringViewOptions co;
  co.edges_per_view = 2;
  co.num_distractors = 6;
  co.overlap_views = 4;
  co.seed = 29;
  return MakeFixture(GenerateRandomGraph(go), GenerateCoveringViews(q, co));
}

void BM_MatchJoinMin(benchmark::State& state) {
  const int64_t num_nodes = state.range(0);
  const int64_t vp = state.range(1);
  Fixture& f = CachedFixture(
      std::to_string(Scaled(num_nodes)) + "/" + std::to_string(vp),
      &BuildSynthetic);
  Pattern q = QueryFor(vp);
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t vp : {4, 5, 6, 7}) {          // Q1..Q4: (4,8)..(7,14)
    for (int64_t n = 30000; n <= 100000; n += 10000) b->Args({n, vp});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_MatchJoinMin)->Apply(Sweep);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
