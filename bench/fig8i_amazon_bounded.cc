/// Fig. 8(i): bounded pattern matching on Amazon with fe(e) = 2, |Qb| from
/// (4,4,2) to (8,16,2) — BMatch (no views) vs. BMatchJoin_mnl vs.
/// BMatchJoin_min. Expected shape: the view-based variants need a small
/// fraction of BMatch's time (paper: 10-14%) and grow far slower with
/// pattern size; min beats mnl.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

constexpr uint32_t kBound = 2;

Fixture BuildAmazon(const std::string&) {
  return MakeFixture(GenerateAmazonLike(Scaled(40000), 4242),
                     AmazonViews(kBound));
}

Fixture& AmazonFixture() { return CachedFixture("amazonb", &BuildAmazon); }

Pattern QueryFor(int64_t vp, int64_t ep) {
  // All edges carry bound 2, as in the paper's setup.
  Pattern base = GenerateAmazonQuery(static_cast<uint32_t>(vp),
                                     static_cast<uint32_t>(ep), 1,
                                     static_cast<uint64_t>(vp * 100 + ep));
  Pattern q;
  for (uint32_t u = 0; u < base.num_nodes(); ++u) {
    q.AddNode(base.node(u).label, base.node(u).pred, base.node(u).name);
  }
  for (const PatternEdge& e : base.edges()) {
    (void)q.AddEdge(e.src, e.dst, kBound);
  }
  return q;
}

void BM_BMatch(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  RunDirectLoop(state, q, f.g, /*naive=*/true);
}

// This library's improved bounded matcher (multi-source reverse-BFS
// pruning) — not part of the paper's figure, shown for reference.
void BM_BMatchFast(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  RunDirectLoop(state, q, f.g, /*naive=*/false);
}

void BM_BMatchJoinMnl(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_BMatchJoinMin(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (auto [vp, ep] : {std::pair<int64_t, int64_t>{4, 4}, {4, 6}, {4, 8},
                        {6, 6}, {6, 9}, {6, 12}, {8, 8}, {8, 12}, {8, 16}}) {
    b->Args({vp, ep});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_BMatch)->Apply(Sizes);
BENCHMARK(BM_BMatchFast)->Apply(Sizes);
BENCHMARK(BM_BMatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_BMatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
