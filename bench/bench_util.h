/// \file bench_util.h
/// \brief Shared scaffolding for the benchmarks: the machine-readable JSON
/// reporter used by every standalone harness (`--json <path>`), and the
/// fixture helpers of the figure-reproduction (google-benchmark) binaries.
///
/// The JSON section has no dependencies beyond the standard library so the
/// standalone harnesses (engine_throughput, fixpoint_microbench,
/// shard_scaling, update_latency) can include this header without linking
/// google-benchmark; the gbench-only fixture section below is guarded by
/// GPMV_BENCH_HAVE_GBENCH, which CMake defines for the fig8*/ablation
/// binaries (the ones that link the library).
///
/// Figure benchmarks: every fig8* binary regenerates one figure of the
/// paper's evaluation (Fig. 8(a)-(l)). The real datasets are replaced by
/// the synthetic stand-ins of workload/datasets.h at roughly 10x reduced
/// scale; the GPMV_BENCH_SCALE environment variable multiplies all graph
/// sizes for larger runs. Fixtures (graph + materialized views) are built
/// once per binary and cached; the timed regions cover exactly what the
/// paper times.

#ifndef GPMV_BENCH_BENCH_UTIL_H_
#define GPMV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bmatch_join.h"
#include "core/containment.h"
#include "core/match_join.h"
#include "core/view.h"
#include "simulation/bounded.h"
#include "simulation/simulation.h"
#include "workload/datasets.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

namespace gpmv {
namespace bench {

/// Machine-readable results for the perf-trajectory artifacts the CI
/// uploads (and the BENCH_*.json files committed per PR): one named report
/// with flat string metadata plus labeled rows of numeric metrics.
///
///   JsonReport report("update_latency");
///   report.Meta("graph_nodes", 20000);
///   report.Add("insert_b16_delta", {{"p50_ms", 0.4}, {"updates_per_sec", 9e4}});
///   report.WriteTo(path);  // {"bench": "...", "meta": {...}, "results": [...]}
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void Meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, Quote(value));
  }
  void Meta(const std::string& key, double value) {
    meta_.emplace_back(key, Number(value));
  }

  void Add(const std::string& label,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    rows_.emplace_back();
    rows_.back().first = label;
    for (const auto& [k, v] : metrics) rows_.back().second.emplace_back(k, v);
  }
  /// Vector overload for rows assembled conditionally.
  void Add(const std::string& label,
           const std::vector<std::pair<std::string, double>>& metrics) {
    rows_.emplace_back();
    rows_.back().first = label;
    for (const auto& [k, v] : metrics) rows_.back().second.emplace_back(k, v);
  }

  /// Writes the report; returns false (with a message on stderr) on I/O
  /// failure. An empty path is a no-op success, so callers can pass the
  /// --json flag value through unconditionally.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"meta\": {", Quote(bench_).c_str());
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s\n    %s: %s", i ? "," : "",
                   Quote(meta_[i].first).c_str(), meta_[i].second.c_str());
    }
    std::fprintf(f, "%s},\n  \"results\": [", meta_.empty() ? "" : "\n  ");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"label\": %s", i ? "," : "",
                   Quote(rows_[i].first).c_str());
      for (const auto& [k, v] : rows_[i].second) {
        std::fprintf(f, ", %s: %s", Quote(k).c_str(), Number(v).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "%s]\n}\n", rows_.empty() ? "" : "\n  ");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }
  static std::string Number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      rows_;
};

/// Parses the shared `--json <path>` flag out of argv (removing both
/// tokens); returns false on a missing value.
inline bool TakeJsonFlag(int* argc, char** argv, std::string* path) {
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= *argc) {
        std::fprintf(stderr, "--json requires a path\n");
        return false;
      }
      *path = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return true;
    }
  }
  return true;
}

/// Parses a `<flag> X` numeric gate flag out of argv (removing both
/// tokens); returns false on a missing or malformed value. `*value` is
/// untouched (harnesses default it to 0 = no gate) when absent.
inline bool TakeDoubleFlag(int* argc, char** argv, const char* flag,
                           double* value) {
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == flag) {
      char* end = nullptr;
      if (i + 1 >= *argc ||
          (*value = std::strtod(argv[i + 1], &end), end == argv[i + 1] ||
           *end != '\0')) {
        std::fprintf(stderr, "%s requires a numeric value\n", flag);
        return false;
      }
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return true;
    }
  }
  return true;
}

/// The shared `--min-speedup X` gate flag.
inline bool TakeMinSpeedupFlag(int* argc, char** argv, double* value) {
  return TakeDoubleFlag(argc, argv, "--min-speedup", value);
}

/// Parses the harnesses' trailing numeric positionals (after the Take*Flag
/// helpers stripped the shared flags): up to `max_positional` non-negative
/// integers into `positionals[]`, in order. Returns false (printing
/// `usage`) on anything else.
inline bool ParsePositionals(int argc, char** argv, const char* usage,
                             size_t* positionals, int max_positional) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    char* end = nullptr;
    unsigned long long value = std::strtoull(argv[i], &end, 10);
    if (argv[i][0] == '-' || end == argv[i] || *end != '\0' ||
        positional >= max_positional) {
      std::fprintf(stderr, "usage: %s\n", usage);
      return false;
    }
    positionals[positional++] = static_cast<size_t>(value);
  }
  return true;
}

/// Global size multiplier (GPMV_BENCH_SCALE, default 1.0).
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("GPMV_BENCH_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

/// A dataset fixture: graph plus materialized views.
struct Fixture {
  Graph g;
  ViewSet views;
  std::vector<ViewExtension> exts;

  double ViewFraction() const {
    return static_cast<double>(TotalExtensionPairs(exts)) /
           static_cast<double>(g.num_edges());
  }
};

inline Fixture MakeFixture(Graph graph, ViewSet views) {
  Fixture f;
  f.g = std::move(graph);
  f.views = std::move(views);
  f.exts = std::move(MaterializeAll(f.views, f.g)).value();
  return f;
}

/// Lazily-built fixture cache keyed by an arbitrary string.
inline Fixture& CachedFixture(const std::string& key,
                              Fixture (*build)(const std::string&)) {
  static std::map<std::string, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Fixture>(build(key))).first;
  }
  return *it->second;
}

}  // namespace bench
}  // namespace gpmv

// ---- google-benchmark-only section (fig8*/ablation binaries) -------------
// Guarded by a CMake-provided define, not __has_include: the gbench header
// drags in a global initializer that needs the library at link time, which
// the standalone harnesses do not link.
#ifdef GPMV_BENCH_HAVE_GBENCH
#include <benchmark/benchmark.h>

namespace gpmv {
namespace bench {

/// Runs one view-based matching configuration inside a benchmark loop and
/// reports the paper's counters.
inline void RunMatchJoinLoop(benchmark::State& state, const Pattern& q,
                             const Fixture& f,
                             const ContainmentMapping& mapping,
                             bool use_rank_order = true) {
  size_t result_pairs = 0;
  for (auto _ : state) {
    MatchJoinOptions opts;
    opts.use_rank_order = use_rank_order;
    Result<MatchResult> r = MatchJoin(q, f.views, f.exts, mapping, opts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result_pairs = r->TotalMatches();
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
  state.counters["views_used"] = static_cast<double>(mapping.selected.size());
}

/// Runs the direct (no views) baseline inside a benchmark loop. For bounded
/// patterns, `naive` selects the paper's cubic BMatch baseline [16]
/// (per-candidate BFS) instead of this library's improved implementation.
inline void RunDirectLoop(benchmark::State& state, const Pattern& q,
                          const Graph& g, bool naive = false) {
  size_t result_pairs = 0;
  for (auto _ : state) {
    Result<MatchResult> r =
        q.IsSimulationPattern()
            ? MatchSimulation(q, g)
            : (naive ? MatchBoundedSimulationNaive(q, g)
                     : MatchBoundedSimulation(q, g));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result_pairs = r->TotalMatches();
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
}

}  // namespace bench
}  // namespace gpmv
#endif  // GPMV_BENCH_HAVE_GBENCH

#endif  // GPMV_BENCH_BENCH_UTIL_H_
