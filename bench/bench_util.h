/// \file bench_util.h
/// \brief Shared scaffolding for the figure-reproduction benchmarks.
///
/// Every binary in bench/ regenerates one figure of the paper's evaluation
/// (Fig. 8(a)-(l)). The real datasets are replaced by the synthetic
/// stand-ins of workload/datasets.h at roughly 10x reduced scale (see
/// DESIGN.md §4 and EXPERIMENTS.md); the GPMV_BENCH_SCALE environment
/// variable multiplies all graph sizes for larger runs.
///
/// Fixtures (graph + materialized views) are built once per binary and
/// cached; the timed regions cover exactly what the paper times — direct
/// matching vs. MatchJoin over cached extensions (the per-query containment
/// check is sub-millisecond and benchmarked separately in Fig. 8(g)/(h)).

#ifndef GPMV_BENCH_BENCH_UTIL_H_
#define GPMV_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/bmatch_join.h"
#include "core/containment.h"
#include "core/match_join.h"
#include "core/view.h"
#include "simulation/bounded.h"
#include "simulation/simulation.h"
#include "workload/datasets.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

namespace gpmv {
namespace bench {

/// Global size multiplier (GPMV_BENCH_SCALE, default 1.0).
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("GPMV_BENCH_SCALE");
    return env != nullptr ? std::atof(env) : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(static_cast<double>(base) * Scale());
}

/// A dataset fixture: graph plus materialized views.
struct Fixture {
  Graph g;
  ViewSet views;
  std::vector<ViewExtension> exts;

  double ViewFraction() const {
    return static_cast<double>(TotalExtensionPairs(exts)) /
           static_cast<double>(g.num_edges());
  }
};

inline Fixture MakeFixture(Graph graph, ViewSet views) {
  Fixture f;
  f.g = std::move(graph);
  f.views = std::move(views);
  f.exts = std::move(MaterializeAll(f.views, f.g)).value();
  return f;
}

/// Lazily-built fixture cache keyed by an arbitrary string.
inline Fixture& CachedFixture(const std::string& key,
                              Fixture (*build)(const std::string&)) {
  static std::map<std::string, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Fixture>(build(key))).first;
  }
  return *it->second;
}

/// Runs one view-based matching configuration inside a benchmark loop and
/// reports the paper's counters.
inline void RunMatchJoinLoop(benchmark::State& state, const Pattern& q,
                             const Fixture& f,
                             const ContainmentMapping& mapping,
                             bool use_rank_order = true) {
  size_t result_pairs = 0;
  for (auto _ : state) {
    MatchJoinOptions opts;
    opts.use_rank_order = use_rank_order;
    Result<MatchResult> r = MatchJoin(q, f.views, f.exts, mapping, opts);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result_pairs = r->TotalMatches();
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
  state.counters["views_used"] = static_cast<double>(mapping.selected.size());
}

/// Runs the direct (no views) baseline inside a benchmark loop. For bounded
/// patterns, `naive` selects the paper's cubic BMatch baseline [16]
/// (per-candidate BFS) instead of this library's improved implementation.
inline void RunDirectLoop(benchmark::State& state, const Pattern& q,
                          const Graph& g, bool naive = false) {
  size_t result_pairs = 0;
  for (auto _ : state) {
    Result<MatchResult> r =
        q.IsSimulationPattern()
            ? MatchSimulation(q, g)
            : (naive ? MatchBoundedSimulationNaive(q, g)
                     : MatchBoundedSimulation(q, g));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result_pairs = r->TotalMatches();
    benchmark::DoNotOptimize(r);
  }
  state.counters["result_pairs"] = static_cast<double>(result_pairs);
}

}  // namespace bench
}  // namespace gpmv

#endif  // GPMV_BENCH_BENCH_UTIL_H_
