/// Fig. 8(k): effect of the hop bound fe(e) — YouTube, pattern fixed at
/// (4,8), fe(e) swept 2..6 — BMatch vs. BMatchJoin_mnl vs. BMatchJoin_min.
/// Expected shape: BMatch degrades sharply with fe(e) (deeper BFS per
/// candidate), while the view-based variants stay near-flat (paper: 3% of
/// BMatch's time at fe = 3); min <= mnl.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

Fixture BuildYoutube(const std::string& key) {
  uint32_t bound = static_cast<uint32_t>(std::stoul(key));
  // Large enough that a 6-hop ball stays a small fraction of the graph —
  // at toy sizes the ball saturates and direct BFS becomes artificially
  // cheap relative to the paper's 1.6M-node setting.
  return MakeFixture(GenerateYoutubeLike(Scaled(20000), 999),
                     YoutubeViews(bound));
}

Fixture& YoutubeFixture(int64_t bound) {
  return CachedFixture(std::to_string(bound), &BuildYoutube);
}

Pattern QueryFor(int64_t bound) {
  return GenerateYoutubeQuery(8, static_cast<uint32_t>(bound), 5);
}

void BM_BMatch(benchmark::State& state) {
  Fixture& f = YoutubeFixture(state.range(0));
  Pattern q = QueryFor(state.range(0));
  RunDirectLoop(state, q, f.g, /*naive=*/true);
}

// This library's improved bounded matcher (multi-source reverse-BFS
// pruning) — not part of the paper's figure, shown for reference.
void BM_BMatchFast(benchmark::State& state) {
  Fixture& f = YoutubeFixture(state.range(0));
  Pattern q = QueryFor(state.range(0));
  RunDirectLoop(state, q, f.g, /*naive=*/false);
}

void BM_BMatchJoinMnl(benchmark::State& state) {
  Fixture& f = YoutubeFixture(state.range(0));
  Pattern q = QueryFor(state.range(0));
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_BMatchJoinMin(benchmark::State& state) {
  Fixture& f = YoutubeFixture(state.range(0));
  Pattern q = QueryFor(state.range(0));
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Bounds(benchmark::internal::Benchmark* b) {
  for (int64_t k : {2, 3, 4, 5, 6}) b->Args({k});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_BMatch)->Apply(Bounds);
BENCHMARK(BM_BMatchFast)->Apply(Bounds);
BENCHMARK(BM_BMatchJoinMnl)->Apply(Bounds);
BENCHMARK(BM_BMatchJoinMin)->Apply(Bounds);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
