/// \file update_latency.cc
/// \brief Update-path latency: incremental maintenance of materialized
/// views under insert-only, delete-only and mixed edge-update streams, at
/// several batch sizes — the delta-insert path (simulation/delta.h)
/// head-to-head against per-batch re-materialization (the pre-delta
/// behavior, `EngineOptions::maintenance.enable_delta = false`).
///
///   ./build/bench/update_latency [batches] [--min-speedup X]
///       [--min-bounded-speedup X] [--appliers N] [--min-applier-ratio X]
///       [--json path]
///
/// Two view families run the full matrix: plain simulation views (the
/// original delta path) and bounded views (DeltaBoundedInsert + the
/// distance-index merge, new in PR 7 — before which every bounded view
/// re-materialized per batch). Every (family, stream kind, batch size)
/// configuration generates one update stream and applies the *identical*
/// stream through two engines with the same materialized views; per-batch
/// ApplyUpdates latency gives p50/p99, and edges-applied-per-second gives
/// the throughput rows. After each stream the two engines must answer the
/// view queries identically (the process exits non-zero otherwise), so the
/// bench doubles as an end-to-end equivalence check of both delta paths.
/// `--min-speedup X` gates the aggregate insert-stream speedup of the
/// plain family and `--min-bounded-speedup X` the bounded family (delta vs
/// re-materialize) — the CI smoke runs both at 1.3, under the >=2x the
/// delta delivers on insert-heavy streams (docs/BENCHMARKS.md). `--json`
/// writes the machine-readable rows (bench_util.h JsonReport).
///
/// A final section measures multi-applier streamed ingestion: the same
/// insert-only op stream pushed through a 1-applier and an N-applier
/// ApplierPool (`--appliers N`, default 2) into otherwise identical
/// engines, quiesced with FlushAndWait. Commits serialize at the MVCC
/// chain head, so N appliers buy concurrent drain/coalesce/validate — not
/// N-fold commit throughput; `--min-applier-ratio X` gates
/// throughput(N)/throughput(1) as a *no-regression* bound (the CI smoke
/// runs 0.9: the pool must not cost more than ~10% on a single producer).
/// Both passes must answer the view queries identically — the bench
/// doubles as a slice-routing equivalence check.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/query_engine.h"
#include "pattern/pattern_builder.h"
#include "stream/applier_pool.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

enum class StreamKind { kInsert, kDelete, kMixed };

const char* StreamName(StreamKind k) {
  switch (k) {
    case StreamKind::kInsert: return "insert";
    case StreamKind::kDelete: return "delete";
    case StreamKind::kMixed: return "mixed";
  }
  return "?";
}

/// Pre-generated update stream: identical batches for both engine configs.
/// Generation walks a shadow copy of the graph so deletions target edges
/// that exist and insertions target edges that do not.
std::vector<std::vector<EdgeUpdate>> MakeStream(const Graph& base,
                                                StreamKind kind,
                                                size_t num_batches,
                                                size_t batch_size,
                                                uint64_t seed) {
  Graph shadow = base;
  Rng rng(seed);
  auto random_new_edge = [&](NodeId* u, NodeId* v) {
    for (int tries = 0; tries < 200; ++tries) {
      *u = static_cast<NodeId>(rng.NextBounded(shadow.num_nodes()));
      *v = static_cast<NodeId>(rng.NextBounded(shadow.num_nodes()));
      if (*u != *v && !shadow.HasEdge(*u, *v)) return true;
    }
    return false;
  };
  auto random_old_edge = [&](NodeId* u, NodeId* v) {
    for (int tries = 0; tries < 200; ++tries) {
      *u = static_cast<NodeId>(rng.NextBounded(shadow.num_nodes()));
      if (shadow.out_degree(*u) == 0) continue;
      *v = shadow.out_neighbors(*u)[rng.NextBounded(shadow.out_degree(*u))];
      return true;
    }
    return false;
  };
  std::vector<std::vector<EdgeUpdate>> stream(num_batches);
  std::vector<NodePair> touched;  // per batch: one op per edge, so the
                                  // in-order shadow equals the engines'
                                  // set-semantics (deletes-first) outcome
  for (auto& batch : stream) {
    touched.clear();
    auto already_touched = [&](NodeId u, NodeId v) {
      for (const NodePair& p : touched) {
        if (p.first == u && p.second == v) return true;
      }
      return false;
    };
    for (size_t i = 0; i < batch_size; ++i) {
      const bool insert = kind == StreamKind::kInsert ||
                          (kind == StreamKind::kMixed && i % 2 == 0);
      NodeId u = 0, v = 0;
      if (insert) {
        if (!random_new_edge(&u, &v) || already_touched(u, v)) continue;
        (void)shadow.AddEdgeIfAbsent(u, v);
        batch.push_back(EdgeUpdate::Insert(u, v));
      } else {
        if (!random_old_edge(&u, &v) || already_touched(u, v)) continue;
        (void)shadow.RemoveEdge(u, v);
        batch.push_back(EdgeUpdate::Delete(u, v));
      }
      touched.emplace_back(u, v);
    }
  }
  return stream;
}

struct PassResult {
  double seconds = 0.0;   ///< total ApplyUpdates wall time
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t edges_applied = 0;
  std::vector<MatchResult> view_answers;  ///< per view pattern: full Q(G)
  EngineStats stats;
};

std::vector<Pattern> ViewPatterns() {
  // Plain simulation views over the generator's label pool: the shapes the
  // original delta path maintains.
  std::vector<Pattern> views;
  views.push_back(
      PatternBuilder().Node("L0").Node("L1").Edge("L0", "L1").Build());
  views.push_back(PatternBuilder()
                      .Node("L1").Node("L2").Node("L3")
                      .Edge("L1", "L2").Edge("L2", "L3")
                      .Build());
  views.push_back(PatternBuilder()
                      .Node("L4").Node("L5").Node("L6")
                      .Edge("L4", "L5").Edge("L4", "L6")
                      .Build());
  return views;
}

std::vector<Pattern> BoundedViewPatterns() {
  // Bounded views (path bounds 2/3): maintained by DeltaBoundedInsert and
  // the distance-index merge since PR 7; re-materialized per batch before.
  std::vector<Pattern> views;
  views.push_back(
      PatternBuilder().Node("L0").Node("L1").Edge("L0", "L1", 2).Build());
  views.push_back(PatternBuilder()
                      .Node("L2").Node("L3").Node("L4")
                      .Edge("L2", "L3", 2).Edge("L3", "L4", 3)
                      .Build());
  views.push_back(PatternBuilder()
                      .Node("L5").Node("L6").Node("L7")
                      .Edge("L5", "L6", 3).Edge("L5", "L7", 2)
                      .Build());
  return views;
}

PassResult RunPass(const Graph& base, const std::vector<Pattern>& views,
                   const std::vector<std::vector<EdgeUpdate>>& stream,
                   bool enable_delta) {
  EngineOptions opts;
  opts.pool.num_threads = 1;
  opts.maintenance.enable_delta = enable_delta;
  opts.result_cache.budget_bytes = 0;  // measure maintenance, not memo hits
  QueryEngine engine(base, opts);
  for (size_t i = 0; i < views.size(); ++i) {
    Result<uint32_t> id =
        engine.RegisterView("v" + std::to_string(i), views[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  Status warm = engine.WarmViews();
  if (!warm.ok()) {
    std::fprintf(stderr, "warm failed: %s\n", warm.ToString().c_str());
    std::exit(1);
  }

  PassResult out;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(stream.size());
  for (const std::vector<EdgeUpdate>& batch : stream) {
    Stopwatch sw;
    Status st = engine.ApplyUpdates(batch);
    const double ms = sw.ElapsedMillis();
    if (!st.ok()) {
      std::fprintf(stderr, "ApplyUpdates failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    latencies_ms.push_back(ms);
    out.seconds += ms / 1000.0;
    out.edges_applied += batch.size();
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    out.p50_ms = latencies_ms[latencies_ms.size() / 2];
    out.p99_ms = latencies_ms[(latencies_ms.size() * 99) / 100];
  }
  // Equivalence probe: the maintained extensions answer the view queries;
  // the caller compares the *full normalized results*, not just counts.
  for (const Pattern& vq : views) {
    QueryResponse resp = engine.Query(vq);
    if (!resp.status.ok()) {
      std::fprintf(stderr, "probe query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
    out.view_answers.push_back(std::move(resp.result));
  }
  out.stats = engine.stats();
  return out;
}

/// Insert-stream totals for one view family's aggregate speedup gate.
struct InsertAggregate {
  double delta_edges = 0.0, delta_secs = 0.0;
  double base_edges = 0.0, base_secs = 0.0;

  double Speedup() const {
    return (delta_edges / std::max(delta_secs, 1e-9)) /
           std::max(base_edges / std::max(base_secs, 1e-9), 1e-9);
  }
};

/// Runs the full (stream kind x batch size) matrix for one view family,
/// printing rows, appending JSON rows under `family`-prefixed labels and
/// accumulating the insert-stream aggregate. Returns false on a
/// delta-vs-rematerialize result mismatch.
bool RunMatrix(const Graph& base, const std::vector<Pattern>& views,
               size_t num_batches, const char* family, bool bounded,
               bench::JsonReport* report, InsertAggregate* agg,
               uint64_t* stream_seed) {
  const StreamKind kinds[] = {StreamKind::kInsert, StreamKind::kDelete,
                              StreamKind::kMixed};
  const size_t batch_sizes[] = {1, 16, 128};
  for (StreamKind kind : kinds) {
    for (size_t bs : batch_sizes) {
      const std::vector<std::vector<EdgeUpdate>> stream =
          MakeStream(base, kind, num_batches, bs, (*stream_seed)++);
      PassResult delta = RunPass(base, views, stream, /*enable_delta=*/true);
      PassResult remat = RunPass(base, views, stream, /*enable_delta=*/false);
      bool answers_equal =
          delta.view_answers.size() == remat.view_answers.size();
      for (size_t i = 0; answers_equal && i < delta.view_answers.size(); ++i) {
        answers_equal = delta.view_answers[i] == remat.view_answers[i];
      }
      if (!answers_equal) {
        std::fprintf(stderr,
                     "RESULT MISMATCH (%s%s, batch=%zu): delta-maintained "
                     "views disagree with re-materialized views\n",
                     family, StreamName(kind), bs);
        return false;
      }
      const double delta_ups = static_cast<double>(delta.edges_applied) /
                               std::max(delta.seconds, 1e-9);
      const double remat_ups = static_cast<double>(remat.edges_applied) /
                               std::max(remat.seconds, 1e-9);
      const double speedup = delta_ups / std::max(remat_ups, 1e-9);
      if (kind == StreamKind::kInsert) {
        agg->delta_edges += static_cast<double>(delta.edges_applied);
        agg->delta_secs += delta.seconds;
        agg->base_edges += static_cast<double>(remat.edges_applied);
        agg->base_secs += remat.seconds;
      }
      // The "delta" column counts the refreshes the family's delta path
      // actually served: DeltaBoundedInsert for bounded views.
      const size_t delta_count =
          bounded ? delta.stats.delta.bounded_delta_refreshes
                  : delta.stats.delta.delta_refreshes;
      char label[64];
      std::snprintf(label, sizeof(label), "%s%s_b%zu", family,
                    StreamName(kind), bs);
      std::printf("%-20s delta %10.3f %10.3f %10.0f %10zu %10zu %7.2fx\n",
                  label, delta.p50_ms, delta.p99_ms, delta_ups, delta_count,
                  delta.stats.delta.rematerialize_fallbacks, speedup);
      std::printf("%-20s remat %10.3f %10.3f %10.0f %10zu %10zu\n", label,
                  remat.p50_ms, remat.p99_ms, remat_ups,
                  remat.stats.delta.delta_refreshes,
                  remat.stats.delta.rematerialize_fallbacks);
      std::vector<std::pair<std::string, double>> row = {
          {"p50_ms", delta.p50_ms},
          {"p99_ms", delta.p99_ms},
          {"updates_per_sec", delta_ups},
          {"delta_refreshes", static_cast<double>(delta_count)},
          {"fallbacks",
           static_cast<double>(delta.stats.delta.rematerialize_fallbacks)},
          {"affected_nodes",
           static_cast<double>(delta.stats.delta.affected_nodes)},
          {"speedup", speedup}};
      if (bounded) {
        row.push_back({"bounded_matches_added",
                       static_cast<double>(
                           delta.stats.delta.bounded_matches_added)});
        row.push_back({"distance_entries",
                       static_cast<double>(delta.stats.cache.distance_entries)});
        row.push_back({"distance_repairs",
                       static_cast<double>(delta.stats.cache.distance_repairs)});
      }
      report->Add(std::string(label) + "_delta", row);
      report->Add(std::string(label) + "_rematerialize",
                  {{"p50_ms", remat.p50_ms},
                   {"p99_ms", remat.p99_ms},
                   {"updates_per_sec", remat_ups}});
    }
  }
  return true;
}

/// One streamed-ingestion pass: pushes `ops` through a `num_appliers`-wide
/// ApplierPool into a fresh engine with `views` warm, quiesces, and probes
/// the final view answers (the caller compares passes for equality).
struct ApplierPassResult {
  double seconds = 0.0;  ///< push + FlushAndWait wall time
  size_t ops = 0;
  uint64_t watermark = 0;  ///< published applied_through_ts after quiesce
  std::vector<MatchResult> view_answers;
};

ApplierPassResult RunApplierPass(const Graph& base,
                                 const std::vector<Pattern>& views,
                                 const std::vector<EdgeUpdate>& ops,
                                 size_t num_appliers) {
  EngineOptions opts;
  opts.pool.num_threads = 1;
  opts.result_cache.budget_bytes = 0;
  QueryEngine engine(base, opts);
  for (size_t i = 0; i < views.size(); ++i) {
    Result<uint32_t> id =
        engine.RegisterView("v" + std::to_string(i), views[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  Status warm = engine.WarmViews();
  if (!warm.ok()) {
    std::fprintf(stderr, "warm failed: %s\n", warm.ToString().c_str());
    std::exit(1);
  }

  ApplierPassResult out;
  {
    ApplierPoolOptions po;
    po.num_appliers = num_appliers;
    ApplierPool pool(&engine, po);
    Stopwatch sw;
    for (const EdgeUpdate& op : ops) {
      if (pool.Push(op) == 0) {
        std::fprintf(stderr, "applier pool rejected an op\n");
        std::exit(1);
      }
    }
    Status st = pool.FlushAndWait();
    out.seconds = sw.ElapsedSeconds();
    if (!st.ok()) {
      std::fprintf(stderr, "applier pool failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
  }
  out.ops = ops.size();
  out.watermark = engine.applied_through_ts();
  for (const Pattern& vq : views) {
    QueryResponse resp = engine.Query(vq);
    if (!resp.status.ok()) {
      std::fprintf(stderr, "probe query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
    out.view_answers.push_back(std::move(resp.result));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double min_speedup = 0.0;
  double min_bounded_speedup = 0.0;
  double min_applier_ratio = 0.0;
  double appliers_flag = 2.0;
  size_t positionals[1] = {120};  // batches per configuration
  if (!bench::TakeJsonFlag(&argc, argv, &json_path) ||
      !bench::TakeMinSpeedupFlag(&argc, argv, &min_speedup) ||
      !bench::TakeDoubleFlag(&argc, argv, "--min-bounded-speedup",
                             &min_bounded_speedup) ||
      !bench::TakeDoubleFlag(&argc, argv, "--appliers", &appliers_flag) ||
      !bench::TakeDoubleFlag(&argc, argv, "--min-applier-ratio",
                             &min_applier_ratio) ||
      !bench::ParsePositionals(
          argc, argv,
          "update_latency [batches] [--min-speedup X] "
          "[--min-bounded-speedup X] [--appliers N] "
          "[--min-applier-ratio X] [--json path]",
          positionals, 1)) {
    return 2;
  }
  const size_t num_appliers = appliers_flag < 1.0
                                  ? 1
                                  : static_cast<size_t>(appliers_flag);
  if (positionals[0] == 0) {
    std::fprintf(stderr, "batches must be > 0\n");
    return 2;
  }
  const size_t num_batches = positionals[0];

  RandomGraphOptions go;
  go.num_nodes = 20000;
  go.num_edges = 60000;
  go.num_labels = 8;
  go.seed = 2026;
  Graph base = GenerateRandomGraph(go);
  const std::vector<Pattern> plain_views = ViewPatterns();
  const std::vector<Pattern> bounded_views = BoundedViewPatterns();

  std::printf("graph: %zu nodes, %zu edges, %zu labels; %zu plain + %zu "
              "bounded views; %zu batches per configuration\n\n",
              base.num_nodes(), base.num_edges(), go.num_labels,
              plain_views.size(), bounded_views.size(), num_batches);
  std::printf("%-25s %10s %10s %10s %10s %10s %8s\n", "stream", "p50(ms)",
              "p99(ms)", "upd/s", "delta", "fallback", "speedup");

  bench::JsonReport report("update_latency");
  report.Meta("graph_nodes", static_cast<double>(base.num_nodes()));
  report.Meta("graph_edges", static_cast<double>(base.num_edges()));
  report.Meta("batches", static_cast<double>(num_batches));

  uint64_t stream_seed = 1;
  InsertAggregate plain_agg;
  if (!RunMatrix(base, plain_views, num_batches, "", /*bounded=*/false,
                 &report, &plain_agg, &stream_seed)) {
    return 1;
  }
  InsertAggregate bounded_agg;
  if (!RunMatrix(base, bounded_views, num_batches, "bounded_",
                 /*bounded=*/true, &report, &bounded_agg, &stream_seed)) {
    return 1;
  }

  const double agg_speedup = plain_agg.Speedup();
  const double bounded_speedup = bounded_agg.Speedup();
  std::printf("\ninsert-stream aggregate speedup (delta vs re-materialize): "
              "plain %.2fx, bounded %.2fx\n",
              agg_speedup, bounded_speedup);
  report.Add("insert_aggregate", {{"speedup", agg_speedup}});
  report.Add("bounded_insert_aggregate", {{"speedup", bounded_speedup}});

  // Multi-applier ingestion: identical insert-only op stream through a
  // 1-applier and an N-applier pool; final view answers must agree.
  std::vector<EdgeUpdate> pool_ops;
  for (const std::vector<EdgeUpdate>& batch :
       MakeStream(base, StreamKind::kInsert, num_batches, 16,
                  stream_seed++)) {
    pool_ops.insert(pool_ops.end(), batch.begin(), batch.end());
  }
  const ApplierPassResult one =
      RunApplierPass(base, plain_views, pool_ops, 1);
  const ApplierPassResult multi =
      RunApplierPass(base, plain_views, pool_ops, num_appliers);
  bool pool_equal = one.view_answers.size() == multi.view_answers.size() &&
                    one.watermark == multi.watermark;
  for (size_t i = 0; pool_equal && i < one.view_answers.size(); ++i) {
    pool_equal = one.view_answers[i] == multi.view_answers[i];
  }
  if (!pool_equal) {
    std::fprintf(stderr,
                 "RESULT MISMATCH: %zu-applier pool disagrees with the "
                 "1-applier pool on the same op stream\n",
                 num_appliers);
    return 1;
  }
  const double one_ups =
      static_cast<double>(one.ops) / std::max(one.seconds, 1e-9);
  const double multi_ups =
      static_cast<double>(multi.ops) / std::max(multi.seconds, 1e-9);
  const double applier_ratio = multi_ups / std::max(one_ups, 1e-9);
  std::printf("applier pool: %zu ops, 1 applier %.0f ops/s, %zu appliers "
              "%.0f ops/s (ratio %.2fx), watermark %llu\n",
              pool_ops.size(), one_ups, num_appliers, multi_ups,
              applier_ratio,
              static_cast<unsigned long long>(multi.watermark));
  report.Add("appliers_1", {{"updates_per_sec", one_ups},
                            {"ops", static_cast<double>(one.ops)}});
  report.Add("appliers_n", {{"updates_per_sec", multi_ups},
                            {"ops", static_cast<double>(multi.ops)},
                            {"appliers", static_cast<double>(num_appliers)},
                            {"ratio", applier_ratio}});
  if (!report.WriteTo(json_path)) return 1;

  if (min_speedup > 0.0 && agg_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: insert speedup %.2fx below required %.2fx\n",
                 agg_speedup, min_speedup);
    return 1;
  }
  if (min_bounded_speedup > 0.0 && bounded_speedup < min_bounded_speedup) {
    std::fprintf(stderr,
                 "FAIL: bounded insert speedup %.2fx below required %.2fx\n",
                 bounded_speedup, min_bounded_speedup);
    return 1;
  }
  if (min_applier_ratio > 0.0 && applier_ratio < min_applier_ratio) {
    std::fprintf(stderr,
                 "FAIL: %zu-applier throughput ratio %.2fx below required "
                 "%.2fx\n",
                 num_appliers, applier_ratio, min_applier_ratio);
    return 1;
  }
  return 0;
}
