/// Fig. 8(c): graph pattern matching on YouTube with the 12 predicate views
/// of Fig. 7, |Qs| from (4,8) to (8,16) — Match vs. MatchJoin_mnl vs.
/// MatchJoin_min. Queries are compositions of the cached views (glued at
/// shared conditions), mirroring the paper's setup where cached results
/// answer incoming queries.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

Fixture BuildYoutube(const std::string&) {
  return MakeFixture(GenerateYoutubeLike(Scaled(150000), 999),
                     YoutubeViews(1));
}

Fixture& YoutubeFixture() { return CachedFixture("youtube", &BuildYoutube); }

Pattern QueryFor(int64_t ep) {
  return GenerateYoutubeQuery(static_cast<uint32_t>(ep), 1,
                              static_cast<uint64_t>(ep) * 7 + 1);
}

void BM_Match(benchmark::State& state) {
  Fixture& f = YoutubeFixture();
  Pattern q = QueryFor(state.range(0));
  RunDirectLoop(state, q, f.g);
}

void BM_MatchJoinMnl(benchmark::State& state) {
  Fixture& f = YoutubeFixture();
  Pattern q = QueryFor(state.range(0));
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_MatchJoinMin(benchmark::State& state) {
  Fixture& f = YoutubeFixture();
  Pattern q = QueryFor(state.range(0));
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t ep : {8, 10, 12, 14, 16}) b->Args({ep});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Match)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
