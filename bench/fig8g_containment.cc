/// Fig. 8(g): efficiency of containment checking (`contain`) against a
/// fixed synthetic view set, with DAG and cyclic patterns of size (6,6)
/// to (10,20). Expected shape: milliseconds at most; cyclic patterns cost
/// more than DAGs of the same size (a longer fixpoint); time grows with
/// pattern size.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

const ViewSet& SyntheticViews() {
  static const ViewSet views = [] {
    RandomPatternOptions base;
    base.num_nodes = 4;
    base.num_edges = 5;
    base.label_pool = SyntheticLabels(10);
    return GenerateRandomViews(22, base, 67);
  }();
  return views;
}

Pattern PatternFor(int64_t vp, int64_t ep, bool dag) {
  RandomPatternOptions po;
  po.num_nodes = static_cast<uint32_t>(vp);
  po.num_edges = static_cast<uint32_t>(ep);
  po.label_pool = SyntheticLabels(10);
  po.dag_only = dag;
  po.seed = static_cast<uint64_t>(vp * 131 + ep) + (dag ? 1 : 0);
  return GenerateRandomPattern(po);
}

void BM_ContainDag(benchmark::State& state) {
  Pattern q = PatternFor(state.range(0), state.range(1), /*dag=*/true);
  const ViewSet& views = SyntheticViews();
  bool contained = false;
  for (auto _ : state) {
    Result<ContainmentMapping> m = CheckContainment(q, views);
    if (!m.ok()) state.SkipWithError("containment failed");
    contained = m->contained;
    benchmark::DoNotOptimize(m);
  }
  state.counters["contained"] = contained ? 1 : 0;
}

void BM_ContainCyclic(benchmark::State& state) {
  Pattern q = PatternFor(state.range(0), state.range(1), /*dag=*/false);
  const ViewSet& views = SyntheticViews();
  bool contained = false;
  for (auto _ : state) {
    Result<ContainmentMapping> m = CheckContainment(q, views);
    if (!m.ok()) state.SkipWithError("containment failed");
    contained = m->contained;
    benchmark::DoNotOptimize(m);
  }
  state.counters["contained"] = contained ? 1 : 0;
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (auto [vp, ep] :
       {std::pair<int64_t, int64_t>{6, 6}, {6, 12}, {7, 7}, {7, 14},
        {8, 8}, {8, 16}, {9, 9}, {9, 18}, {10, 10}, {10, 20}}) {
    b->Args({vp, ep});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_ContainDag)->Apply(Sizes);
BENCHMARK(BM_ContainCyclic)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
