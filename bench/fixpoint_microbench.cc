/// \file fixpoint_microbench.cc
/// \brief Dense-rank vs hash-map MatchJoin fixpoint microbenchmark.
///
/// The PR-1 profile showed the per-edge `unordered_map<NodeId, uint32_t>`
/// out/in counters dominating the engine's warm path; the dense refactor
/// replaced them with flat arrays over candidate ranks
/// (core/match_join.h). This harness isolates exactly that change: the same
/// 1k-query workload engine_throughput uses (same graph, same patterns,
/// same covering views, extensions materialized once up front) is pushed
/// through MatchJoin twice — `use_dense_ranks = true` vs `false` — and the
/// report gives per-pass time, pair-visit counters, and the dense/hash
/// speedup. Results are compared pair-for-pair, so the run doubles as an
/// equivalence check.
///
///   ./build/bench/fixpoint_microbench [queries] [--min-speedup X]
///                                      [--json path]
///
/// With --min-speedup the process exits non-zero when the dense pass is not
/// at least X times faster — the CI gate for the ROADMAP "MatchJoin
/// fixpoint performance" item. The two engines run in the same process in
/// interleaved batches with alternating order, so shared-runner noise and
/// ordering effects hit both sides of the gated ratio roughly equally.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/containment.h"
#include "core/match_join.h"
#include "core/view.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

/// One query shape with everything MatchJoin needs, prepared up front.
struct PreparedQuery {
  Pattern pattern;
  ViewSet views;
  std::vector<ViewExtension> exts;
  ContainmentMapping mapping;
};

struct PassResult {
  double seconds = 0.0;
  size_t total_pairs = 0;
  MatchJoinStats stats;
};

/// Runs queries [start, start+count) through one engine, accumulating into
/// `out` (time, pairs, counters).
void RunBatch(const std::vector<PreparedQuery>& queries, size_t start,
              size_t count, bool dense, PassResult* out) {
  MatchJoinOptions opts;
  opts.use_dense_ranks = dense;
  Stopwatch wall;
  for (size_t i = start; i < start + count; ++i) {
    const PreparedQuery& pq = queries[i % queries.size()];
    Result<MatchResult> r = MatchJoin(pq.pattern, pq.views, pq.exts,
                                      pq.mapping, opts, &out->stats);
    if (!r.ok()) {
      std::fprintf(stderr, "MatchJoin failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    out->total_pairs += r->TotalMatches();
  }
  out->seconds += wall.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries = 1000;
  double min_speedup = 0.0;
  std::string json_path;
  size_t positionals[1] = {num_queries};
  if (!gpmv::bench::TakeJsonFlag(&argc, argv, &json_path) ||
      !gpmv::bench::TakeMinSpeedupFlag(&argc, argv, &min_speedup) ||
      !gpmv::bench::ParsePositionals(
          argc, argv,
          "fixpoint_microbench [queries] [--min-speedup X] [--json path]",
          positionals, 1)) {
    return 2;
  }
  num_queries = positionals[0];

  // Same workload shape as engine_throughput: mid-size random graph, ten
  // recurring mixed plain/bounded DAG patterns, covering views.
  RandomGraphOptions go;
  go.num_nodes = 40000;
  go.num_edges = 120000;
  go.num_labels = 12;
  go.seed = 2026;
  Graph graph = GenerateRandomGraph(go);

  std::vector<PreparedQuery> queries;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPatternOptions po;
    po.num_nodes = 3 + seed % 2;
    po.num_edges = po.num_nodes - 1 + seed % 2;
    po.label_pool = SyntheticLabels(go.num_labels);
    po.dag_only = true;
    po.max_bound = (seed % 2 == 0) ? 3 : 1;
    po.seed = seed;

    PreparedQuery pq;
    pq.pattern = GenerateRandomPattern(po);
    CoveringViewOptions co;
    co.edges_per_view = 2;
    co.num_distractors = 0;
    co.seed = 1000 + seed;
    pq.views = GenerateCoveringViews(pq.pattern, co);
    Result<std::vector<ViewExtension>> exts = MaterializeAll(pq.views, graph);
    if (!exts.ok()) {
      std::fprintf(stderr, "materialize failed: %s\n",
                   exts.status().ToString().c_str());
      return 1;
    }
    pq.exts = std::move(exts).value();
    Result<ContainmentMapping> mapping =
        MinimalContainment(pq.pattern, pq.views);
    if (!mapping.ok() || !mapping->contained) {
      std::fprintf(stderr, "covering views do not contain their query\n");
      return 1;
    }
    pq.mapping = std::move(mapping).value();
    queries.push_back(std::move(pq));
  }

  std::printf("graph: %zu nodes, %zu edges; workload: %zu MatchJoin calls "
              "over %zu prepared queries\n\n",
              graph.num_nodes(), graph.num_edges(), num_queries,
              queries.size());

  // Warm both paths (allocator + cache state), then measure in interleaved
  // batches with alternating order: a noisy-neighbor burst on a shared
  // runner lands on both engines roughly equally instead of skewing the
  // gated ratio, and neither engine systematically runs "second".
  PassResult dense, hash;
  {
    PassResult warmup;
    const size_t w = std::min<size_t>(num_queries, 50);
    RunBatch(queries, 0, w, /*dense=*/true, &warmup);
    RunBatch(queries, 0, w, /*dense=*/false, &warmup);
  }
  const size_t kRounds = 10;
  const size_t per_round = (num_queries + kRounds - 1) / kRounds;
  bool dense_first = true;
  for (size_t done = 0; done < num_queries; done += per_round) {
    const size_t n = std::min(per_round, num_queries - done);
    if (dense_first) {
      RunBatch(queries, done, n, /*dense=*/true, &dense);
      RunBatch(queries, done, n, /*dense=*/false, &hash);
    } else {
      RunBatch(queries, done, n, /*dense=*/false, &hash);
      RunBatch(queries, done, n, /*dense=*/true, &dense);
    }
    dense_first = !dense_first;
  }

  if (hash.total_pairs != dense.total_pairs) {
    std::fprintf(stderr,
                 "RESULT MISMATCH: hash pairs=%zu vs dense pairs=%zu\n",
                 hash.total_pairs, dense.total_pairs);
    return 1;
  }

  const double speedup = hash.seconds / std::max(dense.seconds, 1e-9);
  auto report = [](const char* name, const PassResult& p, size_t n) {
    std::printf("%-18s %8.3fs  %9.0f joins/s  visits=%zu initial=%zu "
                "removed=%zu zeroed=%zu ranks=%zu\n",
                name, p.seconds,
                static_cast<double>(n) / std::max(p.seconds, 1e-9),
                p.stats.match_set_visits, p.stats.initial_pairs,
                p.stats.removed_pairs, p.stats.counters_zeroed,
                p.stats.candidate_ranks);
  };
  report("hash (reference):", hash, num_queries);
  report("dense (ranks):", dense, num_queries);
  std::printf("speedup (hash/dense): %6.2fx   result pairs: %zu (passes "
              "agree)\n",
              speedup, dense.total_pairs);

  gpmv::bench::JsonReport jr("fixpoint_microbench");
  jr.Meta("queries", static_cast<double>(num_queries));
  jr.Add("hash", {{"seconds", hash.seconds},
                  {"joins_per_sec", static_cast<double>(num_queries) /
                                        std::max(hash.seconds, 1e-9)}});
  jr.Add("dense", {{"seconds", dense.seconds},
                   {"joins_per_sec", static_cast<double>(num_queries) /
                                         std::max(dense.seconds, 1e-9)},
                   {"speedup", speedup}});
  if (!jr.WriteTo(json_path)) return 1;

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below required %.2fx\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
