/// Ablation (beyond the paper's figures): incremental view maintenance vs.
/// re-materialization under edge deletions — quantifying Section I's claim
/// that cached pattern views are cheap to keep fresh. Compares
///   * Rematerialize: full ViewExtension::Materialize after each deletion,
///   * Incremental: MaintainedView::OnEdgeRemoved (relation-seeded refresh
///     with the constant-time relevance prescreen).

#include "bench_util.h"
#include "common/random.h"
#include "core/maintenance.h"

namespace gpmv {
namespace bench {
namespace {

struct Workload {
  Graph g;
  ViewDefinition def;
  std::vector<NodePair> deletions;
};

Workload MakeWorkload(int64_t num_nodes) {
  Workload w;
  RandomGraphOptions go;
  go.num_nodes = Scaled(static_cast<size_t>(num_nodes));
  go.num_edges = 2 * go.num_nodes;
  go.num_labels = 10;
  go.seed = 97;
  w.g = GenerateRandomGraph(go);
  RandomPatternOptions po;
  po.num_nodes = 3;
  po.num_edges = 3;
  po.label_pool = SyntheticLabels(10);
  po.seed = 11;
  w.def = ViewDefinition{"v", GenerateRandomPattern(po)};
  Rng rng(13);
  for (int i = 0; i < 64; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(w.g.num_nodes()));
    if (w.g.out_degree(u) == 0) continue;
    NodeId v = w.g.out_neighbors(u)[rng.NextBounded(w.g.out_degree(u))];
    w.deletions.emplace_back(u, v);
  }
  return w;
}

void BM_Rematerialize(benchmark::State& state) {
  Workload w = MakeWorkload(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = w.g;  // fresh copy so deletions repeat identically
    state.ResumeTiming();
    for (const NodePair& d : w.deletions) {
      if (!g.RemoveEdge(d.first, d.second).ok()) continue;
      auto ext = ViewExtension::Materialize(w.def, g);
      benchmark::DoNotOptimize(ext);
    }
  }
  state.counters["deletions"] = static_cast<double>(w.deletions.size());
}

void BM_Incremental(benchmark::State& state) {
  Workload w = MakeWorkload(state.range(0));
  size_t skipped = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = w.g;
    MaintainedView mv(w.def);
    if (!mv.Attach(g).ok()) state.SkipWithError("attach failed");
    state.ResumeTiming();
    for (const NodePair& d : w.deletions) {
      if (!g.RemoveEdge(d.first, d.second).ok()) continue;
      if (!mv.OnEdgeRemoved(g, d.first, d.second).ok()) {
        state.SkipWithError("maintenance failed");
      }
    }
    skipped = mv.skipped_updates();
  }
  state.counters["deletions"] = static_cast<double>(w.deletions.size());
  state.counters["prescreen_skips"] = static_cast<double>(skipped);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t n : {10000, 20000, 40000}) b->Args({n});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Rematerialize)->Apply(Sizes);
BENCHMARK(BM_Incremental)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
