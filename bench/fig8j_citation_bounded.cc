/// Fig. 8(j): bounded pattern matching on Citation with fe(e) = 3, |Qb|
/// from (4,8,3) to (8,16,3) — BMatch vs. BMatchJoin_mnl vs. BMatchJoin_min.
/// Same expected shape as Fig. 8(i); the paper plots this figure on a log
/// time axis because the gap is orders of magnitude.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

constexpr uint32_t kBound = 3;

Fixture BuildCitation(const std::string&) {
  return MakeFixture(GenerateCitationLike(Scaled(15000), 777),
                     CitationViews(kBound));
}

Fixture& CitationFixture() {
  return CachedFixture("citationb", &BuildCitation);
}

Pattern QueryFor(int64_t vp, int64_t ep) {
  return GenerateCitationQuery(static_cast<uint32_t>(vp),
                               static_cast<uint32_t>(ep), kBound,
                               static_cast<uint64_t>(vp * 37 + ep));
}

void BM_BMatch(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  RunDirectLoop(state, q, f.g, /*naive=*/true);
}

// This library's improved bounded matcher (multi-source reverse-BFS
// pruning) — not part of the paper's figure, shown for reference.
void BM_BMatchFast(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  RunDirectLoop(state, q, f.g, /*naive=*/false);
}

void BM_BMatchJoinMnl(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_BMatchJoinMin(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (auto [vp, ep] : {std::pair<int64_t, int64_t>{4, 8}, {5, 10}, {6, 12},
                        {7, 14}, {8, 16}}) {
    b->Args({vp, ep});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_BMatch)->Apply(Sizes);
BENCHMARK(BM_BMatchFast)->Apply(Sizes);
BENCHMARK(BM_BMatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_BMatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
