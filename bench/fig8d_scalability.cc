/// Fig. 8(d): scalability in |G| on synthetic graphs — |V| swept (paper:
/// 0.3M..1M; here 10x smaller by default), |E| = 2|V|, pattern fixed at
/// (4,6) — Match vs. MatchJoin_mnl vs. MatchJoin_min. Expected shape:
/// MatchJoin_min scales best and is ~49% of MatchJoin_mnl's time.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

constexpr uint64_t kQuerySeed = 31;

Pattern Query() {
  RandomPatternOptions po;
  po.num_nodes = 4;
  po.num_edges = 6;
  po.label_pool = SyntheticLabels(10);
  po.seed = kQuerySeed;
  return GenerateRandomPattern(po);
}

Fixture BuildSynthetic(const std::string& key) {
  size_t num_nodes = static_cast<size_t>(std::stoull(key));
  RandomGraphOptions go;
  go.num_nodes = num_nodes;
  go.num_edges = 2 * num_nodes;
  go.num_labels = 10;
  go.seed = 17;
  Pattern q = Query();
  CoveringViewOptions co;
  co.edges_per_view = 2;
  co.num_distractors = 8;
  co.overlap_views = 6;
  co.seed = 23;
  return MakeFixture(GenerateRandomGraph(go), GenerateCoveringViews(q, co));
}

Fixture& SyntheticFixture(int64_t num_nodes) {
  return CachedFixture(std::to_string(Scaled(num_nodes)), &BuildSynthetic);
}

void BM_Match(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  RunDirectLoop(state, q, f.g);
}

void BM_MatchJoinMnl(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_MatchJoinMin(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t n = 30000; n <= 100000; n += 10000) b->Args({n});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Match)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
