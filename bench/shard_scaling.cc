/// \file shard_scaling.cc
/// \brief Sharded query fan-out scaling: the 1k-query direct workload at
/// K = 1/2/4/8 shards.
///
/// Every configuration answers the same query stream — a mix of plain and
/// bounded patterns — on the same graph with *no registered views*, so
/// each query is a direct evaluation: the plan the sharded engine fans out
/// across per-shard CSR slices (decrement exchange for plain patterns,
/// BFS frontier hand-off for bounded ones). Queries are issued one at a time from the driver
/// thread: the measured speedup is intra-query shard parallelism, not
/// inter-query pool parallelism (engine_throughput covers that axis).
/// K = 1 disables sharding entirely and is the unsharded baseline.
///
///   ./build/bench/shard_scaling [queries] [--min-speedup X] [--hash]
///                               [--json path]
///
/// Per K the report shows queries/sec, speedup vs K = 1, the merge-round /
/// broadcast counters of the sharded fixpoint, and the slice/replica
/// footprint. Matched-query and result-pair counts must agree across every
/// K (the engine paths are bit-identical; the process exits non-zero
/// otherwise). With --min-speedup the process also exits non-zero when the
/// K = 4 speedup misses the gate — the CI smoke (gate only on hardware
/// with >= 4 usable cores; on fewer cores the fan-out is time-sliced and
/// the speedup is bounded by 1).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/query_engine.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

struct PassResult {
  double seconds = 0.0;
  size_t matched = 0;
  size_t total_pairs = 0;
  size_t sharded = 0;
  EngineStats stats;
  size_t slice_bytes = 0;
  size_t replicas = 0;
};

PassResult RunConfig(const Graph& graph, const std::vector<Pattern>& patterns,
                     size_t num_queries, uint32_t shards,
                     ShardingOptions::Partition partition) {
  EngineOptions opts;
  opts.pool.num_threads = 1;  // driver issues queries sequentially anyway
  opts.sharding.num_shards = shards;
  opts.sharding.partition = partition;
  QueryEngine engine(graph, opts);

  PassResult out;
  if (auto ss = engine.sharded_snapshot()) {
    out.slice_bytes = ss->ApproxBytes();
    out.replicas = ss->total_replicas();
  }
  Stopwatch wall;
  for (size_t i = 0; i < num_queries; ++i) {
    QueryResponse resp = engine.Query(patterns[i % patterns.size()]);
    if (!resp.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
    if (resp.result.matched()) {
      ++out.matched;
      out.total_pairs += resp.result.TotalMatches();
    }
    if (resp.sharded) ++out.sharded;
  }
  out.seconds = wall.ElapsedSeconds();
  out.stats = engine.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_queries = 1000;
  double min_speedup = 0.0;
  std::string json_path;
  ShardingOptions::Partition partition = ShardingOptions::Partition::kRange;
  // Strip the harness-specific --hash flag, then the shared flags and the
  // single numeric positional.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hash") == 0) {
      partition = ShardingOptions::Partition::kHash;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  size_t positionals[1] = {num_queries};
  if (!gpmv::bench::TakeJsonFlag(&argc, argv, &json_path) ||
      !gpmv::bench::TakeMinSpeedupFlag(&argc, argv, &min_speedup) ||
      !gpmv::bench::ParsePositionals(
          argc, argv,
          "shard_scaling [queries] [--min-speedup X] [--hash] [--json path]",
          positionals, 1)) {
    return 2;
  }
  num_queries = positionals[0];

  // Same graph family as engine_throughput. Every third pattern carries
  // path bounds up to 3: bounded direct plans fan out too (sharded bounded
  // BFS with frontier hand-off), and the cross-K equality check below
  // covers both exchange protocols.
  RandomGraphOptions go;
  go.num_nodes = 40000;
  go.num_edges = 120000;
  go.num_labels = 12;
  go.seed = 2026;
  Graph graph = GenerateRandomGraph(go);

  std::vector<Pattern> patterns;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomPatternOptions po;
    po.num_nodes = 3 + seed % 2;
    po.num_edges = po.num_nodes - 1 + seed % 2;
    po.label_pool = SyntheticLabels(go.num_labels);
    po.dag_only = true;
    po.max_bound = seed % 3 == 0 ? 3 : 1;
    po.seed = seed;
    patterns.push_back(GenerateRandomPattern(po));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("graph: %zu nodes, %zu edges, %zu labels; workload: %zu "
              "sequential queries over %zu plain+bounded patterns; "
              "partition=%s; "
              "hardware threads: %u\n\n",
              graph.num_nodes(), graph.num_edges(), go.num_labels,
              num_queries, patterns.size(),
              partition == ShardingOptions::Partition::kRange ? "range"
                                                              : "hash",
              hw);
  if (hw < 4) {
    std::printf("note: <4 usable cores — shard tasks are time-sliced and "
                "speedups are bounded by the core count\n\n");
  }

  const uint32_t configs[] = {1, 2, 4, 8};
  std::vector<PassResult> results;
  for (uint32_t k : configs) {
    results.push_back(
        RunConfig(graph, patterns, num_queries, k, partition));
  }

  const double base_qps = static_cast<double>(num_queries) /
                          std::max(results[0].seconds, 1e-9);
  double k4_speedup = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    const PassResult& r = results[i];
    const double qps =
        static_cast<double>(num_queries) / std::max(r.seconds, 1e-9);
    const double speedup = qps / std::max(base_qps, 1e-9);
    if (configs[i] == 4) k4_speedup = speedup;
    std::printf(
        "K=%u: %8.2fs  %9.0f q/s  speedup=%5.2fx  sharded=%zu/%zu  "
        "rounds=%zu  messages=%zu  frontier=%zu  removals=%zu\n",
        configs[i], r.seconds, qps, speedup, r.sharded,
        r.stats.queries, r.stats.shard.rounds, r.stats.shard.messages,
        r.stats.shard.frontier_msgs, r.stats.shard.removals);
    if (configs[i] > 1) {
      std::printf(
          "      slices: %zu bytes, %zu boundary replicas; plans: "
          "direct=%zu partial=%zu fallbacks=%zu\n",
          r.slice_bytes, r.replicas, r.stats.plans_direct,
          r.stats.plans_partial, r.stats.shard_fallbacks);
    }
    if (r.matched != results[0].matched ||
        r.total_pairs != results[0].total_pairs) {
      std::fprintf(stderr,
                   "RESULT MISMATCH at K=%u: matched=%zu pairs=%zu vs "
                   "K=1 matched=%zu pairs=%zu\n",
                   configs[i], r.matched, r.total_pairs, results[0].matched,
                   results[0].total_pairs);
      return 1;
    }
  }
  std::printf("\nmatched queries: %zu/%zu, result pairs: %zu "
              "(all configurations agree)\n",
              results[0].matched, num_queries, results[0].total_pairs);

  gpmv::bench::JsonReport jr("shard_scaling");
  jr.Meta("queries", static_cast<double>(num_queries));
  jr.Meta("partition",
          partition == ShardingOptions::Partition::kRange ? "range" : "hash");
  for (size_t i = 0; i < results.size(); ++i) {
    const double qps = static_cast<double>(num_queries) /
                       std::max(results[i].seconds, 1e-9);
    jr.Add("K" + std::to_string(configs[i]),
           {{"seconds", results[i].seconds},
            {"queries_per_sec", qps},
            {"speedup", qps / std::max(base_qps, 1e-9)},
            {"messages", static_cast<double>(results[i].stats.shard.messages)},
            {"frontier_msgs",
             static_cast<double>(results[i].stats.shard.frontier_msgs)},
            {"rounds", static_cast<double>(results[i].stats.shard.rounds)}});
  }
  if (!jr.WriteTo(json_path)) return 1;

  if (min_speedup > 0.0 && k4_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: K=4 speedup %.2fx below required %.2fx\n",
                 k4_speedup, min_speedup);
    return 1;
  }
  return 0;
}
