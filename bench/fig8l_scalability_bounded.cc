/// Fig. 8(l): scalability of bounded matching in |G| — synthetic graphs,
/// |E| = 2|V|, pattern (4,6) with fe(e) = 3 — BMatch vs. BMatchJoin_mnl vs.
/// BMatchJoin_min. Expected shape: BMatchJoin_min scales best (paper: ~6%
/// of BMatch's time, gap widening with |G|).

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

constexpr uint64_t kQuerySeed = 71;

Pattern Query() {
  RandomPatternOptions po;
  po.num_nodes = 4;
  po.num_edges = 6;
  po.label_pool = SyntheticLabels(10);
  po.max_bound = 3;
  po.dag_only = true;  // acyclic queries have matches on sparse graphs
  po.seed = kQuerySeed;
  Pattern base = GenerateRandomPattern(po);
  // Pin every bound to 3 to match the paper's configuration.
  Pattern q;
  for (uint32_t u = 0; u < base.num_nodes(); ++u) {
    q.AddNode(base.node(u).label, base.node(u).pred, base.node(u).name);
  }
  for (const PatternEdge& e : base.edges()) (void)q.AddEdge(e.src, e.dst, 3);
  return q;
}

Fixture BuildSynthetic(const std::string& key) {
  size_t num_nodes = std::stoull(key);
  RandomGraphOptions go;
  go.num_nodes = num_nodes;
  go.num_edges = 2 * num_nodes;
  go.num_labels = 10;
  go.seed = 73;
  Pattern q = Query();
  CoveringViewOptions co;
  co.edges_per_view = 2;
  co.num_distractors = 4;
  co.overlap_views = 4;
  co.seed = 79;
  return MakeFixture(GenerateRandomGraph(go), GenerateCoveringViews(q, co));
}

Fixture& SyntheticFixture(int64_t num_nodes) {
  return CachedFixture(std::to_string(Scaled(num_nodes)), &BuildSynthetic);
}

void BM_BMatch(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  RunDirectLoop(state, q, f.g, /*naive=*/true);
}

// This library's improved bounded matcher (multi-source reverse-BFS
// pruning) — not part of the paper's figure, shown for reference.
void BM_BMatchFast(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  RunDirectLoop(state, q, f.g, /*naive=*/false);
}

void BM_BMatchJoinMnl(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_BMatchJoinMin(benchmark::State& state) {
  Fixture& f = SyntheticFixture(state.range(0));
  Pattern q = Query();
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t n = 10000; n <= 30000; n += 5000) b->Args({n});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_BMatch)->Apply(Sizes);
BENCHMARK(BM_BMatchFast)->Apply(Sizes);
BENCHMARK(BM_BMatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_BMatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
