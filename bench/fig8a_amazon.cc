/// Fig. 8(a): graph pattern matching on Amazon, varying |Qs| from (4,4) to
/// (8,16) — Match (no views) vs. MatchJoin with a minimal view subset vs.
/// MatchJoin with the greedy-minimum subset. Expected shape: both MatchJoin
/// variants beat Match (paper: 57% / 45% of its time on average) and are
/// less sensitive to |Qs|; min <= mnl.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

Fixture BuildAmazon(const std::string&) {
  return MakeFixture(GenerateAmazonLike(Scaled(50000), 4242), AmazonViews(1));
}

Fixture& AmazonFixture() { return CachedFixture("amazon", &BuildAmazon); }

Pattern QueryFor(int64_t vp, int64_t ep) {
  return GenerateAmazonQuery(static_cast<uint32_t>(vp),
                             static_cast<uint32_t>(ep), 1,
                             static_cast<uint64_t>(vp * 100 + ep));
}

void BM_Match(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  RunDirectLoop(state, q, f.g);
}

void BM_MatchJoinMnl(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_MatchJoinMin(benchmark::State& state) {
  Fixture& f = AmazonFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (auto [vp, ep] : {std::pair<int64_t, int64_t>{4, 4}, {4, 6}, {4, 8},
                        {6, 6}, {6, 9}, {6, 12}, {8, 8}, {8, 12}, {8, 16}}) {
    b->Args({vp, ep});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Match)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
