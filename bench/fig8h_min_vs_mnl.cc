/// Fig. 8(h): minimum vs. minimal containment on cyclic patterns (6,6) to
/// (10,20) over view sets that contain them. Reports the paper's two
/// ratios as counters: R1 = time(minimum)/time(minimal) (expected <= ~1.2)
/// and R2 = |minimum|/|minimal| (expected ~0.4-0.55 — minimum finds
/// substantially smaller view subsets).

#include "bench_util.h"
#include "common/stopwatch.h"

namespace gpmv {
namespace bench {
namespace {

struct Workload {
  Pattern q;
  ViewSet views;
};

Workload MakeWorkload(int64_t vp, int64_t ep) {
  RandomPatternOptions po;
  po.num_nodes = static_cast<uint32_t>(vp);
  po.num_edges = static_cast<uint32_t>(ep);
  po.label_pool = SyntheticLabels(10);
  po.seed = static_cast<uint64_t>(vp * 211 + ep);
  Workload w;
  w.q = GenerateRandomPattern(po);
  CoveringViewOptions co;
  // Single-edge partition views plus large overlapping views: first-fit
  // minimal tends to settle for the small views it meets first, while the
  // greedy minimum grabs the large ones — recreating the paper's R2 gap.
  co.edges_per_view = 1;
  co.overlap_views = 10;
  co.overlap_edges = static_cast<uint32_t>(ep) / 2;
  co.num_distractors = 6;
  co.seed = po.seed + 5;
  w.views = GenerateCoveringViews(w.q, co);
  return w;
}

void BM_Minimal(benchmark::State& state) {
  Workload w = MakeWorkload(state.range(0), state.range(1));
  size_t selected = 0;
  for (auto _ : state) {
    Result<ContainmentMapping> m = MinimalContainment(w.q, w.views);
    if (!m.ok() || !m->contained) state.SkipWithError("not contained");
    selected = m->selected.size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["views_selected"] = static_cast<double>(selected);
}

void BM_Minimum(benchmark::State& state) {
  Workload w = MakeWorkload(state.range(0), state.range(1));
  size_t selected = 0;
  for (auto _ : state) {
    Result<ContainmentMapping> m = MinimumContainment(w.q, w.views);
    if (!m.ok() || !m->contained) state.SkipWithError("not contained");
    selected = m->selected.size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["views_selected"] = static_cast<double>(selected);

  // The paper's R1/R2 ratios, measured out-of-band for this size.
  Stopwatch sw;
  auto mnl = MinimalContainment(w.q, w.views);
  double t_mnl = sw.ElapsedSeconds();
  sw.Restart();
  auto min = MinimumContainment(w.q, w.views);
  double t_min = sw.ElapsedSeconds();
  if (mnl.ok() && min.ok() && mnl->contained && min->contained &&
      t_mnl > 0.0 && !mnl->selected.empty()) {
    state.counters["R1_time_ratio"] = t_min / t_mnl;
    state.counters["R2_size_ratio"] =
        static_cast<double>(min->selected.size()) /
        static_cast<double>(mnl->selected.size());
  }
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (auto [vp, ep] :
       {std::pair<int64_t, int64_t>{6, 6}, {6, 12}, {7, 7}, {7, 14},
        {8, 8}, {8, 16}, {9, 9}, {9, 18}, {10, 10}, {10, 20}}) {
    b->Args({vp, ep});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Minimal)->Apply(Sizes);
BENCHMARK(BM_Minimum)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
