/// \file net_loadgen.cc
/// \brief Socket load generator for `gpmv_cli serve --port`: N concurrent
/// client connections driving mixed query/update/stats traffic through the
/// length-prefixed binary protocol (net/protocol.h), with a sustained-qps +
/// latency report and an optional end-to-end result-equivalence check.
///
///   ./build/bench/net_loadgen --port N [--host 127.0.0.1]
///       --graph <file> [--queries <file>] [--conns 32] [--requests 64]
///       [--update-ratio 25] [--stats-every 16] [--check] [--shutdown]
///       [--stats-out <path> [--stats-lines 3]] [--seed 42] [--json <path>]
///
/// Each of `--conns` connections runs its own thread with one outstanding
/// request at a time (`--requests` per connection): `--update-ratio`% are
/// edge-insert updates, every `--stats-every`-th request is a stats frame,
/// the rest are queries drawn round-robin from the query file (or generated
/// patterns when no file is given). Insert-only updates keep the final
/// graph a set union of whatever the server acked, so op arrival order
/// across connections cannot change the answer — that is what makes the
/// `--check` oracle exact.
///
/// Per-connection read-your-writes is asserted inline: every query response
/// must carry `applied_through_ts >=` the highest update ts this connection
/// was acked.
///
/// `--check`: after the traffic phase, a fresh connection re-issues every
/// distinct query with `min_applied_ts` = the global max acked ts (forcing
/// the server to wait out all acked ingestion), while an in-process oracle
/// engine loads the same graph, applies the same acked inserts as one
/// batch, and runs the same patterns. The normalized match sets must be
/// bit-identical (same canonical bytes) — exit 1 otherwise.
///
/// `--stats-out` captures `--stats-lines` kStatsResult snapshot lines from
/// a dedicated post-traffic connection into a JSON-lines file for
/// tools/check_metrics_schema.py. The checker wants seq dense from 1, and
/// seq is server-global — combine with `--stats-every 0` so no worker
/// connection consumes seq numbers first.
///
/// `--shutdown` ends the run with a kShutdown frame and waits for the
/// server to close the connection, so a CI job can assert the serve
/// process exits cleanly with code 0.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parse_num.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/view_io.h"
#include "engine/query_engine.h"
#include "graph/graph_io.h"
#include "net/protocol.h"
#include "pattern/pattern_io.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: net_loadgen --port N [--host H] --graph <file>\n"
               "  [--queries <file>] [--conns 32] [--requests 64]\n"
               "  [--update-ratio 25] [--stats-every 16] [--check]\n"
               "  [--shutdown] [--stats-out <path> [--stats-lines 3]]\n"
               "  [--seed 42] [--json <path>]\n");
  return 2;
}

std::string FlagValue(const std::vector<std::string>& args, const char* flag,
                      const std::string& def = "") {
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return def;
}

bool HasFlag(const std::vector<std::string>& args, const char* flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

bool NumericFlag(const std::vector<std::string>& args, const char* flag,
                 uint64_t def, uint64_t* out) {
  const std::string v = FlagValue(args, flag);
  if (v.empty()) {
    *out = def;
    return true;
  }
  if (!ParseUnsigned(v, out)) {
    std::fprintf(stderr, "error: %s expects a non-negative number, got '%s'\n",
                 flag, v.c_str());
    return false;
  }
  return true;
}

/// One blocking protocol client: request/response framing over a TCP
/// socket, one outstanding request at a time.
class Client {
 public:
  ~Client() { Close(); }

  bool Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      Close();
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool Send(net::FrameKind kind, uint64_t request_id,
            const std::string& payload) {
    std::string wire;
    net::EncodeFrame(kind, Status::Code::kOk, request_id, payload, &wire);
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off, 0);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until one complete response frame arrives; false on disconnect
  /// or framing error.
  bool Recv(net::Frame* out) {
    for (;;) {
      if (parser_.Next(out)) return true;
      if (!parser_.ok()) return false;
      uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      parser_.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// True once the peer has closed (recv returns 0 with no frame pending).
  bool WaitPeerClose() {
    net::Frame f;
    return !Recv(&f);
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  net::FrameParser parser_{/*require_requests=*/false};
};

/// The answer content of a query result — matched flag + normalized match
/// sets, excluding plan/version/watermark fields that legitimately differ
/// between the server and the oracle. Two answers are equal iff these
/// bytes are equal.
std::string CanonicalAnswer(bool matched,
                            const std::vector<std::vector<NodePair>>& edges) {
  std::string out;
  out.push_back(matched ? 1 : 0);
  for (const std::vector<NodePair>& pairs : edges) {
    const uint32_t n = static_cast<uint32_t>(pairs.size());
    out.append(reinterpret_cast<const char*>(&n), sizeof(n));
    for (const NodePair& p : pairs) {
      out.append(reinterpret_cast<const char*>(&p.first), sizeof(p.first));
      out.append(reinterpret_cast<const char*>(&p.second), sizeof(p.second));
    }
  }
  return out;
}

struct WorkerResult {
  std::vector<double> query_us;  ///< per-query round-trip latencies
  std::vector<EdgeUpdate> acked_ops;
  uint64_t max_acked_ts = 0;
  size_t requests = 0;
  size_t updates_acked = 0;
  size_t pushbacks = 0;  ///< kDeadlineExceeded / kResourceExhausted errors
  size_t failures = 0;   ///< protocol violations, RYW violations, disconnects
  std::string first_failure;
};

double Quantile(std::vector<double>* v, double q) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v->size()));
  return (*v)[std::min(idx, v->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  uint64_t port = 0, conns = 32, requests = 64, update_ratio = 25,
           stats_every = 16, stats_lines = 3, seed = 42;
  if (!NumericFlag(args, "--port", 0, &port) ||
      !NumericFlag(args, "--conns", 32, &conns) ||
      !NumericFlag(args, "--requests", 64, &requests) ||
      !NumericFlag(args, "--update-ratio", 25, &update_ratio) ||
      !NumericFlag(args, "--stats-every", 16, &stats_every) ||
      !NumericFlag(args, "--stats-lines", 3, &stats_lines) ||
      !NumericFlag(args, "--seed", 42, &seed)) {
    return Usage();
  }
  const std::string host = FlagValue(args, "--host", "127.0.0.1");
  const std::string graph_path = FlagValue(args, "--graph");
  const std::string queries_path = FlagValue(args, "--queries");
  const std::string json_path = FlagValue(args, "--json");
  const bool check = HasFlag(args, "--check");
  const bool shutdown = HasFlag(args, "--shutdown");
  if (port == 0 || port > 65535 || graph_path.empty() || update_ratio > 100) {
    return Usage();
  }

  Result<Graph> gr = ReadGraphFile(graph_path);
  if (!gr.ok()) {
    std::fprintf(stderr, "error loading graph: %s\n",
                 gr.status().ToString().c_str());
    return 1;
  }
  Graph graph = std::move(gr).value();
  if (graph.num_nodes() < 2) {
    std::fprintf(stderr, "error: need at least 2 nodes for update traffic\n");
    return 1;
  }

  // The query mix: pattern texts sent verbatim on the wire. From the query
  // file when given, otherwise a handful of generated patterns.
  std::vector<std::string> patterns;
  if (!queries_path.empty()) {
    Result<ViewSet> qs = ReadViewSetFile(queries_path);
    if (!qs.ok()) {
      std::fprintf(stderr, "error loading queries: %s\n",
                   qs.status().ToString().c_str());
      return 1;
    }
    for (const ViewDefinition& def : qs->views()) {
      patterns.push_back(PatternToText(def.pattern));
    }
  } else {
    for (uint32_t i = 0; i < 6; ++i) {
      RandomPatternOptions po;
      po.num_nodes = 3 + i % 3;
      po.num_edges = po.num_nodes + i % 2;
      po.max_bound = 2;
      po.seed = seed + i;
      patterns.push_back(PatternToText(GenerateRandomPattern(po)));
    }
  }
  if (patterns.empty()) {
    std::fprintf(stderr, "error: no query patterns\n");
    return 1;
  }

  const size_t num_nodes = graph.num_nodes();
  std::vector<WorkerResult> results(conns);
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(conns);
  for (size_t w = 0; w < conns; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& r = results[w];
      auto fail = [&r](const std::string& why) {
        ++r.failures;
        if (r.first_failure.empty()) r.first_failure = why;
      };
      Client c;
      if (!c.Connect(host, static_cast<uint16_t>(port))) {
        fail("connect failed");
        return;
      }
      Rng rng(seed * 1315423911u + w + 1);
      uint64_t next_id = 1;
      for (size_t i = 0; i < requests; ++i) {
        const uint64_t id = next_id++;
        ++r.requests;
        if (stats_every > 0 && i % stats_every == stats_every - 1) {
          net::Frame f;
          if (!c.Send(net::FrameKind::kStats, id, "") || !c.Recv(&f)) {
            fail("stats round-trip failed");
            return;
          }
          if (f.kind != net::FrameKind::kStatsResult || f.request_id != id ||
              f.payload.empty()) {
            fail("bad stats response");
            return;
          }
          continue;
        }
        if (rng.NextBounded(100) < update_ratio) {
          // Insert-only (see file comment: keeps the oracle order-free).
          NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
          NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
          if (u == v) v = static_cast<NodeId>((v + 1) % num_nodes);
          const EdgeUpdate op = EdgeUpdate::Insert(u, v);
          net::Frame f;
          if (!c.Send(net::FrameKind::kUpdate, id,
                      net::EncodeUpdateRequest(op)) ||
              !c.Recv(&f)) {
            fail("update round-trip failed");
            return;
          }
          if (f.request_id != id) {
            fail("update response id mismatch");
            return;
          }
          if (f.kind == net::FrameKind::kUpdateAck) {
            Result<uint64_t> ts = net::DecodeUpdateAck(f.payload);
            if (!ts.ok() || *ts == 0) {
              fail("bad update ack payload");
              return;
            }
            r.acked_ops.push_back(op);
            r.max_acked_ts = std::max(r.max_acked_ts, *ts);
            ++r.updates_acked;
          } else if (f.kind == net::FrameKind::kError &&
                     (f.status == Status::Code::kDeadlineExceeded ||
                      f.status == Status::Code::kResourceExhausted)) {
            // Backpressure pushed back on this client — a legitimate
            // outcome under load, not a failure.
            ++r.pushbacks;
          } else {
            fail("unexpected update response kind/status");
            return;
          }
          continue;
        }
        net::QueryRequest q;
        q.pattern_text = patterns[rng.NextBounded(patterns.size())];
        Stopwatch sw;
        net::Frame f;
        if (!c.Send(net::FrameKind::kQuery, id, net::EncodeQueryRequest(q)) ||
            !c.Recv(&f)) {
          fail("query round-trip failed");
          return;
        }
        if (f.request_id != id) {
          fail("query response id mismatch");
          return;
        }
        if (f.kind == net::FrameKind::kError &&
            f.status == Status::Code::kResourceExhausted) {
          ++r.pushbacks;  // executor shed the query under load
          continue;
        }
        if (f.kind != net::FrameKind::kQueryResult) {
          fail("unexpected query response kind=" +
               std::to_string(static_cast<int>(f.kind)) + " status=" +
               std::to_string(static_cast<int>(f.status)) + " msg=" +
               std::string(f.payload.begin(), f.payload.end()));
          return;
        }
        Result<net::QueryResultFrame> qr = net::DecodeQueryResult(f.payload);
        if (!qr.ok()) {
          fail("undecodable query result");
          return;
        }
        // Read-your-writes: the result must reflect every update this
        // connection has been acked.
        if (qr->applied_through_ts < r.max_acked_ts) {
          fail("read-your-writes violation: applied_through " +
               std::to_string(qr->applied_through_ts) + " < acked ts " +
               std::to_string(r.max_acked_ts));
          return;
        }
        r.query_us.push_back(sw.ElapsedMillis() * 1000.0);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double secs = wall.ElapsedSeconds();

  std::vector<double> all_query_us;
  std::vector<EdgeUpdate> acked;
  uint64_t global_max_ts = 0;
  size_t total_requests = 0, updates_acked = 0, pushbacks = 0, failures = 0;
  std::string first_failure;
  for (const WorkerResult& r : results) {
    all_query_us.insert(all_query_us.end(), r.query_us.begin(),
                        r.query_us.end());
    acked.insert(acked.end(), r.acked_ops.begin(), r.acked_ops.end());
    global_max_ts = std::max(global_max_ts, r.max_acked_ts);
    total_requests += r.requests;
    updates_acked += r.updates_acked;
    pushbacks += r.pushbacks;
    failures += r.failures;
    if (first_failure.empty()) first_failure = r.first_failure;
  }
  const double qps =
      secs > 0 ? static_cast<double>(total_requests) / secs : 0.0;
  const double p50 = Quantile(&all_query_us, 0.50);
  const double p99 = Quantile(&all_query_us, 0.99);
  std::printf(
      "net_loadgen: conns=%llu requests=%zu (%.0f req/s) queries=%zu "
      "p50=%.0fus p99=%.0fus updates_acked=%zu pushbacks=%zu failures=%zu\n",
      static_cast<unsigned long long>(conns), total_requests, qps,
      all_query_us.size(), p50, p99, updates_acked, pushbacks, failures);
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %s\n", first_failure.c_str());
  }

  // --check: the server's post-ingest answers vs an in-process oracle over
  // the same graph + the same acked inserts. min_applied_ts = global max
  // acked ts forces the server-side read to wait out all acked ingestion.
  bool check_ok = true;
  if (check && failures == 0) {
    Client c;
    if (!c.Connect(host, static_cast<uint16_t>(port))) {
      std::fprintf(stderr, "FAIL: check connection failed\n");
      check_ok = false;
    } else {
      QueryEngine oracle(std::move(graph), EngineOptions{});
      Status ast = oracle.ApplyUpdates(acked);
      if (!ast.ok()) {
        std::fprintf(stderr, "FAIL: oracle apply: %s\n",
                     ast.ToString().c_str());
        check_ok = false;
      }
      uint64_t id = 1;
      for (const std::string& text : patterns) {
        if (!check_ok) break;
        net::QueryRequest q;
        q.min_applied_ts = global_max_ts;
        q.pattern_text = text;
        net::Frame f;
        if (!c.Send(net::FrameKind::kQuery, id, net::EncodeQueryRequest(q)) ||
            !c.Recv(&f) || f.kind != net::FrameKind::kQueryResult) {
          std::fprintf(stderr, "FAIL: check query %llu round trip\n",
                       static_cast<unsigned long long>(id));
          check_ok = false;
          break;
        }
        Result<net::QueryResultFrame> served =
            net::DecodeQueryResult(f.payload);
        Result<Pattern> pat = PatternFromText(text);
        if (!served.ok() || !pat.ok()) {
          std::fprintf(stderr, "FAIL: check decode\n");
          check_ok = false;
          break;
        }
        Result<std::future<QueryResponse>> fut =
            oracle.Submit(std::move(*pat), QueryOptions{});
        if (!fut.ok()) {
          std::fprintf(stderr, "FAIL: oracle submit\n");
          check_ok = false;
          break;
        }
        QueryResponse resp = fut->get();
        if (!resp.status.ok()) {
          std::fprintf(stderr, "FAIL: oracle query: %s\n",
                       resp.status.ToString().c_str());
          check_ok = false;
          break;
        }
        resp.result.Normalize();
        std::vector<std::vector<NodePair>> oracle_edges;
        for (uint32_t e = 0; e < resp.result.num_pattern_edges(); ++e) {
          oracle_edges.push_back(resp.result.edge_matches(e));
        }
        const std::string want =
            CanonicalAnswer(resp.result.matched(), oracle_edges);
        const std::string got =
            CanonicalAnswer(served->matched, served->edge_matches);
        if (want != got) {
          std::fprintf(stderr,
                       "FAIL: answer mismatch on query %llu (served %zu "
                       "bytes, oracle %zu bytes)\n",
                       static_cast<unsigned long long>(id), got.size(),
                       want.size());
          check_ok = false;
          break;
        }
        ++id;
      }
      if (check_ok) {
        std::printf("check: %zu queries IDENTICAL to oracle "
                    "(%zu acked inserts, min_applied_ts=%llu)\n",
                    patterns.size(), acked.size(),
                    static_cast<unsigned long long>(global_max_ts));
      }
    }
  }

  // --stats-out: capture kStatsResult lines into a JSON-lines file for
  // tools/check_metrics_schema.py. The stats seq is server-global, and the
  // checker requires it dense from 1 — pair this with --stats-every 0 so
  // this capture connection is the run's only stats requester.
  bool stats_ok = true;
  const std::string stats_out = FlagValue(args, "--stats-out");
  if (!stats_out.empty()) {
    std::ofstream out(stats_out);
    Client c;
    if (!out.is_open() || !c.Connect(host, static_cast<uint16_t>(port))) {
      std::fprintf(stderr, "FAIL: stats capture setup\n");
      stats_ok = false;
    } else {
      for (uint64_t id = 1; id <= stats_lines && stats_ok; ++id) {
        net::Frame f;
        if (!c.Send(net::FrameKind::kStats, id, "") || !c.Recv(&f) ||
            f.kind != net::FrameKind::kStatsResult) {
          std::fprintf(stderr, "FAIL: stats capture round trip\n");
          stats_ok = false;
          break;
        }
        out << std::string(f.payload.begin(), f.payload.end()) << '\n';
      }
      if (stats_ok && !out.good()) {
        std::fprintf(stderr, "FAIL: stats capture write\n");
        stats_ok = false;
      }
      if (stats_ok) {
        std::printf("stats: %llu snapshot lines -> %s\n",
                    static_cast<unsigned long long>(stats_lines),
                    stats_out.c_str());
      }
    }
  }

  bool shutdown_ok = true;
  if (shutdown) {
    Client c;
    net::Frame f;
    shutdown_ok = c.Connect(host, static_cast<uint16_t>(port)) &&
                  c.Send(net::FrameKind::kShutdown, 1, "") && c.Recv(&f) &&
                  f.kind == net::FrameKind::kOk && c.WaitPeerClose();
    std::printf("shutdown: %s\n", shutdown_ok ? "acked and closed" : "FAILED");
  }

  if (!json_path.empty()) {
    bench::JsonReport report("net_loadgen");
    report.Meta("conns", static_cast<double>(conns));
    report.Meta("check", check ? (check_ok ? "identical" : "mismatch")
                               : "skipped");
    report.Add("traffic",
               {{"requests", static_cast<double>(total_requests)},
                {"qps", qps},
                {"query_p50_us", p50},
                {"query_p99_us", p99},
                {"updates_acked", static_cast<double>(updates_acked)},
                {"pushbacks", static_cast<double>(pushbacks)},
                {"failures", static_cast<double>(failures)}});
    if (!report.WriteTo(json_path)) return 1;
  }

  return (failures == 0 && check_ok && stats_ok && shutdown_ok) ? 0 : 1;
}
