/// Fig. 8(f): effect of the rank-based ("bottom-up") optimization —
/// MatchJoin_nopt vs. MatchJoin_min on densification-law graphs
/// |E| = |V|^α, α swept 1.0..1.25 with |V| fixed (paper: 200K; here 50K by
/// default). Expected shape: the optimized variant wins (paper: ~54% of
/// nopt's time) and the gap widens with density, since denser graphs feed
/// more redundant pairs into the fixpoint.

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

constexpr uint64_t kQuerySeed = 53;

Pattern Query() {
  RandomPatternOptions po;
  po.num_nodes = 4;
  po.num_edges = 6;
  po.label_pool = SyntheticLabels(10);
  po.dag_only = true;  // the bottom-up strategy's sweet spot (Lemma 2)
  po.seed = kQuerySeed;
  return GenerateRandomPattern(po);
}

Fixture BuildDense(const std::string& key) {
  double alpha = std::stod(key) / 100.0;
  Pattern q = Query();
  CoveringViewOptions co;
  co.edges_per_view = 2;
  co.num_distractors = 4;
  co.overlap_views = 4;
  co.seed = 61;
  return MakeFixture(
      GenerateDensificationGraph(Scaled(50000), alpha, 10, 19),
      GenerateCoveringViews(q, co));
}

Fixture& DenseFixture(int64_t alpha_x100) {
  return CachedFixture(std::to_string(alpha_x100), &BuildDense);
}

void BM_MatchJoinNopt(benchmark::State& state) {
  Fixture& f = DenseFixture(state.range(0));
  Pattern q = Query();
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping, /*use_rank_order=*/false);
}

void BM_MatchJoinMin(benchmark::State& state) {
  Fixture& f = DenseFixture(state.range(0));
  Pattern q = Query();
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping, /*use_rank_order=*/true);
}

void Alphas(benchmark::internal::Benchmark* b) {
  for (int64_t a : {100, 105, 110, 115, 120, 125}) b->Args({a});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_MatchJoinNopt)->Apply(Alphas);
BENCHMARK(BM_MatchJoinMin)->Apply(Alphas);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
