/// \file stream_ingest.cc
/// \brief Streaming-ingestion benchmark: sustained updates/sec and query
/// latency *while* ingesting, streaming (UpdateStream + StreamApplier
/// micro-batches) head-to-head against stop-the-world bulk batches over the
/// same op sequence.
///
///   ./build/bench/stream_ingest [ops] [--min-speedup X] [--json path]
///
/// Both passes run the identical workload: a query thread issues pattern
/// queries back-to-back while the main thread ingests the same pre-built
/// op sequence — through the stream in the streaming pass, as a handful of
/// bulk ApplyUpdates calls (the pre-streaming serving model) in the
/// stop-the-world pass. Reported per pass: ingest wall time, sustained
/// updates/sec, queries completed *during* ingestion, and the p50/p99
/// latency of those mid-ingest queries. The two passes must agree on every
/// final probe answer (exit 1 otherwise — the op sequences are canonically
/// equal by the stream's last-op-wins contract), and the streaming pass
/// must complete at least one query mid-ingest (the "no stop-the-world
/// stall" check). `--min-speedup X` gates the stop/stream p99 query-stall
/// ratio: queries racing a bulk batch stall behind its exclusive section,
/// and streamed micro-batches have to cut that p99 by at least X. The
/// ratio is measured within one process over identical work, so it holds
/// on shared CI runners (like update_latency's gate).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "engine/query_engine.h"
#include "pattern/pattern_builder.h"
#include "stream/stream_applier.h"
#include "stream/update_stream.h"
#include "workload/graph_gen.h"
#include "workload/pattern_gen.h"

using namespace gpmv;

namespace {

/// Mixed op sequence over a shadow copy (inserts target absent edges,
/// deletes existing ones), identical for both passes.
std::vector<EdgeUpdate> MakeOps(const Graph& base, size_t count,
                                uint64_t seed) {
  Graph shadow = base;
  Rng rng(seed);
  std::vector<EdgeUpdate> ops;
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      for (int tries = 0; tries < 200; ++tries) {
        NodeId u = static_cast<NodeId>(rng.NextBounded(shadow.num_nodes()));
        NodeId v = static_cast<NodeId>(rng.NextBounded(shadow.num_nodes()));
        if (u == v || shadow.HasEdge(u, v)) continue;
        (void)shadow.AddEdgeIfAbsent(u, v);
        ops.push_back(EdgeUpdate::Insert(u, v));
        break;
      }
    } else {
      for (int tries = 0; tries < 200; ++tries) {
        NodeId u = static_cast<NodeId>(rng.NextBounded(shadow.num_nodes()));
        if (shadow.out_degree(u) == 0) continue;
        NodeId v =
            shadow.out_neighbors(u)[rng.NextBounded(shadow.out_degree(u))];
        (void)shadow.RemoveEdge(u, v);
        ops.push_back(EdgeUpdate::Delete(u, v));
        break;
      }
    }
  }
  return ops;
}

std::vector<Pattern> ViewPatterns() {
  // Enough maintained views that an update batch does real per-op work
  // (seeded decremental refresh + delta-insert fixpoints per view): the
  // bulk pass's exclusive section has to be long enough to be observable
  // as a query stall, which is exactly the serving model being replaced.
  std::vector<Pattern> views;
  for (int l = 0; l + 1 < 8; ++l) {
    views.push_back(PatternBuilder()
                        .Node("L" + std::to_string(l))
                        .Node("L" + std::to_string(l + 1))
                        .Edge("L" + std::to_string(l),
                              "L" + std::to_string(l + 1))
                        .Build());
  }
  for (int l = 0; l + 2 < 8; l += 2) {
    views.push_back(PatternBuilder()
                        .Node("L" + std::to_string(l))
                        .Node("L" + std::to_string(l + 1))
                        .Node("L" + std::to_string(l + 2))
                        .Edge("L" + std::to_string(l),
                              "L" + std::to_string(l + 1))
                        .Edge("L" + std::to_string(l + 1),
                              "L" + std::to_string(l + 2))
                        .Build());
  }
  return views;
}

struct PassResult {
  double ingest_seconds = 0.0;
  size_t ops = 0;
  size_t queries_during_ingest = 0;
  double query_p50_ms = 0.0;
  double query_p99_ms = 0.0;
  std::vector<MatchResult> final_answers;
  EngineStats stats;
};

std::unique_ptr<QueryEngine> MakeEngine(const Graph& base,
                                        const std::vector<Pattern>& views,
                                        const std::vector<Pattern>& probes) {
  EngineOptions opts;
  opts.pool.num_threads = 2;
  opts.result_cache.budget_bytes = 0;  // measure evaluation, not memo hits
  auto engine = std::make_unique<QueryEngine>(base, opts);
  for (size_t i = 0; i < views.size(); ++i) {
    Result<uint32_t> id =
        engine->RegisterView("v" + std::to_string(i), views[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "register failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  Status warm = engine->WarmViews();
  if (!warm.ok()) {
    std::fprintf(stderr, "warm failed: %s\n", warm.ToString().c_str());
    std::exit(1);
  }
  // Prime each probe once so both passes start from materialized state.
  for (const Pattern& q : probes) (void)engine->Query(q);
  return engine;
}

/// Runs one pass: a query thread hammers the engine while `ingest` runs on
/// the calling thread; returns the latency profile of the queries that
/// *started* during ingestion (a query stalling past the end of a bulk
/// batch is exactly the stall being measured). The ingest waits for the
/// querier's warm-up query, so even a short ingest window overlaps live
/// queries in both passes.
PassResult RunPass(QueryEngine* engine, const std::vector<Pattern>& probes,
                   size_t num_ops,
                   const std::function<void(QueryEngine*)>& ingest) {
  PassResult out;
  out.ops = num_ops;
  std::atomic<bool> ready{false};
  std::atomic<bool> ingesting{false};
  std::atomic<bool> stop{false};
  std::vector<double> latencies_ms;
  std::thread querier([&] {
    Rng rng(4242);
    (void)engine->Query(probes[0]);  // warm-up: thread is hot before t0
    ready.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) {
      const Pattern& q = probes[rng.NextBounded(probes.size())];
      const bool started_mid_ingest =
          ingesting.load(std::memory_order_acquire);
      Stopwatch sw;
      QueryResponse resp = engine->Query(q);
      const double ms = sw.ElapsedMillis();
      if (!resp.status.ok()) {
        std::fprintf(stderr, "query failed mid-ingest: %s\n",
                     resp.status.ToString().c_str());
        std::exit(1);
      }
      if (started_mid_ingest) latencies_ms.push_back(ms);
    }
  });

  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  Stopwatch wall;
  ingesting.store(true, std::memory_order_release);
  ingest(engine);
  out.ingest_seconds = wall.ElapsedSeconds();
  ingesting.store(false, std::memory_order_release);
  stop.store(true, std::memory_order_release);
  querier.join();

  out.queries_during_ingest = latencies_ms.size();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  if (!latencies_ms.empty()) {
    out.query_p50_ms = latencies_ms[latencies_ms.size() / 2];
    out.query_p99_ms = latencies_ms[(latencies_ms.size() * 99) / 100];
  }
  for (const Pattern& q : probes) {
    QueryResponse resp = engine->Query(q);
    if (!resp.status.ok()) {
      std::fprintf(stderr, "final probe failed: %s\n",
                   resp.status.ToString().c_str());
      std::exit(1);
    }
    resp.result.Normalize();
    out.final_answers.push_back(std::move(resp.result));
  }
  out.stats = engine->stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double min_speedup = 0.0;
  size_t positionals[1] = {3000};  // ops in the ingest sequence
  if (!bench::TakeJsonFlag(&argc, argv, &json_path) ||
      !bench::TakeMinSpeedupFlag(&argc, argv, &min_speedup) ||
      !bench::ParsePositionals(
          argc, argv,
          "stream_ingest [ops] [--min-speedup X] [--json path]",
          positionals, 1)) {
    return 2;
  }
  const size_t num_ops = std::max<size_t>(positionals[0], 16);

  RandomGraphOptions go;
  go.num_nodes = 20000;
  go.num_edges = 60000;
  go.num_labels = 8;
  go.seed = 2026;
  const Graph base = GenerateRandomGraph(go);
  const std::vector<Pattern> views = ViewPatterns();

  std::vector<Pattern> probes = views;  // view probes read cached extensions
  probes.push_back(PatternBuilder()
                       .Node("L2").Node("L3").Node("L4")
                       .Edge("L2", "L3").Edge("L3", "L4")
                       .Build());

  const std::vector<EdgeUpdate> ops = MakeOps(base, num_ops, 99);
  std::printf("graph: %zu nodes, %zu edges; %zu views; %zu streamed ops\n\n",
              base.num_nodes(), base.num_edges(), views.size(), ops.size());

  // --- streaming pass: micro-batches through UpdateStream + applier ------
  std::unique_ptr<QueryEngine> stream_engine = MakeEngine(base, views, probes);
  PassResult streamed =
      RunPass(stream_engine.get(), probes, ops.size(), [&](QueryEngine* e) {
        UpdateStreamOptions so;
        so.queue_capacity = 1024;
        UpdateStream stream(so);
        StreamApplier applier(e, &stream, {});
        for (const EdgeUpdate& op : ops) {
          if (stream.Push(op) == 0) {
            std::fprintf(stderr, "push failed\n");
            std::exit(1);
          }
        }
        Status st = applier.FlushAndWait();
        if (!st.ok() || !applier.Stop().ok()) {
          std::fprintf(stderr, "stream apply failed: %s\n",
                       st.ToString().c_str());
          std::exit(1);
        }
      });

  // --- stop-the-world pass: the same sequence as ONE bulk exclusive batch
  // (the pre-streaming serving model — `serve --updates` applies its whole
  // file in one ApplyUpdates; canonicalized per the stream's last-op-wins
  // contract so the final graphs are identical). Queries racing it stall
  // behind the single long exclusive section.
  std::unique_ptr<QueryEngine> bulk_engine = MakeEngine(base, views, probes);
  PassResult bulk =
      RunPass(bulk_engine.get(), probes, ops.size(), [&](QueryEngine* e) {
        Status st = e->ApplyUpdates(UpdateStream::Coalesce(ops));
        if (!st.ok()) {
          std::fprintf(stderr, "bulk apply failed: %s\n",
                       st.ToString().c_str());
          std::exit(1);
        }
      });

  // Equivalence: identical final answers, or the bench fails.
  for (size_t i = 0; i < probes.size(); ++i) {
    if (!(streamed.final_answers[i] == bulk.final_answers[i])) {
      std::fprintf(stderr,
                   "RESULT MISMATCH: streamed and stop-the-world passes "
                   "disagree on probe %zu\n",
                   i);
      return 1;
    }
  }
  // No-stall check: the streaming pass must actually serve queries while
  // ingesting (zero would mean ingestion stop-the-world'ed the engine).
  if (streamed.queries_during_ingest == 0) {
    std::fprintf(stderr,
                 "FAIL: no query completed during streamed ingestion\n");
    return 1;
  }

  auto report_pass = [](const char* name, const PassResult& p) {
    std::printf(
        "%-10s ingest %6.2fs (%8.0f upd/s)  queries-mid-ingest %6zu  "
        "q p50 %7.2fms  p99 %7.2fms\n",
        name, p.ingest_seconds,
        static_cast<double>(p.ops) / std::max(p.ingest_seconds, 1e-9),
        p.queries_during_ingest, p.query_p50_ms, p.query_p99_ms);
  };
  report_pass("streaming", streamed);
  report_pass("bulk", bulk);
  const StreamStats& ss = streamed.stats.stream;
  std::printf(
      "stream: batches=%zu max_batch=%zu coalesced=%zu queue_max=%zu "
      "publish_lag avg %.2fms max %.2fms\n",
      ss.batches_applied, ss.max_batch_size, ss.ops_coalesced,
      ss.max_queue_depth,
      ss.batches_applied == 0
          ? 0.0
          : ss.publish_lag_ms_total / static_cast<double>(ss.batches_applied),
      ss.publish_lag_ms_max);

  const double stall_ratio =
      bulk.query_p99_ms / std::max(streamed.query_p99_ms, 1e-9);
  std::printf("\np99 query-stall ratio (stop-the-world / streaming): %.2fx\n",
              stall_ratio);

  bench::JsonReport report("stream_ingest");
  report.Meta("graph_nodes", static_cast<double>(base.num_nodes()));
  report.Meta("graph_edges", static_cast<double>(base.num_edges()));
  report.Meta("ops", static_cast<double>(ops.size()));
  report.Add("streaming",
             {{"ingest_seconds", streamed.ingest_seconds},
              {"updates_per_sec",
               static_cast<double>(ops.size()) /
                   std::max(streamed.ingest_seconds, 1e-9)},
              {"queries_during_ingest",
               static_cast<double>(streamed.queries_during_ingest)},
              {"query_p50_ms", streamed.query_p50_ms},
              {"query_p99_ms", streamed.query_p99_ms},
              {"batches", static_cast<double>(ss.batches_applied)},
              {"max_batch", static_cast<double>(ss.max_batch_size)},
              {"publish_lag_ms_max", ss.publish_lag_ms_max}});
  report.Add("stop_the_world",
             {{"ingest_seconds", bulk.ingest_seconds},
              {"updates_per_sec", static_cast<double>(ops.size()) /
                                      std::max(bulk.ingest_seconds, 1e-9)},
              {"queries_during_ingest",
               static_cast<double>(bulk.queries_during_ingest)},
              {"query_p50_ms", bulk.query_p50_ms},
              {"query_p99_ms", bulk.query_p99_ms}});
  report.Add("gate", {{"p99_stall_ratio", stall_ratio}});
  if (!report.WriteTo(json_path)) return 1;

  if (min_speedup > 0.0 && stall_ratio < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: p99 stall ratio %.2fx below required %.2fx\n",
                 stall_ratio, min_speedup);
    return 1;
  }
  return 0;
}
