/// Fig. 8(b): graph pattern matching on Citation, |Qs| from (4,8) to
/// (8,16) — Match vs. MatchJoin_mnl vs. MatchJoin_min. Same expected shape
/// as Fig. 8(a).

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

Fixture BuildCitation(const std::string&) {
  return MakeFixture(GenerateCitationLike(Scaled(100000), 777),
                     CitationViews(1));
}

Fixture& CitationFixture() { return CachedFixture("citation", &BuildCitation); }

Pattern QueryFor(int64_t vp, int64_t ep) {
  return GenerateCitationQuery(static_cast<uint32_t>(vp),
                               static_cast<uint32_t>(ep), 1,
                               static_cast<uint64_t>(vp * 37 + ep));
}

void BM_Match(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  RunDirectLoop(state, q, f.g);
}

void BM_MatchJoinMnl(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimalContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void BM_MatchJoinMin(benchmark::State& state) {
  Fixture& f = CitationFixture();
  Pattern q = QueryFor(state.range(0), state.range(1));
  auto mapping = MinimumContainment(q, f.views);
  if (!mapping.ok() || !mapping->contained) {
    state.SkipWithError("query not contained");
    return;
  }
  RunMatchJoinLoop(state, q, f, *mapping);
}

void Sizes(benchmark::internal::Benchmark* b) {
  for (auto [vp, ep] : {std::pair<int64_t, int64_t>{4, 8}, {5, 10}, {6, 12},
                        {7, 14}, {8, 16}}) {
    b->Args({vp, ep});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Match)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMnl)->Apply(Sizes);
BENCHMARK(BM_MatchJoinMin)->Apply(Sizes);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
