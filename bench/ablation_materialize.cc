/// Ablation (beyond the paper's figures): the one-time cost of view
/// materialization and its footprint, across the three dataset stand-ins
/// and increasing bounds — what a deployment pays before MatchJoin can take
/// over. Reports pairs cached and the extension-to-graph ratio the paper
/// quotes (4-14%).

#include "bench_util.h"

namespace gpmv {
namespace bench {
namespace {

void ReportFootprint(benchmark::State& state, const Graph& g,
                     const std::vector<ViewExtension>& exts) {
  state.counters["pairs"] = static_cast<double>(TotalExtensionPairs(exts));
  state.counters["pct_of_edges"] =
      100.0 * static_cast<double>(TotalExtensionPairs(exts)) /
      static_cast<double>(g.num_edges());
}

void BM_MaterializeAmazon(benchmark::State& state) {
  Graph g = GenerateAmazonLike(Scaled(30000), 5);
  ViewSet views = AmazonViews(static_cast<uint32_t>(state.range(0)));
  std::vector<ViewExtension> exts;
  for (auto _ : state) {
    exts = std::move(MaterializeAll(views, g)).value();
    benchmark::DoNotOptimize(exts);
  }
  ReportFootprint(state, g, exts);
}

void BM_MaterializeCitation(benchmark::State& state) {
  Graph g = GenerateCitationLike(Scaled(30000), 6);
  ViewSet views = CitationViews(static_cast<uint32_t>(state.range(0)));
  std::vector<ViewExtension> exts;
  for (auto _ : state) {
    exts = std::move(MaterializeAll(views, g)).value();
    benchmark::DoNotOptimize(exts);
  }
  ReportFootprint(state, g, exts);
}

void BM_MaterializeYoutube(benchmark::State& state) {
  Graph g = GenerateYoutubeLike(Scaled(30000), 7);
  ViewSet views = YoutubeViews(static_cast<uint32_t>(state.range(0)));
  std::vector<ViewExtension> exts;
  for (auto _ : state) {
    exts = std::move(MaterializeAll(views, g)).value();
    benchmark::DoNotOptimize(exts);
  }
  ReportFootprint(state, g, exts);
}

void Bounds(benchmark::internal::Benchmark* b) {
  for (int64_t k : {1, 2, 3}) b->Args({k});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_MaterializeAmazon)->Apply(Bounds);
BENCHMARK(BM_MaterializeCitation)->Apply(Bounds);
BENCHMARK(BM_MaterializeYoutube)->Apply(Bounds);

}  // namespace
}  // namespace bench
}  // namespace gpmv

BENCHMARK_MAIN();
