#!/usr/bin/env python3
"""Lint: timing code must use std::chrono::steady_clock.

Scans C++ sources for std::chrono::system_clock and
high_resolution_clock. Both are banned in timing paths: system_clock
jumps under NTP adjustment (breaking latency histograms and the
exporter's monotone ts_ms contract, see tools/metrics_schema.json), and
high_resolution_clock is an unspecified alias that is system_clock on
some standard libraries. Lines that genuinely need wall-clock time
(e.g. log timestamps for humans) can opt out with a
`// clock-lint: allow` comment on the same line.

Usage: tools/check_clocks.py [dir ...]   (defaults: src tools bench tests)
"""

import os
import re
import sys

BANNED = re.compile(r"\b(?:std::chrono::)?(system_clock|high_resolution_clock)\b")
ALLOW_TAG = "clock-lint: allow"
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")


def check_file(path):
    failures = []
    with open(path, encoding="utf-8", errors="replace") as f:
        for lineno, line in enumerate(f, start=1):
            m = BANNED.search(line)
            if m and ALLOW_TAG not in line:
                failures.append(f"{path}:{lineno}: {m.group(1)} (use "
                                f"steady_clock, or tag `// {ALLOW_TAG}`)")
    return failures


def main(argv):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    dirs = argv[1:] or ["src", "tools", "bench", "tests"]
    failures = []
    scanned = 0
    for d in dirs:
        for dirpath, _, filenames in os.walk(os.path.join(root, d)):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    scanned += 1
                    failures.extend(check_file(os.path.join(dirpath, name)))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} banned clock use(s)", file=sys.stderr)
        return 1
    print(f"ok: {scanned} files use steady_clock only")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
