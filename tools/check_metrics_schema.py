#!/usr/bin/env python3
"""Validator for the `serve --metrics-out` JSON-lines artifact.

Checks every line of the given files against the committed schema
(tools/metrics_schema.json, the source of truth for the exporter format in
src/obs/exporter.cc) plus the cross-line stream constraints: seq strictly
increasing from 1 with no gaps, ts_ms non-decreasing, counters monotone,
and each histogram's count equal to the sum of its (right-zero-padded)
buckets. The schema's `required_metrics` section additionally pins the
metric names every engine registers up front (bounded-delta and sharding
counters, distance-index gauges): each must appear in every snapshot
line. Exits non-zero listing every violation.

kStatsResult frames served over the socket front end carry the same
exporter JSON-line shape (with a server-global seq), so the CI net smoke
job pipes a capture of those straight through this checker.

Usage: tools/check_metrics_schema.py metrics.jsonl [more.jsonl ...]
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(os.path.dirname(__file__), "metrics_schema.json")


def type_ok(value, kind):
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind == "object":
        return isinstance(value, dict)
    if kind == "int_array":
        return isinstance(value, list) and all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        )
    raise ValueError("unknown schema type " + kind)


def check_required(obj, spec, where, errors):
    for key, kind in spec["required"].items():
        if key not in obj:
            errors.append(f"{where}: missing key '{key}'")
        elif not type_ok(obj[key], kind):
            errors.append(
                f"{where}: '{key}' should be {kind}, "
                f"got {type(obj[key]).__name__}"
            )


def check_file(path, schema):
    errors = []
    line_spec = schema["line"]
    hist_spec = schema["histogram_value"]
    max_buckets = hist_spec["max_buckets"]
    required_metrics = schema.get("required_metrics", {})
    prev_seq = 0
    prev_ts = -1.0
    prev_counters = {}
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as err:
        return [f"{path}: {err}"]
    if not lines:
        return [f"{path}: empty artifact (the exporter always emits a "
                "final snapshot on Stop)"]
    for lineno, raw in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as err:
            errors.append(f"{where}: not valid JSON: {err}")
            continue
        check_required(obj, line_spec, where, errors)
        for family in ("counters", "gauges", "histograms"):
            present = obj.get(family)
            if not isinstance(present, dict):
                continue  # already reported by check_required
            for name in required_metrics.get(family, []):
                if name not in present:
                    errors.append(
                        f"{where}: required {family[:-1]} '{name}' missing"
                    )
        seq = obj.get("seq")
        if isinstance(seq, int):
            if seq != prev_seq + 1:
                errors.append(
                    f"{where}: seq {seq} after {prev_seq} "
                    "(must increase by 1 from 1)"
                )
            prev_seq = seq
        ts = obj.get("ts_ms")
        if isinstance(ts, (int, float)):
            if ts < prev_ts:
                errors.append(f"{where}: ts_ms {ts} decreased from {prev_ts}")
            prev_ts = ts
        for name, value in obj.get("counters", {}).items():
            if not type_ok(value, line_spec["counters_value"]):
                errors.append(f"{where}: counter '{name}' is not an int")
                continue
            prev = prev_counters.get(name, 0)
            if value < prev:
                errors.append(
                    f"{where}: counter '{name}' decreased ({prev} -> {value})"
                )
            prev_counters[name] = value
        for name, value in obj.get("gauges", {}).items():
            if not type_ok(value, line_spec["gauges_value"]):
                errors.append(f"{where}: gauge '{name}' is not a number")
        for name, hist in obj.get("histograms", {}).items():
            hwhere = f"{where} histogram '{name}'"
            if not isinstance(hist, dict):
                errors.append(f"{hwhere}: not an object")
                continue
            check_required(hist, hist_spec, hwhere, errors)
            buckets = hist.get("buckets")
            if isinstance(buckets, list):
                if len(buckets) > max_buckets:
                    errors.append(
                        f"{hwhere}: {len(buckets)} buckets exceeds the "
                        f"schema maximum {max_buckets}"
                    )
                if isinstance(hist.get("count"), int) and hist[
                    "count"
                ] != sum(b for b in buckets if isinstance(b, int)):
                    errors.append(
                        f"{hwhere}: count {hist['count']} != bucket sum "
                        f"{sum(buckets)}"
                    )
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)
    failures = []
    for path in argv[1:]:
        failures.extend(check_file(path, schema))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} schema violation(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(argv) - 1} artifact(s) schema-valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
